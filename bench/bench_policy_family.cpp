// Head-to-head dispatch-policy ablation: the paper's optimal split
// against the scalable d-choices family (JSQ(d), speed-biased,
// heterogeneity-aware, weighted) and the stateless baselines, across a
// regime matrix of traffic level x speed heterogeneity x failure churn
// x chaos. Every policy replays the SAME timeline (same arrival/service
// RNG streams, same failure schedule), so row-to-row differences are
// routing-only; an adaptive-controller row (full replay(): estimation,
// re-solving, admission control) anchors the comparison.
//
// The headline question the matrix answers, per regime: does naive
// uniform-probe JSQ(d) beat the paper's optimal split? Gardner et al.
// predict it loses under strong speed heterogeneity (uniform probing
// over-commits slow servers) and classical results predict it wins on
// homogeneous fleets under heavy load (queue feedback beats any static
// split). The verdict column prints T'_jsq(2) / T'_opt so the claim is
// checkable from the table; the subsumed static-heuristic ablation
// (formerly bench_policy_ablation) closes the report.
//
// Also emits POLICY_FAMILY_table.csv (CI artifact) and, like every
// bench, self-records the obs registry to BENCH_bench_policy_family.json
// — CI gates policy.probes / policy.routed against the checked-in
// baseline so probing-cost regressions fail the build.
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cloud/experiments.hpp"
#include "cloud/report.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "model/paper_configs.hpp"
#include "obs/export.hpp"
#include "runtime/chaos.hpp"
#include "runtime/replay.hpp"
#include "util/table.hpp"

namespace {

using blade::model::BladeServer;
using blade::model::Cluster;

struct Regime {
  std::string name;
  Cluster cluster;
  double load_fraction;  ///< generic rate as a fraction of lambda'_max
  bool churn;            ///< biggest server lost / recovered mid-run
  std::string chaos;     ///< chaos profile name, "" = none
};

Cluster homogeneous() {
  return Cluster({{4, 1.0, 0.6}, {4, 1.0, 0.6}, {4, 1.0, 0.6}, {4, 1.0, 0.6}}, 1.0);
}

Cluster mild_hetero() {
  return Cluster({{4, 2.0, 1.2}, {4, 1.5, 0.9}, {4, 1.0, 0.6}, {4, 1.0, 0.6}}, 1.0);
}

/// Two big fast chassis next to six small slow ones: the regime where
/// uniform probing is most wrong (a uniform probe pair usually sees only
/// slow servers, so naive JSQ(d) starves the fast capacity).
Cluster extreme_hetero() {
  std::vector<BladeServer> servers;
  servers.push_back({4, 8.0, 3.0});
  servers.push_back({4, 8.0, 3.0});
  for (int i = 0; i < 6; ++i) servers.push_back({2, 1.0, 0.2});
  return Cluster(std::move(servers), 1.0);
}

blade::runtime::ReplayTrace make_trace(const Cluster& cluster, double load_fraction,
                                       bool churn) {
  blade::runtime::ReplayTrace trace;
  trace.horizon = 8000.0;
  trace.seed = 7;
  const double rate = load_fraction * cluster.max_generic_rate();
  trace.events.push_back(
      {.time = 0.0, .kind = blade::runtime::ReplayEvent::Kind::Rate, .rate = rate});
  if (churn) {
    // Lose the highest-capacity server for the middle third.
    std::size_t biggest = 0;
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      if (cluster.server(i).capacity(cluster.rbar()) >
          cluster.server(biggest).capacity(cluster.rbar())) {
        biggest = i;
      }
    }
    trace.events.push_back({.time = trace.horizon / 3.0,
                            .kind = blade::runtime::ReplayEvent::Kind::Fail,
                            .server = biggest});
    trace.events.push_back({.time = 2.0 * trace.horizon / 3.0,
                            .kind = blade::runtime::ReplayEvent::Kind::Recover,
                            .server = biggest});
  }
  return trace;
}

struct PolicyRow {
  std::string name;
  double response = 0.0;
  double probes_per_task = 0.0;
  std::uint64_t herds = 0;
  std::uint64_t fallbacks = 0;
  double shed_fraction = 0.0;  ///< adaptive row only; policies never shed
};

blade::policy::PolicyConfig family_config(blade::policy::PolicyKind kind, unsigned d,
                                          const Cluster& cluster,
                                          const std::vector<double>& opt_rates) {
  blade::policy::PolicyConfig cfg;
  cfg.kind = kind;
  cfg.probe_d = d;
  cfg.seed = 7;
  cfg.stream = 77;
  if (blade::policy::needs_weights(kind)) cfg.weights = opt_rates;
  if (kind == blade::policy::PolicyKind::SpeedBiasedD) {
    for (const auto& s : cluster.servers()) cfg.speeds.push_back(s.speed());
  }
  return cfg;
}

}  // namespace

int main() {
  using blade::policy::PolicyKind;
  std::vector<Regime> regimes;
  regimes.push_back({"homog/light", homogeneous(), 0.30, false, ""});
  regimes.push_back({"homog/heavy", homogeneous(), 0.90, false, ""});
  regimes.push_back({"mild-hetero/light", mild_hetero(), 0.30, false, ""});
  regimes.push_back({"mild-hetero/heavy", mild_hetero(), 0.90, false, ""});
  regimes.push_back({"extreme-hetero/light", extreme_hetero(), 0.30, false, ""});
  regimes.push_back({"extreme-hetero/heavy", extreme_hetero(), 0.90, false, ""});
  regimes.push_back({"extreme-hetero/churn", extreme_hetero(), 0.60, true, ""});
  regimes.push_back({"extreme-hetero/chaos", extreme_hetero(), 0.60, true, "moderate"});

  std::ostringstream csv;
  csv << "regime,policy,T,probes_per_task,herd_events,fallback_scans,shed_fraction\n";

  for (const auto& regime : regimes) {
    const auto trace = make_trace(regime.cluster, regime.load_fraction, regime.churn);
    const double rate = regime.load_fraction * regime.cluster.max_generic_rate();

    // Weighted kinds and the opt-split row use the paper solver's rates
    // at the regime's offered load (full-fleet topology; during churn
    // this is the static split a planner provisioned before the outage).
    blade::opt::LoadDistributionOptimizer solver(regime.cluster,
                                                 blade::queue::Discipline::Fcfs, {});
    const auto opt = solver.optimize(rate);

    const std::vector<std::pair<std::string, blade::policy::PolicyConfig>> entries = {
        {"random", family_config(PolicyKind::Random, 2, regime.cluster, opt.rates)},
        {"round-robin", family_config(PolicyKind::RoundRobin, 2, regime.cluster, opt.rates)},
        {"jsq-2", family_config(PolicyKind::JsqD, 2, regime.cluster, opt.rates)},
        {"jsq-3", family_config(PolicyKind::JsqD, 3, regime.cluster, opt.rates)},
        {"sb-2", family_config(PolicyKind::SpeedBiasedD, 2, regime.cluster, opt.rates)},
        {"ha-jsq-2", family_config(PolicyKind::HeteroJsqD, 2, regime.cluster, opt.rates)},
        {"wjsq-2", family_config(PolicyKind::WeightedJsqD, 2, regime.cluster, opt.rates)},
        {"opt-split", family_config(PolicyKind::OptSplit, 2, regime.cluster, opt.rates)},
    };

    blade::runtime::ReplayOptions ropts;
    ropts.warmup = 800.0;
    std::optional<blade::runtime::FaultInjector> chaos;
    if (!regime.chaos.empty()) {
      chaos.emplace(7, blade::runtime::chaos_profile(regime.chaos).value());
    }

    std::vector<PolicyRow> rows;
    double jsq2_T = 0.0;
    double opt_T = 0.0;
    for (const auto& [label, cfg] : entries) {
      if (chaos) {
        chaos.emplace(7, blade::runtime::chaos_profile(regime.chaos).value());
        ropts.chaos = &*chaos;
      }
      const auto res = blade::runtime::replay_policy(regime.cluster, cfg, trace, ropts);
      PolicyRow row;
      row.name = label;
      row.response = res.sim.generic_mean_response;
      row.probes_per_task =
          res.counters.routed > 0
              ? static_cast<double>(res.counters.probes) /
                    static_cast<double>(res.counters.routed)
              : 0.0;
      row.herds = res.counters.herd_events;
      row.fallbacks = res.counters.fallback_scans;
      rows.push_back(row);
      if (label == "jsq-2") jsq2_T = row.response;
      if (label == "opt-split") opt_T = row.response;
    }

    // Adaptive controller over the same timeline: estimates the rate,
    // re-solves on failures, sheds above the ceiling. Not bitwise the
    // same arrival draws (admission consumes its own stream) but the
    // same trace and seed.
    {
      blade::runtime::ControllerConfig ccfg;
      ccfg.half_life = trace.horizon / 100.0;
      blade::runtime::ReplayOptions copts;
      copts.warmup = 800.0;
      std::optional<blade::runtime::FaultInjector> cchaos;
      if (!regime.chaos.empty()) {
        cchaos.emplace(7, blade::runtime::chaos_profile(regime.chaos).value());
        copts.chaos = &*cchaos;
      }
      const auto res = blade::runtime::replay(regime.cluster, ccfg, trace, copts);
      PolicyRow row;
      row.name = "adaptive";
      row.response = res.sim.generic_mean_response;
      row.shed_fraction = res.shed_fraction;
      rows.push_back(row);
    }

    blade::util::Table t({"policy", "T'", "probes/task", "herd", "fallback", "shed"});
    for (const auto& r : rows) {
      std::ostringstream shed;
      shed << std::fixed << std::setprecision(3) << r.shed_fraction;
      t.add_row({r.name, blade::util::fixed(r.response, 4),
                 blade::util::fixed(r.probes_per_task, 3), std::to_string(r.herds),
                 std::to_string(r.fallbacks), shed.str()});
      csv << regime.name << ',' << r.name << ',' << r.response << ',' << r.probes_per_task
          << ',' << r.herds << ',' << r.fallbacks << ',' << r.shed_fraction << '\n';
    }
    const double ratio = opt_T > 0.0 ? jsq2_T / opt_T : 0.0;
    std::cout << "=== regime " << regime.name << " (lambda' = " << rate << ", "
              << (regime.churn ? "churn" : "steady")
              << (regime.chaos.empty() ? "" : ", chaos=" + regime.chaos) << ") ===\n"
              << t.render() << "verdict: T'_jsq(2) / T'_opt-split = "
              << blade::util::fixed(ratio, 3) << " -> naive JSQ(2) "
              << (ratio > 1.0 ? "LOSES to" : "beats") << " the optimal split\n\n";
  }

  // Subsumed static-heuristic ablation (formerly bench_policy_ablation):
  // proportional-to-speed and equal-split penalties on the paper cluster.
  const auto paper = blade::model::paper_example_cluster();
  const std::vector<double> fractions{0.25, 0.5, 0.75, 0.9};
  for (auto d : {blade::queue::Discipline::Fcfs, blade::queue::Discipline::SpecialPriority}) {
    std::cout << "=== Static-heuristic ablation on the Example cluster, discipline = "
              << blade::queue::to_string(d) << " ===\n";
    const auto rows = blade::cloud::policy_ablation(paper, d, fractions);
    std::cout << blade::cloud::render_ablation(rows) << '\n';
  }
  std::cout << "penalty = policy T' / optimal T' - 1 (0% would match the optimum)\n";

  {
    std::FILE* f = std::fopen("POLICY_FAMILY_table.csv", "w");
    if (f != nullptr) {
      const std::string body = csv.str();
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::cout << "wrote POLICY_FAMILY_table.csv\n";
    }
  }
  const std::string file = blade::obs::export_bench_json("bench_policy_family");
  std::fprintf(stderr, "metrics: wrote %s\n", file.c_str());
  return 0;
}
