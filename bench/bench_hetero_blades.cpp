// Mixed-generation blades: the paper treats each server's blades as
// identical. How wrong is that if a chassis actually mixes fast and slow
// blades of the same total speed? Exact mixed-blade chain vs the
// homogeneous M/M/m the model would use.
#include <iostream>

#include "queueing/hetero_server.hpp"
#include "queueing/mmm.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;

  // 4 blades, total speed 4.0, increasing spread around the mean of 1.0.
  const std::vector<std::vector<double>> mixes = {
      {1.0, 1.0, 1.0, 1.0},
      {1.2, 1.2, 0.8, 0.8},
      {1.5, 1.5, 0.5, 0.5},
      {1.9, 1.3, 0.5, 0.3},
  };

  std::cout << "=== Mixed-blade chassis vs the homogeneous model (4 blades, total speed 4) ===\n\n";
  util::Table t({"blade speeds", "load", "T homogeneous", "T exact mixed", "model bias"});
  t.set_align(0, util::Align::Left);
  const queue::MMmQueue homo(4, 1.0);
  for (const auto& mix : mixes) {
    for (double rho : {0.4, 0.7, 0.9}) {
      const double lambda = rho * 4.0;
      const auto exact = queue::solve_hetero_server(mix, 1.0, lambda, 600);
      std::string label;
      for (std::size_t i = 0; i < mix.size(); ++i) {
        if (i) label += "/";
        label += util::fixed(mix[i], 1);
      }
      const double homo_T = homo.mean_response_time(lambda);
      t.add_row({label, util::fixed(rho, 1), util::fixed(homo_T, 4),
                 util::fixed(exact.mean_response, 4),
                 util::fixed(100.0 * (homo_T / exact.mean_response - 1.0), 2) + "%"});
    }
  }
  std::cout << t.render()
            << "\nreading: under fastest-free-blade assignment, a mixed chassis is\n"
               "actually FASTER than its homogeneous equivalent at light load (fast\n"
               "blades absorb most traffic; positive bias = model pessimistic) and a\n"
               "shade slower near saturation, where only total speed matters. The\n"
               "identical-blade simplification is accurate to ~1% above rho = 0.7 --\n"
               "exactly the regime the paper's optimization operates in.\n";
  return 0;
}
