// Ablation: the paper assumes exponential task sizes (SCV = 1). Using the
// Allen-Cunneen M/G/m correction, how do the minimized T' and the optimal
// split change when task sizes are deterministic (SCV 0), mildly variable
// (0.5), exponential (1), or heavy-tailed-ish (2, 4)?
#include <iostream>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();

  std::cout << "=== Task-size variability ablation (Example cluster, lambda' = " << lambda
            << ") ===\n\n";
  for (auto d : {queue::Discipline::Fcfs, queue::Discipline::SpecialPriority}) {
    util::Table t({"scv", "T'*", "lambda'_1 (small/fast)", "lambda'_7 (large/slow)"});
    for (double scv : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      opt::OptimizerOptions opts;
      opts.service_scv = scv;
      const auto sol = opt::LoadDistributionOptimizer(cluster, d, opts).optimize(lambda);
      t.add_row({util::fixed(scv, 1), util::fixed(sol.response_time),
                 util::fixed(sol.rates.front()), util::fixed(sol.rates.back())});
    }
    std::cout << "discipline = " << queue::to_string(d) << '\n' << t.render() << '\n';
  }
  std::cout << "scv = 1 rows are the paper's exact model (match Tables 1/2);\n"
               "other rows use the Allen-Cunneen M/G/m approximation.\n";
  return 0;
}
