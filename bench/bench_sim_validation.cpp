// Validation study the paper lacks: simulate the Example 1/2 blade center
// at the optimizer's distribution and check the measured generic response
// time against the analytic minimized T' (95% confidence intervals over
// independent replications).
#include <iostream>

#include "cloud/experiments.hpp"
#include "cloud/report.hpp"
#include "obs/export.hpp"

int main(int argc, char** argv) {
  (void)argc;
  std::cout << "=== Simulation validation of Examples 1 and 2 ===\n"
            << "(8 replications x 40000 simulated time units each)\n\n";
  const auto rows = blade::cloud::validate_examples(/*replications=*/8, /*horizon=*/40000.0,
                                                    /*warmup=*/4000.0);
  std::cout << blade::cloud::render_validation(rows);
  std::cout << "\npaper reports: example1 T' = 0.8964703, example2 T' = 0.9209392\n";
  std::cerr << "metrics: wrote " << blade::obs::export_bench_json(argv[0]) << '\n';
  return 0;
}
