// Regenerates Figs. 10 and 11: impact of the special-task preload
// fraction y in 0.20..0.40. Expectation: heavier preload raises T'.
#include "fig_common.hpp"

int main() {
  bench_common::print_figure(10);
  bench_common::print_figure(11);
  return 0;
}
