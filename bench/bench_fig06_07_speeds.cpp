// Regenerates Figs. 6 and 7: impact of server speeds (s_i = s - 0.1 i,
// s in 1.5..1.9). Expectation: faster blades shift every curve down and
// extend the saturation point.
#include "fig_common.hpp"

int main() {
  bench_common::print_figure(6);
  bench_common::print_figure(7);
  return 0;
}
