// Arrival-burstiness ablation: the paper's generic stream is Poisson.
// Replacing it with an MMPP-2 of the same mean rate shows how much a
// bursty reality degrades the response time the Poisson model promises.
// The optimal split itself stays the model-based one -- exactly what an
// operator relying on the paper would deploy.
#include <iostream>
#include <memory>
#include <vector>

#include "core/optimizer.hpp"
#include "sim/arrivals.hpp"
#include "model/paper_configs.hpp"
#include "sim/metrics.hpp"
#include "sim/mmpp.hpp"
#include "sim/server_sim.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  const auto sol =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);

  std::cout << "=== Bursty arrivals vs the Poisson model (Example 1 split) ===\n"
            << "(MMPP-2 generic streams, equal mean rates, state sojourn 10 s)\n\n";
  util::Table t({"burstiness", "simulated T'", "vs Poisson model"});
  for (double b : {1.0, 1.3, 1.6, 1.9}) {
    sim::Engine engine;
    sim::ResponseTimeCollector collector(3000.0);
    std::vector<std::unique_ptr<sim::ServerSim>> servers;
    std::vector<std::unique_ptr<sim::MmppSource>> generic_sources;
    std::vector<std::unique_ptr<sim::PoissonSource>> special_sources;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const auto& srv = cluster.server(i);
      servers.push_back(std::make_unique<sim::ServerSim>(
          engine, srv.size(), srv.speed(), sim::SchedulingMode::Fcfs, collector));
    }
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const auto& srv = cluster.server(i);
      sim::ServerSim* dest = servers[i].get();
      if (sol.rates[i] > 0.0) {
        generic_sources.push_back(std::make_unique<sim::MmppSource>(
            engine, sim::MmppParams::with_mean(sol.rates[i], b),
            sim::ServiceDistribution::exponential(cluster.rbar()), sim::TaskClass::Generic,
            sim::RngStream(1, 2 * i), [dest](sim::Task task) { dest->arrive(task); }));
      }
      special_sources.push_back(std::make_unique<sim::PoissonSource>(
          engine, srv.special_rate(), cluster.rbar(), sim::TaskClass::Special,
          sim::RngStream(1, 2 * i + 1), [dest](sim::Task task) { dest->arrive(task); }));
    }
    for (auto& s : generic_sources) s->start();
    for (auto& s : special_sources) s->start();
    engine.run_until(40000.0);
    const double mean = collector.generic().mean();
    const double pct = 100.0 * (mean / sol.response_time - 1.0);
    t.add_row({util::fixed(b, 1), util::fixed(mean, 4),
               (pct >= 0.0 ? "+" : "") + util::fixed(pct, 2) + "%"});
  }
  std::cout << t.render() << "\nmodel (Poisson) predicts T' = "
            << util::fixed(sol.response_time, 4)
            << "\nreading: burstiness the model cannot see inflates real response\n"
               "times; the optimal *split* is unchanged, but capacity planning\n"
               "should budget for the inflation.\n";
  return 0;
}
