// Thread-pool scaling of the sweep engine: wall time of a fixed figure
// workload (fig04 grid, all five groups) under 1, 2, 4, 8 worker threads.
#include <chrono>
#include <iostream>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "obs/export.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  (void)argc;
  using namespace blade;
  const auto groups = model::size_groups();

  auto workload = [&](par::ThreadPool& pool) {
    // All five size groups x 40 lambda points, solved in the pool.
    double checksum = 0.0;
    for (const auto& g : groups) {
      const opt::LoadDistributionOptimizer solver(g.cluster, queue::Discipline::Fcfs);
      const auto grid =
          par::linspace(1.0, 0.95 * g.cluster.max_generic_rate(), 40);
      const auto ys =
          par::sweep(pool, grid, [&](double lam) { return solver.optimize(lam).response_time; });
      for (double y : ys) checksum += y;
    }
    return checksum;
  };

  std::cout << "=== Parallel sweep scaling (5 clusters x 40 solves each) ===\n\n";
  util::Table t({"threads", "wall ms", "speedup"});
  double base_ms = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    (void)workload(pool);  // warm caches
    const auto t0 = std::chrono::steady_clock::now();
    const double sum = workload(pool);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (threads == 1) base_ms = ms;
    t.add_row({std::to_string(threads), util::fixed(ms, 1), util::fixed(base_ms / ms, 2) + "x"});
    if (sum == 0.0) std::cout << "";  // keep the optimizer honest
  }
  std::cout << t.render() << '\n';
  std::cerr << "metrics: wrote " << blade::obs::export_bench_json(argv[0]) << '\n';
  return 0;
}
