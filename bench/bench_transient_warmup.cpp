// Transient analysis: how long does each Example-1 server take to reach
// steady state from empty? Solved exactly by uniformization on the
// birth-death chain -- this is the principled justification for the
// simulator's warmup truncation (and for the trace module's
// quasi-stationarity assumption).
#include <algorithm>
#include <iostream>

#include "model/paper_configs.hpp"
#include "queueing/ctmc.hpp"
#include "queueing/mmm.hpp"
#include "util/table.hpp"

namespace {

using namespace blade;

// Time for E[N(t)] from empty to reach 99% of the stationary mean.
double relaxation_time(unsigned m, double xbar, double lambda) {
  const unsigned K = 400;
  queue::Ctmc chain(K + 1);
  for (unsigned k = 0; k < K; ++k) chain.add_rate(k, k + 1, lambda);
  for (unsigned k = 1; k <= K; ++k) {
    chain.add_rate(k, k - 1, std::min(k, m) / xbar);
  }
  const double target = 0.99 * queue::MMmQueue(m, xbar).mean_tasks(lambda);
  std::vector<double> start(K + 1, 0.0);
  start[0] = 1.0;
  double lo = 0.0, hi = 1.0;
  auto mean_at = [&](double t) {
    const auto pi = chain.transient(start, t);
    double mean = 0.0;
    for (unsigned k = 0; k <= K; ++k) mean += k * pi[k];
    return mean;
  };
  while (mean_at(hi) < target) hi *= 2.0;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mean_at(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

int main() {
  const auto cluster = model::paper_example_cluster();
  // Example 1's merged per-server rates (generic Table-1 + special).
  const double merged[7] = {0.6652046 + 0.96, 1.8802882 + 1.8, 2.9973639 + 2.52,
                            3.9121948 + 3.12, 4.5646028 + 3.6, 4.8769307 + 3.96,
                            4.6234149 + 4.2};

  std::cout << "=== Time to steady state from empty (exact, uniformization) ===\n"
            << "(Example 1 operating point; target: 99% of stationary E[N])\n\n";
  util::Table t({"i", "m_i", "rho_i", "t_99 (s)", "t_99 / xbar"});
  double worst = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    const double xbar = s.mean_service_time(cluster.rbar());
    const double rho = merged[i] * xbar / s.size();
    const double t99 = relaxation_time(s.size(), xbar, merged[i]);
    worst = std::max(worst, t99);
    t.add_row({std::to_string(i + 1), std::to_string(s.size()), util::fixed(rho, 4),
               util::fixed(t99, 2), util::fixed(t99 / xbar, 1)});
  }
  std::cout << t.render() << "\nslowest server relaxes in ~" << util::fixed(worst, 1)
            << " s of simulated time; the validation benches discard a 4000 s warmup --\n"
               "two orders of magnitude of safety margin.\n";
  return 0;
}
