// google-benchmark microbenchmarks of the solvers: the paper's double
// bisection vs the closed form (single-blade clusters) vs projected
// gradient, and scaling in cluster size and tolerance.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/closed_form.hpp"
#include "core/gradient_optimizer.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;

model::Cluster synthetic_cluster(std::size_t n, unsigned blades_each) {
  std::vector<unsigned> sizes(n, blades_each);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    speeds[i] = 0.6 + 0.13 * static_cast<double>(i % 11);
  }
  return model::make_cluster(sizes, speeds, 1.0, 0.3);
}

void BM_OptimizePaperExample(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  const auto d = state.range(0) == 0 ? queue::Discipline::Fcfs
                                     : queue::Discipline::SpecialPriority;
  const opt::LoadDistributionOptimizer solver(cluster, d);
  const double lambda = model::paper_example_lambda();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(lambda));
  }
}
BENCHMARK(BM_OptimizePaperExample)->Arg(0)->Arg(1);

void BM_OptimizeScalesWithServers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cluster = synthetic_cluster(n, 4);
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const double lambda = 0.6 * cluster.max_generic_rate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(lambda));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OptimizeScalesWithServers)->RangeMultiplier(4)->Range(4, 256)->Complexity();

void BM_OptimizeScalesWithBlades(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const auto cluster = synthetic_cluster(8, m);
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const double lambda = 0.6 * cluster.max_generic_rate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(lambda));
  }
}
BENCHMARK(BM_OptimizeScalesWithBlades)->RangeMultiplier(4)->Range(1, 1024);

void BM_OptimizeToleranceCost(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  opt::OptimizerOptions opts;
  opts.rate_tolerance = std::pow(10.0, -state.range(0));
  opts.phi_tolerance = opts.rate_tolerance;
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(23.52));
  }
}
BENCHMARK(BM_OptimizeToleranceCost)->Arg(4)->Arg(8)->Arg(12);

void BM_ClosedFormSingleBlade(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cluster = synthetic_cluster(n, 1);
  const double lambda = 0.6 * cluster.max_generic_rate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::closed_form_distribution(cluster, queue::Discipline::Fcfs, lambda));
  }
}
BENCHMARK(BM_ClosedFormSingleBlade)->RangeMultiplier(4)->Range(4, 256);

void BM_BisectionOnSingleBladeCluster(benchmark::State& state) {
  // Same instances as BM_ClosedFormSingleBlade: quantifies what Theorem 1
  // buys over the general algorithm.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cluster = synthetic_cluster(n, 1);
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const double lambda = 0.6 * cluster.max_generic_rate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(lambda));
  }
}
BENCHMARK(BM_BisectionOnSingleBladeCluster)->RangeMultiplier(4)->Range(4, 256);

void BM_ProjectedGradient(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::gradient_optimize(cluster, queue::Discipline::Fcfs, 23.52));
  }
}
BENCHMARK(BM_ProjectedGradient);

}  // namespace
