// Shared printing for the figure-regeneration benches: each bench emits
// the paper figure's data series as long-format CSV (plottable directly)
// plus an ASCII rendering for eyeballing the shape.
#pragma once

#include <chrono>
#include <iostream>

#include "cloud/experiments.hpp"
#include "cloud/series.hpp"

namespace bench_common {

inline void print_figure(int number, std::size_t points = 25) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto fig = blade::cloud::figure(number, points);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::cout << "=== " << fig.id << ": " << fig.title << " ===\n";
  std::cout << blade::cloud::ascii_plot(fig) << '\n';
  std::cout << blade::cloud::to_csv(fig);
  std::cout << "(" << fig.series.size() << " series, computed in " << ms << " ms)\n\n";
}

}  // namespace bench_common
