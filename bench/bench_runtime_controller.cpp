// Runtime control-plane microbenchmarks: alias-table sampling (the
// per-task dispatch cost), warm re-solves through the controller's
// persistent workspace, the failover path (topology change, cold
// bracket), and the end-to-end reference failure trace. Runs through
// bench_obs_main, so an instrumented build exports
// BENCH_bench_runtime_controller.json; CI ratios
// numerics.erlang_c_evals per runtime.resolves and runtime.shed_tasks
// per runtime.generic_arrivals against bench/baselines/ to catch
// control-loop regressions without trusting wall-clock.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "runtime/controller.hpp"
#include "runtime/replay.hpp"
#include "sim/rng.hpp"
#include "util/alias_table.hpp"

namespace {

using namespace blade;

// O(1) routing draw from the published table: this is the cost every
// dispatched task pays, so it is the number that must not grow with n.
void BM_AliasSample(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  const auto sol =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);
  const util::AliasTable table(sol.rates);
  sim::RngStream rng(7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng.uniform(), rng.uniform()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AliasSample);

// The steady-state control path: arrivals swing the EWMA between two
// rates and every block ends in a forced warm re-solve + publication.
void BM_ControllerResolve(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.initial_lambda = model::paper_example_lambda();
  runtime::Controller ctrl(cluster, cfg);
  double t = 0.0;
  bool high = false;
  for (auto _ : state) {
    const double lambda = high ? 30.0 : 20.0;
    high = !high;
    for (int k = 0; k < 32; ++k) ctrl.on_generic_arrival(t += 1.0 / lambda, 0.5);
    ctrl.resolve_now(t);
    benchmark::DoNotOptimize(ctrl.shed_probability());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ControllerResolve);

// Failover round-trip: a full-server loss and its recovery, each forcing
// a cold-bracket solve over a mutated topology plus two publications.
void BM_ControllerFailover(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.initial_lambda = model::paper_example_lambda();
  runtime::Controller ctrl(cluster, cfg);
  double t = 0.0;
  std::size_t victim = 0;
  for (auto _ : state) {
    ctrl.on_failure(t += 1.0, victim);
    ctrl.on_recovery(t += 1.0, victim);
    victim = (victim + 1) % cluster.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_ControllerFailover);

// Containment path: every iteration arms an injected solver fault, so
// resolve_now lands in contain() and serves the last-known-good split.
// The instrumented export carries runtime.fallback_publish_seconds /
// runtime.fallback_publications, which CI ratios against the baseline --
// the degraded path must stay about as cheap as a publication, since it
// runs exactly when the cluster is already in trouble.
void BM_ControllerFallbackPublish(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.initial_lambda = model::paper_example_lambda();
  cfg.lkg_max_age = 1e9;  // keep the LKG servable for the whole run
  runtime::Controller ctrl(cluster, cfg);
  double t = 0.0;
  for (auto _ : state) {
    ctrl.arm_solver_fault();
    ctrl.resolve_now(t += 1.0);
    benchmark::DoNotOptimize(ctrl.mode());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ControllerFallbackPublish);

// End to end: the acceptance scenario (diurnal load, biggest server out
// for the middle third) through the simulator and the controller.
// items/s is simulated generic arrivals per second of wall time.
void BM_ReferenceTraceReplay(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  const auto trace = runtime::reference_failure_trace(cluster, 600.0);
  runtime::ControllerConfig cfg;
  cfg.half_life = 6.0;
  std::int64_t arrivals = 0;
  for (auto _ : state) {
    const auto res = runtime::replay(cluster, cfg, trace);
    arrivals += static_cast<std::int64_t>(res.stats.generic_arrivals);
    benchmark::DoNotOptimize(res.shed_fraction);
  }
  state.SetItemsProcessed(arrivals);
}
BENCHMARK(BM_ReferenceTraceReplay);

}  // namespace
