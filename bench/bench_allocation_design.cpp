// Design-space study built on the allocation optimizer: for the
// fig12-style setting (56 blades at speed 1.3) what does the *best*
// integer packaging look like, and how much does it beat the paper's five
// hand-picked groups? Also exercises mixed-speed chassis.
#include <iostream>

#include "core/allocation.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;

  std::cout << "=== Blade allocation design (7 chassis, speed 1.3, 56 blades, y = 0.3) ===\n\n";
  {
    opt::AllocationProblem p;
    p.speeds = std::vector<double>(7, 1.3);
    p.blade_budget = 56;
    p.preload_fraction = 0.3;
    p.lambda_total = 0.5 * (1.0 - 0.3) * 56 * 1.3;  // 50% of generic capacity

    const auto res = opt::allocate_blades(p);
    std::vector<double> sizes_d(res.sizes.begin(), res.sizes.end());
    std::cout << "optimized packaging: " << util::to_string(sizes_d, 0)
              << "  T'* = " << util::fixed(res.response_time) << "  (" << res.evaluations
              << " inner solves" << (res.swap_improved ? ", swap improved" : "") << ")\n\n";

    util::Table t({"paper group", "sizes", "T'*", "vs designed"});
    t.set_align(0, util::Align::Left);
    t.set_align(1, util::Align::Left);
    for (const auto& g : model::size_heterogeneity_groups()) {
      const double T = opt::LoadDistributionOptimizer(g.cluster, queue::Discipline::Fcfs)
                           .optimize(p.lambda_total)
                           .response_time;
      std::vector<std::string> ms;
      for (const auto& s : g.cluster.servers()) ms.push_back(std::to_string(s.size()));
      t.add_row({g.name, util::join(ms, ","), util::fixed(T),
                 "+" + util::fixed(100.0 * (T / res.response_time - 1.0), 2) + "%"});
    }
    std::cout << t.render() << '\n';
  }

  std::cout << "=== Mixed-speed chassis (2.0 / 1.3 / 0.8), 24 blades, lambda' = 10 ===\n\n";
  {
    opt::AllocationProblem p;
    p.speeds = {2.0, 1.3, 0.8};
    p.blade_budget = 24;
    p.preload_fraction = 0.2;
    p.lambda_total = 10.0;
    const auto res = opt::allocate_blades(p);
    std::vector<double> sizes_d(res.sizes.begin(), res.sizes.end());
    std::cout << "optimized packaging: " << util::to_string(sizes_d, 0)
              << "  T'* = " << util::fixed(res.response_time) << '\n'
              << "reading: blades concentrate on the fastest chassis until its\n"
                 "marginal value drops below the next chassis's.\n";
  }
  return 0;
}
