// Ablation: the paper's M/M/m queues have infinite waiting rooms. With a
// finite buffer (M/M/m/K) how close is the infinite-queue model, and how
// much admission loss appears at the paper's operating points?
#include <iostream>

#include "model/paper_configs.hpp"
#include "queueing/mmm.hpp"
#include "queueing/mmmk.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();

  std::cout << "=== Finite waiting room vs the paper's infinite-queue model ===\n"
            << "(each server at the merged Example-1 load; K = capacity in system)\n\n";

  // Per-server merged rates at the Example 1 optimum (Table 1).
  const double merged[7] = {0.6652046 + 0.96, 1.8802882 + 1.8, 2.9973639 + 2.52,
                            3.9121948 + 3.12, 4.5646028 + 3.6, 4.8769307 + 3.96,
                            4.6234149 + 4.2};

  util::Table t({"i", "m_i", "T (inf queue)", "T (K=m+4)", "loss% (K=m+4)", "T (K=m+16)",
                 "loss% (K=m+16)"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    const double xbar = s.mean_service_time(cluster.rbar());
    const queue::MMmQueue inf(s.size(), xbar);
    const queue::MMmKQueue small(s.size(), s.size() + 4, xbar);
    const queue::MMmKQueue large(s.size(), s.size() + 16, xbar);
    t.add_row({std::to_string(i + 1), std::to_string(s.size()),
               util::fixed(inf.mean_response_time(merged[i]), 5),
               util::fixed(small.mean_response_time(merged[i]), 5),
               util::fixed(100.0 * small.blocking_probability(merged[i]), 3),
               util::fixed(large.mean_response_time(merged[i]), 5),
               util::fixed(100.0 * large.blocking_probability(merged[i]), 4)});
  }
  std::cout << t.render()
            << "\nreading: at the paper's ~65% utilization a modest buffer (K = m+16)\n"
               "already makes the infinite-queue model essentially exact.\n";
  return 0;
}
