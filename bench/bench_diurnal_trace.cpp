// Workload-trace study: a diurnal load swing on the Example cluster.
// Compares re-optimizing every epoch against one fixed split scaled with
// the load, for several design points.
#include <iostream>

#include "cloud/trace.hpp"
#include "model/paper_configs.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();
  const auto profile = cloud::diurnal_profile(8.0, 38.0, 24);

  std::cout << "=== Diurnal trace on the Example cluster (24 epochs, lambda' 8..38) ===\n\n";
  for (auto d : {queue::Discipline::Fcfs, queue::Discipline::SpecialPriority}) {
    const auto adaptive = cloud::run_adaptive(cluster, d, profile);
    util::Table t({"policy", "mean T'", "overloaded epochs", "vs adaptive"});
    t.set_align(0, util::Align::Left);
    t.add_row({"adaptive (re-solve hourly)", util::fixed(adaptive.mean_response_time, 4), "0",
               "--"});
    for (double design : {12.0, 23.0, 34.0}) {
      const auto fixed = cloud::run_static(cluster, d, profile, design);
      t.add_row({"static split @ " + util::fixed(design, 0),
                 util::fixed(fixed.mean_response_time, 4),
                 std::to_string(fixed.overloaded_epochs),
                 "+" + util::fixed(
                           100.0 * (fixed.mean_response_time / adaptive.mean_response_time - 1.0),
                           2) +
                     "%"});
    }
    std::cout << "discipline = " << queue::to_string(d) << '\n' << t.render() << '\n';
  }
  std::cout << "reading: on this cluster proportional scaling of one good split is\n"
               "nearly adaptive-quality -- the optimal routing probabilities barely\n"
               "move with load -- but a split designed at light load can overload\n"
               "small servers at the peak.\n";
  return 0;
}
