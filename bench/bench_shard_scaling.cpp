// Fleet-scale benchmarks for the sharded hierarchical solver: the
// headline claim is that a cold sharded solve of a 100,000-blade SKU
// fleet runs well under the flat paper solver's time on 1,000 distinct
// servers. Runs through bench_obs_main, so each run writes
// BENCH_bench_shard_scaling.json; CI ratios the two dedicated wall
// timers below (solver.shard.bench.n100k_seconds over
// solver.shard.bench.flat1000_seconds) and the per-solve inner
// evaluation count against the checked-in bench/baselines/ record.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/optimizer.hpp"
#include "core/sharded.hpp"
#include "model/cluster.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace blade;

/// 1,000 pairwise-distinct servers: the flat solver's reference point.
/// Every speed differs, so there is nothing to coalesce — this is the
/// honest per-server cost the sharded path is measured against.
model::Cluster distinct_cluster(std::size_t n) {
  std::vector<unsigned> sizes(n);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = 1 + static_cast<unsigned>(i % 5);
    speeds[i] = 0.6 + 1.8 * static_cast<double>(i) / static_cast<double>(n);
  }
  return model::make_cluster(sizes, speeds, 1.0, 0.2);
}

/// A realistic fleet: n blades drawn from a ~48-SKU hardware catalog in
/// contiguous blocks, the shape class coalescing is built for.
model::Cluster catalog_fleet(std::size_t n, std::size_t skus) {
  std::vector<unsigned> sizes(n);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = i * skus / n;
    sizes[i] = 1 + static_cast<unsigned>(s % 6);
    speeds[i] = 0.5 + 0.05 * static_cast<double>(s);
  }
  return model::make_cluster(sizes, speeds, 1.0, 0.2);
}

opt::ShardOptions shard_opts(std::size_t cells, std::size_t top_k = 0) {
  opt::ShardOptions shard;
  shard.cells = cells;
  shard.prune.top_k = top_k;
  return shard;
}

// Flat paper solver, cold, n = 1,000 distinct servers: the denominator
// of the CI wall-time gate.
void BM_FlatCold1000(benchmark::State& state) {
  const auto cluster = distinct_cluster(1000);
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const double lambda = 0.6 * cluster.max_generic_rate();
  for (auto _ : state) {
    BLADE_OBS_TIMER("solver.shard.bench.flat1000_seconds");
    benchmark::DoNotOptimize(solver.optimize(lambda));
  }
}
BENCHMARK(BM_FlatCold1000)->Unit(benchmark::kMillisecond);

// Sharded solver, cold (fresh workspace per solve), n = 100,000 blades
// in 64 cells: the numerator of the CI wall-time gate.
void BM_ShardedCold100k(benchmark::State& state) {
  const auto cluster = catalog_fleet(100000, 48);
  const opt::ShardedOptimizer solver(cluster, queue::Discipline::Fcfs, {}, shard_opts(64));
  const double lambda = 0.6 * cluster.max_generic_rate();
  for (auto _ : state) {
    opt::ShardedWorkspace ws;  // fresh per solve: no warm-start credit
    BLADE_OBS_TIMER("solver.shard.bench.n100k_seconds");
    benchmark::DoNotOptimize(solver.optimize(lambda, par::global_pool(), ws));
  }
}
BENCHMARK(BM_ShardedCold100k)->Unit(benchmark::kMillisecond);

// Warm re-solves: one workspace threaded through small multiplier
// drifts, the controller's steady-state pattern at fleet scale.
void BM_ShardedWarm100k(benchmark::State& state) {
  const auto cluster = catalog_fleet(100000, 48);
  const opt::ShardedOptimizer solver(cluster, queue::Discipline::Fcfs, {}, shard_opts(64));
  const double base = 0.6 * cluster.max_generic_rate();
  opt::ShardedWorkspace ws;
  benchmark::DoNotOptimize(solver.optimize(base, par::global_pool(), ws));
  int tick = 0;
  for (auto _ : state) {
    const double lambda = base * (1.0 + 0.01 * ((tick++ % 3) - 1));
    BLADE_OBS_TIMER("solver.shard.bench.n100k_warm_seconds");
    benchmark::DoNotOptimize(solver.optimize(lambda, par::global_pool(), ws));
  }
}
BENCHMARK(BM_ShardedWarm100k)->Unit(benchmark::kMillisecond);

// Pruned variant: keep the ~1200 most attractive servers of each
// ~1560-server cell (enough capacity headroom for the solve to stay
// feasible), carrying the duality certificate on every solve.
void BM_ShardedPruned100k(benchmark::State& state) {
  const auto cluster = catalog_fleet(100000, 48);
  const opt::ShardedOptimizer solver(cluster, queue::Discipline::Fcfs, {}, shard_opts(64, 1200));
  const double lambda = 0.5 * cluster.max_generic_rate();
  for (auto _ : state) {
    opt::ShardedWorkspace ws;
    BLADE_OBS_TIMER("solver.shard.bench.n100k_pruned_seconds");
    benchmark::DoNotOptimize(solver.optimize(lambda, par::global_pool(), ws));
  }
}
BENCHMARK(BM_ShardedPruned100k)->Unit(benchmark::kMillisecond);

}  // namespace
