// Regenerates Table 2 (Example 2): same system as Table 1 but special
// tasks have non-preemptive priority. Published: T' = 0.9209392 s.
#include <iostream>

#include "cloud/experiments.hpp"
#include "cloud/report.hpp"

int main() {
  const auto table = blade::cloud::example_table(blade::queue::Discipline::SpecialPriority);
  std::cout << blade::cloud::render_example_table(
      table, "Table 2: numerical data in Example 2 (special tasks with priority)");
  std::cout << "paper reports T' = 0.9209392 s\n";
  return 0;
}
