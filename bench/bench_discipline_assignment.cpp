// Per-server discipline assignment: between the paper's two uniform
// regimes lies a spectrum -- prioritize special tasks only where the
// special-task SLA requires it. Sweeps the SLA and reports the generic
// cost of each level of protection.
#include <iostream>

#include "core/discipline_assignment.hpp"
#include "model/paper_configs.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();

  const auto probe = opt::assign_disciplines(cluster, lambda, 100.0);
  const double lo = probe.all_priority.special_response;  // tightest achievable
  const double hi = probe.all_fcfs.special_response;      // free-of-charge level

  std::cout << "=== Per-server discipline assignment (Example cluster, lambda' = " << lambda
            << ") ===\n"
            << "special response spans [" << util::fixed(lo, 4) << " (all-priority), "
            << util::fixed(hi, 4) << " (all-fcfs)]\n\n";

  util::Table t({"special SLA", "priority servers", "generic T'", "special T''",
                 "generic penalty"});
  for (double f : {0.999, 0.75, 0.5, 0.25, 0.02}) {
    const double sla = lo + f * (hi - lo);
    const auto res = opt::assign_disciplines(cluster, lambda, sla);
    if (!res.any_feasible) continue;
    int prio = 0;
    std::string which;
    for (std::size_t i = 0; i < res.best.disciplines.size(); ++i) {
      if (res.best.disciplines[i] == queue::Discipline::SpecialPriority) {
        ++prio;
        which += std::to_string(i + 1);
      }
    }
    t.add_row({util::fixed(sla, 4), std::to_string(prio) + (which.empty() ? "" : " (" + which + ")"),
               util::fixed(res.best.generic_response),
               util::fixed(res.best.special_response),
               "+" + util::fixed(100.0 * (res.best.generic_response /
                                              res.all_fcfs.generic_response -
                                          1.0),
                                 3) +
                   "%"});
  }
  std::cout << t.render()
            << "\nreading: each SLA notch flips a few servers to priority; the\n"
               "generic penalty ramps smoothly from 0% (all-fcfs, Table 1) to the\n"
               "paper's all-priority regime (Table 2, +2.7%). The paper's two\n"
               "uniform disciplines are the endpoints of this spectrum.\n";
  return 0;
}
