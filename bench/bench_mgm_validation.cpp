// Validation of the Allen-Cunneen M/G/m correction used by the SCV
// extension: simulate general service shapes and compare against the
// approximation (exact at m = 1 by Pollaczek-Khinchine, approximate
// beyond). Reports the approximation error the scv ablation inherits.
#include <iostream>

#include "model/cluster.hpp"
#include "queueing/mgm.hpp"
#include "sim/service.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;

  std::cout << "=== Allen-Cunneen vs simulation (rho = 0.75, three seeds per cell) ===\n\n";
  util::Table t({"m", "scv", "shape", "approx T", "simulated T", "error"});
  for (unsigned m : {1u, 2u, 4u, 8u}) {
    for (double scv : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      const double lambda = 0.75 * m;
      const auto dist = sim::ServiceDistribution::from_scv(1.0, scv);
      const queue::MGmApprox ac(m, 1.0, dist.scv());

      const model::Cluster c({model::BladeServer(m, 1.0, 0.0)}, 1.0);
      // Average three seeds: single-run M/G/1 means are heavily
      // autocorrelated at this utilization.
      double sim_mean = 0.0;
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        sim::SimConfig cfg;
        cfg.horizon = 50000.0;
        cfg.warmup = 5000.0;
        cfg.seed = seed;
        cfg.service_scv = scv;
        sim_mean +=
            sim::simulate_split(c, {lambda}, sim::SchedulingMode::Fcfs, cfg).generic_mean_response;
      }
      sim_mean /= 3.0;

      const char* shape = "";
      switch (dist.shape()) {
        case sim::ServiceShape::Deterministic: shape = "det"; break;
        case sim::ServiceShape::ErlangK: shape = "erlang"; break;
        case sim::ServiceShape::Exponential: shape = "exp"; break;
        case sim::ServiceShape::HyperExp2: shape = "h2"; break;
      }
      const double approx = ac.mean_response_time(lambda);
      t.add_row({std::to_string(m), util::fixed(dist.scv(), 2), shape, util::fixed(approx, 4),
                 util::fixed(sim_mean, 4),
                 util::fixed(100.0 * (sim_mean / approx - 1.0), 2) + "%"});
    }
  }
  std::cout << t.render()
            << "\nreading: exact at m = 1 and scv = 1 (sampling noise only); a few\n"
               "percent off for multi-server queues with extreme variability --\n"
               "adequate for the scv sensitivity ablation it powers.\n";
  return 0;
}
