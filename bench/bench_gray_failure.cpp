// Gray-failure detection ablation: the same degraded timeline replayed
// through the adaptive controller with health scoring OFF (the seed
// behavior: the optimizer keeps trusting nominal speeds, so a silently
// slowed server keeps receiving its optimal-for-healthy split and T'
// inflates) and ON (the quarantine state machine fences the blade, a
// cheap redistribution moves its traffic, and probation re-solves with
// the degraded effective speed).
//
// Three gray regimes stress the three fault shapes the simulator can
// inject (see runtime/replay.hpp's trace grammar):
//
//   slowdown  the fleet's fastest server silently drops to 25% effective
//             speed for the middle half of the horizon (`slow` events)
//   stall     the same server freezes for 35-unit windows every 90 units
//             (`stall`/`unstall` pairs) -- intermittent, self-clearing
//   flap      rapid alternation: 45 units at 15% speed, 45 units clean,
//             all through the middle half -- the dwell-time filter's
//             worst case
//
// Every regime replays the identical trace, seed, and arrival streams
// for both rows, so the T' delta is attributable to detection alone.
// The table prints T'_off / T'_on per regime; CI gates the sustained-
// slowdown ratio against the checked-in baseline with bench_check
// --min-ratio, so a regression that stops detection from paying for
// itself fails the build. Also emits GRAY_FAILURE_table.csv and the
// standard BENCH_bench_gray_failure.json obs export.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "model/cluster.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/replay.hpp"
#include "util/table.hpp"

namespace {

using blade::model::Cluster;
using blade::runtime::ReplayEvent;
using blade::runtime::ReplayTrace;

constexpr double kHorizon = 8000.0;
constexpr double kWarmup = 600.0;

/// One fast chassis next to three slower ones; the gray fault always
/// lands on server 0, the server carrying the largest optimal split --
/// the regime where trusting nominal speeds hurts the most.
Cluster fleet() {
  return Cluster({{4, 2.0, 0.8}, {4, 1.0, 0.5}, {4, 1.0, 0.5}, {4, 0.8, 0.4}}, 1.0);
}

ReplayTrace base_trace(const Cluster& cluster) {
  ReplayTrace trace;
  trace.horizon = kHorizon;
  trace.seed = 11;
  trace.events.push_back({.time = 0.0,
                          .kind = ReplayEvent::Kind::Rate,
                          .rate = 0.65 * cluster.max_generic_rate()});
  return trace;
}

ReplayTrace slowdown_trace(const Cluster& cluster) {
  ReplayTrace trace = base_trace(cluster);
  trace.events.push_back(
      {.time = kHorizon / 4.0, .kind = ReplayEvent::Kind::Slow, .server = 0, .factor = 0.25});
  trace.events.push_back(
      {.time = 3.0 * kHorizon / 4.0, .kind = ReplayEvent::Kind::Slow, .server = 0, .factor = 1.0});
  return trace;
}

ReplayTrace stall_trace(const Cluster& cluster) {
  ReplayTrace trace = base_trace(cluster);
  for (double t = kHorizon / 4.0; t < 3.0 * kHorizon / 4.0; t += 90.0) {
    trace.events.push_back({.time = t, .kind = ReplayEvent::Kind::Stall, .server = 0});
    trace.events.push_back({.time = t + 35.0, .kind = ReplayEvent::Kind::Unstall, .server = 0});
  }
  return trace;
}

ReplayTrace flap_trace(const Cluster& cluster) {
  ReplayTrace trace = base_trace(cluster);
  for (double t = kHorizon / 4.0; t < 3.0 * kHorizon / 4.0; t += 90.0) {
    trace.events.push_back(
        {.time = t, .kind = ReplayEvent::Kind::Slow, .server = 0, .factor = 0.15});
    trace.events.push_back(
        {.time = t + 45.0, .kind = ReplayEvent::Kind::Slow, .server = 0, .factor = 1.0});
  }
  return trace;
}

struct Row {
  double t_off = 0.0;
  double t_on = 0.0;
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t routes_to_quarantined = 0;
};

Row run_regime(const Cluster& cluster, const ReplayTrace& trace) {
  Row row;
  for (const bool detect : {false, true}) {
    blade::runtime::ControllerConfig cfg;
    cfg.half_life = kHorizon / 100.0;
    cfg.health.enabled = detect;
    blade::runtime::ReplayOptions ropts;
    ropts.warmup = kWarmup;
    const auto res = blade::runtime::replay(cluster, cfg, trace, ropts);
    if (detect) {
      row.t_on = res.sim.generic_mean_response;
      row.quarantines = res.stats.quarantines;
      row.recoveries = res.stats.health_recoveries;
      row.routes_to_quarantined = res.routes_to_quarantined;
    } else {
      row.t_off = res.sim.generic_mean_response;
    }
  }
  return row;
}

}  // namespace

int main() {
  const Cluster cluster = fleet();
  struct Regime {
    std::string name;
    ReplayTrace trace;
  };
  const std::vector<Regime> regimes = {
      {"slowdown", slowdown_trace(cluster)},
      {"stall", stall_trace(cluster)},
      {"flap", flap_trace(cluster)},
  };

  std::ostringstream csv;
  csv << "regime,T_off,T_on,ratio,quarantines,recoveries,routes_to_quarantined\n";
  blade::util::Table t(
      {"regime", "T' off", "T' on", "off/on", "quarantines", "recoveries", "q-routes"});

  for (const auto& regime : regimes) {
    const Row row = run_regime(cluster, regime.trace);
    const double ratio = row.t_on > 0.0 ? row.t_off / row.t_on : 0.0;
    t.add_row({regime.name, blade::util::fixed(row.t_off, 4), blade::util::fixed(row.t_on, 4),
               blade::util::fixed(ratio, 3), std::to_string(row.quarantines),
               std::to_string(row.recoveries), std::to_string(row.routes_to_quarantined)});
    csv << regime.name << ',' << row.t_off << ',' << row.t_on << ',' << ratio << ','
        << row.quarantines << ',' << row.recoveries << ',' << row.routes_to_quarantined << '\n';
    // CI gates the slowdown ratio via these gauges (bench_check
    // --min-ratio t_off:value / t_on:value against the baseline). The
    // BLADE_OBS_GAUGE_SET macro interns its name once per call site, so
    // a loop-varying name needs the registry directly.
    auto& reg = blade::obs::registry();
    reg.set(reg.intern("bench.gray." + regime.name + ".t_off", blade::obs::Kind::Gauge),
            row.t_off);
    reg.set(reg.intern("bench.gray." + regime.name + ".t_on", blade::obs::Kind::Gauge),
            row.t_on);
  }

  std::cout << "=== gray-failure detection ablation (identical trace per row pair) ===\n"
            << t.render()
            << "off/on > 1 means detection strictly improved mean generic T'\n";

  {
    std::FILE* f = std::fopen("GRAY_FAILURE_table.csv", "w");
    if (f != nullptr) {
      const std::string body = csv.str();
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::cout << "wrote GRAY_FAILURE_table.csv\n";
    }
  }
  const std::string file = blade::obs::export_bench_json("bench_gray_failure");
  std::fprintf(stderr, "metrics: wrote %s\n", file.c_str());
  return 0;
}
