// Exact-chain validation of Theorem 2: for every server in the Example 2
// system, solve the two-class non-preemptive priority CTMC exactly
// (truncated) and compare the per-class response times against the
// paper's closed form. The paper derives Theorem 2 by a waiting-time
// argument but never verifies it; this is that verification.
#include <iostream>

#include "model/paper_configs.hpp"
#include "queueing/blade_queue.hpp"
#include "queueing/priority_ctmc.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();
  // Example 2's optimal generic rates (Table 2).
  const double rates[7] = {0.5908113, 1.7714948, 2.8813939, 3.8136848,
                           4.5164617, 4.9419622, 5.0041912};

  std::cout << "=== Theorem 2 vs the exact two-class priority CTMC ===\n"
            << "(Example 2 operating point; truncation bound 200 per class)\n\n";
  util::Table t({"i", "m_i", "T' theorem2", "T' exact CTMC", "rel err", "T'' theorem",
                 "T'' exact", "trunc mass"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    const double xbar = s.mean_service_time(cluster.rbar());
    const auto q = s.queue(cluster.rbar(), queue::Discipline::SpecialPriority);
    const double theory_generic = q.generic_response_time(rates[i]);
    const double theory_special = q.special_response_time(rates[i]);
    const auto exact = queue::solve_priority_mmm(s.size(), xbar, s.special_rate(), rates[i], 200);
    const double rel = std::abs(exact.generic_response - theory_generic) / theory_generic;
    t.add_row({std::to_string(i + 1), std::to_string(s.size()), util::fixed(theory_generic),
               util::fixed(exact.generic_response), util::fixed(rel, 7) + "",
               util::fixed(theory_special), util::fixed(exact.special_response),
               util::fixed(exact.truncation_mass, 9)});
  }
  std::cout << t.render()
            << "\nreading: the closed form of Theorem 2 agrees with the exact chain to\n"
               "within the truncation error on every server.\n";
  return 0;
}
