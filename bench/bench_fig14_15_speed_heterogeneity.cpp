// Regenerates Figs. 14 and 15: server speed heterogeneity at fixed total
// speed (m_i = 8, total 72.8). Expectation: curves converge at high load,
// larger heterogeneity (slightly) faster.
#include "fig_common.hpp"

int main() {
  bench_common::print_figure(14);
  bench_common::print_figure(15);
  return 0;
}
