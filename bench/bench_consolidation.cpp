// Consolidation study: blade-energy savings over a diurnal day on the
// Example cluster, across SLO strictness levels -- quantifies the
// server-consolidation story the paper's introduction motivates.
#include <iostream>

#include "cloud/consolidation.hpp"
#include "cloud/trace.hpp"
#include "model/paper_configs.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();
  const auto profile = cloud::diurnal_profile(6.0, 34.0, 24);

  std::cout << "=== Blade consolidation over a diurnal day (56 blades, fcfs) ===\n"
            << "(24 epochs, lambda' 6..34; greedy blade deactivation per epoch)\n\n";

  util::Table t({"SLO (T' <=)", "min active", "max active", "energy saved"});
  // The tightest level is just above the full cluster's T'* at the peak
  // epoch (~1.07 s at lambda' = 34); anything below is infeasible.
  for (double slo : {1.1, 1.25, 1.5, 2.0}) {
    const auto plan = cloud::plan_consolidation(cluster, queue::Discipline::Fcfs, profile, slo);
    unsigned lo = cluster.total_blades();
    unsigned hi = 0;
    for (const auto& e : plan.epochs) {
      lo = std::min(lo, e.total_active);
      hi = std::max(hi, e.total_active);
    }
    t.add_row({util::fixed(slo, 2), std::to_string(lo), std::to_string(hi),
               util::fixed(100.0 * plan.energy_savings(), 1) + "%"});
  }
  std::cout << t.render()
            << "\nreading: off-peak epochs run on a fraction of the blades; the\n"
               "looser the SLO, the deeper the consolidation -- the quantified\n"
               "version of the paper's server-consolidation motivation.\n";
  return 0;
}
