// google-benchmark microbenchmarks of the numerical and simulation
// kernels underneath the optimizer: Erlang C (+ derivative), blade-queue
// marginals, and raw DES event throughput.
#include <benchmark/benchmark.h>

#include "model/cluster.hpp"
#include "numerics/erlang.hpp"
#include "obs/obs.hpp"
#include "queueing/blade_queue.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace blade;

void BM_ErlangC(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  double rho = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::erlang_c(m, rho));
    rho = 0.3 + 0.6 * (rho - 0.3 < 0.3 ? rho - 0.29 : 0.0);  // wiggle input
  }
}
BENCHMARK(BM_ErlangC)->Arg(2)->Arg(14)->Arg(128)->Arg(1024);

void BM_ErlangCDerivative(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::erlang_c_drho(m, 0.7));
  }
}
BENCHMARK(BM_ErlangCDerivative)->Arg(2)->Arg(14)->Arg(128)->Arg(1024);

void BM_LagrangeMarginal(benchmark::State& state) {
  const queue::BladeQueue q(14, 1.0, 4.2, queue::Discipline::SpecialPriority);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.lagrange_marginal(4.6));
  }
}
BENCHMARK(BM_LagrangeMarginal);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Events per second for a loaded single server; horizon scaled to keep
  // each iteration ~10^5 events.
  const model::Cluster c({model::BladeServer(4, 1.0, 1.0)}, 1.0);
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.horizon = 12000.0;
    cfg.warmup = 0.0;
    cfg.seed = seed++;
    const auto res = sim::simulate_split(c, {2.0}, sim::SchedulingMode::Fcfs, cfg);
    events += res.events;
    benchmark::DoNotOptimize(res.generic_mean_response);
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_SimulatorPriorityOverhead(benchmark::State& state) {
  const model::Cluster c({model::BladeServer(4, 1.0, 1.0)}, 1.0);
  const auto mode = state.range(0) == 0 ? sim::SchedulingMode::Fcfs
                                        : sim::SchedulingMode::NonPreemptivePriority;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.horizon = 6000.0;
    cfg.warmup = 0.0;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(sim::simulate_split(c, {2.0}, mode, cfg));
  }
}
BENCHMARK(BM_SimulatorPriorityOverhead)->Arg(0)->Arg(1);

void BM_ObsMacroOverhead(benchmark::State& state) {
  // Guard for the zero-cost claim: with BLADE_OBS=OFF both macros expand
  // to ((void)0) and this measures an empty loop; with ON it prices one
  // counter bump plus one histogram sample (thread-local, lock-free).
  double x = 1.0;
  for (auto _ : state) {
    BLADE_OBS_COUNT("bench.obs_guard_count");
    BLADE_OBS_OBSERVE("bench.obs_guard_sample", x);
    benchmark::DoNotOptimize(x);
    x += 1.0;
  }
}
BENCHMARK(BM_ObsMacroOverhead);

}  // namespace
