// Scaling microbenchmarks for the solver hot path: warm-start chains
// over batch sizes 10..5000, optimize_many thread scaling, and a cold
// single-solve reference. Runs through bench_obs_main, so each run
// writes BENCH_bench_solver_scaling.json with the numerics/optimizer
// counters; CI's perf-smoke step ratios numerics.erlang_c_evals per
// optimizer.solves against the checked-in bench/baselines/ record to
// catch hot-path regressions without trusting wall-clock on shared
// runners.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/batch.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace blade;

std::vector<double> load_grid(const model::Cluster& cluster, std::size_t n) {
  const double sup = cluster.max_generic_rate();
  return par::linspace(0.15 * sup, 0.9 * sup, n);
}

// Cold reference: directly comparable to BM_OptimizePaperExample in
// bench_optimizer_perf across commits (same instance, same discipline).
void BM_SingleSolveCold(benchmark::State& state) {
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const double lambda = model::paper_example_lambda();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(lambda));
  }
}
BENCHMARK(BM_SingleSolveCold);

// Warm-start chain: one workspace threaded through an ascending batch of
// n solves on the paper's Table 1/2 cluster. items/s is solves per
// second; the n-scaling shows the warm start amortizing (per-solve cost
// drops as n grows).
void BM_BatchChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const auto grid = load_grid(cluster, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::optimize_chain(solver, grid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchChain)->Arg(10)->Arg(100)->Arg(1000)->Arg(5000);

// Batched solves sharded across a pool. Fixed batch, varying workers:
// items/s should scale near-linearly until the machine runs out of
// cores (the chunks are independent warm-start chains).
void BM_BatchThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const auto grid = load_grid(cluster, 512);
  par::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::optimize_many(solver, grid, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_BatchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
