// Flight-recorder microbenchmarks. The hot-path claim is that one
// Recorder::record() costs tens of nanoseconds — one clock read plus a
// handful of relaxed atomic stores into the calling thread's ring — so
// instrumenting the controller never perturbs what it measures.
//
// BM_RecordEvent also self-records a batch-calibrated per-event cost
// into the obs registry (obs.recorder.record_seconds), which CI gates
// against the checked-in baseline via bench_check, with the constant
// gauge obs.recorder.bench.norm as the ratio denominator.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/recorder.hpp"

namespace {

using blade::obs::EventType;

void BM_RecordEvent(benchmark::State& state) {
  auto& rec = blade::obs::recorder();
  if (state.thread_index() == 0) rec.reset();
  std::uint64_t n = 0;
  for (auto _ : state) {
    rec.record(EventType::Dispatch, 7, 1.25, static_cast<double>(n), 3.0);
    ++n;
  }
  benchmark::DoNotOptimize(n);

  if (state.thread_index() != 0) return;
  // Batch-calibrated per-event cost, recorded through the registry so
  // the obs CI preset can gate it (mean <= 2x baseline). 64 batches of
  // 4096 events amortize the two clock reads to ~0.01 ns/event.
  auto& reg = blade::obs::registry();
  const auto cost = reg.intern("obs.recorder.record_seconds", blade::obs::Kind::Timer);
  constexpr int kBatch = 4096;
  for (int rep = 0; rep < 64; ++rep) {
    const std::uint64_t t0 = blade::obs::monotonic_ns();
    for (int i = 0; i < kBatch; ++i) {
      rec.record(EventType::Dispatch, 7, 1.25, static_cast<double>(i), 3.0);
    }
    const std::uint64_t t1 = blade::obs::monotonic_ns();
    reg.observe(cost, static_cast<double>(t1 - t0) / 1e9 / kBatch);
  }
  reg.set(reg.intern("obs.recorder.bench.norm", blade::obs::Kind::Gauge), 1.0);
}
BENCHMARK(BM_RecordEvent)->Threads(1)->Threads(4);

void BM_EventMacroOverhead(benchmark::State& state) {
  // Guard for the zero-cost claim: with BLADE_OBS=OFF the macro expands
  // to an unevaluated sizeof and this measures an empty loop; with ON it
  // prices one record() into the thread's ring.
  double x = 1.0;
  for (auto _ : state) {
    BLADE_OBS_EVENT(Dispatch, 3, x, 0.0, 0.0);
    benchmark::DoNotOptimize(x);
    x += 1.0;
  }
}
BENCHMARK(BM_EventMacroOverhead);

void BM_DumpWhileRecording(benchmark::State& state) {
  // The audit-trail read path: snapshot every ring while one writer
  // keeps pushing. Prices what an auto-dump costs the triggering thread.
  auto& rec = blade::obs::recorder();
  if (state.thread_index() == 0) rec.reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      rec.record(EventType::Dispatch, 1, static_cast<double>(i++), 0.0, 0.0);
    }
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.dump("bench"));
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}
BENCHMARK(BM_DumpWhileRecording);

}  // namespace
