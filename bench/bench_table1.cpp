// Regenerates Table 1 (Example 1): optimal distribution of lambda' = 23.52
// over the paper's 7-server cluster, special tasks without priority.
// Published: T' = 0.8964703 s.
#include <iostream>

#include "cloud/experiments.hpp"
#include "cloud/report.hpp"

int main() {
  const auto table = blade::cloud::example_table(blade::queue::Discipline::Fcfs);
  std::cout << blade::cloud::render_example_table(
      table, "Table 1: numerical data in Example 1 (special tasks without priority)");
  std::cout << "paper reports T' = 0.8964703 s\n";
  return 0;
}
