// Shared main for the google-benchmark perf binaries. Identical to
// benchmark_main, plus a self-recording hook: after the run, the global
// obs registry (solver iteration counts, Erlang-C evaluation counts,
// pool and simulator readings when BLADE_OBS=ON) is exported as
// BENCH_<binary>.json next to the working directory, so every perf run
// leaves a machine-readable trajectory point.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/export.hpp"

int main(int argc, char** argv) {
  const std::string argv0 = argv[0];
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string file = blade::obs::export_bench_json(argv0);
  std::fprintf(stderr, "metrics: wrote %s\n", file.c_str());
  return 0;
}
