// Regenerates Figs. 12 and 13: server size heterogeneity at fixed total
// capacity (56 blades at speed 1.3). Expectation: the five curves nearly
// coincide, with larger heterogeneity very slightly faster.
#include "fig_common.hpp"

int main() {
  bench_common::print_figure(12);
  bench_common::print_figure(13);
  return 0;
}
