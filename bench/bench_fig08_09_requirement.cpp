// Regenerates Figs. 8 and 9: impact of the task execution requirement
// rbar in 0.8..1.2. Expectation: larger rbar raises T' and pulls the
// saturation point in.
#include "fig_common.hpp"

int main() {
  bench_common::print_figure(8);
  bench_common::print_figure(9);
  return 0;
}
