// Percentile study: tail response times of generic tasks at the
// mean-optimal split across load levels -- the QoS view the paper's
// mean-only objective hides. Analytic (exact M/M/m tail) per server plus
// the task-weighted mixture.
#include <iostream>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "queueing/waiting_distribution.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();

  std::cout << "=== Generic-task response percentiles at the optimal split (fcfs) ===\n\n";
  util::Table t({"load", "lambda'", "mean T'", "p50", "p90", "p99", "p99/mean"});
  for (double frac : {0.3, 0.5, 0.7, 0.85, 0.95}) {
    const double lambda = frac * cluster.max_generic_rate();
    const auto sol =
        opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);
    // Task-weighted mixture quantiles via bisection on the mixture CDF.
    auto mixture_ccdf = [&](double tt) {
      double acc = 0.0;
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        if (sol.rates[i] <= 1e-12) continue;
        const auto& s = cluster.server(i);
        const queue::WaitingTimeDistribution d(s.size(), s.mean_service_time(cluster.rbar()),
                                               sol.rates[i] + s.special_rate());
        acc += sol.rates[i] / lambda * d.response_ccdf(tt);
      }
      return acc;
    };
    auto quantile = [&](double p) {
      double lo = 0.0, hi = 1.0;
      while (mixture_ccdf(hi) > 1.0 - p) hi *= 2.0;
      for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (mixture_ccdf(mid) > 1.0 - p) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return 0.5 * (lo + hi);
    };
    const double p50 = quantile(0.5);
    const double p90 = quantile(0.9);
    const double p99 = quantile(0.99);
    t.add_row({util::fixed(frac, 2), util::fixed(lambda, 2), util::fixed(sol.response_time, 4),
               util::fixed(p50, 4), util::fixed(p90, 4), util::fixed(p99, 4),
               util::fixed(p99 / sol.response_time, 2)});
  }
  std::cout << t.render()
            << "\nreading: the p99 stays roughly 4x the mean at every load, so the\n"
               "absolute tail explodes together with the mean as the cluster\n"
               "saturates -- a mean-only SLA understates p99 by that factor.\n";
  return 0;
}
