// Extension study: the paper's optimum is the best *static* probabilistic
// split. Simulated comparison against dynamic dispatchers (JSQ,
// round-robin) quantifies the value of queue-state information the
// static model cannot use.
#include <iostream>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();

  std::cout << "=== Static optimal split vs dynamic routing (simulated) ===\n"
            << "(Example cluster, fcfs, one seed per point, horizon 20000)\n\n";

  util::Table t({"load", "optimal static T'", "JSQ T'", "round-robin T'"});
  for (double frac : {0.4, 0.6, 0.8, 0.9}) {
    const double lambda = frac * cluster.max_generic_rate();
    const auto sol =
        opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);
    sim::SimConfig cfg;
    cfg.horizon = 20000.0;
    cfg.warmup = 2000.0;
    const auto split =
        sim::simulate_split(cluster, sol.rates, sim::SchedulingMode::Fcfs, cfg);
    sim::JoinShortestQueueDispatcher jsq;
    const auto dyn =
        sim::simulate_dispatched(cluster, lambda, jsq, sim::SchedulingMode::Fcfs, cfg);
    sim::RoundRobinDispatcher rr;
    const auto rr_res =
        sim::simulate_dispatched(cluster, lambda, rr, sim::SchedulingMode::Fcfs, cfg);
    t.add_row({util::fixed(frac, 2), util::fixed(split.generic_mean_response, 4),
               util::fixed(dyn.generic_mean_response, 4),
               util::fixed(rr_res.generic_mean_response, 4)});
  }
  std::cout << t.render()
            << "\nreading: JSQ beats the optimal static split (it sees queue states).\n"
               "Blind round-robin overloads the small fast server at every load shown\n"
               "(lambda/7 exceeds its capacity), so its column is a growing transient,\n"
               "not a steady state -- the price of ignoring heterogeneity entirely.\n"
               "The paper's optimality claim is within the static-split policy class.\n";
  return 0;
}
