// Ablation the paper motivates but never quantifies: how much does the
// optimal distribution buy over natural heuristics, per discipline and
// load level?
#include <iostream>

#include "cloud/experiments.hpp"
#include "cloud/report.hpp"
#include "model/paper_configs.hpp"

int main() {
  const auto cluster = blade::model::paper_example_cluster();
  const std::vector<double> fractions{0.25, 0.5, 0.75, 0.9};
  for (auto d : {blade::queue::Discipline::Fcfs, blade::queue::Discipline::SpecialPriority}) {
    std::cout << "=== Policy ablation on the Example cluster, discipline = "
              << blade::queue::to_string(d) << " ===\n";
    const auto rows = blade::cloud::policy_ablation(cluster, d, fractions);
    std::cout << blade::cloud::render_ablation(rows) << '\n';
  }
  std::cout << "penalty = policy T' / optimal T' - 1 (0% would match the optimum)\n";
  return 0;
}
