// Robustness study: the optimizer needs the special-task rates lambda''_i
// as inputs. What happens when they are misestimated? We solve with an
// assumed preload fraction y_hat, then evaluate that split on the *true*
// cluster (y = 0.30). Underestimating the preload can push a server past
// its real saturation point -- reported as overload.
#include <cmath>
#include <iostream>
#include <limits>

#include "core/objective.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "model/paper_configs.hpp"
#include "util/table.hpp"

namespace {

using namespace blade;

model::Cluster cluster_with_preload(double y) {
  std::vector<unsigned> sizes;
  std::vector<double> speeds;
  for (unsigned i = 1; i <= 7; ++i) {
    sizes.push_back(2 * i);
    speeds.push_back(1.7 - 0.1 * i);
  }
  return model::make_cluster(sizes, speeds, 1.0, y);
}

}  // namespace

int main() {
  const double true_y = 0.30;
  const auto truth = cluster_with_preload(true_y);

  std::cout << "=== Robustness to misestimated special-task load ===\n"
            << "(true preload y = 0.30; optimizer fed y_hat; split evaluated on truth)\n\n";

  for (double frac : {0.5, 0.8}) {
    const double lambda = frac * truth.max_generic_rate();
    const opt::ResponseTimeObjective true_obj(truth, queue::Discipline::Fcfs, lambda);
    const double best =
        opt::LoadDistributionOptimizer(truth, queue::Discipline::Fcfs).optimize(lambda)
            .response_time;

    util::Table t({"assumed y_hat", "T' on true system", "penalty vs informed"});
    for (double y_hat : {0.20, 0.25, 0.30, 0.35, 0.40}) {
      const auto assumed = cluster_with_preload(y_hat);
      double value = std::numeric_limits<double>::quiet_NaN();
      bool overloaded = false;
      if (lambda < assumed.max_generic_rate()) {
        const auto sol = opt::LoadDistributionOptimizer(assumed, queue::Discipline::Fcfs)
                             .optimize(lambda);
        for (std::size_t i = 0; i < sol.rates.size(); ++i) {
          if (sol.rates[i] >= true_obj.rate_bound(i)) overloaded = true;
        }
        if (!overloaded) value = true_obj.value(sol.rates);
      } else {
        overloaded = true;  // assumed system cannot even admit lambda
      }
      t.add_row({util::fixed(y_hat, 2),
                 overloaded ? "OVERLOAD" : util::fixed(value),
                 overloaded ? "--"
                            : "+" + util::fixed(100.0 * (value / best - 1.0), 3) + "%"});
    }
    std::cout << "lambda' = " << util::fixed(lambda, 2) << " (" << util::fixed(100 * frac, 0)
              << "% of true saturation), informed optimum T' = " << util::fixed(best) << '\n'
              << t.render() << '\n';
  }
  std::cout << "reading: moderate misestimation costs well under a percent -- the\n"
               "optimum is flat -- but underestimating preload near saturation can\n"
               "push small servers past their true capacity.\n";
  return 0;
}
