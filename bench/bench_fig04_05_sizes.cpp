// Regenerates Figs. 4 and 5: impact of server sizes on T'. Five size
// groups (total blades 49/53/56/59/63); expectation per the paper: small
// increments of total size noticeably reduce T', especially at high
// lambda'.
#include "fig_common.hpp"

int main() {
  bench_common::print_figure(4);
  bench_common::print_figure(5);
  return 0;
}
