// Data-plane throughput bench: DispatchShard routing against a LIVE
// controller — a real control thread keeps re-solving and republishing
// the alias table for the whole measurement, so every snapshot refresh
// the shards pay is contended the way production dispatch is. Variants:
//
//   BM_DispatchShardRoute/threads:1   single shard, per-task route()
//   BM_DispatchShardRoute/threads:4   K shards, one per bench thread
//   BM_DispatchShardSampleN           batched sample_n() amortization
//
// Runs through bench_obs_main, so an instrumented build exports
// BENCH_bench_dispatch_throughput.json carrying runtime.shard.routed and
// the per-thread wall-clock timer runtime.shard.bench.route_seconds. CI
// gates the floor
//   runtime.shard.routed / runtime.shard.bench.route_seconds:sum >= 0.4x baseline
// (the baseline ratio is tens of millions of routed tasks per
// core-second — the >= 1M/s/core acceptance line with a wide margin for
// shared runners) and the ceiling runtime.shard.refreshes per
// runtime.shard.routed, which catches a broken refresh amortization.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "model/paper_configs.hpp"
#include "obs/obs.hpp"
#include "runtime/controller.hpp"
#include "runtime/dispatch_shard.hpp"

namespace {

using namespace blade;

// A controller with its control thread re-solving and republishing every
// few hundred microseconds. Refcounted singleton: the first bench thread
// in, across all registered benchmarks, starts the publisher; the last
// one out joins it. Controller ingestion is single-threaded by contract,
// so the publisher thread is the ONLY caller of resolve_now; bench
// threads touch the controller exclusively through DispatchShard's
// weights() reads.
class LiveEnv {
 public:
  static std::shared_ptr<LiveEnv> acquire() {
    static std::mutex mu;
    static std::weak_ptr<LiveEnv> live;
    const std::lock_guard<std::mutex> lock(mu);
    std::shared_ptr<LiveEnv> env = live.lock();
    if (!env) {
      env = std::shared_ptr<LiveEnv>(new LiveEnv());
      live = env;
    }
    return env;
  }

  ~LiveEnv() {
    stop_.store(true, std::memory_order_relaxed);
    publisher_.join();
  }

  [[nodiscard]] const runtime::Controller& controller() const noexcept { return *ctrl_; }

 private:
  LiveEnv()
      : cluster_(model::paper_example_cluster()) {
    runtime::ControllerConfig cfg;
    cfg.half_life = 2.0;
    cfg.initial_lambda = model::paper_example_lambda();
    ctrl_ = std::make_unique<runtime::Controller>(cluster_, cfg);
    publisher_ = std::thread([this] {
      double t = 0.0;
      while (!stop_.load(std::memory_order_relaxed)) {
        ctrl_->resolve_now(t += 1.0);  // full solve + table publication
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  model::Cluster cluster_;
  std::unique_ptr<runtime::Controller> ctrl_;
  std::atomic<bool> stop_{false};
  std::thread publisher_;
};

// Per-task route() with a live publisher. Each bench thread owns one
// shard seeded on its thread index; the per-thread scoped timer sums
// thread wall-seconds into runtime.shard.bench.route_seconds, making
// routed/sum a per-core throughput no matter the thread count.
void BM_DispatchShardRoute(benchmark::State& state) {
  const std::shared_ptr<LiveEnv> env = LiveEnv::acquire();
  runtime::DispatchShardConfig cfg;
  cfg.seed = 42;
  cfg.stream = static_cast<std::uint64_t>(state.thread_index());
  runtime::DispatchShard shard(env->controller(), cfg);
  {
    BLADE_OBS_TIMER("runtime.shard.bench.route_seconds");
    for (auto _ : state) {
      benchmark::DoNotOptimize(shard.route());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DispatchShardRoute)->Threads(1)->Threads(4);

// Batched routing: sample_n hoists snapshot acquisition and refresh
// bookkeeping out of the per-task path. Same draws as route(), so the
// delta over BM_DispatchShardRoute/threads:1 is pure batching.
void BM_DispatchShardSampleN(benchmark::State& state) {
  const std::shared_ptr<LiveEnv> env = LiveEnv::acquire();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  runtime::DispatchShardConfig cfg;
  cfg.seed = 42;
  runtime::DispatchShard shard(env->controller(), cfg);
  std::vector<std::size_t> out(batch);
  {
    BLADE_OBS_TIMER("runtime.shard.bench.route_seconds");
    for (auto _ : state) {
      shard.sample_n(out);
      benchmark::DoNotOptimize(out.data());
      benchmark::ClobberMemory();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_DispatchShardSampleN)->Arg(256);

}  // namespace
