// Regenerates the golden paper-regression files in tests/golden/:
// Table 1, Table 2, and the Figure 4-15 data series, serialized through
// the same tests/support/golden.hpp code that test_golden_paper replays.
//
//   usage: gen_golden [output-dir]      (default: tests/golden)
//
// Run this ONLY when an intentional numerical change shifts the paper's
// results (and say so in the commit message); test_golden_paper failing
// otherwise means a regression, not a stale golden.
#include <iostream>
#include <string>

#include "cloud/experiments.hpp"
#include "support/golden.hpp"

int main(int argc, char** argv) {
  using namespace blade;
  const std::string dir = argc > 1 ? argv[1] : "tests/golden";

  try {
    const auto table1 = cloud::example_table(queue::Discipline::Fcfs);
    testsupport::write_file(dir + "/table1.csv", testsupport::table_csv(table1));
    std::cout << "table1.csv: T' = " << table1.response_time << '\n';

    const auto table2 = cloud::example_table(queue::Discipline::SpecialPriority);
    testsupport::write_file(dir + "/table2.csv", testsupport::table_csv(table2));
    std::cout << "table2.csv: T' = " << table2.response_time << '\n';

    for (int number : testsupport::golden_figure_numbers()) {
      const auto fig = cloud::figure(number, testsupport::kGoldenFigurePoints);
      const std::string name = testsupport::golden_figure_id(number) + ".csv";
      testsupport::write_file(dir + '/' + name, testsupport::figure_csv(fig));
      std::cout << name << ": " << fig.series.size() << " series\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "gen_golden: " << e.what() << '\n';
    return 1;
  }
  std::cout << "golden files written to " << dir << '\n';
  return 0;
}
