// Human-readable causal timeline for flight-recorder dumps
// (blade.recorder.v1 JSONL, written by `bladecli serve-replay
// --recorder-out run.jsonl` or Recorder auto-dumps).
//
//   obs_timeline run.jsonl [more.jsonl ...]
//
// Prints each dump's events in merged timeline order with the payload
// decoded per event type, then a decision-count table by cause — the
// audit-trail answer to "why did the controller do that?".
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using blade::util::JsonValue;

std::string sig(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

double num(const JsonValue& e, const char* key) {
  const JsonValue* v = e.find(key);
  return (v != nullptr && v->type == JsonValue::Type::Number) ? v->number : 0.0;
}

std::string str(const JsonValue& e, const char* key) {
  const JsonValue* v = e.find(key);
  return (v != nullptr && v->type == JsonValue::Type::String) ? v->string : std::string();
}

/// Controller mode names (matches runtime::Mode; dumps carry the raw
/// enum value).
std::string mode_name(double m) {
  switch (static_cast<int>(m)) {
    case 0: return "optimal";
    case 1: return "last_known_good";
    case 2: return "fallback";
    case 3: return "blackout";
    default: return sig(m);
  }
}

/// Decodes one event's payload per the EventType contract in
/// src/obs/recorder.hpp.
std::string describe(const JsonValue& e) {
  const std::string type = str(e, "type");
  const std::string cause = str(e, "cause");
  const double id = num(e, "id");
  const double a = num(e, "a");
  const double b = num(e, "b");
  const double c = num(e, "c");
  std::ostringstream os;
  if (type == "solve_start") {
    os << (id > 0 ? "sharded solve (" + sig(id) + " cells)" : "flat solve") << " lambda'="
       << sig(a) << " of max " << sig(b);
  } else if (type == "solve_end") {
    if (id == 0) {
      os << "converged phi=" << sig(a) << " outer_it=" << sig(b) << " inner_evals=" << sig(c);
    } else {
      os << "FAILED error_code=" << sig(id) << " inner_evals=" << sig(c);
    }
  } else if (type == "resolve_trigger") {
    os << "re-solve (" << cause << ")";
    if (cause == "drift") os << " drift=" << sig(a) << " threshold=" << sig(b);
    os << " t=" << sig(c);
  } else if (type == "shed_decision") {
    os << "admission ceiling hit: lambda'_hat=" << sig(a) << " admissible=" << sig(b)
       << " shed_prob=" << sig(c);
  } else if (type == "mode_transition") {
    os << "mode " << mode_name(a) << " -> " << mode_name(b) << " (" << cause << ") t=" << sig(c);
  } else if (type == "alias_publish") {
    os << "published routing table v" << sig(id) << " shed_prob=" << sig(a) << " t=" << sig(c);
  } else if (type == "blade_fail") {
    os << "server " << sig(id) << " lost " << sig(b) << " blades (" << sig(a)
       << " remain) t=" << sig(c);
  } else if (type == "blade_recover") {
    os << "server " << sig(id) << " regained " << sig(b) << " blades (" << sig(a)
       << " up) t=" << sig(c);
  } else if (type == "chaos_inject") {
    os << "chaos: " << cause;
    if (b > 0) os << " x" << sig(b);
    os << " t=" << sig(a);
  } else if (type == "watchdog_trip") {
    os << "solver watchdog tripped (error_code=" << sig(id) << ")";
  } else if (type == "span") {
    os << str(e, "label") << " took " << sig(a) << " s";
  } else if (type == "dispatch") {
    os << "routed to server " << sig(id) << " (dispatch #" << sig(b) << ") t=" << sig(a);
  } else if (type == "epoch_mark") {
    os << "epoch " << sig(id) << ": rate=" << sig(b) << " t=" << sig(a);
  } else {
    os << "id=" << sig(id) << " a=" << sig(a) << " b=" << sig(b) << " c=" << sig(c);
  }
  return os.str();
}

int timeline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "obs_timeline: cannot open '" << path << "'\n";
    return 1;
  }
  std::string line;
  if (!std::getline(in, line)) {
    std::cerr << "obs_timeline: " << path << ": empty file\n";
    return 1;
  }
  JsonValue header;
  try {
    header = blade::util::parse_json(line);
  } catch (const std::exception& e) {
    std::cerr << "obs_timeline: " << path << ": bad header: " << e.what() << '\n';
    return 1;
  }
  const std::string schema = str(header, "schema");
  if (schema != "blade.recorder.v1") {
    std::cerr << "obs_timeline: " << path << ": unknown schema '" << schema << "'\n";
    return 1;
  }
  double dropped = 0.0;
  std::size_t rings = 0;
  if (const JsonValue* rs = header.find("rings")) {
    rings = rs->array.size();
    for (const JsonValue& r : rs->array) dropped += num(r, "dropped");
  }

  std::vector<JsonValue> events;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      events.push_back(blade::util::parse_json(line));
    } catch (const std::exception& e) {
      std::cerr << "obs_timeline: " << path << ":" << line_no << ": " << e.what() << '\n';
      return 1;
    }
  }

  std::cout << "== " << path << " ==\n"
            << "dump reason \"" << str(header, "reason") << "\", " << rings << " threads, "
            << events.size() << " events";
  if (dropped > 0) std::cout << " (" << sig(dropped) << " dropped)";
  std::cout << "\n\n";

  const double t0 = events.empty() ? 0.0 : num(events.front(), "ts_ns");
  std::map<std::string, std::uint64_t> by_type;
  std::map<std::string, std::uint64_t> by_cause;
  for (const JsonValue& e : events) {
    const std::string type = str(e, "type");
    ++by_type[type];
    const std::string cause = str(e, "cause");
    if (!cause.empty()) ++by_cause[type + " / " + cause];
    char ts[32];
    std::snprintf(ts, sizeof ts, "%12.3f", (num(e, "ts_ns") - t0) / 1e6);
    std::printf("%s ms  tid %-3d %-16s %s\n", ts, static_cast<int>(num(e, "tid")), type.c_str(),
                describe(e).c_str());
  }

  std::cout << "\nevents by type:\n";
  for (const auto& [type, n] : by_type) std::cout << "  " << type << ": " << n << '\n';
  if (!by_cause.empty()) {
    std::cout << "\ndecisions by cause:\n";
    for (const auto& [key, n] : by_cause) std::cout << "  " << key << ": " << n << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: obs_timeline <dump.jsonl> [more.jsonl ...]\n"
                 "prints a flight-recorder dump as a causal timeline\n";
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) std::cout << '\n';
    rc |= timeline(argv[i]);
  }
  return rc;
}
