// Perf-smoke gate over BENCH_*.json self-records: compares a
// counter-per-counter ratio between a checked-in baseline export and a
// fresh one, and fails when the current ratio crosses an allowed factor.
//
//   bench_check [--min-ratio] <baseline.json> <current.json>
//               <numerator> <denominator> <factor>
//
// Default mode treats the ratio as a cost (fail when current exceeds
// factor * baseline); --min-ratio treats it as a throughput (fail when
// current falls below factor * baseline). Full semantics, metric
// addressing (`name[:field]`), and exit codes in src/cli/bench_gate.hpp.
//
// examples:
//   bench_check bench/baselines/BENCH_bench_solver_scaling.json
//               BENCH_bench_solver_scaling.json
//               numerics.erlang_c_evals optimizer.solves 2.0
//   bench_check --min-ratio bench/baselines/BENCH_bench_dispatch_throughput.json
//               BENCH_bench_dispatch_throughput.json
//               runtime.shard.routed runtime.shard.bench.route_seconds:sum 0.4
#include <iostream>
#include <string>
#include <vector>

#include "cli/bench_gate.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return blade::cli::run_bench_check(args, std::cout, std::cerr);
}
