// Perf-smoke gate over BENCH_*.json self-records: compares a
// counter-per-counter ratio between a checked-in baseline export and a
// fresh one, and fails when the current ratio regresses past an allowed
// factor. Counter ratios (e.g. Erlang-C evaluations per solve) are
// machine-load independent, unlike wall-clock, so this is safe to run on
// shared CI runners.
//
//   bench_check <baseline.json> <current.json> <numerator> <denominator> <max_factor>
//
// A metric is addressed as `name` or `name:field`, where `field` is a
// numeric key of that metric's JSON record ("count" when omitted). That
// reaches timer/histogram aggregates too, e.g.
// `runtime.fallback_publish_seconds:sum` over a publication counter
// gates the per-publication fallback latency.
//
// example:
//   bench_check bench/baselines/BENCH_bench_solver_scaling.json \
//               BENCH_bench_solver_scaling.json \
//               numerics.erlang_c_evals optimizer.solves 2.0
//
// exit 0: current per-denominator ratio <= max_factor * baseline ratio
// exit 1: regression (or a counter missing from the current export)
// exit 2: usage / unreadable input
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace {

using blade::util::JsonValue;

bool load_json(const std::string& path, JsonValue& doc) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bench_check: cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    doc = blade::util::parse_json(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "bench_check: " << path << ": " << e.what() << '\n';
    return false;
  }
  return true;
}

/// Value of a `name[:field]` metric spec; -1 when absent. `field`
/// defaults to "count", and may be any numeric key of the metric record
/// (timers export "count", "sum", "mean", quantiles, ...).
double counter_total(const JsonValue& doc, const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string field = colon == std::string::npos ? "count" : spec.substr(colon + 1);
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr) return -1.0;
  for (const JsonValue& m : metrics->array) {
    const JsonValue* n = m.find("name");
    if (n == nullptr || n->string != name) continue;
    if (const JsonValue* v = m.find(field)) return v->number;
    return -1.0;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 6) {
    std::cerr << "usage: bench_check <baseline.json> <current.json> <numerator-counter> "
                 "<denominator-counter> <max_factor>\n";
    return 2;
  }
  JsonValue baseline;
  JsonValue current;
  if (!load_json(argv[1], baseline) || !load_json(argv[2], current)) return 2;
  const std::string num_name = argv[3];
  const std::string den_name = argv[4];
  const double max_factor = std::stod(argv[5]);
  if (!(max_factor > 0.0)) {
    std::cerr << "bench_check: max_factor must be > 0\n";
    return 2;
  }

  struct Ratio {
    double num, den, value;
  };
  auto ratio_of = [&](const JsonValue& doc, const char* label, Ratio& out) {
    out.num = counter_total(doc, num_name);
    out.den = counter_total(doc, den_name);
    if (out.num < 0.0 || out.den <= 0.0) {
      std::cerr << "bench_check: " << label << " is missing counter '"
                << (out.num < 0.0 ? num_name : den_name) << "' (was the bench built with "
                << "BLADE_OBS=ON and run to completion?)\n";
      return false;
    }
    out.value = out.num / out.den;
    return true;
  };
  Ratio base{};
  Ratio cur{};
  if (!ratio_of(baseline, "baseline", base)) return 2;
  if (!ratio_of(current, "current", cur)) return 1;

  const double limit = max_factor * base.value;
  std::cout << num_name << " / " << den_name << ": baseline " << base.value << " ("
            << base.num << "/" << base.den << "), current " << cur.value << " (" << cur.num
            << "/" << cur.den << "), limit " << limit << " (x" << max_factor << ")\n";
  if (cur.value > limit) {
    std::cerr << "bench_check: FAIL: per-" << den_name << " " << num_name
              << " regressed beyond x" << max_factor << " of baseline\n";
    return 1;
  }
  std::cout << "bench_check: OK\n";
  return 0;
}
