// Pretty-printer for obs metrics exports: the JSON files written by
// `bladecli --metrics-out run.json` and by the perf benches
// (BENCH_<name>.json). Renders the build attribution, a metric table,
// the derived readings, and a one-line summary per series.
//
//   obs_report BENCH_bench_optimizer_perf.json [more.json ...]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using blade::util::JsonValue;

std::string sig(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string field(const JsonValue& m, const char* key) {
  const JsonValue* v = m.find(key);
  return (v != nullptr && v->type == JsonValue::Type::Number) ? sig(v->number) : "--";
}

int report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "obs_report: cannot open '" << path << "'\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  try {
    doc = blade::util::parse_json(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "obs_report: " << path << ": " << e.what() << '\n';
    return 1;
  }

  std::cout << "== " << path << " ==\n";
  if (const JsonValue* b = doc.find("build")) {
    auto s = [&](const char* k) {
      const JsonValue* v = b->find(k);
      return (v != nullptr && v->type == JsonValue::Type::String) ? v->string : std::string("?");
    };
    const JsonValue* obs = b->find("obs");
    std::cout << "build: git " << s("git") << ", " << s("compiler") << ", " << s("build_type")
              << ", sanitize " << s("sanitize") << ", obs "
              << ((obs != nullptr && obs->boolean) ? "ON" : "OFF") << '\n';
  }
  if (const JsonValue* up = doc.find("uptime_seconds")) {
    std::cout << "uptime: " << sig(up->number) << " s\n";
  }

  blade::util::Table t({"metric", "kind", "count", "value/mean", "p50", "p99"});
  t.set_align(0, blade::util::Align::Left);
  t.set_align(1, blade::util::Align::Left);
  if (const JsonValue* ms = doc.find("metrics")) {
    for (const JsonValue& m : ms->array) {
      const JsonValue* name = m.find("name");
      const JsonValue* kind = m.find("kind");
      const std::string k = (kind != nullptr) ? kind->string : "?";
      const std::string center = (k == "gauge") ? field(m, "value") : field(m, "mean");
      t.add_row({name != nullptr ? name->string : "?", k, field(m, "count"), center,
                 field(m, "p50"), field(m, "p99")});
    }
  }
  std::cout << '\n' << t.render();

  if (const JsonValue* d = doc.find("derived")) {
    if (!d->object.empty()) {
      std::cout << "\nderived:\n";
      for (const auto& [k, v] : d->object) {
        std::cout << "  " << k << " = " << sig(v.number) << '\n';
      }
    }
  }
  if (const JsonValue* series = doc.find("series")) {
    if (!series->array.empty()) {
      std::cout << "\nseries:\n";
      for (const JsonValue& s : series->array) {
        const JsonValue* name = s.find("name");
        const JsonValue* pts = s.find("points");
        const JsonValue* dropped = s.find("dropped");
        const std::size_t n = (pts != nullptr) ? pts->array.size() : 0;
        std::cout << "  " << (name != nullptr ? name->string : "?") << ": " << n << " points";
        if (dropped != nullptr && dropped->number > 0.0) {
          std::cout << " (+" << sig(dropped->number) << " dropped)";
        }
        if (n > 0 && pts->array.back().array.size() == 2) {
          const JsonValue& last = pts->array.back();
          std::cout << ", last (" << sig(last.array[0].number) << ", "
                    << sig(last.array[1].number) << ')';
        }
        std::cout << '\n';
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: obs_report <metrics.json> [more.json ...]\n"
                 "pretty-prints a --metrics-out or BENCH_*.json export\n";
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) std::cout << '\n';
    rc |= report(argv[i]);
  }
  return rc;
}
