// Pretty-printer for obs metrics exports: the JSON files written by
// `bladecli --metrics-out run.json` and by the perf benches
// (BENCH_<name>.json). Renders the build attribution, a metric table,
// the derived readings, and a one-line summary per series.
//
//   obs_report BENCH_bench_optimizer_perf.json [more.json ...]
//   obs_report --diff A.json B.json
//
// --diff prints the two exports side by side with a B/A ratio column,
// for before/after comparisons of the same workload.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using blade::util::JsonValue;

std::string sig(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string field(const JsonValue& m, const char* key) {
  const JsonValue* v = m.find(key);
  return (v != nullptr && v->type == JsonValue::Type::Number) ? sig(v->number) : "--";
}

int report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "obs_report: cannot open '" << path << "'\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  try {
    doc = blade::util::parse_json(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "obs_report: " << path << ": " << e.what() << '\n';
    return 1;
  }

  std::cout << "== " << path << " ==\n";
  if (const JsonValue* b = doc.find("build")) {
    auto s = [&](const char* k) {
      const JsonValue* v = b->find(k);
      return (v != nullptr && v->type == JsonValue::Type::String) ? v->string : std::string("?");
    };
    const JsonValue* obs = b->find("obs");
    std::cout << "build: git " << s("git") << ", " << s("compiler") << ", " << s("build_type")
              << ", sanitize " << s("sanitize") << ", obs "
              << ((obs != nullptr && obs->boolean) ? "ON" : "OFF") << '\n';
  }
  if (const JsonValue* up = doc.find("uptime_seconds")) {
    std::cout << "uptime: " << sig(up->number) << " s\n";
  }

  blade::util::Table t({"metric", "kind", "count", "value/mean", "p50", "p99"});
  t.set_align(0, blade::util::Align::Left);
  t.set_align(1, blade::util::Align::Left);
  if (const JsonValue* ms = doc.find("metrics")) {
    for (const JsonValue& m : ms->array) {
      const JsonValue* name = m.find("name");
      const JsonValue* kind = m.find("kind");
      const std::string k = (kind != nullptr) ? kind->string : "?";
      const std::string center = (k == "gauge") ? field(m, "value") : field(m, "mean");
      t.add_row({name != nullptr ? name->string : "?", k, field(m, "count"), center,
                 field(m, "p50"), field(m, "p99")});
    }
  }
  std::cout << '\n' << t.render();

  if (const JsonValue* d = doc.find("derived")) {
    if (!d->object.empty()) {
      std::cout << "\nderived:\n";
      for (const auto& [k, v] : d->object) {
        std::cout << "  " << k << " = " << sig(v.number) << '\n';
      }
    }
  }
  if (const JsonValue* series = doc.find("series")) {
    if (!series->array.empty()) {
      std::cout << "\nseries:\n";
      for (const JsonValue& s : series->array) {
        const JsonValue* name = s.find("name");
        const JsonValue* pts = s.find("points");
        const JsonValue* dropped = s.find("dropped");
        const std::size_t n = (pts != nullptr) ? pts->array.size() : 0;
        std::cout << "  " << (name != nullptr ? name->string : "?") << ": " << n << " points";
        if (dropped != nullptr && dropped->number > 0.0) {
          std::cout << " (+" << sig(dropped->number) << " dropped)";
        }
        if (n > 0 && pts->array.back().array.size() == 2) {
          const JsonValue& last = pts->array.back();
          std::cout << ", last (" << sig(last.array[0].number) << ", "
                    << sig(last.array[1].number) << ')';
        }
        std::cout << '\n';
      }
    }
  }
  return 0;
}

/// One metric's headline reading for the diff table: counters compare
/// counts, gauges values, histograms/timers means.
struct DiffCell {
  std::string kind;
  std::optional<double> value;
};

std::optional<std::map<std::string, DiffCell>> load_cells(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "obs_report: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  try {
    doc = blade::util::parse_json(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "obs_report: " << path << ": " << e.what() << '\n';
    return std::nullopt;
  }
  std::map<std::string, DiffCell> cells;
  if (const JsonValue* ms = doc.find("metrics")) {
    for (const JsonValue& m : ms->array) {
      const JsonValue* name = m.find("name");
      const JsonValue* kind = m.find("kind");
      if (name == nullptr || kind == nullptr) continue;
      DiffCell cell;
      cell.kind = kind->string;
      const char* key = cell.kind == "gauge" ? "value"
                        : cell.kind == "counter" ? "count"
                                                 : "mean";
      if (const JsonValue* v = m.find(key); v != nullptr && v->type == JsonValue::Type::Number) {
        cell.value = v->number;
      }
      cells.emplace(name->string, std::move(cell));
    }
  }
  return cells;
}

int diff(const std::string& path_a, const std::string& path_b) {
  const auto a = load_cells(path_a);
  const auto b = load_cells(path_b);
  if (!a || !b) return 1;

  std::map<std::string, std::pair<const DiffCell*, const DiffCell*>> rows;
  for (const auto& [name, cell] : *a) rows[name].first = &cell;
  for (const auto& [name, cell] : *b) rows[name].second = &cell;

  std::cout << "A = " << path_a << "\nB = " << path_b << "\n\n";
  blade::util::Table t({"metric", "kind", "A", "B", "B/A"});
  t.set_align(0, blade::util::Align::Left);
  t.set_align(1, blade::util::Align::Left);
  for (const auto& [name, cells] : rows) {
    const DiffCell* ca = cells.first;
    const DiffCell* cb = cells.second;
    const std::string kind = ca != nullptr ? ca->kind : cb->kind;
    std::string va = "--";
    std::string vb = "--";
    std::string ratio = "--";
    if (ca != nullptr && ca->value) va = sig(*ca->value);
    if (cb != nullptr && cb->value) vb = sig(*cb->value);
    if (ca != nullptr && cb != nullptr && ca->value && cb->value && *ca->value != 0.0) {
      ratio = sig(*cb->value / *ca->value);
    }
    t.add_row({name, kind, va, vb, ratio});
  }
  std::cout << t.render();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--diff") == 0) {
    if (argc != 4) {
      std::cerr << "usage: obs_report --diff A.json B.json\n";
      return 2;
    }
    return diff(argv[2], argv[3]);
  }
  if (argc < 2) {
    std::cerr << "usage: obs_report <metrics.json> [more.json ...]\n"
                 "       obs_report --diff A.json B.json\n"
                 "pretty-prints (or compares) --metrics-out / BENCH_*.json exports\n";
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) std::cout << '\n';
    rc |= report(argv[i]);
  }
  return rc;
}
