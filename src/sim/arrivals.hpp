// Poisson task sources. Each source owns an RNG stream and schedules its
// own next arrival, handing tasks (with exponential work draws) to a sink.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/service.hpp"
#include "sim/task.hpp"

namespace blade::sim {

class PoissonSource {
 public:
  using Sink = std::function<void(Task)>;

  /// @param engine     simulation engine
  /// @param rate       arrival rate lambda (> 0)
  /// @param mean_work  mean execution requirement rbar (> 0); sizes are
  ///                   exponential (the paper's model)
  /// @param cls        class of the emitted tasks
  /// @param rng        dedicated random stream (moved in)
  /// @param sink       receives each task at its arrival instant
  PoissonSource(Engine& engine, double rate, double mean_work, TaskClass cls, RngStream rng,
                Sink sink);

  /// General-service variant: task sizes drawn from `work`.
  PoissonSource(Engine& engine, double rate, ServiceDistribution work, TaskClass cls,
                RngStream rng, Sink sink);

  /// Schedules the first arrival; call once before Engine::run_until.
  void start();

  /// Stops generating after the current pending arrival fires.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  void emit_and_reschedule();

  Engine& engine_;
  double rate_;
  ServiceDistribution work_;
  TaskClass cls_;
  RngStream rng_;
  Sink sink_;
  bool stopped_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace blade::sim
