// Generic-task dispatchers: how the single arriving stream of generic
// tasks is routed to servers. Probabilistic routing with the optimizer's
// rates realizes the paper's model (a Poisson split is again Poisson);
// RoundRobin and JoinShortestQueue are dynamic comparison policies for
// the extension benches.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "policy/policy.hpp"
#include "sim/rng.hpp"
#include "sim/server_sim.hpp"
#include "util/alias_table.hpp"

namespace blade::sim {

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;
  /// Chooses the destination server index for the next generic task.
  [[nodiscard]] virtual std::size_t route(const std::vector<ServerSim*>& servers) = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Routes to server i with probability rates[i] / sum(rates).
class ProbabilisticDispatcher final : public Dispatcher {
 public:
  ProbabilisticDispatcher(std::vector<double> rates, RngStream rng);
  [[nodiscard]] std::size_t route(const std::vector<ServerSim*>& servers) override;
  [[nodiscard]] const char* name() const noexcept override { return "probabilistic"; }

 private:
  std::vector<double> cumulative_;  // normalized cumulative probabilities
  RngStream rng_;
};

/// Routes by sampling whatever alias table the provider currently holds —
/// the sim-side half of the runtime controller's atomic weight swap. The
/// provider is polled per task, so a control plane republishing weights
/// re-steers the very next arrival. Falls back to a uniform pick when the
/// provider returns null (all servers down) or a stale-sized table.
class DynamicWeightDispatcher final : public Dispatcher {
 public:
  using TableProvider = std::function<std::shared_ptr<const util::AliasTable>()>;

  DynamicWeightDispatcher(TableProvider provider, RngStream rng);
  [[nodiscard]] std::size_t route(const std::vector<ServerSim*>& servers) override;
  [[nodiscard]] const char* name() const noexcept override { return "dynamic-weight"; }

 private:
  TableProvider provider_;
  RngStream rng_;
};

/// Cycles deterministically through the servers.
class RoundRobinDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::size_t route(const std::vector<ServerSim*>& servers) override;
  [[nodiscard]] const char* name() const noexcept override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

/// Joins the server with the fewest tasks in system, normalized by
/// AVAILABLE blade count (ties broken by lowest index). Fully dark
/// servers are skipped while any alternative exists — comparing against
/// installed blades() routed arrivals into failed servers, where they
/// queued unservable until recovery (the stale-capacity regression in
/// tests/test_policy.cpp).
class JoinShortestQueueDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::size_t route(const std::vector<ServerSim*>& servers) override;
  [[nodiscard]] const char* name() const noexcept override { return "join-shortest-queue"; }
};

/// Adapts a policy::DispatchPolicy to the simulator's Dispatcher seam.
/// The policy reads LIVE ServerSim state through a StateView built per
/// route() call — tasks_in_system()/available_blades() are evaluated at
/// the arrival instant, never cached across events, which is what keeps
/// the probe immune to the read-during-departure staleness bug class.
class PolicyDispatcher final : public Dispatcher {
 public:
  /// @param cfg  validated against `n` on construction (throws
  ///             std::invalid_argument like DispatchPolicy).
  PolicyDispatcher(policy::PolicyConfig cfg, std::size_t n);

  [[nodiscard]] std::size_t route(const std::vector<ServerSim*>& servers) override;
  [[nodiscard]] const char* name() const noexcept override {
    return policy_.name();
  }

  [[nodiscard]] const policy::DispatchPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const policy::PolicyCounters& counters() const noexcept {
    return policy_.counters();
  }
  /// Tasks routed to each server so far — the measured assignment
  /// fractions the light-traffic oracle tests integrate against.
  [[nodiscard]] const std::vector<std::uint64_t>& routed_by_server() const noexcept {
    return routed_;
  }

 private:
  policy::DispatchPolicy policy_;
  std::vector<std::uint64_t> routed_;
};

}  // namespace blade::sim
