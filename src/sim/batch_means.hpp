// Output analysis for single long simulation runs: the method of batch
// means (confidence intervals without independent replications) and the
// MSER-5 rule for data-driven warmup truncation. Complements the
// replication-based CIs in simulation.hpp.
#pragma once

#include <cstddef>
#include <span>

#include "util/stats.hpp"

namespace blade::sim {

struct BatchMeansResult {
  util::ConfidenceInterval ci;   ///< CI for the steady-state mean
  std::size_t batches = 0;       ///< batches actually used
  std::size_t batch_size = 0;    ///< observations per batch
  double lag1_autocorrelation = 0.0;  ///< of the batch means; |r1| >> 0
                                      ///< means batches are too small
};

/// Batch-means CI over a (warmup-truncated) observation sequence.
/// Observations beyond batches*batch_size are dropped from the tail.
/// Requires at least 2 observations per batch and >= 2 batches.
[[nodiscard]] BatchMeansResult batch_means(std::span<const double> observations,
                                           std::size_t batches = 20, double confidence = 0.95);

/// MSER-5 warmup detection: returns the index (into the raw sequence) at
/// which to truncate. Groups observations into batches of 5 and picks the
/// truncation d minimizing  sum_{j>=d} (Y_j - mean_d)^2 / (n_d)^2 , the
/// classic MSER statistic. The search is restricted to the first half of
/// the batches (standard practice, avoids degenerate tails).
[[nodiscard]] std::size_t mser5_warmup(std::span<const double> observations);

}  // namespace blade::sim
