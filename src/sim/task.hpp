// The unit of work flowing through the simulated blade center.
#pragma once

#include <cstdint>

namespace blade::sim {

enum class TaskClass : std::uint8_t {
  Generic,  ///< nondedicated, distributable
  Special,  ///< dedicated to one server, possibly prioritized
};

struct Task {
  TaskClass cls = TaskClass::Generic;
  double arrival_time = 0.0;  ///< when the task entered the server's queue
  double work = 0.0;          ///< execution requirement r (instructions);
                              ///< service time on a blade of speed s is r/s
};

}  // namespace blade::sim
