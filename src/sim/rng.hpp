// Seeded random-number streams for the simulator. Each logical stream
// (one per arrival source / server) gets its own engine, decorrelated from
// the replication seed by SplitMix64, so replications and streams are
// independent and every run is reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace blade::sim {

/// SplitMix64 step; used to derive stream seeds from (seed, stream_id).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

class RngStream {
 public:
  /// Stream `stream_id` of the replication seeded with `seed`.
  RngStream(std::uint64_t seed, std::uint64_t stream_id);

  /// Uniform double in (0, 1) (never exactly 0, safe for log()).
  [[nodiscard]] double uniform();

  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// Access to the raw engine for distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace blade::sim
