#include "sim/server_sim.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace blade::sim {

ServerSim::ServerSim(Engine& engine, unsigned blades, double speed, SchedulingMode mode,
                     ResponseTimeCollector& collector)
    : engine_(engine), blades_(blades), speed_(speed), mode_(mode), collector_(collector),
      slots_(blades), available_(blades) {
  if (blades == 0) throw std::invalid_argument("ServerSim: blades must be >= 1");
  if (!(speed > 0.0)) throw std::invalid_argument("ServerSim: speed must be > 0");
  last_change_ = engine.now();
  last_sys_change_ = engine.now();
}

void ServerSim::account_system_change(int delta) {
  const double now = engine_.now();
  system_integral_ += static_cast<double>(in_system_) * (now - last_sys_change_);
  last_sys_change_ = now;
  in_system_ = static_cast<unsigned>(static_cast<int>(in_system_) + delta);
#if BLADE_OBS_ENABLED
  // Per-transition occupancy sample (histogram is cheap, thread-local)
  // plus a throttled (sim-time, occupancy) timeline: one point per 256
  // transitions keeps the bounded series useful over long horizons.
  BLADE_OBS_OBSERVE("sim.server_occupancy", static_cast<double>(in_system_));
  if ((++obs_changes_ & 0xFFu) == 0) {
    BLADE_OBS_SERIES_APPEND("sim.occupancy", now, static_cast<double>(in_system_));
  }
#endif
}

double ServerSim::time_avg_tasks(double t0, double t1) const {
  if (!(t1 > t0)) throw std::invalid_argument("ServerSim::time_avg_tasks: empty interval");
  const double integral =
      system_integral_ + static_cast<double>(in_system_) * (engine_.now() - last_sys_change_);
  return integral / (t1 - t0);
}

void ServerSim::account_busy_change(int delta) {
  const double now = engine_.now();
  busy_integral_ += static_cast<double>(busy_) * (now - last_change_);
  last_change_ = now;
  busy_ = static_cast<unsigned>(static_cast<int>(busy_) + delta);
}

double ServerSim::busy_blade_time() const {
  return busy_integral_ + static_cast<double>(busy_) * (engine_.now() - last_change_);
}

double ServerSim::mean_utilization(double t0, double t1) const {
  if (!(t1 > t0)) throw std::invalid_argument("ServerSim::mean_utilization: empty interval");
  // Only exact if t0 == 0 (the integral starts at construction); for the
  // validation runs we always measure over the full horizon.
  return busy_blade_time() / (static_cast<double>(blades_) * (t1 - t0));
}

void ServerSim::enqueue(Task task) {
  if (mode_ != SchedulingMode::Fcfs && task.cls == TaskClass::Special) {
    special_queue_.push_back(task);
  } else {
    generic_queue_.push_back(task);
  }
}

std::optional<Task> ServerSim::dequeue() {
  if (!special_queue_.empty()) {
    Task t = special_queue_.front();
    special_queue_.pop_front();
    return t;
  }
  if (!generic_queue_.empty()) {
    Task t = generic_queue_.front();
    generic_queue_.pop_front();
    return t;
  }
  return std::nullopt;
}

void ServerSim::start_on_slot(std::size_t slot, Task task) {
  Slot& s = slots_[slot];
  s.busy = true;
  s.task = task;
  const double eff = effective_speed();
  if (eff > 0.0) {
    const double service = task.work / eff;
    s.completion_time = engine_.now() + service;
    s.completion = engine_.schedule(service, [this, slot] { complete_slot(slot); });
  } else {
    // Stalled: the task occupies the blade with its work frozen in
    // s.task.work; set_stalled(false) issues the completion later.
    s.completion = 0;
    s.completion_time = std::numeric_limits<double>::infinity();
  }
  account_busy_change(+1);
}

double ServerSim::remaining_work(const Slot& s) const {
  const double eff = effective_speed();
  // While stalled (or parked mid-stall) the slot's task.work *is* the
  // frozen remaining work; while running it is implied by the completion
  // time at the current effective rate.
  if (eff <= 0.0) return s.task.work;
  return (s.completion_time - engine_.now()) * eff;
}

void ServerSim::reschedule_running(double old_eff) {
  const double eff = effective_speed();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.busy) continue;
    const double remaining =
        old_eff > 0.0 ? (s.completion_time - engine_.now()) * old_eff : s.task.work;
    if (s.completion != 0) {
      engine_.cancel(s.completion);
      s.completion = 0;
    }
    s.task.work = remaining;
    if (eff > 0.0) {
      const double service = remaining / eff;
      s.completion_time = engine_.now() + service;
      s.completion = engine_.schedule(service, [this, i] { complete_slot(i); });
    } else {
      s.completion_time = std::numeric_limits<double>::infinity();
    }
  }
}

void ServerSim::set_speed_factor(double factor) {
  if (!std::isfinite(factor) || factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument("ServerSim::set_speed_factor: factor must be in (0, 1]");
  }
  if (factor == speed_factor_) return;
  const double old_eff = effective_speed();
  speed_factor_ = factor;
  reschedule_running(old_eff);
}

void ServerSim::set_stalled(bool on) {
  if (on == stalled_) return;
  const double old_eff = effective_speed();
  stalled_ = on;
  reschedule_running(old_eff);
}

void ServerSim::complete_slot(std::size_t slot) {
  Slot& s = slots_[slot];
  const Task done = s.task;
  s.busy = false;
  // Scrub the departed task's residue: a slot that keeps its stale task
  // class / completion time can be misread by a later arrival's victim
  // scan (the read-during-departure staleness class fixed below).
  s.task = Task{};
  s.completion_time = 0.0;
  account_busy_change(-1);
  account_system_change(-1);
  ++completions_;
  collector_.record(done.cls, engine_.now() - done.arrival_time, engine_.now());
  if (completion_observer_) completion_observer_(done, engine_.now());
  if (busy_ < available_) {
    if (auto next = dequeue()) {
      start_on_slot(slot, *next);
    }
  }
}

void ServerSim::set_available_blades(unsigned k) {
  if (k > blades_) {
    throw std::invalid_argument("ServerSim::set_available_blades: more blades than installed");
  }
  available_ = k;
  // Recovered blades pick up waiting work right away; a drain just stops
  // feeding slots (running tasks finish where they are).
  while (busy_ < available_) {
    auto next = dequeue();
    if (!next) break;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].busy) {
        start_on_slot(i, *next);
        break;
      }
    }
  }
}

void ServerSim::arrive(Task task) {
  task.arrival_time = engine_.now();
  account_system_change(+1);
  // Free blade?
  if (busy_ < available_) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].busy) {
        start_on_slot(i, task);
        return;
      }
    }
  }
  // Preemptive extension: a special arrival may evict a running generic
  // task (the one that would finish last, i.e. most remaining work).
  if (mode_ == SchedulingMode::PreemptiveResume && task.cls == TaskClass::Special) {
    std::size_t victim = slots_.size();
    double latest = -1.0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      // The slot must be BUSY: after a drain (available_ < blades_) an
      // idle slot still holds the departed generic task it last ran, and
      // picking it as victim cancels an already-fired event, computes
      // negative remaining work from the stale completion time, and
      // underflows the busy count.
      if (slots_[i].busy && slots_[i].task.cls == TaskClass::Generic &&
          slots_[i].completion_time > latest) {
        latest = slots_[i].completion_time;
        victim = i;
      }
    }
    if (victim != slots_.size()) {
      Slot& v = slots_[victim];
      if (v.completion != 0) engine_.cancel(v.completion);
      Task resumed = v.task;
      resumed.work = remaining_work(v);
      v.busy = false;
      account_busy_change(-1);
      ++preemptions_;
      generic_queue_.push_front(resumed);  // resume before other waiters
      start_on_slot(victim, task);
      return;
    }
  }
  enqueue(task);
}

}  // namespace blade::sim
