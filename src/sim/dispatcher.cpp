#include "sim/dispatcher.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "numerics/special.hpp"

namespace blade::sim {

ProbabilisticDispatcher::ProbabilisticDispatcher(std::vector<double> rates, RngStream rng)
    : rng_(std::move(rng)) {
  if (rates.empty()) throw std::invalid_argument("ProbabilisticDispatcher: no rates");
  num::KahanSum total;
  for (double r : rates) {
    if (!(r >= 0.0)) throw std::invalid_argument("ProbabilisticDispatcher: negative rate");
    total.add(r);
  }
  if (!(total.value() > 0.0)) {
    throw std::invalid_argument("ProbabilisticDispatcher: all rates are zero");
  }
  cumulative_.resize(rates.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    acc += rates[i] / total.value();
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::size_t ProbabilisticDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.size() != cumulative_.size()) {
    throw std::invalid_argument("ProbabilisticDispatcher: server count mismatch");
  }
  const double u = rng_.uniform();
  // First i with cumulative_[i] >= u — the same index the old linear scan
  // (`u <= cumulative_[i]`) returned, so seeded routing sequences are
  // unchanged, in O(log n) instead of O(n).
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto i = static_cast<std::size_t>(std::distance(cumulative_.begin(), it));
  return i < cumulative_.size() ? i : cumulative_.size() - 1;
}

DynamicWeightDispatcher::DynamicWeightDispatcher(TableProvider provider, RngStream rng)
    : provider_(std::move(provider)), rng_(std::move(rng)) {
  if (!provider_) throw std::invalid_argument("DynamicWeightDispatcher: null provider");
}

std::size_t DynamicWeightDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("DynamicWeightDispatcher: no servers");
  const auto table = provider_();
  if (!table || table->size() != servers.size()) {
    return static_cast<std::size_t>(rng_.below(servers.size()));
  }
  return table->sample(rng_.uniform(), rng_.uniform());
}

std::size_t RoundRobinDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("RoundRobinDispatcher: no servers");
  const std::size_t pick = next_ % servers.size();
  next_ = (next_ + 1) % servers.size();
  return pick;
}

std::size_t JoinShortestQueueDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("JSQ: no servers");
  // Load must be measured against the blades that can actually serve
  // right now: a failed/drained server's installed blade count is stale
  // capacity. Skip fully dark servers entirely while any alternative
  // exists (tasks routed there would queue unservable until recovery);
  // when the whole fleet is dark, fall back to the fewest-tasks server.
  std::size_t best = static_cast<std::size_t>(-1);
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const unsigned avail = servers[i]->available_blades();
    if (avail == 0) continue;
    const double load =
        static_cast<double>(servers[i]->tasks_in_system()) / static_cast<double>(avail);
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  if (best != static_cast<std::size_t>(-1)) return best;
  std::size_t dark_best = 0;
  std::size_t dark_q = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (servers[i]->tasks_in_system() < dark_q) {
      dark_q = servers[i]->tasks_in_system();
      dark_best = i;
    }
  }
  return dark_best;
}

namespace {

policy::ServerState read_server_state(const void* ctx, std::size_t i) {
  const auto& servers = *static_cast<const std::vector<ServerSim*>*>(ctx);
  const ServerSim& s = *servers[i];
  return policy::ServerState{
      .speed = s.speed(),
      .blades = s.blades(),
      .available = s.available_blades(),
      .in_system = s.tasks_in_system(),
  };
}

}  // namespace

PolicyDispatcher::PolicyDispatcher(policy::PolicyConfig cfg, std::size_t n)
    : policy_(std::move(cfg), n), routed_(n, 0) {}

std::size_t PolicyDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.size() != policy_.fleet_size()) {
    throw std::invalid_argument("PolicyDispatcher: server count mismatch");
  }
  const policy::StateView view{&servers, &read_server_state, servers.size()};
  const std::size_t dest = policy_.route(view);
  ++routed_[dest];
  return dest;
}

}  // namespace blade::sim
