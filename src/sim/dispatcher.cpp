#include "sim/dispatcher.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "numerics/special.hpp"

namespace blade::sim {

ProbabilisticDispatcher::ProbabilisticDispatcher(std::vector<double> rates, RngStream rng)
    : rng_(std::move(rng)) {
  if (rates.empty()) throw std::invalid_argument("ProbabilisticDispatcher: no rates");
  num::KahanSum total;
  for (double r : rates) {
    if (!(r >= 0.0)) throw std::invalid_argument("ProbabilisticDispatcher: negative rate");
    total.add(r);
  }
  if (!(total.value() > 0.0)) {
    throw std::invalid_argument("ProbabilisticDispatcher: all rates are zero");
  }
  cumulative_.resize(rates.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    acc += rates[i] / total.value();
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::size_t ProbabilisticDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.size() != cumulative_.size()) {
    throw std::invalid_argument("ProbabilisticDispatcher: server count mismatch");
  }
  const double u = rng_.uniform();
  // First i with cumulative_[i] >= u — the same index the old linear scan
  // (`u <= cumulative_[i]`) returned, so seeded routing sequences are
  // unchanged, in O(log n) instead of O(n).
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto i = static_cast<std::size_t>(std::distance(cumulative_.begin(), it));
  return i < cumulative_.size() ? i : cumulative_.size() - 1;
}

DynamicWeightDispatcher::DynamicWeightDispatcher(TableProvider provider, RngStream rng)
    : provider_(std::move(provider)), rng_(std::move(rng)) {
  if (!provider_) throw std::invalid_argument("DynamicWeightDispatcher: null provider");
}

std::size_t DynamicWeightDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("DynamicWeightDispatcher: no servers");
  const auto table = provider_();
  if (!table || table->size() != servers.size()) {
    return static_cast<std::size_t>(rng_.below(servers.size()));
  }
  return table->sample(rng_.uniform(), rng_.uniform());
}

std::size_t RoundRobinDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("RoundRobinDispatcher: no servers");
  const std::size_t pick = next_ % servers.size();
  next_ = (next_ + 1) % servers.size();
  return pick;
}

std::size_t JoinShortestQueueDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("JSQ: no servers");
  std::size_t best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const double load = static_cast<double>(servers[i]->tasks_in_system()) /
                        static_cast<double>(servers[i]->blades());
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

}  // namespace blade::sim
