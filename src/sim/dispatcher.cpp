#include "sim/dispatcher.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "numerics/special.hpp"

namespace blade::sim {

ProbabilisticDispatcher::ProbabilisticDispatcher(std::vector<double> rates, RngStream rng)
    : rng_(std::move(rng)) {
  if (rates.empty()) throw std::invalid_argument("ProbabilisticDispatcher: no rates");
  num::KahanSum total;
  for (double r : rates) {
    if (!(r >= 0.0)) throw std::invalid_argument("ProbabilisticDispatcher: negative rate");
    total.add(r);
  }
  if (!(total.value() > 0.0)) {
    throw std::invalid_argument("ProbabilisticDispatcher: all rates are zero");
  }
  cumulative_.resize(rates.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    acc += rates[i] / total.value();
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::size_t ProbabilisticDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.size() != cumulative_.size()) {
    throw std::invalid_argument("ProbabilisticDispatcher: server count mismatch");
  }
  const double u = rng_.uniform();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u <= cumulative_[i]) return i;
  }
  return cumulative_.size() - 1;
}

std::size_t RoundRobinDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("RoundRobinDispatcher: no servers");
  const std::size_t pick = next_ % servers.size();
  next_ = (next_ + 1) % servers.size();
  return pick;
}

std::size_t JoinShortestQueueDispatcher::route(const std::vector<ServerSim*>& servers) {
  if (servers.empty()) throw std::invalid_argument("JSQ: no servers");
  std::size_t best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const double load = static_cast<double>(servers[i]->tasks_in_system()) /
                        static_cast<double>(servers[i]->blades());
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

}  // namespace blade::sim
