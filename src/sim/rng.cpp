#include "sim/rng.hpp"

#include <cmath>
#include <stdexcept>

#include "util/fast_rng.hpp"

namespace blade::sim {

std::uint64_t splitmix64(std::uint64_t x) noexcept { return util::splitmix64(x); }

RngStream::RngStream(std::uint64_t seed, std::uint64_t stream_id)
    : engine_(splitmix64(splitmix64(seed) ^ splitmix64(stream_id * 0xA24BAED4963EE407ULL + 1))) {}

double RngStream::uniform() {
  // Map to (0,1): shift by one ulp so log(u) is always finite.
  const double u =
      (static_cast<double>(engine_() >> 11) + 0.5) * (1.0 / 9007199254740992.0);
  return u;
}

double RngStream::exponential(double mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("RngStream::exponential: mean must be > 0");
  return -mean * std::log(uniform());
}

std::uint64_t RngStream::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("RngStream::below: n must be > 0");
  return engine_() % n;
}

}  // namespace blade::sim
