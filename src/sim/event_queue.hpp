// Future-event list: a binary heap of (time, sequence) keyed callbacks
// with O(log n) insert/pop and lazy cancellation. Ties are broken by
// insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace blade::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`; returns a cancellable id.
  EventId push(double t, std::function<void()> fn);

  /// Marks an event cancelled; it is dropped when it reaches the top.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Time of the earliest live event; requires !empty().
  [[nodiscard]] double next_time() const;

  /// Pops and returns the earliest live event's (time, callback);
  /// requires !empty().
  [[nodiscard]] std::pair<double, std::function<void()>> pop();

 private:
  struct Entry {
    double time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// Drops cancelled entries from the top.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;  ///< pushed, not yet popped or cancelled
  EventId next_id_ = 1;
};

}  // namespace blade::sim
