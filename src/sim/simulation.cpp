#include "sim/simulation.hpp"

#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "sim/arrivals.hpp"
#include "sim/dispatcher.hpp"
#include "sim/engine.hpp"

namespace blade::sim {

SchedulingMode to_mode(queue::Discipline d) noexcept {
  return d == queue::Discipline::Fcfs ? SchedulingMode::Fcfs
                                      : SchedulingMode::NonPreemptivePriority;
}

namespace {

struct World {
  Engine engine;
  ResponseTimeCollector collector;
  std::vector<std::unique_ptr<ServerSim>> servers;
  std::vector<std::unique_ptr<PoissonSource>> sources;

  World(double warmup, bool trace) : collector(warmup, trace) {}
};

std::unique_ptr<World> build_world(const model::Cluster& cluster, SchedulingMode mode,
                                   const SimConfig& config) {
  auto w = std::make_unique<World>(config.warmup, config.record_generic_trace);
  for (const auto& srv : cluster.servers()) {
    w->servers.push_back(
        std::make_unique<ServerSim>(w->engine, srv.size(), srv.speed(), mode, w->collector));
  }
  // Dedicated special streams (one RNG stream per server).
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& srv = cluster.server(i);
    if (srv.special_rate() > 0.0) {
      ServerSim* dest = w->servers[i].get();
      w->sources.push_back(std::make_unique<PoissonSource>(
          w->engine, srv.special_rate(),
          ServiceDistribution::from_scv(cluster.rbar(), config.service_scv), TaskClass::Special,
          RngStream(config.seed, 2 * i + 1), [dest](Task t) { dest->arrive(t); }));
    }
  }
  return w;
}

SimResult harvest(World& w, const SimConfig& config) {
  SimResult r;
  r.generic_mean_response = w.collector.generic().mean();
  r.generic_samples = w.collector.generic().count();
  r.special_mean_response = w.collector.special().mean();
  r.special_samples = w.collector.special().count();
  r.events = w.engine.events_processed();
  r.servers.reserve(w.servers.size());
  for (const auto& s : w.servers) {
    ServerObservation obs;
    obs.utilization = s->mean_utilization(0.0, config.horizon);
    obs.time_avg_tasks = s->time_avg_tasks(0.0, config.horizon);
    obs.completions = s->completions();
    obs.preemptions = s->preemptions();
    r.servers.push_back(obs);
  }
  r.generic_trace = w.collector.take_generic_trace();
  return r;
}

}  // namespace

SimResult simulate_split(const model::Cluster& cluster, const std::vector<double>& rates,
                         SchedulingMode mode, const SimConfig& config) {
  if (rates.size() != cluster.size()) {
    throw std::invalid_argument("simulate_split: rate vector size mismatch");
  }
  auto w = build_world(cluster, mode, config);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] < 0.0) throw std::invalid_argument("simulate_split: negative rate");
    if (rates[i] > 0.0) {
      ServerSim* dest = w->servers[i].get();
      w->sources.push_back(std::make_unique<PoissonSource>(
          w->engine, rates[i],
          ServiceDistribution::from_scv(cluster.rbar(), config.service_scv), TaskClass::Generic,
          RngStream(config.seed, 2 * i + 2), [dest](Task t) { dest->arrive(t); }));
    }
  }
  for (auto& src : w->sources) src->start();
  w->engine.run_until(config.horizon);
  return harvest(*w, config);
}

SimResult simulate_dispatched(const model::Cluster& cluster, double lambda_total,
                              Dispatcher& dispatcher, SchedulingMode mode,
                              const SimConfig& config) {
  if (!(lambda_total > 0.0)) {
    throw std::invalid_argument("simulate_dispatched: lambda' must be > 0");
  }
  auto w = build_world(cluster, mode, config);
  std::vector<ServerSim*> raw;
  raw.reserve(w->servers.size());
  for (auto& s : w->servers) raw.push_back(s.get());

  // The arrival callback is the simulator's hottest edge: one route() per
  // generic task. Dispatcher is a virtual interface, but the two
  // steady-state policies are final classes — recover the concrete type
  // once so the per-task call is direct (inlinable) instead of virtual.
  std::function<void(Task)> arrive;
  if (auto* prob = dynamic_cast<ProbabilisticDispatcher*>(&dispatcher)) {
    arrive = [prob, raw](Task t) { raw[prob->route(raw)]->arrive(t); };
  } else if (auto* dyn = dynamic_cast<DynamicWeightDispatcher*>(&dispatcher)) {
    arrive = [dyn, raw](Task t) { raw[dyn->route(raw)]->arrive(t); };
  } else if (auto* pol = dynamic_cast<PolicyDispatcher*>(&dispatcher)) {
    arrive = [pol, raw](Task t) { raw[pol->route(raw)]->arrive(t); };
  } else {
    arrive = [&dispatcher, raw](Task t) { raw[dispatcher.route(raw)]->arrive(t); };
  }
  w->sources.push_back(std::make_unique<PoissonSource>(
      w->engine, lambda_total,
      ServiceDistribution::from_scv(cluster.rbar(), config.service_scv), TaskClass::Generic,
      RngStream(config.seed, 1000003), std::move(arrive)));
  for (auto& src : w->sources) src->start();
  w->engine.run_until(config.horizon);
  return harvest(*w, config);
}

ReplicatedResult replicate(const std::function<SimResult(const SimConfig&)>& one_run,
                           const SimConfig& base_config, int replications, double confidence,
                           par::ThreadPool* pool) {
  if (replications < 2) throw std::invalid_argument("replicate: need >= 2 replications");
  ReplicatedResult out;
  out.runs.resize(static_cast<std::size_t>(replications));
  auto body = [&](std::size_t k) {
    SimConfig cfg = base_config;
    cfg.seed = base_config.seed + k;
    out.runs[k] = one_run(cfg);
  };
  if (pool) {
    par::parallel_for(*pool, 0, out.runs.size(), body);
  } else {
    par::parallel_for(0, out.runs.size(), body);
  }
  std::vector<double> generic, special;
  for (const auto& r : out.runs) {
    generic.push_back(r.generic_mean_response);
    if (r.special_samples > 0) special.push_back(r.special_mean_response);
  }
  out.generic_response = util::t_confidence_interval(generic, confidence);
  if (special.size() >= 2) {
    out.special_response = util::t_confidence_interval(special, confidence);
  }
  return out;
}

}  // namespace blade::sim
