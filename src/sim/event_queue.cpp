#include "sim/event_queue.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace blade::sim {

EventId EventQueue::push(double t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  live_.insert(id);
  BLADE_OBS_COUNT("sim.events_scheduled");
  return id;
}

void EventQueue::cancel(EventId id) {
  // No-op for ids that already ran or were already cancelled, so callers
  // may keep stale handles safely.
  if (live_.erase(id) > 0) {
    cancelled_.insert(id);
    BLADE_OBS_COUNT("sim.events_cancelled");
  }
}

void EventQueue::skim() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept { return live_.empty(); }

std::size_t EventQueue::size() const noexcept { return live_.size(); }

double EventQueue::next_time() const {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty queue");
  return heap_.top().time;
}

std::pair<double, std::function<void()>> EventQueue::pop() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because we pop it immediately.
  auto& top = const_cast<Entry&>(heap_.top());
  std::pair<double, std::function<void()>> out{top.time, std::move(top.fn)};
  live_.erase(top.id);
  heap_.pop();
  return out;
}

}  // namespace blade::sim
