#include "sim/mmpp.hpp"

#include <stdexcept>
#include <utility>

namespace blade::sim {

double MmppParams::mean_rate() const noexcept {
  const double total = sojourn_quiet + sojourn_busy;
  return (rate_quiet * sojourn_quiet + rate_busy * sojourn_busy) / total;
}

double MmppParams::burstiness() const noexcept {
  const double mean = mean_rate();
  return mean > 0.0 ? rate_busy / mean : 1.0;
}

MmppParams MmppParams::with_mean(double mean_rate, double burstiness, double sojourn) {
  if (!(mean_rate > 0.0)) throw std::invalid_argument("MmppParams: mean rate must be > 0");
  if (!(burstiness >= 1.0) || !(burstiness < 2.0)) {
    throw std::invalid_argument("MmppParams: burstiness must be in [1, 2) for equal sojourns");
  }
  if (!(sojourn > 0.0)) throw std::invalid_argument("MmppParams: sojourn must be > 0");
  MmppParams p;
  p.rate_busy = burstiness * mean_rate;
  p.rate_quiet = (2.0 - burstiness) * mean_rate;  // equal sojourns average out
  p.sojourn_quiet = sojourn;
  p.sojourn_busy = sojourn;
  return p;
}

MmppSource::MmppSource(Engine& engine, MmppParams params, ServiceDistribution work,
                       TaskClass cls, RngStream rng, Sink sink)
    : engine_(engine), params_(params), work_(work), cls_(cls), rng_(std::move(rng)),
      sink_(std::move(sink)) {
  if (!(params_.rate_busy >= params_.rate_quiet) || !(params_.rate_quiet >= 0.0)) {
    throw std::invalid_argument("MmppSource: need 0 <= quiet rate <= busy rate");
  }
  if (!(params_.rate_busy > 0.0)) throw std::invalid_argument("MmppSource: busy rate must be > 0");
  if (!(params_.sojourn_quiet > 0.0) || !(params_.sojourn_busy > 0.0)) {
    throw std::invalid_argument("MmppSource: sojourns must be > 0");
  }
  if (!sink_) throw std::invalid_argument("MmppSource: null sink");
}

void MmppSource::start() {
  schedule_arrival();
  engine_.schedule(rng_.exponential(params_.sojourn_quiet), [this] { toggle_state(); });
}

void MmppSource::schedule_arrival() {
  const double rate = busy_ ? params_.rate_busy : params_.rate_quiet;
  if (rate <= 0.0) {
    pending_arrival_ = 0;  // silent state; the next toggle reschedules
    return;
  }
  pending_arrival_ = engine_.schedule(rng_.exponential(1.0 / rate), [this] {
    Task t;
    t.cls = cls_;
    t.arrival_time = engine_.now();
    t.work = work_.sample(rng_);
    ++emitted_;
    sink_(t);
    schedule_arrival();
  });
}

void MmppSource::toggle_state() {
  // Memorylessness makes "cancel and redraw at the new rate" exact.
  if (pending_arrival_ != 0) engine_.cancel(pending_arrival_);
  busy_ = !busy_;
  schedule_arrival();
  const double sojourn = busy_ ? params_.sojourn_busy : params_.sojourn_quiet;
  engine_.schedule(rng_.exponential(sojourn), [this] { toggle_state(); });
}

}  // namespace blade::sim
