// The discrete-event engine: a clock plus the future-event list. Model
// components schedule callbacks; run() advances the clock event by event.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace blade::sim {

class Engine {
 public:
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Schedules `fn` after `delay` (>= 0) simulated time units.
  EventId schedule(double delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (>= now()).
  EventId schedule_at(double t, std::function<void()> fn);

  /// Cancels a scheduled event (no-op if it already ran).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Processes events until the clock passes `t_end` or the queue drains.
  /// Events at exactly t_end are processed.
  void run_until(double t_end);

  /// Processes every remaining event.
  void run();

 private:
  double now_ = 0.0;
  std::uint64_t processed_ = 0;
  EventQueue queue_;
};

}  // namespace blade::sim
