#include "sim/arrivals.hpp"

#include <stdexcept>
#include <utility>

namespace blade::sim {

PoissonSource::PoissonSource(Engine& engine, double rate, double mean_work, TaskClass cls,
                             RngStream rng, Sink sink)
    : PoissonSource(engine, rate, ServiceDistribution::exponential(mean_work), cls,
                    std::move(rng), std::move(sink)) {}

PoissonSource::PoissonSource(Engine& engine, double rate, ServiceDistribution work,
                             TaskClass cls, RngStream rng, Sink sink)
    : engine_(engine), rate_(rate), work_(work), cls_(cls), rng_(std::move(rng)),
      sink_(std::move(sink)) {
  if (!(rate > 0.0)) throw std::invalid_argument("PoissonSource: rate must be > 0");
  if (!sink_) throw std::invalid_argument("PoissonSource: null sink");
}

void PoissonSource::start() {
  engine_.schedule(rng_.exponential(1.0 / rate_), [this] { emit_and_reschedule(); });
}

void PoissonSource::emit_and_reschedule() {
  if (stopped_) return;
  Task t;
  t.cls = cls_;
  t.arrival_time = engine_.now();
  t.work = work_.sample(rng_);
  ++emitted_;
  sink_(t);
  engine_.schedule(rng_.exponential(1.0 / rate_), [this] { emit_and_reschedule(); });
}

}  // namespace blade::sim
