// Failure injection for the simulated blade center: a time-ordered
// schedule of blade failures and recoveries applied to ServerSims through
// the event engine. Each event optionally notifies an observer (the
// runtime Controller, a test harness) at its simulated instant, after the
// server's available-blade count has been mutated.
//
// Beyond the binary up/down model the schedule also carries *gray* fault
// kinds: a sustained Slowdown scales the server's effective service speed
// by a degradation factor (factor == 1 restores nominal), and
// StallStart / StallEnd pause and resume service entirely while blades
// stay nominally available. Fail/recover flapping is expressed as an
// alternating Failure/Recovery sequence (see FaultInjector::flap_events).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/server_sim.hpp"

namespace blade::sim {

enum class FailureKind : std::uint8_t { Failure, Recovery, Slowdown, StallStart, StallEnd };

struct FailureEvent {
  double time = 0.0;
  FailureKind kind = FailureKind::Failure;
  std::size_t server = 0;
  /// Blades affected; 0 means "all" (every remaining blade on a failure,
  /// every missing blade on a recovery). Ignored by gray kinds.
  unsigned blades = 0;
  /// Slowdown only: effective-speed multiplier in (0, 1]; 1.0 clears the
  /// degradation. Ignored by every other kind.
  double factor = 1.0;
};

struct FailureSchedule {
  std::vector<FailureEvent> events;

  /// Throws std::invalid_argument when an event references a server
  /// index >= n or has a negative/non-finite time.
  void validate(std::size_t n) const;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
};

/// A server loses all blades at `fail_time` and gets them back at
/// `recover_time` — the canonical single-outage schedule.
[[nodiscard]] FailureSchedule single_outage(std::size_t server, double fail_time,
                                            double recover_time);

/// A server runs at `factor` times its nominal speed over
/// [slow_time, clear_time) — the canonical sustained-slowdown schedule.
[[nodiscard]] FailureSchedule single_slowdown(std::size_t server, double slow_time,
                                              double clear_time, double factor);

/// A server pauses service (blades stay up, queue keeps filling) over
/// [stall_time, resume_time) — the canonical intermittent-stall schedule.
[[nodiscard]] FailureSchedule single_stall(std::size_t server, double stall_time,
                                           double resume_time);

/// Applies `event` to the server's available-blade count (graceful
/// drain / immediate restart semantics, see ServerSim::set_available_blades).
void apply_failure_event(ServerSim& server, const FailureEvent& event);

/// Schedules every event on the engine: at event.time the matching
/// ServerSim is mutated, then `observer` (if any) is invoked. The servers
/// vector and observer must outlive the engine run.
void schedule_failures(Engine& engine, const FailureSchedule& schedule,
                       const std::vector<ServerSim*>& servers,
                       std::function<void(const FailureEvent&)> observer = nullptr);

}  // namespace blade::sim
