// Markov-modulated Poisson process (two-state MMPP) arrival source: the
// paper assumes Poisson generic arrivals; real cloud traffic is bursty.
// An MMPP-2 alternates between a quiet and a busy state with exponential
// sojourns, emitting Poisson arrivals at a state-dependent rate. Its
// long-run average rate is kept equal to a target lambda so results are
// directly comparable with the Poisson model at the same load.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/service.hpp"
#include "sim/task.hpp"

namespace blade::sim {

struct MmppParams {
  double rate_quiet = 0.0;   ///< arrival rate in the quiet state
  double rate_busy = 0.0;    ///< arrival rate in the busy state (>= quiet)
  double sojourn_quiet = 1.0;  ///< mean time in quiet state
  double sojourn_busy = 1.0;   ///< mean time in busy state

  /// Long-run average arrival rate (state-time weighted).
  [[nodiscard]] double mean_rate() const noexcept;

  /// Burstiness index: rate_busy / mean_rate (1 = Poisson-like).
  [[nodiscard]] double burstiness() const noexcept;

  /// Builds parameters with a given mean rate and burstiness factor b:
  /// busy rate = b * mean, quiet rate chosen so the average comes out at
  /// `mean_rate` with equal sojourn times. Requires 1 <= b < 2 for
  /// equal sojourns (quiet rate must stay >= 0).
  [[nodiscard]] static MmppParams with_mean(double mean_rate, double burstiness,
                                            double sojourn = 10.0);
};

class MmppSource {
 public:
  using Sink = std::function<void(Task)>;

  MmppSource(Engine& engine, MmppParams params, ServiceDistribution work, TaskClass cls,
             RngStream rng, Sink sink);

  /// Schedules the first state change and arrival; call once.
  void start();

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] bool busy_state() const noexcept { return busy_; }

 private:
  void schedule_arrival();
  void toggle_state();

  Engine& engine_;
  MmppParams params_;
  ServiceDistribution work_;
  TaskClass cls_;
  RngStream rng_;
  Sink sink_;
  bool busy_ = false;
  EventId pending_arrival_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace blade::sim
