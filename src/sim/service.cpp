#include "sim/service.hpp"

#include <cmath>
#include <stdexcept>

namespace blade::sim {

ServiceDistribution::ServiceDistribution(ServiceShape shape, double mean, double scv)
    : shape_(shape), mean_(mean), scv_(scv) {
  if (!(mean > 0.0)) throw std::invalid_argument("ServiceDistribution: mean must be > 0");
}

ServiceDistribution ServiceDistribution::exponential(double mean) {
  return ServiceDistribution(ServiceShape::Exponential, mean, 1.0);
}

ServiceDistribution ServiceDistribution::deterministic(double mean) {
  return ServiceDistribution(ServiceShape::Deterministic, mean, 0.0);
}

ServiceDistribution ServiceDistribution::erlang(double mean, unsigned k) {
  if (k == 0) throw std::invalid_argument("ServiceDistribution::erlang: k must be >= 1");
  ServiceDistribution d(ServiceShape::ErlangK, mean, 1.0 / static_cast<double>(k));
  d.stages_ = k;
  return d;
}

ServiceDistribution ServiceDistribution::hyper_exponential(double mean, double scv) {
  if (!(scv > 1.0)) {
    throw std::invalid_argument("ServiceDistribution::hyper_exponential: scv must be > 1");
  }
  // Balanced means: p1/mu1 = p2/mu2 = mean/2. Then
  //   p1 = (1 + sqrt((scv-1)/(scv+1))) / 2,  mean_i = mean / (2 p_i).
  ServiceDistribution d(ServiceShape::HyperExp2, mean, scv);
  d.p1_ = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  d.mean1_ = mean / (2.0 * d.p1_);
  d.mean2_ = mean / (2.0 * (1.0 - d.p1_));
  return d;
}

ServiceDistribution ServiceDistribution::from_scv(double mean, double scv) {
  if (!(scv >= 0.0)) throw std::invalid_argument("ServiceDistribution: scv must be >= 0");
  if (scv == 0.0) return deterministic(mean);
  if (scv < 1.0) {
    const auto k = static_cast<unsigned>(std::lround(1.0 / scv));
    return erlang(mean, std::max(2u, k));
  }
  if (scv == 1.0) return exponential(mean);
  return hyper_exponential(mean, scv);
}

double ServiceDistribution::sample(RngStream& rng) const {
  switch (shape_) {
    case ServiceShape::Deterministic:
      return mean_;
    case ServiceShape::Exponential:
      return rng.exponential(mean_);
    case ServiceShape::ErlangK: {
      const double stage_mean = mean_ / static_cast<double>(stages_);
      double total = 0.0;
      for (unsigned s = 0; s < stages_; ++s) total += rng.exponential(stage_mean);
      return total;
    }
    case ServiceShape::HyperExp2:
      return rng.uniform() < p1_ ? rng.exponential(mean1_) : rng.exponential(mean2_);
  }
  throw std::logic_error("ServiceDistribution: unknown shape");
}

}  // namespace blade::sim
