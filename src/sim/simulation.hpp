// Top-level cluster simulation: builds the blade-center model (servers,
// special streams, generic routing), runs it, and reports measured
// response times. Two entry points:
//
//   simulate_split       per-server independent generic Poisson streams at
//                        given rates — exactly the paper's model after the
//                        probabilistic split (a split Poisson process is
//                        again Poisson), used to validate the analytics;
//   simulate_dispatched  a single generic stream routed per-task by a
//                        Dispatcher (probabilistic / round-robin / JSQ),
//                        used for the dynamic-policy extension benches.
//
// replicate() runs many seeds in parallel and returns a confidence
// interval on the generic mean response time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/cluster.hpp"
#include "parallel/thread_pool.hpp"
#include "queueing/blade_queue.hpp"
#include "sim/dispatcher.hpp"
#include "sim/server_sim.hpp"
#include "util/stats.hpp"

namespace blade::sim {

/// Maps the analytic discipline onto a simulator scheduling mode.
[[nodiscard]] SchedulingMode to_mode(queue::Discipline d) noexcept;

struct SimConfig {
  double horizon = 200000.0;  ///< simulated time to run
  double warmup = 10000.0;    ///< completions before this time are discarded
  std::uint64_t seed = 1;     ///< replication seed
  bool record_generic_trace = false;  ///< keep per-completion generic
                                      ///< response times (batch means)
  /// Task-size variability for BOTH classes: 1 = exponential (the paper's
  /// model); other values select the matching ServiceDistribution shape
  /// (0 deterministic, <1 Erlang, >1 hyperexponential). The realized scv
  /// may be rounded for Erlang shapes -- see ServiceDistribution::from_scv.
  double service_scv = 1.0;
};

struct ServerObservation {
  double utilization = 0.0;      ///< time-averaged busy fraction
  double time_avg_tasks = 0.0;   ///< time-averaged number in system
  std::uint64_t completions = 0;
  std::uint64_t preemptions = 0;
};

struct SimResult {
  double generic_mean_response = 0.0;
  std::uint64_t generic_samples = 0;
  double special_mean_response = 0.0;
  std::uint64_t special_samples = 0;
  std::vector<ServerObservation> servers;
  std::uint64_t events = 0;
  /// Post-warmup generic response times in completion order; empty unless
  /// SimConfig::record_generic_trace was set.
  std::vector<double> generic_trace;
};

/// Simulates the cluster with a fixed static split of the generic stream.
/// `rates[i]` is the generic Poisson rate into server i (0 allowed).
[[nodiscard]] SimResult simulate_split(const model::Cluster& cluster,
                                       const std::vector<double>& rates, SchedulingMode mode,
                                       const SimConfig& config);

/// Simulates the cluster with one generic stream of rate `lambda_total`
/// routed task-by-task through `dispatcher`.
[[nodiscard]] SimResult simulate_dispatched(const model::Cluster& cluster, double lambda_total,
                                            Dispatcher& dispatcher, SchedulingMode mode,
                                            const SimConfig& config);

struct ReplicatedResult {
  util::ConfidenceInterval generic_response;  ///< CI over replication means
  util::ConfidenceInterval special_response;
  std::vector<SimResult> runs;
};

/// Runs `replications` independent seeds (base_config.seed + k) in
/// parallel on `pool` (global pool when null) and aggregates.
[[nodiscard]] ReplicatedResult replicate(
    const std::function<SimResult(const SimConfig&)>& one_run, const SimConfig& base_config,
    int replications, double confidence = 0.95, par::ThreadPool* pool = nullptr);

}  // namespace blade::sim
