#include "sim/metrics.hpp"

namespace blade::sim {

ResponseTimeCollector::ResponseTimeCollector(double warmup_time, bool record_trace)
    : warmup_(warmup_time), record_trace_(record_trace) {}

void ResponseTimeCollector::record(TaskClass cls, double response, double now) {
  if (now < warmup_) {
    ++discarded_;
    return;
  }
  if (cls == TaskClass::Generic) {
    generic_.add(response);
    if (record_trace_) trace_.push_back(response);
  } else {
    special_.add(response);
  }
}

void ResponseTimeCollector::merge(const ResponseTimeCollector& other) noexcept {
  generic_.merge(other.generic_);
  special_.merge(other.special_);
  discarded_ += other.discarded_;
  trace_.insert(trace_.end(), other.trace_.begin(), other.trace_.end());
}

}  // namespace blade::sim
