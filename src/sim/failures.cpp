#include "sim/failures.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace blade::sim {

void FailureSchedule::validate(std::size_t n) const {
  for (const auto& e : events) {
    if (!std::isfinite(e.time) || e.time < 0.0) {
      throw std::invalid_argument("FailureSchedule: event times must be finite and >= 0");
    }
    if (e.server >= n) {
      throw std::invalid_argument("FailureSchedule: server index out of range");
    }
    if (e.kind == FailureKind::Slowdown &&
        (!std::isfinite(e.factor) || e.factor <= 0.0 || e.factor > 1.0)) {
      throw std::invalid_argument("FailureSchedule: slowdown factor must be in (0, 1]");
    }
  }
}

FailureSchedule single_outage(std::size_t server, double fail_time, double recover_time) {
  if (!(recover_time > fail_time)) {
    throw std::invalid_argument("single_outage: recovery must follow the failure");
  }
  FailureSchedule s;
  s.events.push_back({fail_time, FailureKind::Failure, server, 0});
  s.events.push_back({recover_time, FailureKind::Recovery, server, 0});
  return s;
}

FailureSchedule single_slowdown(std::size_t server, double slow_time, double clear_time,
                                double factor) {
  if (!(clear_time > slow_time)) {
    throw std::invalid_argument("single_slowdown: clearance must follow the slowdown");
  }
  FailureSchedule s;
  s.events.push_back({slow_time, FailureKind::Slowdown, server, 0, factor});
  s.events.push_back({clear_time, FailureKind::Slowdown, server, 0, 1.0});
  return s;
}

FailureSchedule single_stall(std::size_t server, double stall_time, double resume_time) {
  if (!(resume_time > stall_time)) {
    throw std::invalid_argument("single_stall: resumption must follow the stall");
  }
  FailureSchedule s;
  s.events.push_back({stall_time, FailureKind::StallStart, server, 0});
  s.events.push_back({resume_time, FailureKind::StallEnd, server, 0});
  return s;
}

void apply_failure_event(ServerSim& server, const FailureEvent& event) {
  switch (event.kind) {
    case FailureKind::Failure: {
      const unsigned avail = server.available_blades();
      const unsigned lost = event.blades == 0 ? avail : std::min(avail, event.blades);
      server.set_available_blades(avail - lost);
      break;
    }
    case FailureKind::Recovery: {
      const unsigned avail = server.available_blades();
      const unsigned full = server.blades();
      const unsigned gained =
          event.blades == 0 ? full - avail : std::min(full - avail, event.blades);
      server.set_available_blades(avail + gained);
      break;
    }
    case FailureKind::Slowdown:
      server.set_speed_factor(event.factor);
      break;
    case FailureKind::StallStart:
      server.set_stalled(true);
      break;
    case FailureKind::StallEnd:
      server.set_stalled(false);
      break;
  }
}

void schedule_failures(Engine& engine, const FailureSchedule& schedule,
                       const std::vector<ServerSim*>& servers,
                       std::function<void(const FailureEvent&)> observer) {
  schedule.validate(servers.size());
  auto shared_observer = std::make_shared<std::function<void(const FailureEvent&)>>(
      std::move(observer));
  for (const auto& event : schedule.events) {
    ServerSim* target = servers[event.server];
    engine.schedule_at(event.time, [target, event, shared_observer] {
      apply_failure_event(*target, event);
      if (*shared_observer) (*shared_observer)(event);
    });
  }
}

}  // namespace blade::sim
