// A simulated blade server: m identical blades of speed s in front of an
// unbounded waiting queue. Three scheduling modes:
//
//   Fcfs                   the paper's Section 3 (classes mixed FCFS)
//   NonPreemptivePriority  the paper's Section 4 (special tasks jump the
//                          queue but never interrupt running tasks)
//   PreemptiveResume       extension: an arriving special task may evict a
//                          running generic task, which later resumes with
//                          its remaining work
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/task.hpp"

namespace blade::sim {

enum class SchedulingMode : std::uint8_t {
  Fcfs,
  NonPreemptivePriority,
  PreemptiveResume,
};

class ServerSim {
 public:
  ServerSim(Engine& engine, unsigned blades, double speed, SchedulingMode mode,
            ResponseTimeCollector& collector);

  ServerSim(const ServerSim&) = delete;
  ServerSim& operator=(const ServerSim&) = delete;

  /// A task arrives at the current simulated time.
  void arrive(Task task);

  /// Changes the number of usable blades (failure injection). Lowering is
  /// a graceful drain: running tasks finish on their blade, but no new
  /// task starts while busy blades >= the new count. Raising immediately
  /// starts queued tasks on the freed blades. `k` must be <= blades().
  /// With k == 0 the server accepts arrivals but runs nothing (they wait
  /// for a recovery).
  void set_available_blades(unsigned k);

  /// Gray-failure injection: scales the effective service speed of every
  /// blade to `factor * speed()` (factor in (0, 1]; 1.0 restores
  /// nominal). In-flight tasks are rescheduled to finish their remaining
  /// work at the new rate.
  void set_speed_factor(double factor);

  /// Gray-failure injection: pauses (true) / resumes (false) all service.
  /// A stalled server keeps its blades nominally available and keeps
  /// accepting arrivals — running tasks freeze with their remaining work
  /// intact, queued tasks wait — so the backlog builds exactly as a real
  /// intermittent stall would. Resuming restarts every frozen task.
  void set_stalled(bool on);

  /// Invoked at every task completion (after metrics are recorded) with
  /// the departing task and the completion instant. The runtime health
  /// feed observes per-server completion rates through this hook.
  void set_completion_observer(std::function<void(const Task&, double)> cb) {
    completion_observer_ = std::move(cb);
  }

  [[nodiscard]] unsigned blades() const noexcept { return blades_; }
  [[nodiscard]] unsigned available_blades() const noexcept { return available_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] double speed_factor() const noexcept { return speed_factor_; }
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }
  /// Current service rate of one blade: 0 while stalled, otherwise
  /// speed() * speed_factor().
  [[nodiscard]] double effective_speed() const noexcept {
    return stalled_ ? 0.0 : speed_ * speed_factor_;
  }
  [[nodiscard]] unsigned busy_blades() const noexcept { return busy_; }
  [[nodiscard]] std::size_t queued_tasks() const noexcept {
    return generic_queue_.size() + special_queue_.size();
  }
  [[nodiscard]] std::size_t tasks_in_system() const noexcept { return busy_ + queued_tasks(); }

  /// Time-integrated busy blade-time (for utilization estimates).
  [[nodiscard]] double busy_blade_time() const;

  /// Mean utilization over [t0, t1]: busy_blade_time / (m (t1 - t0)).
  [[nodiscard]] double mean_utilization(double t0, double t1) const;

  /// Time-averaged number of tasks in the system over [t0, t1] (t0 must
  /// be the construction time, i.e. 0 in practice). Together with the
  /// response-time collector this lets tests verify Little's law on the
  /// simulated process itself.
  [[nodiscard]] double time_avg_tasks(double t0, double t1) const;

  [[nodiscard]] std::uint64_t completions() const noexcept { return completions_; }
  [[nodiscard]] std::uint64_t preemptions() const noexcept { return preemptions_; }

 private:
  struct Slot {
    bool busy = false;
    Task task;
    EventId completion = 0;
    double completion_time = 0.0;
  };

  void enqueue(Task task);
  [[nodiscard]] std::optional<Task> dequeue();
  void start_on_slot(std::size_t slot, Task task);
  void complete_slot(std::size_t slot);
  void account_busy_change(int delta);
  void account_system_change(int delta);
  /// Remaining work of a busy slot at the current instant (valid whether
  /// the slot is running or frozen by a stall).
  [[nodiscard]] double remaining_work(const Slot& s) const;
  /// Cancels and re-issues every busy slot's completion after the
  /// effective speed changed from `old_eff` to effective_speed().
  void reschedule_running(double old_eff);

  Engine& engine_;
  unsigned blades_;
  double speed_;
  SchedulingMode mode_;
  ResponseTimeCollector& collector_;

  std::vector<Slot> slots_;
  std::deque<Task> generic_queue_;
  std::deque<Task> special_queue_;  // used in priority modes
  unsigned busy_ = 0;
  unsigned available_;          ///< usable blades (== blades_ unless failed)
  double speed_factor_ = 1.0;   ///< gray slowdown multiplier in (0, 1]
  bool stalled_ = false;        ///< gray stall: service frozen, queue open
  std::function<void(const Task&, double)> completion_observer_;

  double busy_integral_ = 0.0;
  double last_change_ = 0.0;
  unsigned in_system_ = 0;
  double system_integral_ = 0.0;
  double last_sys_change_ = 0.0;
  std::uint64_t completions_ = 0;
  std::uint64_t preemptions_ = 0;
#if BLADE_OBS_ENABLED
  std::uint64_t obs_changes_ = 0;  // throttles the occupancy timeline
#endif
};

}  // namespace blade::sim
