#include "sim/engine.hpp"

#include <stdexcept>

namespace blade::sim {

EventId Engine::schedule(double delay, std::function<void()> fn) {
  if (!(delay >= 0.0)) throw std::invalid_argument("Engine::schedule: negative delay");
  return queue_.push(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(double t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  return queue_.push(t, std::move(fn));
}

void Engine::run_until(double t_end) {
  while (!queue_.empty() && queue_.next_time() <= t_end) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    ++processed_;
    fn();
  }
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
  while (!queue_.empty()) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    ++processed_;
    fn();
  }
}

}  // namespace blade::sim
