#include "sim/engine.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace blade::sim {

EventId Engine::schedule(double delay, std::function<void()> fn) {
  if (!(delay >= 0.0)) throw std::invalid_argument("Engine::schedule: negative delay");
  return queue_.push(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(double t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  return queue_.push(t, std::move(fn));
}

void Engine::run_until(double t_end) {
#if BLADE_OBS_ENABLED
  BLADE_OBS_TIMER("sim.run_seconds");
  const std::uint64_t first = processed_;
#endif
  while (!queue_.empty() && queue_.next_time() <= t_end) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    ++processed_;
#if BLADE_OBS_ENABLED
    // Sample the future-event-list size every 256 events: cheap enough to
    // leave on, frequent enough to expose heap-growth pathologies.
    if ((processed_ & 0xFFu) == 0) {
      BLADE_OBS_OBSERVE("sim.event_heap_size", static_cast<double>(queue_.size()));
    }
#endif
    fn();
  }
#if BLADE_OBS_ENABLED
  BLADE_OBS_COUNT_N("sim.events", processed_ - first);
#endif
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
#if BLADE_OBS_ENABLED
  BLADE_OBS_TIMER("sim.run_seconds");
  const std::uint64_t first = processed_;
#endif
  while (!queue_.empty()) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    ++processed_;
#if BLADE_OBS_ENABLED
    if ((processed_ & 0xFFu) == 0) {
      BLADE_OBS_OBSERVE("sim.event_heap_size", static_cast<double>(queue_.size()));
    }
#endif
    fn();
  }
#if BLADE_OBS_ENABLED
  BLADE_OBS_COUNT_N("sim.events", processed_ - first);
#endif
}

}  // namespace blade::sim
