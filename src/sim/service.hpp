// Task-size (service requirement) distributions for the simulator. The
// paper assumes exponential sizes; these shapes let the DES exercise the
// M/G/m regime and measure how good the Allen-Cunneen correction used by
// the analytic extension really is.
//
// Shapes and their squared coefficients of variation (SCV):
//   Deterministic   scv = 0
//   ErlangK         scv = 1/k          (k >= 1; k = 1 is exponential)
//   Exponential     scv = 1
//   HyperExp2       scv > 1            (balanced-means parameterization)
#pragma once

#include "sim/rng.hpp"

namespace blade::sim {

enum class ServiceShape : int {
  Deterministic,
  ErlangK,
  Exponential,
  HyperExp2,
};

class ServiceDistribution {
 public:
  /// Exponential with the given mean (the paper's model).
  static ServiceDistribution exponential(double mean);
  /// Deterministic point mass at `mean`.
  static ServiceDistribution deterministic(double mean);
  /// Erlang with k stages (scv = 1/k).
  static ServiceDistribution erlang(double mean, unsigned k);
  /// Two-phase hyperexponential with balanced means and the given scv > 1.
  static ServiceDistribution hyper_exponential(double mean, double scv);
  /// Picks the closest shape for an arbitrary scv >= 0: 0 -> deterministic,
  /// (0,1) -> Erlang with k = round(1/scv), 1 -> exponential, > 1 -> H2.
  static ServiceDistribution from_scv(double mean, double scv);

  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// The exact scv of the constructed shape (e.g. 1/k for Erlang, which
  /// may differ from the scv requested through from_scv).
  [[nodiscard]] double scv() const noexcept { return scv_; }
  [[nodiscard]] ServiceShape shape() const noexcept { return shape_; }

  /// Draws one service requirement.
  [[nodiscard]] double sample(RngStream& rng) const;

 private:
  ServiceDistribution(ServiceShape shape, double mean, double scv);

  ServiceShape shape_;
  double mean_;
  double scv_;
  // Shape-specific parameters.
  unsigned stages_ = 1;   // ErlangK
  double p1_ = 0.5;       // HyperExp2 branch probability
  double mean1_ = 0.0;    // HyperExp2 branch means
  double mean2_ = 0.0;
};

}  // namespace blade::sim
