// Measurement side of the simulator: per-class response-time accumulators
// with a warmup cutoff, merged across servers or replications.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/task.hpp"
#include "util/stats.hpp"

namespace blade::sim {

class ResponseTimeCollector {
 public:
  /// Samples completing before `warmup_time` are discarded (transient).
  /// With `record_trace` the post-warmup generic response times are also
  /// kept in completion order (for batch-means / MSER analysis).
  explicit ResponseTimeCollector(double warmup_time = 0.0, bool record_trace = false);

  /// Records one completion at simulated time `now`.
  void record(TaskClass cls, double response, double now);

  [[nodiscard]] const util::RunningStats& generic() const noexcept { return generic_; }
  [[nodiscard]] const util::RunningStats& special() const noexcept { return special_; }
  [[nodiscard]] double warmup_time() const noexcept { return warmup_; }
  [[nodiscard]] std::uint64_t discarded() const noexcept { return discarded_; }
  [[nodiscard]] const std::vector<double>& generic_trace() const noexcept { return trace_; }
  [[nodiscard]] std::vector<double> take_generic_trace() noexcept { return std::move(trace_); }

  void merge(const ResponseTimeCollector& other) noexcept;

 private:
  double warmup_;
  bool record_trace_;
  util::RunningStats generic_;
  util::RunningStats special_;
  std::uint64_t discarded_ = 0;
  std::vector<double> trace_;
};

}  // namespace blade::sim
