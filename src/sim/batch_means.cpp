#include "sim/batch_means.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

#include "numerics/special.hpp"

namespace blade::sim {

BatchMeansResult batch_means(std::span<const double> observations, std::size_t batches,
                             double confidence) {
  if (batches < 2) throw std::invalid_argument("batch_means: need >= 2 batches");
  const std::size_t batch_size = observations.size() / batches;
  if (batch_size < 2) {
    throw std::invalid_argument("batch_means: too few observations for the batch count");
  }

  std::vector<double> means(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    num::KahanSum s;
    for (std::size_t i = 0; i < batch_size; ++i) {
      s.add(observations[b * batch_size + i]);
    }
    means[b] = s.value() / static_cast<double>(batch_size);
  }

  BatchMeansResult out;
  out.batches = batches;
  out.batch_size = batch_size;
  out.ci = util::t_confidence_interval(means, confidence);

  // Lag-1 autocorrelation of the batch means.
  const double mean = out.ci.mean;
  double num_acc = 0.0;
  double den_acc = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    den_acc += (means[b] - mean) * (means[b] - mean);
    if (b + 1 < batches) num_acc += (means[b] - mean) * (means[b + 1] - mean);
  }
  out.lag1_autocorrelation = den_acc > 0.0 ? num_acc / den_acc : 0.0;
  return out;
}

std::size_t mser5_warmup(std::span<const double> observations) {
  constexpr std::size_t kGroup = 5;
  const std::size_t nb = observations.size() / kGroup;
  if (nb < 4) return 0;  // too short to say anything; keep everything

  std::vector<double> y(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    num::KahanSum s;
    for (std::size_t i = 0; i < kGroup; ++i) s.add(observations[b * kGroup + i]);
    y[b] = s.value() / kGroup;
  }

  // Suffix sums let each candidate truncation be scored in O(1).
  std::vector<double> suf(nb + 1, 0.0), suf2(nb + 1, 0.0);
  for (std::size_t b = nb; b-- > 0;) {
    suf[b] = suf[b + 1] + y[b];
    suf2[b] = suf2[b + 1] + y[b] * y[b];
  }

  std::size_t best_d = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= nb / 2; ++d) {
    const double n_d = static_cast<double>(nb - d);
    const double mean_d = suf[d] / n_d;
    const double sse = suf2[d] - n_d * mean_d * mean_d;
    const double score = sse / (n_d * n_d);
    if (score < best_score) {
      best_score = score;
      best_d = d;
    }
  }
  return best_d * kGroup;
}

}  // namespace blade::sim
