// Deterministic fault injection for the control plane. A FaultInjector
// is a seeded source of the failure modes the resilience layer must
// contain:
//
//   observation faults   dropouts (the controller never hears an
//                        arrival), phantom spikes (it hears arrivals
//                        that never happened), and timewarps (NaN,
//                        sign-flipped, or backwards timestamps);
//   solver faults        armed non-convergence on the controller's next
//                        re-solve (Controller::arm_solver_fault);
//   blade flaps          fail/recover pairs sprinkled over the horizon;
//   gray failures        sustained slowdowns (effective speed scaled by
//                        a degradation factor) and intermittent stalls
//                        (service paused outright) that the topology
//                        view never reports — only the health tracker's
//                        completion-rate scoring can catch them.
//
// Everything is driven by sim::RngStream, so a (seed, profile) pair
// replays the identical fault sequence on every run — the chaos test
// battery and `bladecli serve-replay --chaos-seed` both rely on that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/replay.hpp"
#include "sim/rng.hpp"
#include "util/status.hpp"

namespace blade::runtime {

/// Per-event fault probabilities. All in [0, 1] except flap_rate, the
/// expected number of fail/recover cycles per server per horizon.
struct ChaosProfile {
  double dropout_prob = 0.0;
  double spike_prob = 0.0;
  double timewarp_prob = 0.0;
  double solver_fault_prob = 0.0;
  double flap_rate = 0.0;
  /// Expected sustained-slowdown episodes per server per horizon.
  double slowdown_rate = 0.0;
  /// Effective-speed multiplier during a slowdown episode, in (0, 1];
  /// per-episode jitter is applied around this value.
  double slowdown_factor = 0.35;
  /// Expected intermittent-stall episodes per server per horizon.
  double stall_rate = 0.0;

  /// Throws std::invalid_argument on out-of-domain fields.
  void validate() const;
};

/// Named presets for the CLI and tests: "none", "light", "moderate",
/// "heavy" (hard faults only — their event sequences are pinned by the
/// chaos battery, so gray rates stay 0) plus "gray-light",
/// "gray-moderate", "gray-heavy" (gray-failure mixes). Unknown names
/// return ErrorCode::InvalidArgument.
[[nodiscard]] Expected<ChaosProfile> chaos_profile(const std::string& name);

/// What happened to one observation: dropped entirely, duplicated as
/// phantom arrivals, and/or its timestamp corrupted.
struct ObservationFault {
  bool drop = false;
  unsigned phantoms = 0;  ///< extra phantom arrivals reported at `time`
  double time = 0.0;      ///< possibly corrupted timestamp to report
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, ChaosProfile profile);

  /// Decides the fate of an observation made at true time t.
  [[nodiscard]] ObservationFault corrupt_observation(double t);

  /// True when the controller's next re-solve should be forced to fail.
  [[nodiscard]] bool should_fault_solver();

  /// Seeded fail/recover pairs over [0, horizon) for n servers; already
  /// sorted by time, full-server flaps (blades = 0), never a duplicate
  /// failure of an already-failed server.
  [[nodiscard]] std::vector<ReplayEvent> flap_events(double horizon, std::size_t n_servers);

  /// Seeded gray-failure episodes over [0, horizon) for n servers:
  /// slowdown episodes (Slow with a jittered factor, cleared by Slow
  /// factor=1) and stall episodes (Stall/Unstall pairs), sorted by time,
  /// never overlapping on one server. Drawn from a dedicated stream, so
  /// enabling gray faults does not perturb the flap sequence.
  [[nodiscard]] std::vector<ReplayEvent> gray_events(double horizon, std::size_t n_servers);

  // Injection tallies (what the chaos battery asserts against).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t phantoms() const noexcept { return phantoms_; }
  [[nodiscard]] std::uint64_t timewarps() const noexcept { return timewarps_; }
  [[nodiscard]] std::uint64_t solver_faults() const noexcept { return solver_faults_; }

  [[nodiscard]] const ChaosProfile& profile() const noexcept { return profile_; }

 private:
  ChaosProfile profile_;
  sim::RngStream obs_rng_;
  sim::RngStream solver_rng_;
  sim::RngStream flap_rng_;
  sim::RngStream gray_rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t phantoms_ = 0;
  std::uint64_t timewarps_ = 0;
  std::uint64_t solver_faults_ = 0;
};

}  // namespace blade::runtime
