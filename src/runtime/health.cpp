#include "runtime/health.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace blade::runtime {

const char* to_string(HealthState s) noexcept {
  switch (s) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Suspect: return "suspect";
    case HealthState::Quarantined: return "quarantined";
    case HealthState::Probation: return "probation";
  }
  return "unknown";
}

void HealthConfig::validate() const {
  if (!(half_life > 0.0) || !std::isfinite(half_life)) {
    throw std::invalid_argument("HealthConfig: half_life must be > 0");
  }
  if (!(suspect_threshold > 0.0) || !(suspect_threshold < 1.0)) {
    throw std::invalid_argument("HealthConfig: suspect_threshold must be in (0, 1)");
  }
  if (!(quarantine_threshold > 0.0) || !(quarantine_threshold <= suspect_threshold)) {
    throw std::invalid_argument(
        "HealthConfig: quarantine_threshold must be in (0, suspect_threshold]");
  }
  if (!(recover_threshold > suspect_threshold) || !(recover_threshold <= 1.5)) {
    throw std::invalid_argument(
        "HealthConfig: recover_threshold must be in (suspect_threshold, 1.5]");
  }
  if (!(suspect_dwell >= 0.0) || !std::isfinite(suspect_dwell)) {
    throw std::invalid_argument("HealthConfig: suspect_dwell must be >= 0");
  }
  if (!(quarantine_dwell >= 0.0) || !std::isfinite(quarantine_dwell)) {
    throw std::invalid_argument("HealthConfig: quarantine_dwell must be >= 0");
  }
  if (!(probation_dwell >= 0.0) || !std::isfinite(probation_dwell)) {
    throw std::invalid_argument("HealthConfig: probation_dwell must be >= 0");
  }
  if (!(min_dispatch_rate >= 0.0) || !std::isfinite(min_dispatch_rate)) {
    throw std::invalid_argument("HealthConfig: min_dispatch_rate must be >= 0");
  }
  if (!(probe_speed_floor > 0.0) || !(probe_speed_floor <= 1.0)) {
    throw std::invalid_argument("HealthConfig: probe_speed_floor must be in (0, 1]");
  }
}

HealthTracker::HealthTracker(std::size_t n, HealthConfig cfg, double start_time) : cfg_(cfg) {
  cfg_.validate();
  blades_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) blades_.emplace_back(cfg_.half_life, start_time);
}

void HealthTracker::on_dispatch(double t, std::size_t i) {
  if (i >= blades_.size()) throw std::invalid_argument("HealthTracker: server index out of range");
  Blade& b = blades_[i];
  b.dispatch.try_observe(t);
  ++b.dispatches;
}

void HealthTracker::on_completion(double t, std::size_t i) {
  if (i >= blades_.size()) throw std::invalid_argument("HealthTracker: server index out of range");
  Blade& b = blades_[i];
  b.completion.try_observe(t);
  ++b.completions;
}

double HealthTracker::compute_score(const Blade& b, double t) const {
  if (b.dispatches < cfg_.min_dispatches) return b.score;
  const double expected = b.dispatch.rate(t);
  if (!(expected > cfg_.min_dispatch_rate)) return b.score;  // no flow, no evidence
  const double observed = b.completion.rate(t);
  // Cap at the recover threshold's ceiling: a draining backlog can push
  // completions past dispatches, which is evidence of health, not of a
  // super-powered blade.
  return std::min(observed / expected, 1.5);
}

void HealthTracker::enter(Blade& b, std::size_t i, HealthState to, double t,
                          std::vector<HealthTransition>& out) {
  const HealthState from = b.state;
  if (from == to) return;
  if (from == HealthState::Quarantined) --quarantined_;
  if (to == HealthState::Quarantined) ++quarantined_;
  if (to == HealthState::Quarantined) {
    // Freeze the degraded-capacity estimate for the eventual probation
    // re-solve; the score itself goes unmeasurable once traffic stops.
    b.factor = std::clamp(b.score, cfg_.probe_speed_floor, 1.0);
  }
  if (to == HealthState::Probation) {
    // Probation scores only probation-era flow: stale quarantine-decayed
    // rates would read as a relapse the moment probes start.
    b.dispatch.reset(t);
    b.completion.reset(t);
    b.dispatches = 0;
    b.completions = 0;
    b.score = 1.0;
  }
  if (to == HealthState::Healthy) b.factor = 1.0;
  b.state = to;
  b.since = t;
  out.push_back({i, from, to, b.score, t});
}

bool HealthTracker::evaluate(double t, std::vector<HealthTransition>& out) {
  if (!cfg_.enabled) return false;
  const std::size_t before = out.size();
  for (std::size_t i = 0; i < blades_.size(); ++i) {
    Blade& b = blades_[i];
    switch (b.state) {
      case HealthState::Healthy: {
        b.score = compute_score(b, t);
        if (b.score < cfg_.suspect_threshold) enter(b, i, HealthState::Suspect, t, out);
        break;
      }
      case HealthState::Suspect: {
        b.score = compute_score(b, t);
        if (b.score >= cfg_.recover_threshold) {
          enter(b, i, HealthState::Healthy, t, out);
        } else if (b.score < cfg_.quarantine_threshold ||
                   (t - b.since >= cfg_.suspect_dwell && b.score < cfg_.suspect_threshold)) {
          enter(b, i, HealthState::Quarantined, t, out);
        }
        break;
      }
      case HealthState::Quarantined: {
        // No traffic, no score: exit is purely dwell-based. Probation
        // hands the solver a degraded speed so probe flow resumes.
        if (t - b.since >= cfg_.quarantine_dwell) enter(b, i, HealthState::Probation, t, out);
        break;
      }
      case HealthState::Probation: {
        b.score = compute_score(b, t);
        if (b.score < cfg_.quarantine_threshold) {
          enter(b, i, HealthState::Quarantined, t, out);
        } else if (t - b.since >= cfg_.probation_dwell && b.score >= cfg_.recover_threshold) {
          enter(b, i, HealthState::Healthy, t, out);
        }
        break;
      }
    }
  }
  return out.size() > before;
}

HealthState HealthTracker::state(std::size_t i) const {
  if (i >= blades_.size()) throw std::invalid_argument("HealthTracker: server index out of range");
  return blades_[i].state;
}

double HealthTracker::score(std::size_t i) const {
  if (i >= blades_.size()) throw std::invalid_argument("HealthTracker: server index out of range");
  return blades_[i].score;
}

bool HealthTracker::routable(std::size_t i) const {
  return state(i) != HealthState::Quarantined;
}

double HealthTracker::speed_factor(std::size_t i) const {
  if (i >= blades_.size()) throw std::invalid_argument("HealthTracker: server index out of range");
  const Blade& b = blades_[i];
  switch (b.state) {
    case HealthState::Healthy:
    case HealthState::Suspect:
      return 1.0;
    case HealthState::Quarantined:
    case HealthState::Probation:
      return std::clamp(b.factor, cfg_.probe_speed_floor, 1.0);
  }
  return 1.0;
}

void HealthTracker::reset_server(std::size_t i, double t) {
  if (i >= blades_.size()) throw std::invalid_argument("HealthTracker: server index out of range");
  Blade& b = blades_[i];
  if (b.state == HealthState::Quarantined) --quarantined_;
  b.state = HealthState::Healthy;
  b.since = t;
  b.score = 1.0;
  b.factor = 1.0;
  b.dispatch.reset(t);
  b.completion.reset(t);
  b.dispatches = 0;
  b.completions = 0;
}

void HealthTracker::reset_all(double t) {
  for (std::size_t i = 0; i < blades_.size(); ++i) reset_server(i, t);
}

}  // namespace blade::runtime
