#include "runtime/dispatch_shard.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace blade::runtime {

void DispatchShardConfig::validate() const {
  if (refresh_interval == 0) {
    throw std::invalid_argument("dispatch_shard: refresh_interval must be >= 1");
  }
}

DispatchShard::DispatchShard(const Controller& ctrl, DispatchShardConfig cfg)
    : ctrl_(&ctrl), cfg_(cfg), rng_(cfg.seed, cfg.stream) {
  cfg_.validate();
}

void DispatchShard::refresh() {
  // Epoch before table: if an urgent publish lands between the two
  // loads, we hold the fresh table under the stale epoch and pay one
  // redundant refresh next route — the reverse order could cache a
  // stale table under the fresh epoch and serve it a full interval.
  seen_epoch_ = ctrl_->publish_epoch();
  table_ = ctrl_->weights();
  until_refresh_ = cfg_.refresh_interval;
  ++refreshes_;
  BLADE_OBS_COUNT("runtime.shard.refreshes");
}

std::size_t DispatchShard::route() {
  if (until_refresh_ == 0 || ctrl_->publish_epoch() != seen_epoch_) refresh();
  --until_refresh_;
  ++routed_;
  BLADE_OBS_COUNT("runtime.shard.routed");
  const util::AliasTable* t = table_.get();
  if (t == nullptr) return npos;
  const double u1 = rng_.uniform();
  const double u2 = rng_.uniform();
  return t->sample(u1, u2);
}

void DispatchShard::sample_n(std::span<std::size_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (until_refresh_ == 0 || ctrl_->publish_epoch() != seen_epoch_) refresh();
    // One snapshot covers the next `chunk` tasks; the per-task loop
    // below touches only the raw table pointer and the RNG state.
    std::size_t chunk = out.size() - done;
    if (chunk > until_refresh_) chunk = static_cast<std::size_t>(until_refresh_);
    until_refresh_ -= chunk;
    const util::AliasTable* t = table_.get();
    if (t == nullptr) {
      for (std::size_t i = 0; i < chunk; ++i) out[done + i] = npos;
    } else {
      for (std::size_t i = 0; i < chunk; ++i) {
        const double u1 = rng_.uniform();
        const double u2 = rng_.uniform();
        out[done + i] = t->sample(u1, u2);
      }
    }
    done += chunk;
  }
  routed_ += out.size();
  BLADE_OBS_COUNT_N("runtime.shard.routed", out.size());
}

}  // namespace blade::runtime
