// Trace replay: drives a Controller and the discrete-event simulator from
// one event script — generic-rate changes, blade failures, recoveries —
// so the whole control loop (estimate, re-solve, publish, shed) can be
// exercised end to end on a reproducible timeline.
//
// The text format is line-oriented; '#' starts a comment. Server indices
// are 0-based.
//
//   horizon <T>              total simulated time (required, > 0)
//   seed <n>                 replication seed (default 1)
//   rate <t> <lambda>        generic arrival rate becomes lambda at time t
//   fail <t> <server> [k]    k blades of <server> fail at t (default: all)
//   recover <t> <server> [k] k blades come back at t (default: all missing)
//   slow <t> <server> <f>    gray slowdown: effective speed scaled by f
//                            in (0, 1]; f = 1 clears the slowdown
//   stall <t> <server>       gray stall: service pauses outright
//   unstall <t> <server>     the stall ends; paused work resumes
//
// Gray events mutate only the simulated servers — the controller is NOT
// notified (unlike fail/recover): detecting them is the health tracker's
// job (runtime/health.hpp).
//
// The parser rejects — naming the offending line — NaN/negative rates,
// non-finite or negative times, slowdown factors outside (0, 1], events
// out of time order, and a full failure of a server that is already
// fully failed.
//
// `reference_failure_trace` builds the paper-cluster acceptance scenario:
// a diurnal generic load riding on the example cluster, the biggest
// server lost at T/3 and recovered at 2T/3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/cluster.hpp"
#include "obs/slo.hpp"
#include "policy/policy.hpp"
#include "runtime/controller.hpp"
#include "sim/simulation.hpp"
#include "util/status.hpp"

namespace blade::runtime {

class FaultInjector;

struct ReplayEvent {
  enum class Kind : std::uint8_t { Rate, Fail, Recover, Slow, Stall, Unstall };

  double time = 0.0;
  Kind kind = Kind::Rate;
  double rate = 0.0;       ///< Rate events: the new generic lambda'
  std::size_t server = 0;  ///< Fail/Recover/gray events: 0-based server index
  unsigned blades = 0;     ///< Fail/Recover events: blade count, 0 = all
  double factor = 1.0;     ///< Slow events: speed multiplier in (0, 1], 1 clears
};

struct ReplayTrace {
  double horizon = 0.0;
  std::uint64_t seed = 1;
  std::vector<ReplayEvent> events;  ///< need not be sorted; replay sorts

  /// Throws std::invalid_argument on a bad horizon, negative/non-finite
  /// event times or rates, or a server index >= n.
  void validate(std::size_t n) const;
};

/// Parses the text format above. Malformed input returns
/// ErrorCode::ParseError whose context names the offending line.
[[nodiscard]] Expected<ReplayTrace> try_parse_replay_trace(const std::string& text);

/// Throwing convenience over try_parse_replay_trace
/// (std::invalid_argument carrying the same line-numbered message).
[[nodiscard]] ReplayTrace parse_replay_trace(const std::string& text);

/// Serializes a trace back to the text format (round-trips with
/// parse_replay_trace).
[[nodiscard]] std::string to_text(const ReplayTrace& trace);

/// The reference acceptance scenario for `cluster`: six diurnal rate
/// epochs between 35% and 80% of lambda'_max, the highest-capacity server
/// fully lost at horizon/3 and recovered at 2*horizon/3.
[[nodiscard]] ReplayTrace reference_failure_trace(const model::Cluster& cluster, double horizon);

/// Optional knobs for replay() beyond the trace itself.
struct ReplayOptions {
  double warmup = 0.0;
  double service_scv = 1.0;
  /// Fault injection in the loop (see replay_chaotic); nullptr = none.
  FaultInjector* chaos = nullptr;
  /// SLO objectives; when any target is enabled the horizon is split
  /// into `slo_epochs` windows, each evaluated through an obs::SloSet
  /// (targets.window left 0 derives 4 epoch lengths).
  obs::SloTargets slo;
  int slo_epochs = 12;
  /// Record every Nth generic dispatch as a flight-recorder Dispatch
  /// event (0 disables). Sampled so control-plane events are not buried
  /// by data-plane volume in a wrapped ring.
  std::uint64_t dispatch_sample = 256;
  /// Checkpoint JSON (the document itself, not a path) restored into the
  /// controller before the replay starts; empty = cold start. A restore
  /// failure throws std::invalid_argument with the typed error context.
  std::string checkpoint_in;
  /// When non-empty, Controller::checkpoint_json() is persisted to this
  /// path (temp-file + atomic rename, so a crash mid-write never leaves
  /// a torn checkpoint) every `checkpoint_every` time units and once
  /// more at the horizon.
  std::string checkpoint_out;
  /// Simulated-time interval between periodic checkpoint writes; 0 with
  /// a checkpoint_out path writes only the final checkpoint.
  double checkpoint_every = 0.0;
};

struct ReplayResult {
  ControllerStats stats;                ///< controller counters at the end
  double shed_fraction = 0.0;           ///< stats.shed_fraction() shortcut
  double final_shed_probability = 0.0;  ///< published shed prob at horizon
  std::vector<double> final_fractions;  ///< published routing fractions
  Mode final_mode = Mode::Fallback;     ///< degraded-mode state at horizon
  sim::SimResult sim;                   ///< measured response times etc.
  /// Per-epoch SLO evaluations (empty when no SLO target was enabled).
  std::vector<obs::SloEpochStatus> slo;
  std::uint64_t slo_breaches = 0;       ///< total objective breaches
  /// Generic tasks routed to a Quarantined server while at least one
  /// alive non-quarantined server existed (0 when health is off). The
  /// gray battery asserts this stays 0 — quarantine must actually fence.
  std::uint64_t routes_to_quarantined = 0;
  std::uint64_t checkpoints_written = 0;  ///< periodic + final checkpoint writes
};

/// Replays `trace` against a fresh Controller wired to simulated servers:
/// special streams feed both their server and the controller's lambda''
/// estimators; generic arrivals ask the controller for admission, then
/// route through the currently published alias table. Failures drain the
/// simulated blades and notify the controller at the same instant.
[[nodiscard]] ReplayResult replay(const model::Cluster& cluster, const ControllerConfig& cfg,
                                  const ReplayTrace& trace, double warmup = 0.0,
                                  double service_scv = 1.0);

/// Full-options replay: chaos, SLO epoch evaluation, dispatch sampling.
[[nodiscard]] ReplayResult replay(const model::Cluster& cluster, const ControllerConfig& cfg,
                                  const ReplayTrace& trace, const ReplayOptions& options);

/// What one dispatch policy did over a replayed timeline.
struct PolicyReplayResult {
  sim::SimResult sim;                          ///< measured response times etc.
  policy::PolicyCounters counters;             ///< probes/ties/herds/fallbacks
  std::vector<std::uint64_t> routed_by_server; ///< tasks sent to each server
  std::vector<double> measured_fractions;      ///< routed_by_server, normalized
};

/// Replays `trace`'s timeline through a policy::DispatchPolicy instead of
/// the controller: generic arrivals follow the trace's rate epochs, the
/// failure/recovery schedule drains and restores simulated blades (plus
/// `options.chaos` flap events when set), and every generic task routes
/// by `policy_cfg` over the LIVE server state. No admission control, no
/// re-solving — this is the head-to-head harness the policy bench matrix
/// and the ablation tests drive, sharing arrival/service RNG streams
/// with replay() so per-policy differences are routing-only. Of the
/// options only warmup, service_scv, and chaos apply (SLO epochs and
/// dispatch sampling are controller-plane concerns).
[[nodiscard]] PolicyReplayResult replay_policy(const model::Cluster& cluster,
                                               const policy::PolicyConfig& policy_cfg,
                                               const ReplayTrace& trace,
                                               const ReplayOptions& options = {});

/// replay() with a FaultInjector in the loop: observations pass through
/// chaos.corrupt_observation before reaching the controller (drops,
/// phantom spikes, timewarped stamps), solver faults are armed per
/// chaos.should_fault_solver, and chaos.flap_events are merged into the
/// trace's failure schedule. Deterministic per (trace.seed, chaos).
[[nodiscard]] ReplayResult replay_chaotic(const model::Cluster& cluster,
                                          const ControllerConfig& cfg, const ReplayTrace& trace,
                                          FaultInjector& chaos, double warmup = 0.0,
                                          double service_scv = 1.0);

}  // namespace blade::runtime
