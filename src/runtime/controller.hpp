// Online load-distribution control plane. The paper's solver answers one
// stationary instance; this Controller closes the loop around it for a
// live cluster:
//
//   estimate     lambda' (total generic rate) and per-server lambda''_i
//                online from the event stream (EWMA or sliding window,
//                configurable half-life);
//   re-solve     the optimal split through a persistent SolverWorkspace
//                with hysteresis — a drift check every check_interval
//                arrivals, a re-solve only when the estimates moved past
//                drift_threshold, and the previous phi seeding the next
//                solve (see SolverWorkspace);
//   publish      routing weights as an O(1) alias-table sampler swapped
//                through an atomic slot, so dispatch threads keep
//                sampling while the control path reconverges;
//   degrade      blade failures/recoveries mutate the available m_i
//                (server removal = m_i -> 0) and force an immediate
//                re-solve; when the estimated lambda' approaches the
//                surviving capacity, admission control sheds the minimum
//                fraction that restores feasibility at the configured
//                utilization ceiling.
//
// Threading contract: all event ingestion (on_* and resolve_now) is
// single-threaded — one control thread owns it. weights(),
// routing_fractions(), and shed_probability() are safe to call from any
// number of concurrent dispatch threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/marginal_cache.hpp"
#include "core/optimizer.hpp"
#include "core/sharded.hpp"
#include "model/cluster.hpp"
#include "obs/recorder.hpp"
#include "queueing/blade_queue.hpp"
#include "runtime/estimator.hpp"
#include "runtime/health.hpp"
#include "util/alias_table.hpp"
#include "util/status.hpp"

namespace blade::runtime {

namespace detail {

/// Atomic publication slot for the routing table. Semantically this is
/// std::atomic<std::shared_ptr<const AliasTable>>, but libstdc++ 12's
/// _Sp_atomic unlocks with a relaxed fetch_sub, which leaves no
/// TSan-visible happens-before edge between a reader's critical section
/// and the next writer's (the annotations landed in GCC 13). A
/// micro-spinlock with a release unlock gives the same O(1) hand-off
/// with ordering the model (and TSan) accepts: readers copy the current
/// pointer under the lock (one refcount bump), the single control
/// thread swaps it, and the displaced table is released outside the
/// critical section.
class TableSlot {
 public:
  [[nodiscard]] std::shared_ptr<const util::AliasTable> load() const noexcept {
    lock();
    auto copy = ptr_;
    unlock();
    return copy;
  }

  void store(std::shared_ptr<const util::AliasTable> next) noexcept {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the displaced table; it dies here, after unlock.
  }

 private:
  void lock() const noexcept {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const noexcept { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const util::AliasTable> ptr_;
};

}  // namespace detail

enum class EstimatorKind : std::uint8_t { Ewma, Window };

struct ControllerConfig {
  queue::Discipline discipline = queue::Discipline::Fcfs;
  EstimatorKind estimator = EstimatorKind::Ewma;
  /// Estimator memory: EWMA half-life; the sliding window spans
  /// `window` (default 4 half-lives when 0).
  double half_life = 1.0;
  double window = 0.0;
  /// Hysteresis: re-solve only when the estimated lambda' (relative) or
  /// any lambda''_i (relative to that server's capacity) drifted past
  /// this threshold since the last solve.
  double drift_threshold = 0.02;
  /// Arrivals between drift checks (each check either re-solves or
  /// counts as skipped_by_hysteresis).
  std::uint64_t check_interval = 16;
  /// Estimator warmup: no estimate-driven solve before this many
  /// arrivals have been observed.
  std::uint64_t min_arrivals = 8;
  /// Admission control keeps the admitted lambda' at or below this
  /// fraction of the surviving generic capacity; must be in (0, 1).
  double utilization_ceiling = 0.95;
  /// When > 0, solve for this lambda' at construction so the published
  /// weights start optimal for the expected load instead of
  /// capacity-proportional.
  double initial_lambda = 0.0;
  /// Bounded staleness for the last-known-good table: after a failed
  /// re-solve the LKG split is only served while it is at most this old
  /// (in event time); past that the controller degrades further to the
  /// capacity-proportional fallback. 0 (default) derives 8 half-lives.
  double lkg_max_age = 0.0;
  /// When > 0, re-solves run through the sharded hierarchical solver
  /// (core/sharded.hpp) with this many cells (clamped to the surviving
  /// server count) — the fleet-scale path that keeps serve-replay
  /// responsive at n = 50,000. 0 (default) keeps the flat solver.
  std::size_t shard_cells = 0;
  /// Per-cell top-k rate-matrix pruning for the sharded re-solve path;
  /// requires shard_cells > 0. 0 (default) keeps every server.
  std::size_t prune_top_k = 0;
  /// Marginal-drift mode: the hysteresis check evaluates the per-server
  /// Lagrange-marginal spread of the *published* split through the
  /// certified surrogate cache (core/marginal_cache.hpp) instead of the
  /// raw rate-estimate deltas — the re-solve trigger then fires on lost
  /// optimality (unequal marginals) rather than on any estimator
  /// movement. Falls through to the exact batched kernel only when the
  /// certified error straddles drift_threshold; rates outside the
  /// certified domain force a re-solve. OFF by default: the drift
  /// *criterion* changes, so opting in is a policy decision.
  bool marginal_drift = false;
  /// Surrogate fit/certification knobs for marginal_drift mode.
  opt::MarginalSurrogate::Options marginal_cache;
  /// Gray-failure detection: per-blade health scoring + the quarantine
  /// state machine (runtime/health.hpp). Off by default; when enabled the
  /// caller must feed on_dispatch()/on_completion().
  HealthConfig health;
  opt::OptimizerOptions solver;

  /// Throws std::invalid_argument on out-of-domain fields.
  void validate() const;
};

struct ControllerStats {
  std::uint64_t generic_arrivals = 0;  ///< offered (admitted + shed)
  std::uint64_t special_arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;               ///< dropped by admission control
  std::uint64_t resolves = 0;           ///< optimizer re-solves
  std::uint64_t skipped_by_hysteresis = 0;  ///< drift checks below threshold
  std::uint64_t infeasible_resolves = 0;    ///< re-solves that engaged shedding
  std::uint64_t failures = 0;           ///< blade-failure events ingested
  std::uint64_t recoveries = 0;
  std::uint64_t publications = 0;       ///< reconvergence epochs (weight swaps)
  std::uint64_t solver_failures = 0;    ///< contained re-solve failures
  std::uint64_t lkg_publications = 0;   ///< failures served from last-known-good
  std::uint64_t fallback_publications = 0;  ///< failures degraded to proportional
  std::uint64_t rejected_observations = 0;  ///< corrupt event times dropped/repaired
  std::uint64_t injected_faults = 0;    ///< solver faults forced by arm_solver_fault
  std::uint64_t restores = 0;           ///< checkpoint restores applied
  std::uint64_t mode_transitions = 0;   ///< degraded-mode state changes

  // Gray-failure detection (zero when cfg.health.enabled is off):
  std::uint64_t health_transitions = 0;  ///< quarantine state-machine edges
  std::uint64_t quarantines = 0;         ///< edges into Quarantined
  std::uint64_t probations = 0;          ///< edges into Probation
  std::uint64_t health_recoveries = 0;   ///< Probation -> Healthy clears
  std::uint64_t quarantine_publications = 0;  ///< cheap redistributions (no re-solve)

  // Marginal-drift mode only (zero when marginal_drift is off):
  std::uint64_t mcache_hits = 0;          ///< drift checks settled by the surrogate
  std::uint64_t mcache_fallthroughs = 0;  ///< checks that needed the exact kernel
  std::uint64_t mcache_out_of_domain = 0; ///< checks escalated: rate left the domain

  /// Wall-clock cost of re-solves (control-loop latency, fed to the SLO
  /// resolve_latency monitor): total seconds across all resolves and the
  /// most recent one.
  double resolve_seconds_total = 0.0;
  double last_resolve_seconds = 0.0;

  /// Fraction of offered generic tasks shed so far (0 when none offered).
  [[nodiscard]] double shed_fraction() const noexcept;
};

/// What the published routing table currently is (the degraded-mode state
/// machine; see docs/resilience.md for the full transition diagram):
///
///   Optimal        the last re-solve succeeded; serving its split.
///   LastKnownGood  the last re-solve failed; serving the most recent
///                  successful split, bounded by lkg_max_age and only
///                  while every server it routes to keeps the blades it
///                  had when it was solved.
///   Fallback       serving the capacity-proportional split (boot state
///                  before the first estimate-driven solve, no measurable
///                  load, or a failure with no servable LKG).
///   Blackout       nothing publishable: every blade is down; the table
///                  is null and shed_probability() is 1.
enum class Mode : std::uint8_t { Optimal = 0, LastKnownGood = 1, Fallback = 2, Blackout = 3 };

[[nodiscard]] const char* to_string(Mode m) noexcept;

class Controller {
 public:
  /// @param cluster  nominal topology and special-stream preloads; the
  ///                 spec lambda''_i also back the estimators before
  ///                 they warm up
  Controller(model::Cluster cluster, ControllerConfig cfg);

  // --- event ingestion (control thread only) ---

  /// A generic task was offered at time t; `u` is the caller's uniform
  /// draw in [0, 1) deciding admission. Returns true when the task is
  /// admitted (route it via weights()); false when admission control
  /// shed it. Also feeds the lambda' estimator and runs the hysteresis
  /// check every check_interval arrivals.
  bool on_generic_arrival(double t, double u);

  /// A special task arrived at server `i` at time t (feeds lambda''_i).
  void on_special_arrival(double t, std::size_t i);

  /// `blades` blades of server i failed at time t (0 = all remaining).
  /// Triggers an immediate re-solve over the surviving topology.
  void on_failure(double t, std::size_t i, unsigned blades = 0);

  /// `blades` blades of server i came back at time t (0 = all missing).
  void on_recovery(double t, std::size_t i, unsigned blades = 0);

  /// An admitted generic task was routed to server i at time t. Feeds the
  /// health tracker's expected-rate side; no-op when health is disabled.
  void on_dispatch(double t, std::size_t i);

  /// A task completed at server i at time t. Feeds the health tracker's
  /// observed-rate side and runs the (throttled) quarantine state
  /// machine; no-op when health is disabled.
  void on_completion(double t, std::size_t i);

  /// Forces an immediate re-estimate + re-solve + publish (epoch
  /// boundaries, tests).
  void resolve_now(double t);

  // --- read side (any thread) ---

  /// The current routing sampler; never null while any server is alive
  /// (a capacity-proportional table is published at construction).
  /// Null only when every blade is down — shed_probability() is 1 then.
  [[nodiscard]] std::shared_ptr<const util::AliasTable> weights() const;

  /// Published routing fractions over all n servers (zeros for removed
  /// servers); empty when no table is published (all blades down).
  [[nodiscard]] std::vector<double> routing_fractions() const;

  /// Probability that admission control sheds an offered generic task.
  [[nodiscard]] double shed_probability() const noexcept;

  /// Monotone counter bumped on every urgent publication (degraded-mode
  /// transition, quarantine redistribution, checkpoint restore). Per-
  /// thread DispatchShards compare it against their cached value each
  /// route and refresh immediately on mismatch, instead of serving a
  /// stale table for up to refresh_interval more draws.
  [[nodiscard]] std::uint64_t publish_epoch() const noexcept {
    return publish_epoch_.load(std::memory_order_acquire);
  }

  // --- introspection (control thread only) ---

  [[nodiscard]] double estimated_lambda(double t) const;
  /// lambda''_i estimate the next solve would use: the online estimate
  /// once warmed up, the spec preload before that.
  [[nodiscard]] double estimated_special_rate(std::size_t i, double t) const;
  [[nodiscard]] unsigned available_blades(std::size_t i) const;
  [[nodiscard]] std::size_t alive_servers() const noexcept;
  /// The offered-rate estimate consumed by the last solve (< 0 before
  /// the first estimate-driven solve).
  [[nodiscard]] double last_solved_lambda() const noexcept { return solved_lambda_; }
  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }
  /// Surrogate-cache internals (builds, invalidations, hits) for the
  /// marginal_drift mode; all-zero when the mode is off.
  [[nodiscard]] const opt::MarginalCache::Stats& marginal_cache_stats() const noexcept {
    return mcache_.stats();
  }
  [[nodiscard]] const model::Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] std::size_t size() const noexcept { return cluster_.size(); }

  /// Health introspection; Healthy / 1.0 when health is disabled.
  [[nodiscard]] bool health_enabled() const noexcept { return health_ != nullptr; }
  [[nodiscard]] HealthState health_state(std::size_t i) const;
  [[nodiscard]] double health_score(std::size_t i) const;

  // --- resilience (control thread only) ---

  /// Which state machine state the published table came from.
  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// The diagnostic of the most recent contained solver failure
  /// (ErrorCode::Ok when the last re-solve succeeded).
  [[nodiscard]] const Error& last_solver_error() const noexcept { return last_error_; }

  /// True when the last-known-good split could be served at time t:
  /// it exists, is younger than lkg_max_age, and every server it routes
  /// to still has at least the blades it had when solved.
  [[nodiscard]] bool lkg_servable(double t) const noexcept;

  /// Age (event time) of the last successful solve at time t; t itself
  /// when no solve has succeeded yet. The SLO staleness objective.
  [[nodiscard]] double lkg_age(double t) const noexcept;

  /// Fault injection: the next `n` re-solves fail with a typed
  /// NonConvergence error instead of calling the optimizer, exercising
  /// the containment path deterministically (chaos harness hook).
  void arm_solver_fault(std::uint64_t n = 1) noexcept { armed_faults_ += n; }
  [[nodiscard]] std::uint64_t armed_faults() const noexcept { return armed_faults_; }

  /// Serializes the full control-plane state (topology view, estimator
  /// states, last solve, LKG, mode) as a version-1 JSON document; see
  /// docs/resilience.md for the schema.
  [[nodiscard]] std::string checkpoint_json() const;

  /// Restores state from checkpoint_json() output. Validates everything
  /// before mutating: a malformed document returns ParseError, a
  /// checkpoint for a different topology or estimator kind returns
  /// StaleState, inconsistent estimator snapshots return
  /// InvalidArgument — in all three cases *this is untouched. On success
  /// the checkpointed table is re-published and Ok is returned.
  [[nodiscard]] blade::Status restore_checkpoint(const std::string& json);

 private:
  /// Generic capacity of server i under the surviving blade count and the
  /// health tracker's effective-speed factor (1 when health is off).
  [[nodiscard]] double capacity(std::size_t i) const;
  /// Health-adjusted effective-speed multiplier (1 when health is off).
  [[nodiscard]] double health_factor(std::size_t i) const;
  /// True when at least one alive server is not quarantined; when false
  /// the fleet is "otherwise dark" and quarantined blades stay servable.
  [[nodiscard]] bool any_routable_alive() const;
  /// Runs the quarantine state machine every check_interval health events.
  void maybe_evaluate_health(double t);
  void evaluate_health(double t);
  /// Cheap quarantine containment: zeroes quarantined blades' published
  /// fractions and renormalizes — no optimizer call.
  void publish_quarantine(double t);
  void bump_publish_epoch() noexcept {
    publish_epoch_.fetch_add(1, std::memory_order_release);
  }
  [[nodiscard]] double special_rate_for_solve(std::size_t i, double t) const;
  void check_drift(double t);
  /// Marginal-drift criterion (cfg_.marginal_drift): surrogate-evaluated
  /// marginal spread of the published split vs drift_threshold, exact
  /// batched fallthrough inside the certified-error band. Returns true
  /// when it decided the check (resolve or skip); false to fall back to
  /// the estimate-based criterion (cache unusable, e.g. right after a
  /// checkpoint restore with no solved special rates).
  bool marginal_drift_check(double t, double lam);
  void resolve(double t);
  /// Validated publication: rejects any weight vector AliasTable would
  /// not accept (NaN/negative/all-zero) instead of publishing it.
  /// Returns false and leaves the previous table in place on rejection.
  bool publish(const std::vector<double>& weights, double shed_prob);
  void publish_fallback(double shed_prob, obs::Cause cause = obs::Cause::None);
  void publish_blackout(obs::Cause cause = obs::Cause::Infeasible);
  /// Failure containment: serve the LKG split while servable, otherwise
  /// the capacity-proportional fallback; never leaves the slot invalid.
  void contain(double t, double shed_prob, Error err);
  void remember_lkg(double t, double lambda, const std::vector<double>& weights);
  /// Mode change bookkeeping: on an actual transition records the
  /// ModeTransition event (with `cause`) and triggers a recorder
  /// auto-dump, so every degraded-mode change leaves an audit trail.
  void set_mode(Mode m, obs::Cause cause = obs::Cause::None);
  [[nodiscard]] double lkg_max_age() const noexcept;
  /// Repairs corrupt event times (non-finite or backwards → the last
  /// credible instant) so one poisoned timestamp cannot wedge the
  /// estimators or the drift check; counts repairs.
  [[nodiscard]] double sanitize_time(double t);

  /// Last successful solve, kept for degraded-mode serving.
  struct Lkg {
    bool valid = false;
    double time = 0.0;    ///< event time of the solve
    double lambda = 0.0;  ///< admitted lambda' it was solved for
    std::vector<double> weights;
    std::vector<unsigned> avail;  ///< blade counts it assumed
  };

  model::Cluster cluster_;
  ControllerConfig cfg_;
  std::vector<unsigned> avail_;  ///< surviving blades per server

  // One estimator pair per stream; only the configured kind is fed.
  std::vector<EwmaRateEstimator> ewma_;      ///< [0] = lambda', [i+1] = lambda''_i
  std::vector<WindowRateEstimator> window_;  ///< same layout

  opt::SolverWorkspace ws_;
  opt::ShardedWorkspace sws_;  ///< warm state for the sharded re-solve path
  opt::MarginalCache mcache_;  ///< certified marginal surrogates (marginal_drift)
  double solved_lambda_ = -1.0;
  std::vector<double> solved_special_;
  std::uint64_t arrivals_since_check_ = 0;
  ControllerStats stats_;

  Mode mode_ = Mode::Fallback;
  Error last_error_{ErrorCode::Ok, {}};
  Lkg lkg_;
  std::uint64_t armed_faults_ = 0;
  double last_event_time_ = 0.0;

  std::unique_ptr<HealthTracker> health_;  ///< null when health is off
  std::vector<HealthTransition> health_scratch_;
  std::uint64_t health_events_since_eval_ = 0;

  std::atomic<double> shed_prob_{0.0};
  std::atomic<std::uint64_t> publish_epoch_{0};
  detail::TableSlot table_;
};

}  // namespace blade::runtime
