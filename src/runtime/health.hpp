// Gray-failure detection for the control plane: per-blade health scoring
// and the quarantine state machine.
//
// A gray-failed blade (thermal slowdown, intermittent stall, flapping
// firmware) keeps answering the topology view — available_blades() stays
// positive — while its *effective* service rate silently collapses. The
// optimizer, solving against nominal speeds, keeps routing the
// optimal-for-healthy fraction at it and T' inflates. The HealthTracker
// closes that gap observationally: every server carries a dispatch-rate
// and a completion-rate EWMA (the same bias-corrected estimator the
// controller uses for lambda'), and the health *score* is their ratio
//
//     score_i(t) = completion_rate_i(t) / dispatch_rate_i(t)
//
// i.e. the observed completion rate against the model's expected rate —
// a stable healthy server completes what it is sent (score ~ 1), a
// degraded-but-overloaded server completes at its collapsed capacity
// (score ~ eff/nominal < 1), a stalled server decays toward 0.
//
// The score feeds a four-state machine with hysteresis thresholds and
// dwell times (see docs/resilience.md for the diagram and tuning guide):
//
//   Healthy ──score<suspect──▶ Suspect ──dwell/deep──▶ Quarantined
//      ▲                          │                        │
//      │◀──score>=recover─────────┘                  quarantine_dwell
//      │                                                   ▼
//      └──probation_dwell @ score>=recover────────── Probation
//                                 (score<quarantine ──▶ back to Quarantined)
//
// Suspect is a pure dwell filter (no routing change). Entering
// Quarantined tells the Controller to zero the blade's routing weight via
// a cheap redistribution (no re-solve). After quarantine_dwell the blade
// enters Probation: the Controller re-solves with the degraded effective
// speed (speed_factor()), which routes real probe traffic so the score
// becomes measurable again — sustained health through probation_dwell
// restores Healthy (and nominal speed), relapse re-quarantines.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/estimator.hpp"

namespace blade::runtime {

enum class HealthState : std::uint8_t { Healthy = 0, Suspect = 1, Quarantined = 2, Probation = 3 };

[[nodiscard]] const char* to_string(HealthState s) noexcept;

struct HealthConfig {
  /// Master switch; a disabled tracker scores nothing and every blade
  /// reads Healthy.
  bool enabled = false;
  /// EWMA half-life of the dispatch/completion rate estimators (event
  /// time). Shorter reacts faster, noisier.
  double half_life = 20.0;
  /// Healthy -> Suspect when the score drops below this.
  double suspect_threshold = 0.7;
  /// Deep-degradation fast path: a Suspect blade whose score falls below
  /// this quarantines immediately (a hard stall should not wait out the
  /// dwell); also the relapse threshold in Probation.
  double quarantine_threshold = 0.45;
  /// Suspect/Probation -> Healthy requires the score back above this
  /// (hysteresis: recover_threshold > suspect_threshold).
  double recover_threshold = 0.9;
  /// Time a blade must stay Suspect (score still below suspect_threshold)
  /// before it quarantines.
  double suspect_dwell = 8.0;
  /// Minimum time in Quarantined before probation probes begin.
  double quarantine_dwell = 30.0;
  /// Sustained healthy time in Probation before the full clear.
  double probation_dwell = 20.0;
  /// No scoring before this many dispatches were observed on the blade
  /// (cold estimators divide noise by noise).
  std::uint64_t min_dispatches = 16;
  /// No scoring while the dispatch-rate estimate is below this floor
  /// (a drained blade has no expected rate to miss).
  double min_dispatch_rate = 1e-3;
  /// Floor on the probation effective-speed factor handed to the solver,
  /// so a near-zero score still buys enough probe traffic to measure.
  double probe_speed_floor = 0.05;

  /// Throws std::invalid_argument on out-of-domain fields.
  void validate() const;
};

/// One state-machine edge, reported by HealthTracker::evaluate.
struct HealthTransition {
  std::size_t server = 0;
  HealthState from = HealthState::Healthy;
  HealthState to = HealthState::Healthy;
  double score = 1.0;
  double time = 0.0;
};

class HealthTracker {
 public:
  HealthTracker(std::size_t n, HealthConfig cfg, double start_time = 0.0);

  /// A generic task was routed to server i at time t (the expected-rate
  /// side of the score).
  void on_dispatch(double t, std::size_t i);

  /// A task completed at server i at time t (the observed-rate side).
  void on_completion(double t, std::size_t i);

  /// Runs every blade's score and state machine at time t, appending any
  /// transitions to `out`. Returns true when at least one edge fired.
  bool evaluate(double t, std::vector<HealthTransition>& out);

  [[nodiscard]] HealthState state(std::size_t i) const;
  [[nodiscard]] double score(std::size_t i) const;
  /// False only for Quarantined blades — the routing exclusion set.
  [[nodiscard]] bool routable(std::size_t i) const;
  /// Effective-speed multiplier the solver should assume for server i:
  /// 1 for Healthy/Suspect, the degraded estimate (floored at
  /// probe_speed_floor) for Probation and Quarantined.
  [[nodiscard]] double speed_factor(std::size_t i) const;
  [[nodiscard]] std::size_t quarantined_count() const noexcept { return quarantined_; }

  /// Forgets server i's gray history (state back to Healthy, estimators
  /// re-baselined at t). Hard failure/recovery supersedes gray scoring.
  void reset_server(std::size_t i, double t);

  /// reset_server for the whole fleet (checkpoint restore).
  void reset_all(double t);

  [[nodiscard]] const HealthConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t size() const noexcept { return blades_.size(); }

 private:
  struct Blade {
    HealthState state = HealthState::Healthy;
    double since = 0.0;   ///< time of the last state change
    double score = 1.0;   ///< last computed (or carried) score
    double factor = 1.0;  ///< solver speed factor (set on quarantine entry)
    EwmaRateEstimator dispatch;
    EwmaRateEstimator completion;
    std::uint64_t dispatches = 0;
    std::uint64_t completions = 0;

    Blade(double half_life, double t) : dispatch(half_life, t), completion(half_life, t) {}
  };

  /// Score with evidence gating: returns the fresh ratio when the blade
  /// has enough observed dispatch flow, otherwise carries b.score.
  [[nodiscard]] double compute_score(const Blade& b, double t) const;
  void enter(Blade& b, std::size_t i, HealthState to, double t, std::vector<HealthTransition>& out);

  HealthConfig cfg_;
  std::vector<Blade> blades_;
  std::size_t quarantined_ = 0;
};

}  // namespace blade::runtime
