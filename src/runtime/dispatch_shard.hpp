// Per-thread dispatch sharding: the data-plane half of the controller's
// atomic weight publication. The control plane publishes an AliasTable
// snapshot through Controller::weights() (a refcount bump under a
// micro-spinlock); paying that acquisition per routed task caps
// throughput long before the O(1) alias draw does. A DispatchShard is
// the per-thread routing state — an owned table snapshot, a counter
// until the next refresh, and a dedicated xoshiro256++ stream — so the
// steady-state route() is: two RNG draws, one fused 16-byte bucket
// probe, no shared-memory traffic. K dispatcher threads hold K
// independent shards over one controller and scale linearly (the same
// per-thread-cell idiom as src/obs's metric cells).
//
// Determinism contract: the routed sequence of a shard is a pure
// function of (seed, stream, refresh_interval, and the sequence of
// tables its refresh points observe). With a quiescent control plane the
// sequence is exactly reproducible across runs and layouts — the pinned
// regression tests fix it bitwise — and sample_n(B) draws are identical
// to B successive route() calls.
//
// Threading contract: a shard belongs to ONE dispatch thread; none of
// its members are synchronized. All cross-thread traffic goes through
// Controller::weights()/shed at refresh points, which are any-thread
// safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "runtime/controller.hpp"
#include "util/alias_table.hpp"
#include "util/fast_rng.hpp"

namespace blade::runtime {

/// The shard RNG (xoshiro256++ with SplitMix64 stream seeding) now lives
/// in util/fast_rng.hpp so the dispatch-policy family can share it; the
/// alias keeps every existing runtime::FastRng use source-compatible.
using FastRng = util::FastRng;

struct DispatchShardConfig {
  std::uint64_t seed = 0;
  /// Stream id, typically the dispatch thread index: distinct streams
  /// over one seed are decorrelated.
  std::uint64_t stream = 0;
  /// route() calls served from one snapshot before re-reading
  /// Controller::weights(). Bounds staleness in *tasks* (a republished
  /// table steers this shard within refresh_interval draws) and
  /// amortizes the slot acquisition to 1/refresh_interval per task.
  std::uint64_t refresh_interval = 64;

  void validate() const;
};

class DispatchShard {
 public:
  /// Returned by route() when nothing is publishable (blackout): every
  /// blade down, the controller's table is null.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// The controller must outlive the shard.
  DispatchShard(const Controller& ctrl, DispatchShardConfig cfg);

  /// Destination server index for one task (npos during blackout).
  [[nodiscard]] std::size_t route();

  /// Batched routing: fills `out` with one destination per task,
  /// identical to out.size() successive route() calls (same RNG draw
  /// order, same refresh points), but hoists the snapshot pointer and
  /// refresh bookkeeping out of the per-task path.
  void sample_n(std::span<std::size_t> out);

  /// Forces the next route() to observe the current published table.
  void invalidate_snapshot() noexcept { until_refresh_ = 0; }

  /// The snapshot currently being routed from (null during blackout or
  /// before the first route()).
  [[nodiscard]] const std::shared_ptr<const util::AliasTable>& snapshot() const noexcept {
    return table_;
  }

  [[nodiscard]] const DispatchShardConfig& config() const noexcept { return cfg_; }
  /// Tasks routed (including npos blackout answers) since construction.
  [[nodiscard]] std::uint64_t routed() const noexcept { return routed_; }
  /// Snapshot refreshes performed since construction.
  [[nodiscard]] std::uint64_t refreshes() const noexcept { return refreshes_; }

 private:
  void refresh();

  const Controller* ctrl_;
  DispatchShardConfig cfg_;
  std::shared_ptr<const util::AliasTable> table_;
  /// Controller::publish_epoch() observed at the last refresh. An urgent
  /// publication (degraded-mode transition, quarantine redistribution,
  /// checkpoint restore) bumps the controller's counter; the mismatch
  /// forces a refresh on the very next route instead of serving the
  /// displaced table for up to refresh_interval more draws.
  std::uint64_t seen_epoch_ = 0;
  std::uint64_t until_refresh_ = 0;
  std::uint64_t routed_ = 0;
  std::uint64_t refreshes_ = 0;
  FastRng rng_;
};

}  // namespace blade::runtime
