#include "runtime/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace blade::runtime {

void ControllerConfig::validate() const {
  if (!(half_life > 0.0) || !std::isfinite(half_life)) {
    throw std::invalid_argument("ControllerConfig: half_life must be > 0");
  }
  if (!(window >= 0.0) || !std::isfinite(window)) {
    throw std::invalid_argument("ControllerConfig: window must be >= 0");
  }
  if (!(drift_threshold >= 0.0) || !std::isfinite(drift_threshold)) {
    throw std::invalid_argument("ControllerConfig: drift_threshold must be >= 0");
  }
  if (check_interval < 1) {
    throw std::invalid_argument("ControllerConfig: check_interval must be >= 1");
  }
  if (!(utilization_ceiling > 0.0) || !(utilization_ceiling < 1.0)) {
    throw std::invalid_argument("ControllerConfig: utilization_ceiling must be in (0, 1)");
  }
  if (!(initial_lambda >= 0.0) || !std::isfinite(initial_lambda)) {
    throw std::invalid_argument("ControllerConfig: initial_lambda must be >= 0");
  }
  if (!(lkg_max_age >= 0.0) || !std::isfinite(lkg_max_age)) {
    throw std::invalid_argument("ControllerConfig: lkg_max_age must be >= 0");
  }
  if (prune_top_k > 0 && shard_cells == 0) {
    throw std::invalid_argument("ControllerConfig: prune_top_k requires shard_cells > 0");
  }
  if (marginal_drift) {
    // Surrogate options are validated up front so a bad configuration
    // throws at construction, not from a drift check mid-stream.
    if (marginal_cache.segments < 2) {
      throw std::invalid_argument("ControllerConfig: marginal_cache.segments must be >= 2");
    }
    if (marginal_cache.certify_samples < 1) {
      throw std::invalid_argument("ControllerConfig: marginal_cache.certify_samples must be >= 1");
    }
    if (!(marginal_cache.safety_factor >= 1.0)) {
      throw std::invalid_argument("ControllerConfig: marginal_cache.safety_factor must be >= 1");
    }
    if (!(marginal_cache.domain_margin > 0.0) || !(marginal_cache.domain_margin < 1.0)) {
      throw std::invalid_argument("ControllerConfig: marginal_cache.domain_margin must be in (0, 1)");
    }
  }
  health.validate();
  solver.validate();
}

const char* to_string(Mode m) noexcept {
  switch (m) {
    case Mode::Optimal: return "optimal";
    case Mode::LastKnownGood: return "last_known_good";
    case Mode::Fallback: return "fallback";
    case Mode::Blackout: return "blackout";
  }
  return "unknown";
}

double ControllerStats::shed_fraction() const noexcept {
  const std::uint64_t offered = admitted + shed;
  return offered > 0 ? static_cast<double>(shed) / static_cast<double>(offered) : 0.0;
}

Controller::Controller(model::Cluster cluster, ControllerConfig cfg)
    : cluster_(std::move(cluster)), cfg_(cfg), mcache_(cfg_.marginal_cache) {
  cfg_.validate();
  const std::size_t n = cluster_.size();
  avail_.resize(n);
  for (std::size_t i = 0; i < n; ++i) avail_[i] = cluster_.server(i).size();
  solved_special_.assign(n, -1.0);

  const double win = cfg_.window > 0.0 ? cfg_.window : 4.0 * cfg_.half_life;
  if (cfg_.estimator == EstimatorKind::Ewma) {
    ewma_.reserve(n + 1);
    for (std::size_t i = 0; i < n + 1; ++i) ewma_.emplace_back(cfg_.half_life, 0.0);
  } else {
    window_.reserve(n + 1);
    for (std::size_t i = 0; i < n + 1; ++i) window_.emplace_back(win, 0.0);
  }

  if (cfg_.health.enabled) {
    health_ = std::make_unique<HealthTracker>(n, cfg_.health, 0.0);
    health_scratch_.reserve(n);
  }

  if (cfg_.initial_lambda > 0.0) {
    resolve(0.0);
  } else {
    publish_fallback(0.0);
  }
}

double Controller::health_factor(std::size_t i) const {
  return health_ ? health_->speed_factor(i) : 1.0;
}

bool Controller::any_routable_alive() const {
  for (std::size_t i = 0; i < avail_.size(); ++i) {
    if (avail_[i] > 0 && (!health_ || health_->routable(i))) return true;
  }
  return false;
}

double Controller::capacity(std::size_t i) const {
  return static_cast<double>(avail_[i]) * cluster_.server(i).speed() * health_factor(i) /
         cluster_.rbar();
}

double Controller::estimated_lambda(double t) const {
  return cfg_.estimator == EstimatorKind::Ewma ? ewma_[0].rate(t) : window_[0].rate(t);
}

double Controller::estimated_special_rate(std::size_t i, double t) const {
  if (i >= cluster_.size()) throw std::invalid_argument("Controller: server index out of range");
  const std::uint64_t seen =
      cfg_.estimator == EstimatorKind::Ewma ? ewma_[i + 1].count() : window_[i + 1].count();
  if (seen < cfg_.min_arrivals) return cluster_.server(i).special_rate();
  return cfg_.estimator == EstimatorKind::Ewma ? ewma_[i + 1].rate(t) : window_[i + 1].rate(t);
}

double Controller::special_rate_for_solve(std::size_t i, double t) const {
  // Clamp below the surviving capacity so the effective per-server model
  // stays constructible even when the estimate (or the nominal preload
  // after blade loss) would saturate the server on its own.
  return std::min(estimated_special_rate(i, t), cfg_.utilization_ceiling * capacity(i));
}

unsigned Controller::available_blades(std::size_t i) const {
  if (i >= avail_.size()) throw std::invalid_argument("Controller: server index out of range");
  return avail_[i];
}

std::size_t Controller::alive_servers() const noexcept {
  std::size_t alive = 0;
  for (unsigned a : avail_) {
    if (a > 0) ++alive;
  }
  return alive;
}

std::shared_ptr<const util::AliasTable> Controller::weights() const {
  return table_.load();
}

std::vector<double> Controller::routing_fractions() const {
  const auto table = weights();
  return table ? table->fractions() : std::vector<double>{};
}

double Controller::shed_probability() const noexcept {
  return shed_prob_.load(std::memory_order_relaxed);
}

double Controller::sanitize_time(double t) {
  if (std::isfinite(t) && t >= last_event_time_) {
    last_event_time_ = t;
    return t;
  }
  // Non-finite or backwards clock: the event is real, the timestamp is
  // not. Repair to the last credible instant so one poisoned time cannot
  // wedge the estimators, the drift check, or the LKG staleness bound.
  ++stats_.rejected_observations;
  BLADE_OBS_COUNT("runtime.rejected_observations");
  return last_event_time_;
}

bool Controller::on_generic_arrival(double t, double u) {
  t = sanitize_time(t);
  ++stats_.generic_arrivals;
  BLADE_OBS_COUNT("runtime.generic_arrivals");
  if (cfg_.estimator == EstimatorKind::Ewma) {
    ewma_[0].try_observe(t);
  } else {
    window_[0].try_observe(t);
  }
  if (++arrivals_since_check_ >= cfg_.check_interval) {
    arrivals_since_check_ = 0;
    check_drift(t);
  }
  // A NaN draw fails the comparison and admits -- the caller's RNG lied,
  // not the task; shedding stays driven by healthy draws.
  const bool admit = !(u < shed_prob_.load(std::memory_order_relaxed));
  if (admit) {
    ++stats_.admitted;
    BLADE_OBS_COUNT("runtime.admitted");
  } else {
    ++stats_.shed;
    BLADE_OBS_COUNT("runtime.shed_tasks");
  }
  return admit;
}

void Controller::on_special_arrival(double t, std::size_t i) {
  if (i >= cluster_.size()) throw std::invalid_argument("Controller: server index out of range");
  t = sanitize_time(t);
  ++stats_.special_arrivals;
  BLADE_OBS_COUNT("runtime.special_arrivals");
  if (cfg_.estimator == EstimatorKind::Ewma) {
    ewma_[i + 1].try_observe(t);
  } else {
    window_[i + 1].try_observe(t);
  }
}

void Controller::on_failure(double t, std::size_t i, unsigned blades) {
  if (i >= avail_.size()) throw std::invalid_argument("Controller: server index out of range");
  t = sanitize_time(t);
  ++stats_.failures;
  BLADE_OBS_COUNT("runtime.failures");
  const unsigned before = avail_[i];
  avail_[i] = blades == 0 ? 0u : avail_[i] - std::min(avail_[i], blades);
  BLADE_OBS_EVENT(BladeFail, i, avail_[i], before - avail_[i], t);
  // Hard failure supersedes gray scoring: the topology view already
  // carries the outage, so stale health state must not double-penalize
  // the blade when it returns.
  if (health_) health_->reset_server(i, t);
  // The cached phi bracket belongs to the old topology; only the seed
  // would survive prepare(), and even that is stale now.
  ws_.clear();
  sws_.clear();
  BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Failure, 0.0, cfg_.drift_threshold, t);
  resolve(t);
}

void Controller::on_recovery(double t, std::size_t i, unsigned blades) {
  if (i >= avail_.size()) throw std::invalid_argument("Controller: server index out of range");
  t = sanitize_time(t);
  ++stats_.recoveries;
  BLADE_OBS_COUNT("runtime.recoveries");
  const unsigned before = avail_[i];
  const unsigned full = cluster_.server(i).size();
  avail_[i] = blades == 0 ? full : std::min(full, avail_[i] + blades);
  BLADE_OBS_EVENT(BladeRecover, i, avail_[i], avail_[i] - before, t);
  if (health_) health_->reset_server(i, t);
  ws_.clear();
  sws_.clear();
  BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Recovery, 0.0, cfg_.drift_threshold, t);
  resolve(t);
}

void Controller::resolve_now(double t) {
  t = sanitize_time(t);
  BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Forced, 0.0, cfg_.drift_threshold, t);
  resolve(t);
}

void Controller::on_dispatch(double t, std::size_t i) {
  if (!health_) return;
  if (i >= cluster_.size()) throw std::invalid_argument("Controller: server index out of range");
  t = sanitize_time(t);
  health_->on_dispatch(t, i);
  maybe_evaluate_health(t);
}

void Controller::on_completion(double t, std::size_t i) {
  if (!health_) return;
  if (i >= cluster_.size()) throw std::invalid_argument("Controller: server index out of range");
  t = sanitize_time(t);
  health_->on_completion(t, i);
  maybe_evaluate_health(t);
}

void Controller::maybe_evaluate_health(double t) {
  // Same cadence knob as the drift check: scoring every dispatch +
  // completion would double the per-task control cost for no detection
  // benefit (the EWMAs integrate between evaluations anyway).
  if (++health_events_since_eval_ < cfg_.check_interval) return;
  health_events_since_eval_ = 0;
  evaluate_health(t);
}

void Controller::evaluate_health(double t) {
  health_scratch_.clear();
  if (!health_->evaluate(t, health_scratch_)) return;
  bool need_resolve = false;
  bool need_redistribute = false;
  obs::Cause cause = obs::Cause::None;
  for (const auto& tr : health_scratch_) {
    ++stats_.health_transitions;
    BLADE_OBS_COUNT("runtime.health.transitions");
    BLADE_OBS_EVENT(HealthTransition, tr.server,
                    static_cast<double>(static_cast<std::uint8_t>(tr.from)),
                    static_cast<double>(static_cast<std::uint8_t>(tr.to)), tr.score);
    switch (tr.to) {
      case HealthState::Quarantined:
        ++stats_.quarantines;
        BLADE_OBS_COUNT("runtime.health.quarantines");
        // Containment is urgent and cheap: zero the blade's weight and
        // renormalize, no optimizer call.
        need_redistribute = true;
        break;
      case HealthState::Probation:
        ++stats_.probations;
        BLADE_OBS_COUNT("runtime.health.probations");
        // Probing needs real (small) flow: re-solve with the degraded
        // effective speed so the optimizer allocates probe traffic.
        need_resolve = true;
        if (cause == obs::Cause::None) cause = obs::Cause::Probation;
        break;
      case HealthState::Healthy:
        if (tr.from == HealthState::Probation) {
          ++stats_.health_recoveries;
          BLADE_OBS_COUNT("runtime.health.recoveries");
          need_resolve = true;
          cause = obs::Cause::HealthRecovered;
        }
        break;
      case HealthState::Suspect:
        break;  // dwell filter only; no routing change yet
    }
  }
  BLADE_OBS_GAUGE_SET("runtime.health.quarantined",
                      static_cast<double>(health_->quarantined_count()));
  if (need_resolve) {
    // The effective topology changed (a blade's solver speed moved), so
    // the cached bracket/seed are stale — same treatment as fail/recover.
    ws_.clear();
    sws_.clear();
    BLADE_OBS_EVENT(ResolveTrigger, cause, 0.0, cfg_.drift_threshold, t);
    resolve(t);
  } else if (need_redistribute) {
    publish_quarantine(t);
  }
}

void Controller::publish_quarantine(double t) {
  // Fleet otherwise dark: with no healthy alternative, degraded service
  // beats no service — keep the current table and let the state machine
  // probe its way out.
  if (!any_routable_alive()) return;
  std::vector<double> w = routing_fractions();
  if (w.size() == cluster_.size()) {
    bool changed = false;
    double total = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (avail_[i] == 0 || !health_->routable(i)) {
        if (w[i] > 0.0) {
          w[i] = 0.0;
          changed = true;
        }
      } else {
        total += w[i];
      }
    }
    if (!changed) return;  // the quarantined blade carried no weight
    BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Quarantine, 0.0, 0.0, t);
    if (total > 0.0 && publish(w, shed_probability())) {
      // Mode intentionally unchanged: this is containment on top of
      // whatever split was being served, not a degradation of it (and a
      // degraded mode would trigger DegradedRetry full re-solves,
      // defeating the cheap path).
      ++stats_.quarantine_publications;
      BLADE_OBS_COUNT("runtime.health.quarantine_publications");
      bump_publish_epoch();
      return;
    }
  }
  // No redistributable table (blackout, or every weighted blade is now
  // quarantined): the proportional fallback below also skips quarantined
  // blades.
  publish_fallback(shed_probability(), obs::Cause::Quarantine);
  bump_publish_epoch();
}

HealthState Controller::health_state(std::size_t i) const {
  if (i >= cluster_.size()) throw std::invalid_argument("Controller: server index out of range");
  return health_ ? health_->state(i) : HealthState::Healthy;
}

double Controller::health_score(std::size_t i) const {
  if (i >= cluster_.size()) throw std::invalid_argument("Controller: server index out of range");
  return health_ ? health_->score(i) : 1.0;
}

void Controller::check_drift(double t) {
  const std::uint64_t seen =
      cfg_.estimator == EstimatorKind::Ewma ? ewma_[0].count() : window_[0].count();
  if (seen < cfg_.min_arrivals) return;  // estimator still warming up
  if (solved_lambda_ < 0.0) {
    BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Warmup, 0.0, cfg_.drift_threshold, t);
    resolve(t);
    return;
  }
  if (mode_ != Mode::Optimal) {
    // Degraded: keep retrying every check until a solve lands, bypassing
    // hysteresis -- serving a stale or proportional split is a condition
    // to exit, not a steady state to settle into.
    BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::DegradedRetry, 0.0, cfg_.drift_threshold, t);
    resolve(t);
    return;
  }
  const double lam = estimated_lambda(t);
  if (cfg_.marginal_drift && marginal_drift_check(t, lam)) return;
  double drift = std::abs(lam - solved_lambda_) / std::max(solved_lambda_, 1e-12);
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    if (avail_[i] == 0 || solved_special_[i] < 0.0) continue;
    // Special-stream drift normalized by the server's capacity: a tiny
    // absolute move on a near-idle stream should not force a re-solve.
    drift = std::max(drift, std::abs(special_rate_for_solve(i, t) - solved_special_[i]) /
                                std::max(capacity(i), 1e-12));
  }
  if (drift > cfg_.drift_threshold) {
    BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Drift, drift, cfg_.drift_threshold, t);
    resolve(t);
  } else {
    ++stats_.skipped_by_hysteresis;
    BLADE_OBS_COUNT("runtime.skipped_by_hysteresis");
  }
}

bool Controller::marginal_drift_check(double t, double lam) {
  // Feasibility dimension first, still estimate-based: the marginal
  // spread cannot see a pure load-level change (a near-optimal split
  // stays near-optimal as lambda' scales), but admission control must
  // engage the moment lam crosses the admissible ceiling — and track it
  // while shedding — which only a re-solve does.
  double lambda_max = 0.0;
  std::vector<std::size_t> alive;
  alive.reserve(cluster_.size());
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    if (avail_[i] == 0) continue;
    // Quarantined blades were excluded from the last solve (their solved
    // preload is the -1 sentinel) and carry no published weight; they are
    // outside the optimality question until probation re-solves.
    if (health_ && !health_->routable(i)) continue;
    if (solved_special_[i] < 0.0) return false;  // no solved preloads: legacy criterion
    alive.push_back(i);
    lambda_max += capacity(i) - solved_special_[i];
  }
  if (alive.empty() || !(lambda_max > 0.0)) return false;
  const double ceiling = cfg_.utilization_ceiling * lambda_max;
  if (lam >= ceiling || shed_prob_.load(std::memory_order_relaxed) > 0.0) {
    BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Drift, lam, ceiling, t);
    resolve(t);
    return true;
  }

  const auto table = weights();
  if (!table) return false;
  const auto& frac = table->fractions();
  if (frac.size() != cluster_.size()) return false;

  if (!mcache_.valid()) {
    // New solve epoch: pin the surviving queues (solved preloads, current
    // blade counts). Per-server surrogates still build lazily inside the
    // cache, so only servers the check touches pay the fit.
    std::vector<queue::BladeQueue> queues;
    queues.reserve(alive.size());
    for (std::size_t i : alive) {
      queues.emplace_back(avail_[i], cluster_.rbar() / cluster_.server(i).speed(),
                          solved_special_[i], cfg_.discipline);
    }
    mcache_.configure(std::move(queues));
  }

  // Marginal spread of the published split at the estimated load. Active
  // servers (positive fraction) should sit at one common marginal phi;
  // zero-rate servers satisfy the KKT side g_i(0) >= phi, so for them
  // only a marginal *below* the active level counts as drift.
  std::vector<double> rates(alive.size());
  for (std::size_t j = 0; j < alive.size(); ++j) rates[j] = frac[alive[j]] * lam;
  double gmin = 0.0, gmax = 0.0, gsum = 0.0, emax = 0.0;
  std::size_t active = 0;
  for (std::size_t j = 0; j < alive.size(); ++j) {
    if (!(rates[j] > 0.0)) continue;
    const auto ev = mcache_.eval(j, rates[j]);
    if (!ev) {
      ++stats_.mcache_out_of_domain;
      BLADE_OBS_COUNT("runtime.mcache.out_of_domain_checks");
      BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Drift, rates[j], 0.0, t);
      resolve(t);
      return true;
    }
    gmin = active == 0 ? ev->g : std::min(gmin, ev->g);
    gmax = active == 0 ? ev->g : std::max(gmax, ev->g);
    gsum += ev->g;
    emax = std::max(emax, ev->bound);
    ++active;
  }
  if (active == 0) return false;
  const double mean = gsum / static_cast<double>(active);
  double stat = (gmax - gmin) / std::max(mean, 1e-300);
  for (std::size_t j = 0; j < alive.size(); ++j) {
    if (rates[j] > 0.0) continue;
    const auto ev = mcache_.eval(j, 0.0);
    if (!ev) continue;  // zero is always in domain; defensive only
    emax = std::max(emax, ev->bound);
    stat = std::max(stat, (mean - ev->g) / std::max(mean, 1e-300));
  }

  // Certified error of the spread statistic: every surrogate value is
  // within emax of exact, so the statistic is within roughly
  // (2 emax + stat * emax) / (mean - emax) of its exact value.
  const double err = (2.0 + stat) * emax / std::max(mean - emax, 1e-300);
  if (std::abs(stat - cfg_.drift_threshold) <= err) {
    // Certified error straddles the hysteresis band: the surrogate
    // cannot decide — fall through to the exact batched kernel.
    ++stats_.mcache_fallthroughs;
    BLADE_OBS_COUNT("runtime.mcache.fallthrough");
    std::vector<double> ge(alive.size());
    mcache_.exact(rates, ge);
    double egmin = 0.0, egmax = 0.0, egsum = 0.0;
    std::size_t eactive = 0;
    for (std::size_t j = 0; j < alive.size(); ++j) {
      if (!(rates[j] > 0.0)) continue;
      egmin = eactive == 0 ? ge[j] : std::min(egmin, ge[j]);
      egmax = eactive == 0 ? ge[j] : std::max(egmax, ge[j]);
      egsum += ge[j];
      ++eactive;
    }
    const double emean = egsum / static_cast<double>(eactive);
    stat = (egmax - egmin) / std::max(emean, 1e-300);
    for (std::size_t j = 0; j < alive.size(); ++j) {
      if (rates[j] > 0.0) continue;
      stat = std::max(stat, (emean - ge[j]) / std::max(emean, 1e-300));
    }
  } else {
    ++stats_.mcache_hits;
    BLADE_OBS_COUNT("runtime.mcache.hit");
  }

  if (stat > cfg_.drift_threshold) {
    BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Drift, stat, cfg_.drift_threshold, t);
    resolve(t);
  } else {
    ++stats_.skipped_by_hysteresis;
    BLADE_OBS_COUNT("runtime.skipped_by_hysteresis");
  }
  return true;
}

void Controller::set_mode(Mode m, obs::Cause cause) {
  const Mode from = mode_;
  mode_ = m;
  BLADE_OBS_GAUGE_SET("runtime.degraded_mode", static_cast<double>(m));
  if (from == m) return;
  // Urgent publication: per-thread dispatch shards must not serve the
  // displaced table for up to refresh_interval more draws.
  bump_publish_epoch();
  ++stats_.mode_transitions;
  BLADE_OBS_COUNT("runtime.mode_transitions");
  BLADE_OBS_EVENT(ModeTransition, cause, static_cast<double>(from), static_cast<double>(m),
                  last_event_time_);
  // Every degraded-mode transition snapshots the flight recorder: the
  // dump's tail is the causal prefix explaining why the mode changed.
  BLADE_OBS_DUMP(std::string("mode:") + to_string(m));
}

double Controller::lkg_max_age() const noexcept {
  return cfg_.lkg_max_age > 0.0 ? cfg_.lkg_max_age : 8.0 * cfg_.half_life;
}

bool Controller::lkg_servable(double t) const noexcept {
  if (!lkg_.valid) return false;
  if (!(t - lkg_.time <= lkg_max_age())) return false;
  for (std::size_t i = 0; i < lkg_.weights.size(); ++i) {
    // A server the LKG routes to must keep every blade it was solved
    // with: fewer blades means the stale split could overload it. A
    // quarantined server disqualifies it the same way — serving the LKG
    // would route real weight at a blade health just fenced off.
    if (lkg_.weights[i] > 0.0 && avail_[i] < lkg_.avail[i]) return false;
    if (lkg_.weights[i] > 0.0 && health_ && !health_->routable(i)) return false;
  }
  return true;
}

double Controller::lkg_age(double t) const noexcept {
  return lkg_.valid ? std::max(0.0, t - lkg_.time) : std::max(0.0, t);
}

void Controller::remember_lkg(double t, double lambda, const std::vector<double>& weights) {
  lkg_.valid = true;
  lkg_.time = t;
  lkg_.lambda = lambda;
  lkg_.weights = weights;
  lkg_.avail = avail_;
}

bool Controller::publish(const std::vector<double>& weights, double shed_prob) {
  auto table = util::AliasTable::try_make(weights);
  if (!table) return false;  // never publish NaN/negative/empty weights
  shed_prob_.store(shed_prob, std::memory_order_relaxed);
  table_.store(std::make_shared<const util::AliasTable>(std::move(table).value()));
  ++stats_.publications;
  BLADE_OBS_COUNT("runtime.publications");
  BLADE_OBS_GAUGE_SET("runtime.shed_probability", shed_prob);
  BLADE_OBS_EVENT(AliasPublish, stats_.publications, shed_prob, 0.0, last_event_time_);
  return true;
}

void Controller::publish_blackout(obs::Cause cause) {
  if (mode_ == Mode::Blackout) return;  // already serving nothing
  shed_prob_.store(1.0, std::memory_order_relaxed);
  table_.store(nullptr);
  ++stats_.publications;
  BLADE_OBS_COUNT("runtime.publications");
  BLADE_OBS_GAUGE_SET("runtime.shed_probability", 1.0);
  BLADE_OBS_EVENT(AliasPublish, stats_.publications, 1.0, 0.0, last_event_time_);
  set_mode(Mode::Blackout, cause);
}

void Controller::publish_fallback(double shed_prob, obs::Cause cause) {
  // Generic-capacity-proportional split over the surviving servers: any
  // feasible admitted total split this way keeps every server below its
  // own bound, so the fallback is safe whatever the (unknown) load is.
  std::vector<double> w(cluster_.size(), 0.0);
  double total = 0.0;
  const bool dark = health_ && !any_routable_alive();
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    if (avail_[i] == 0) continue;
    // Quarantined blades get no fallback weight either — unless the
    // fleet is otherwise dark, where degraded service beats blackout.
    if (health_ && !dark && !health_->routable(i)) continue;
    const double gc =
        capacity(i) - std::min(cluster_.server(i).special_rate(),
                               cfg_.utilization_ceiling * capacity(i));
    w[i] = std::max(gc, 0.0);
    total += w[i];
  }
  if (total > 0.0 && publish(w, shed_prob)) {
    set_mode(Mode::Fallback, cause);
  } else {
    publish_blackout(cause);
  }
}

void Controller::contain(double t, double shed_prob, Error err) {
  BLADE_OBS_TIMER("runtime.fallback_publish_seconds");
  ++stats_.solver_failures;
  BLADE_OBS_COUNT("runtime.solver_failures");
  BLADE_OBS_COUNT("runtime.fallback_publications");
  last_error_ = std::move(err);
  if (lkg_servable(t) && publish(lkg_.weights, shed_prob)) {
    ++stats_.lkg_publications;
    BLADE_OBS_COUNT("runtime.fallback_lkg");
    set_mode(Mode::LastKnownGood, obs::Cause::SolverError);
    return;
  }
  ++stats_.fallback_publications;
  BLADE_OBS_COUNT("runtime.fallback_proportional");
  publish_fallback(shed_prob, obs::Cause::SolverError);
}

void Controller::resolve(double t) {
  ++stats_.resolves;
  BLADE_OBS_COUNT("runtime.resolves");
  // Whatever this solve concludes, the surrogates fitted for the
  // previous epoch (old topology, old solved preloads) are stale.
  if (cfg_.marginal_drift) mcache_.invalidate();
  BLADE_OBS_TIMER("runtime.resolve_seconds");
  // Unconditional wall timing (two clock reads per re-solve): the SLO
  // resolve-latency monitor needs it even in BLADE_OBS=OFF builds.
  struct ResolveTimer {
    ControllerStats& stats;
    std::uint64_t t0 = obs::monotonic_ns();
    ~ResolveTimer() {
      const double elapsed = static_cast<double>(obs::monotonic_ns() - t0) * 1e-9;
      stats.last_resolve_seconds = elapsed;
      stats.resolve_seconds_total += elapsed;
    }
  } resolve_timer{stats_};

  const std::uint64_t seen =
      cfg_.estimator == EstimatorKind::Ewma ? ewma_[0].count() : window_[0].count();
  const double lam_hat =
      seen >= cfg_.min_arrivals ? estimated_lambda(t) : cfg_.initial_lambda;
  BLADE_OBS_GAUGE_SET("runtime.estimated_lambda", lam_hat);

  // Surviving topology and the special preloads the solve will assume.
  // Quarantined blades are excluded (their solved preload stays the -1
  // sentinel, so the drift check skips them too) unless the fleet is
  // otherwise dark — then degraded service beats blackout.
  const bool dark = health_ && !any_routable_alive();
  std::vector<std::size_t> alive;
  alive.reserve(cluster_.size());
  std::vector<double> special(cluster_.size(), -1.0);
  double lambda_max = 0.0;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    if (avail_[i] == 0) continue;
    if (health_ && !dark && !health_->routable(i)) continue;
    alive.push_back(i);
    special[i] = special_rate_for_solve(i, t);
    lambda_max += capacity(i) - special[i];
  }

  if (alive.empty() || !(lambda_max > 0.0)) {
    solved_lambda_ = lam_hat;
    solved_special_ = special;
    ++stats_.infeasible_resolves;
    BLADE_OBS_COUNT("runtime.infeasible_resolves");
    publish_blackout(obs::Cause::Infeasible);
    return;
  }

  const double target = std::min(lam_hat, cfg_.utilization_ceiling * lambda_max);
  const double shed_prob = lam_hat > 0.0 ? std::max(0.0, 1.0 - target / lam_hat) : 0.0;
  solved_lambda_ = lam_hat;
  solved_special_ = special;
  if (shed_prob > 0.0) {
    ++stats_.infeasible_resolves;
    BLADE_OBS_COUNT("runtime.infeasible_resolves");
    BLADE_OBS_EVENT(ShedDecision, 0, lam_hat, cfg_.utilization_ceiling * lambda_max, shed_prob);
  }

  if (!(target > 0.0)) {
    // Nothing measurable to place yet: publish the safe proportional
    // split and wait for load.
    publish_fallback(shed_prob, obs::Cause::NoLoad);
    return;
  }

  std::vector<model::BladeServer> servers;
  servers.reserve(alive.size());
  for (std::size_t i : alive) {
    // The solver sees the health-degraded effective speed: a Probation
    // blade gets its frozen quarantine-era estimate (floored), so the
    // optimizer allocates probe-sized flow instead of the nominal share.
    servers.emplace_back(avail_[i], cluster_.server(i).speed() * health_factor(i), special[i]);
  }
  model::Cluster surviving(std::move(servers), cluster_.rbar());
  const auto sol = [&]() -> Expected<opt::LoadDistribution> {
    if (armed_faults_ > 0) {
      --armed_faults_;
      ++stats_.injected_faults;
      BLADE_OBS_COUNT("runtime.injected_solver_faults");
      BLADE_OBS_EVENT(ChaosInject, obs::Cause::InjectedFault, t, 0.0, 0.0);
      return Error{ErrorCode::NonConvergence, "injected solver fault"};
    }
    if (cfg_.shard_cells > 0) {
      // Fleet-scale path: class-coalesced cells keep the re-solve
      // O(classes) per probe; the controller only needs rates, so the
      // per-server metric expansion is skipped.
      opt::ShardOptions shard;
      shard.cells = std::min(cfg_.shard_cells, alive.size());
      shard.prune.top_k = cfg_.prune_top_k;
      shard.finalize_metrics = false;
      const opt::ShardedOptimizer solver(std::move(surviving), cfg_.discipline, cfg_.solver,
                                         shard);
      auto res = solver.try_optimize(target, par::global_pool(), sws_);
      if (!res) return res.error();
      return std::move(res).value().dist;
    }
    const opt::LoadDistributionOptimizer solver(std::move(surviving), cfg_.discipline,
                                                cfg_.solver);
    return solver.try_optimize(target, ws_);
  }();
  if (!sol) {
    contain(t, shed_prob, sol.error());
    return;
  }

  std::vector<double> w(cluster_.size(), 0.0);
  for (std::size_t k = 0; k < alive.size(); ++k) w[alive[k]] = sol.value().rates[k];
  if (publish(w, shed_prob)) {
    set_mode(Mode::Optimal, obs::Cause::None);
    last_error_ = Error{ErrorCode::Ok, {}};
    remember_lkg(t, target, w);
  } else {
    BLADE_OBS_EVENT(ResolveTrigger, obs::Cause::Unpublishable, 0.0, 0.0, t);
    contain(t, shed_prob,
            Error{ErrorCode::NonFinite, "resolve: solver returned an unpublishable weight vector"});
  }
}

}  // namespace blade::runtime
