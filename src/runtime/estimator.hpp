// Online arrival-rate estimation for the load-distribution controller.
// Two estimators with the same observe/rate surface:
//
//   EwmaRateEstimator    exponentially decayed arrival count. With decay
//                        alpha = ln 2 / half_life the decayed count W(t)
//                        has expectation lambda (1 - e^{-alpha (t-t0)})
//                        / alpha under a Poisson stream, so the
//                        bias-corrected estimate
//                            alpha W(t) / (1 - e^{-alpha (t-t0)})
//                        is unbiased from the very first arrivals and
//                        tracks a step change with residual 2^{-k} after
//                        k half-lives.
//
//   WindowRateEstimator  arrivals inside a sliding window divided by the
//                        covered span — an unbiased boxcar average,
//                        sharper cutoff, more memory (one timestamp per
//                        retained arrival).
//
// Both require non-decreasing observation times (simulated or wall time,
// the controller feeds event timestamps).
#pragma once

#include <cstdint>
#include <deque>

namespace blade::runtime {

class EwmaRateEstimator {
 public:
  /// @param half_life   time for a sample's weight to halve, > 0
  /// @param start_time  when observation began (the correction baseline)
  explicit EwmaRateEstimator(double half_life, double start_time = 0.0);

  /// One arrival at time t (>= the previous observation).
  void observe(double t);

  /// Bias-corrected rate estimate at time t (0 before any arrival).
  [[nodiscard]] double rate(double t) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double half_life() const noexcept;

  /// Forgets all arrivals and restarts the bias baseline at t.
  void reset(double start_time);

 private:
  double alpha_;
  double start_;
  double last_ = 0.0;    ///< time of the last arrival
  double weight_ = 0.0;  ///< decayed arrival count at last_
  std::uint64_t count_ = 0;
};

class WindowRateEstimator {
 public:
  /// @param window      boxcar span, > 0
  /// @param start_time  when observation began
  explicit WindowRateEstimator(double window, double start_time = 0.0);

  void observe(double t);

  /// Arrivals within (t - window, t] over the covered span
  /// min(window, t - start). 0 before time advances past start.
  [[nodiscard]] double rate(double t) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double window() const noexcept { return window_; }

  void reset(double start_time);

 private:
  double window_;
  double start_;
  double last_ = 0.0;
  std::deque<double> times_;  ///< retained arrival timestamps (sorted)
  std::uint64_t count_ = 0;
};

}  // namespace blade::runtime
