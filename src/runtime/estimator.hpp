// Online arrival-rate estimation for the load-distribution controller.
// Two estimators with the same observe/rate surface:
//
//   EwmaRateEstimator    exponentially decayed arrival count. With decay
//                        alpha = ln 2 / half_life the decayed count W(t)
//                        has expectation lambda (1 - e^{-alpha (t-t0)})
//                        / alpha under a Poisson stream, so the
//                        bias-corrected estimate
//                            alpha W(t) / (1 - e^{-alpha (t-t0)})
//                        is unbiased from the very first arrivals and
//                        tracks a step change with residual 2^{-k} after
//                        k half-lives.
//
//   WindowRateEstimator  arrivals inside a sliding window divided by the
//                        covered span — an unbiased boxcar average,
//                        sharper cutoff, more memory (one timestamp per
//                        retained arrival).
//
// Both require non-decreasing observation times (simulated or wall time,
// the controller feeds event timestamps).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/status.hpp"

namespace blade::runtime {

/// Serializable EwmaRateEstimator state (controller checkpoints).
struct EwmaState {
  double half_life = 0.0;
  double start = 0.0;
  double last = 0.0;
  double weight = 0.0;
  std::uint64_t count = 0;
};

/// Serializable WindowRateEstimator state (controller checkpoints).
struct WindowState {
  double window = 0.0;
  double start = 0.0;
  double last = 0.0;
  std::vector<double> times;  ///< retained timestamps, non-decreasing
  std::uint64_t count = 0;
};

class EwmaRateEstimator {
 public:
  /// @param half_life   time for a sample's weight to halve, > 0
  /// @param start_time  when observation began (the correction baseline)
  explicit EwmaRateEstimator(double half_life, double start_time = 0.0);

  /// One arrival at time t (>= the previous observation).
  void observe(double t);

  /// Containment-grade ingestion for feeds that may be corrupted: a
  /// non-finite t is dropped, a backwards t is clamped to the last
  /// observation time (the arrival still counts — only its timestamp was
  /// lying). Returns true when the sample was applied as given, false
  /// when it was dropped or repaired. Never throws.
  bool try_observe(double t) noexcept;

  /// Snapshot / restore for checkpointing. restore() validates the
  /// snapshot (finite fields, half_life > 0, last >= start, weight >= 0)
  /// and returns ErrorCode::InvalidArgument without touching *this when
  /// it is inconsistent.
  [[nodiscard]] EwmaState state() const;
  [[nodiscard]] blade::Status restore(const EwmaState& s);

  /// Bias-corrected rate estimate at time t (0 before any arrival).
  [[nodiscard]] double rate(double t) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double half_life() const noexcept;

  /// Forgets all arrivals and restarts the bias baseline at t.
  void reset(double start_time);

 private:
  double alpha_;
  double start_;
  double last_ = 0.0;    ///< time of the last arrival
  double weight_ = 0.0;  ///< decayed arrival count at last_
  std::uint64_t count_ = 0;
};

class WindowRateEstimator {
 public:
  /// @param window      boxcar span, > 0
  /// @param start_time  when observation began
  explicit WindowRateEstimator(double window, double start_time = 0.0);

  void observe(double t);

  /// Same contract as EwmaRateEstimator::try_observe.
  bool try_observe(double t) noexcept;

  /// Snapshot / restore for checkpointing; restore() additionally
  /// requires the retained timestamps to be finite, non-decreasing, and
  /// <= last.
  [[nodiscard]] WindowState state() const;
  [[nodiscard]] blade::Status restore(const WindowState& s);

  /// Arrivals within (t - window, t] over the covered span
  /// min(window, t - start). 0 before time advances past start.
  [[nodiscard]] double rate(double t) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double window() const noexcept { return window_; }

  void reset(double start_time);

 private:
  double window_;
  double start_;
  double last_ = 0.0;
  std::deque<double> times_;  ///< retained arrival timestamps (sorted)
  std::uint64_t count_ = 0;
};

}  // namespace blade::runtime
