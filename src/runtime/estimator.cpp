#include "runtime/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace blade::runtime {

namespace {

constexpr double kLn2 = 0.69314718055994530942;

void check_time(double t, double last, const char* who) {
  if (!std::isfinite(t) || t < last) {
    throw std::invalid_argument(std::string(who) + ": observation times must be non-decreasing");
  }
}

}  // namespace

EwmaRateEstimator::EwmaRateEstimator(double half_life, double start_time)
    : alpha_(kLn2 / half_life), start_(start_time), last_(start_time) {
  if (!(half_life > 0.0) || !std::isfinite(half_life)) {
    throw std::invalid_argument("EwmaRateEstimator: half_life must be > 0");
  }
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("EwmaRateEstimator: start_time must be finite");
  }
}

double EwmaRateEstimator::half_life() const noexcept { return kLn2 / alpha_; }

void EwmaRateEstimator::observe(double t) {
  check_time(t, last_, "EwmaRateEstimator");
  weight_ = weight_ * std::exp(-alpha_ * (t - last_)) + 1.0;
  last_ = t;
  ++count_;
}

double EwmaRateEstimator::rate(double t) const {
  if (count_ == 0 || !(t > start_)) return 0.0;
  const double w = weight_ * std::exp(-alpha_ * std::max(0.0, t - last_));
  const double denom = -std::expm1(-alpha_ * (t - start_));  // 1 - e^{-alpha (t - t0)}
  if (!(denom > 0.0)) return 0.0;
  return alpha_ * w / denom;
}

bool EwmaRateEstimator::try_observe(double t) noexcept {
  if (!std::isfinite(t)) return false;  // corrupted timestamp: drop
  if (t < last_) {
    // Backwards clock: the arrival is real, its timestamp is not. Count
    // it at the last credible instant instead of poisoning the decay.
    weight_ += 1.0;
    ++count_;
    return false;
  }
  weight_ = weight_ * std::exp(-alpha_ * (t - last_)) + 1.0;
  last_ = t;
  ++count_;
  return true;
}

EwmaState EwmaRateEstimator::state() const {
  return EwmaState{kLn2 / alpha_, start_, last_, weight_, count_};
}

blade::Status EwmaRateEstimator::restore(const EwmaState& s) {
  if (!(s.half_life > 0.0) || !std::isfinite(s.half_life) || !std::isfinite(s.start) ||
      !std::isfinite(s.last) || s.last < s.start || !(s.weight >= 0.0) ||
      !std::isfinite(s.weight)) {
    return blade::make_error(blade::ErrorCode::InvalidArgument,
                             "EwmaRateEstimator: inconsistent snapshot");
  }
  alpha_ = kLn2 / s.half_life;
  start_ = s.start;
  last_ = s.last;
  weight_ = s.weight;
  count_ = s.count;
  return {};
}

void EwmaRateEstimator::reset(double start_time) {
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("EwmaRateEstimator: start_time must be finite");
  }
  start_ = start_time;
  last_ = start_time;
  weight_ = 0.0;
  count_ = 0;
}

WindowRateEstimator::WindowRateEstimator(double window, double start_time)
    : window_(window), start_(start_time), last_(start_time) {
  if (!(window > 0.0) || !std::isfinite(window)) {
    throw std::invalid_argument("WindowRateEstimator: window must be > 0");
  }
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("WindowRateEstimator: start_time must be finite");
  }
}

void WindowRateEstimator::observe(double t) {
  check_time(t, last_, "WindowRateEstimator");
  last_ = t;
  times_.push_back(t);
  ++count_;
  while (!times_.empty() && times_.front() <= t - window_) times_.pop_front();
}

double WindowRateEstimator::rate(double t) const {
  if (!(t > start_)) return 0.0;
  const double span = std::min(window_, t - start_);
  // Retained timestamps are sorted; count those still inside the window.
  const auto first = std::upper_bound(times_.begin(), times_.end(), t - window_);
  const auto in_window = static_cast<double>(std::distance(first, times_.end()));
  return in_window / span;
}

bool WindowRateEstimator::try_observe(double t) noexcept {
  if (!std::isfinite(t)) return false;  // corrupted timestamp: drop
  const bool repaired = t < last_;
  const double at = repaired ? last_ : t;
  try {
    last_ = at;
    times_.push_back(at);
    ++count_;
    while (!times_.empty() && times_.front() <= at - window_) times_.pop_front();
  } catch (...) {
    return false;  // allocation failure: the sample is lost, nothing corrupted
  }
  return !repaired;
}

WindowState WindowRateEstimator::state() const {
  return WindowState{window_, start_, last_, {times_.begin(), times_.end()}, count_};
}

blade::Status WindowRateEstimator::restore(const WindowState& s) {
  bool ok = (s.window > 0.0) && std::isfinite(s.window) && std::isfinite(s.start) &&
            std::isfinite(s.last) && s.last >= s.start && s.count >= s.times.size();
  double prev = -std::numeric_limits<double>::infinity();
  for (double t : s.times) {
    ok = ok && std::isfinite(t) && t >= prev && t <= s.last;
    prev = t;
  }
  if (!ok) {
    return blade::make_error(blade::ErrorCode::InvalidArgument,
                             "WindowRateEstimator: inconsistent snapshot");
  }
  window_ = s.window;
  start_ = s.start;
  last_ = s.last;
  times_.assign(s.times.begin(), s.times.end());
  count_ = s.count;
  return {};
}

void WindowRateEstimator::reset(double start_time) {
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("WindowRateEstimator: start_time must be finite");
  }
  start_ = start_time;
  last_ = start_time;
  times_.clear();
  count_ = 0;
}

}  // namespace blade::runtime
