#include "runtime/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace blade::runtime {

namespace {

constexpr double kLn2 = 0.69314718055994530942;

void check_time(double t, double last, const char* who) {
  if (!std::isfinite(t) || t < last) {
    throw std::invalid_argument(std::string(who) + ": observation times must be non-decreasing");
  }
}

}  // namespace

EwmaRateEstimator::EwmaRateEstimator(double half_life, double start_time)
    : alpha_(kLn2 / half_life), start_(start_time), last_(start_time) {
  if (!(half_life > 0.0) || !std::isfinite(half_life)) {
    throw std::invalid_argument("EwmaRateEstimator: half_life must be > 0");
  }
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("EwmaRateEstimator: start_time must be finite");
  }
}

double EwmaRateEstimator::half_life() const noexcept { return kLn2 / alpha_; }

void EwmaRateEstimator::observe(double t) {
  check_time(t, last_, "EwmaRateEstimator");
  weight_ = weight_ * std::exp(-alpha_ * (t - last_)) + 1.0;
  last_ = t;
  ++count_;
}

double EwmaRateEstimator::rate(double t) const {
  if (count_ == 0 || !(t > start_)) return 0.0;
  const double w = weight_ * std::exp(-alpha_ * std::max(0.0, t - last_));
  const double denom = -std::expm1(-alpha_ * (t - start_));  // 1 - e^{-alpha (t - t0)}
  if (!(denom > 0.0)) return 0.0;
  return alpha_ * w / denom;
}

void EwmaRateEstimator::reset(double start_time) {
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("EwmaRateEstimator: start_time must be finite");
  }
  start_ = start_time;
  last_ = start_time;
  weight_ = 0.0;
  count_ = 0;
}

WindowRateEstimator::WindowRateEstimator(double window, double start_time)
    : window_(window), start_(start_time), last_(start_time) {
  if (!(window > 0.0) || !std::isfinite(window)) {
    throw std::invalid_argument("WindowRateEstimator: window must be > 0");
  }
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("WindowRateEstimator: start_time must be finite");
  }
}

void WindowRateEstimator::observe(double t) {
  check_time(t, last_, "WindowRateEstimator");
  last_ = t;
  times_.push_back(t);
  ++count_;
  while (!times_.empty() && times_.front() <= t - window_) times_.pop_front();
}

double WindowRateEstimator::rate(double t) const {
  if (!(t > start_)) return 0.0;
  const double span = std::min(window_, t - start_);
  // Retained timestamps are sorted; count those still inside the window.
  const auto first = std::upper_bound(times_.begin(), times_.end(), t - window_);
  const auto in_window = static_cast<double>(std::distance(first, times_.end()));
  return in_window / span;
}

void WindowRateEstimator::reset(double start_time) {
  if (!std::isfinite(start_time)) {
    throw std::invalid_argument("WindowRateEstimator: start_time must be finite");
  }
  start_ = start_time;
  last_ = start_time;
  times_.clear();
  count_ = 0;
}

}  // namespace blade::runtime
