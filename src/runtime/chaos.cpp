#include "runtime/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"

namespace blade::runtime {

namespace {

// Stream ids disjoint from the replay driver's (1000003/1000019/1000033)
// and the special sources' (2i+1), so adding chaos never perturbs the
// healthy part of the event sequence.
constexpr std::uint64_t kObsStream = 2000003;
constexpr std::uint64_t kSolverStream = 2000017;
constexpr std::uint64_t kFlapStream = 2000039;
constexpr std::uint64_t kGrayStream = 2000053;

void check_prob(double p, const char* name) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument(std::string("ChaosProfile: ") + name + " must be in [0, 1]");
  }
}

}  // namespace

void ChaosProfile::validate() const {
  check_prob(dropout_prob, "dropout_prob");
  check_prob(spike_prob, "spike_prob");
  check_prob(timewarp_prob, "timewarp_prob");
  check_prob(solver_fault_prob, "solver_fault_prob");
  if (!(flap_rate >= 0.0) || !std::isfinite(flap_rate)) {
    throw std::invalid_argument("ChaosProfile: flap_rate must be >= 0");
  }
  if (!(slowdown_rate >= 0.0) || !std::isfinite(slowdown_rate)) {
    throw std::invalid_argument("ChaosProfile: slowdown_rate must be >= 0");
  }
  if (!(slowdown_factor > 0.0) || !(slowdown_factor <= 1.0)) {
    throw std::invalid_argument("ChaosProfile: slowdown_factor must be in (0, 1]");
  }
  if (!(stall_rate >= 0.0) || !std::isfinite(stall_rate)) {
    throw std::invalid_argument("ChaosProfile: stall_rate must be >= 0");
  }
}

Expected<ChaosProfile> chaos_profile(const std::string& name) {
  if (name == "none") return ChaosProfile{};
  if (name == "light") {
    return ChaosProfile{.dropout_prob = 0.01,
                        .spike_prob = 0.005,
                        .timewarp_prob = 0.005,
                        .solver_fault_prob = 0.002,
                        .flap_rate = 1.0};
  }
  if (name == "moderate") {
    return ChaosProfile{.dropout_prob = 0.05,
                        .spike_prob = 0.02,
                        .timewarp_prob = 0.02,
                        .solver_fault_prob = 0.01,
                        .flap_rate = 3.0};
  }
  if (name == "heavy") {
    return ChaosProfile{.dropout_prob = 0.15,
                        .spike_prob = 0.08,
                        .timewarp_prob = 0.08,
                        .solver_fault_prob = 0.05,
                        .flap_rate = 8.0};
  }
  // Gray presets leave the hard-fault knobs at 0 so the gray battery
  // isolates detection: everything that goes wrong is invisible to the
  // topology view.
  if (name == "gray-light") {
    return ChaosProfile{.slowdown_rate = 1.0, .slowdown_factor = 0.4, .stall_rate = 0.5};
  }
  if (name == "gray-moderate") {
    return ChaosProfile{.slowdown_rate = 2.0, .slowdown_factor = 0.3, .stall_rate = 1.0};
  }
  if (name == "gray-heavy") {
    return ChaosProfile{.flap_rate = 1.0,
                        .slowdown_rate = 3.0,
                        .slowdown_factor = 0.2,
                        .stall_rate = 2.0};
  }
  return make_error(ErrorCode::InvalidArgument,
                    "chaos_profile: unknown profile '" + name +
                        "' (expected none, light, moderate, heavy, gray-light, gray-moderate, or "
                        "gray-heavy)");
}

FaultInjector::FaultInjector(std::uint64_t seed, ChaosProfile profile)
    : profile_(profile),
      obs_rng_(seed, kObsStream),
      solver_rng_(seed, kSolverStream),
      flap_rng_(seed, kFlapStream),
      gray_rng_(seed, kGrayStream) {
  profile_.validate();
}

ObservationFault FaultInjector::corrupt_observation(double t) {
  ObservationFault f;
  f.time = t;
  if (obs_rng_.uniform() < profile_.dropout_prob) {
    f.drop = true;
    ++dropped_;
    BLADE_OBS_EVENT(ChaosInject, obs::Cause::ChaosDrop, t, 0.0, 0.0);
    return f;  // a dropped observation can't also spike or warp
  }
  if (obs_rng_.uniform() < profile_.spike_prob) {
    f.phantoms = 1 + static_cast<unsigned>(obs_rng_.below(8));
    phantoms_ += f.phantoms;
    BLADE_OBS_EVENT(ChaosInject, obs::Cause::ChaosPhantom, t, f.phantoms, 0.0);
  }
  if (obs_rng_.uniform() < profile_.timewarp_prob) {
    ++timewarps_;
    BLADE_OBS_EVENT(ChaosInject, obs::Cause::ChaosTimewarp, t, 0.0, 0.0);
    const double u = obs_rng_.uniform();
    if (u < 1.0 / 3.0) {
      f.time = std::numeric_limits<double>::quiet_NaN();
    } else if (u < 2.0 / 3.0) {
      f.time = -t;  // sign flip
    } else {
      f.time = t * obs_rng_.uniform();  // backwards warp into the past
    }
  }
  return f;
}

bool FaultInjector::should_fault_solver() {
  if (!(profile_.solver_fault_prob > 0.0)) return false;
  if (solver_rng_.uniform() < profile_.solver_fault_prob) {
    ++solver_faults_;
    return true;
  }
  return false;
}

std::vector<ReplayEvent> FaultInjector::flap_events(double horizon, std::size_t n_servers) {
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument("FaultInjector: horizon must be > 0");
  }
  std::vector<ReplayEvent> out;
  if (!(profile_.flap_rate > 0.0)) return out;
  // Per-server alternating fail/recover walk: outages occupy roughly a
  // tenth of each cycle, and strict alternation guarantees no duplicate
  // failure of an already-failed server.
  const double cycle = horizon / profile_.flap_rate;
  for (std::size_t s = 0; s < n_servers; ++s) {
    double t = flap_rng_.exponential(cycle);
    while (t < horizon) {
      out.push_back({.time = t, .kind = ReplayEvent::Kind::Fail, .server = s, .blades = 0});
      t += flap_rng_.exponential(0.1 * cycle);
      if (t >= horizon) break;  // down at the horizon; that's chaos
      out.push_back({.time = t, .kind = ReplayEvent::Kind::Recover, .server = s, .blades = 0});
      t += flap_rng_.exponential(cycle);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ReplayEvent& a, const ReplayEvent& b) { return a.time < b.time; });
  return out;
}

std::vector<ReplayEvent> FaultInjector::gray_events(double horizon, std::size_t n_servers) {
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument("FaultInjector: horizon must be > 0");
  }
  std::vector<ReplayEvent> out;
  const double total_rate = profile_.slowdown_rate + profile_.stall_rate;
  if (!(total_rate > 0.0)) return out;
  // Per-server alternating episode walk (same shape as flap_events):
  // episodes occupy roughly a fifth of each cycle for slowdowns and a
  // twentieth for stalls, strict alternation keeps episodes disjoint per
  // server, and each episode's kind is drawn by rate share so a mixed
  // profile interleaves both.
  const double cycle = horizon / total_rate;
  for (std::size_t s = 0; s < n_servers; ++s) {
    double t = gray_rng_.exponential(cycle);
    while (t < horizon) {
      const bool slowdown = gray_rng_.uniform() * total_rate < profile_.slowdown_rate;
      if (slowdown) {
        // Jittered degradation around the profile factor, clamped into
        // (0, 1) so the episode is always a real slowdown.
        const double jitter = 0.7 + 0.6 * gray_rng_.uniform();
        const double factor = std::min(std::max(profile_.slowdown_factor * jitter, 0.05), 0.95);
        out.push_back({.time = t,
                       .kind = ReplayEvent::Kind::Slow,
                       .server = s,
                       .blades = 0,
                       .factor = factor});
        t += gray_rng_.exponential(0.2 * cycle);
        if (t >= horizon) break;  // degraded at the horizon; that's chaos
        out.push_back(
            {.time = t, .kind = ReplayEvent::Kind::Slow, .server = s, .blades = 0, .factor = 1.0});
      } else {
        out.push_back({.time = t, .kind = ReplayEvent::Kind::Stall, .server = s, .blades = 0});
        t += gray_rng_.exponential(0.05 * cycle);
        if (t >= horizon) break;  // stalled at the horizon
        out.push_back({.time = t, .kind = ReplayEvent::Kind::Unstall, .server = s, .blades = 0});
      }
      t += gray_rng_.exponential(cycle);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ReplayEvent& a, const ReplayEvent& b) { return a.time < b.time; });
  return out;
}

}  // namespace blade::runtime
