#include "runtime/replay.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/chaos.hpp"

#include "sim/arrivals.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/service.hpp"
#include "util/fileio.hpp"

namespace blade::runtime {

void ReplayTrace::validate(std::size_t n) const {
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument("ReplayTrace: horizon must be > 0");
  }
  for (const auto& e : events) {
    if (!std::isfinite(e.time) || e.time < 0.0) {
      throw std::invalid_argument("ReplayTrace: event times must be finite and >= 0");
    }
    if (e.kind == ReplayEvent::Kind::Rate) {
      if (!std::isfinite(e.rate) || e.rate < 0.0) {
        throw std::invalid_argument("ReplayTrace: rates must be finite and >= 0");
      }
    } else if (e.server >= n) {
      throw std::invalid_argument("ReplayTrace: server index out of range");
    }
    if (e.kind == ReplayEvent::Kind::Slow &&
        (!std::isfinite(e.factor) || e.factor <= 0.0 || e.factor > 1.0)) {
      throw std::invalid_argument("ReplayTrace: slowdown factor must be in (0, 1]");
    }
  }
}

namespace {

Error parse_fail(std::size_t line_no, const std::string& what) {
  std::ostringstream msg;
  msg << "parse_replay_trace: line " << line_no << ": " << what;
  return make_error(ErrorCode::ParseError, msg.str());
}

}  // namespace

Expected<ReplayTrace> try_parse_replay_trace(const std::string& text) {
  ReplayTrace trace;
  bool have_horizon = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  double last_time = 0.0;
  // Which servers the trace has fully failed so far, to reject the
  // contradictory "fail again what is already gone".
  std::vector<bool> fully_failed;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank / comment-only line
    if (keyword == "horizon") {
      if (!(fields >> trace.horizon)) return parse_fail(line_no, "horizon needs a number");
      have_horizon = true;
    } else if (keyword == "seed") {
      if (!(fields >> trace.seed)) return parse_fail(line_no, "seed needs an integer");
    } else if (keyword == "rate") {
      ReplayEvent e;
      e.kind = ReplayEvent::Kind::Rate;
      if (!(fields >> e.time >> e.rate)) return parse_fail(line_no, "rate needs <t> <lambda>");
      if (!std::isfinite(e.rate) || e.rate < 0.0) {
        return parse_fail(line_no, "rate must be finite and >= 0");
      }
      trace.events.push_back(e);
    } else if (keyword == "fail" || keyword == "recover") {
      ReplayEvent e;
      e.kind = keyword == "fail" ? ReplayEvent::Kind::Fail : ReplayEvent::Kind::Recover;
      if (!(fields >> e.time >> e.server)) {
        return parse_fail(line_no, keyword + " needs <t> <server>");
      }
      fields >> e.blades;  // optional; stays 0 (= all) when absent
      if (e.server >= fully_failed.size()) fully_failed.resize(e.server + 1, false);
      if (e.kind == ReplayEvent::Kind::Fail && e.blades == 0) {
        if (fully_failed[e.server]) {
          return parse_fail(line_no, "server " + std::to_string(e.server) +
                                         " is already fully failed");
        }
        fully_failed[e.server] = true;
      } else if (e.kind == ReplayEvent::Kind::Recover) {
        fully_failed[e.server] = false;
      }
      trace.events.push_back(e);
    } else if (keyword == "slow") {
      ReplayEvent e;
      e.kind = ReplayEvent::Kind::Slow;
      if (!(fields >> e.time >> e.server >> e.factor)) {
        return parse_fail(line_no, "slow needs <t> <server> <factor>");
      }
      if (!std::isfinite(e.factor) || e.factor <= 0.0 || e.factor > 1.0) {
        return parse_fail(line_no, "slowdown factor must be in (0, 1]");
      }
      trace.events.push_back(e);
    } else if (keyword == "stall" || keyword == "unstall") {
      ReplayEvent e;
      e.kind = keyword == "stall" ? ReplayEvent::Kind::Stall : ReplayEvent::Kind::Unstall;
      if (!(fields >> e.time >> e.server)) {
        return parse_fail(line_no, keyword + " needs <t> <server>");
      }
      trace.events.push_back(e);
    } else {
      return parse_fail(line_no, "unknown keyword '" + keyword + "'");
    }
    if (!trace.events.empty() && keyword != "horizon" && keyword != "seed") {
      const double t = trace.events.back().time;
      if (!std::isfinite(t) || t < 0.0) {
        return parse_fail(line_no, "event time must be finite and >= 0");
      }
      if (t < last_time) return parse_fail(line_no, "event times must be non-decreasing");
      last_time = t;
    }
    std::string extra;
    if (fields.clear(), fields >> extra) return parse_fail(line_no, "trailing tokens");
  }
  if (!have_horizon) {
    return make_error(ErrorCode::ParseError, "parse_replay_trace: missing 'horizon' line");
  }
  return trace;
}

ReplayTrace parse_replay_trace(const std::string& text) {
  auto trace = try_parse_replay_trace(text);
  if (!trace) throw std::invalid_argument(trace.error().context);
  return std::move(trace).value();
}

std::string to_text(const ReplayTrace& trace) {
  std::ostringstream out;
  out.precision(17);
  out << "horizon " << trace.horizon << "\n";
  out << "seed " << trace.seed << "\n";
  for (const auto& e : trace.events) {
    switch (e.kind) {
      case ReplayEvent::Kind::Rate:
        out << "rate " << e.time << " " << e.rate << "\n";
        break;
      case ReplayEvent::Kind::Fail:
        out << "fail " << e.time << " " << e.server << " " << e.blades << "\n";
        break;
      case ReplayEvent::Kind::Recover:
        out << "recover " << e.time << " " << e.server << " " << e.blades << "\n";
        break;
      case ReplayEvent::Kind::Slow:
        out << "slow " << e.time << " " << e.server << " " << e.factor << "\n";
        break;
      case ReplayEvent::Kind::Stall:
        out << "stall " << e.time << " " << e.server << "\n";
        break;
      case ReplayEvent::Kind::Unstall:
        out << "unstall " << e.time << " " << e.server << "\n";
        break;
    }
  }
  return out.str();
}

ReplayTrace reference_failure_trace(const model::Cluster& cluster, double horizon) {
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument("reference_failure_trace: horizon must be > 0");
  }
  ReplayTrace trace;
  trace.horizon = horizon;
  const double lambda_max = cluster.max_generic_rate();
  // Diurnal shape: trough at the edges, a sustained peak over the middle
  // third — the peak overlaps the outage, so the surviving capacity is
  // exceeded exactly there and nowhere else.
  const double shape[] = {0.35, 0.55, 0.80, 0.80, 0.55, 0.35};
  for (std::size_t k = 0; k < 6; ++k) {
    ReplayEvent e;
    e.kind = ReplayEvent::Kind::Rate;
    e.time = horizon * static_cast<double>(k) / 6.0;
    e.rate = shape[k] * lambda_max;
    trace.events.push_back(e);
  }
  std::size_t biggest = 0;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    if (cluster.server(i).capacity(cluster.rbar()) >
        cluster.server(biggest).capacity(cluster.rbar())) {
      biggest = i;
    }
  }
  trace.events.push_back(
      {.time = horizon / 3.0, .kind = ReplayEvent::Kind::Fail, .server = biggest});
  trace.events.push_back(
      {.time = 2.0 * horizon / 3.0, .kind = ReplayEvent::Kind::Recover, .server = biggest});
  // The text format requires time order; keep to_text() round-trippable.
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const ReplayEvent& a, const ReplayEvent& b) { return a.time < b.time; });
  return trace;
}

namespace {

/// Maps one trace event onto the simulator's failure schedule (Rate
/// events are driver concerns and are skipped). Fail/recover keep their
/// semantics; gray events carry the slowdown factor / stall toggles.
void append_sim_event(sim::FailureSchedule& sched, const ReplayEvent& e) {
  switch (e.kind) {
    case ReplayEvent::Kind::Rate:
      return;
    case ReplayEvent::Kind::Fail:
      sched.events.push_back({e.time, sim::FailureKind::Failure, e.server, e.blades});
      return;
    case ReplayEvent::Kind::Recover:
      sched.events.push_back({e.time, sim::FailureKind::Recovery, e.server, e.blades});
      return;
    case ReplayEvent::Kind::Slow:
      sched.events.push_back({e.time, sim::FailureKind::Slowdown, e.server, 0, e.factor});
      return;
    case ReplayEvent::Kind::Stall:
      sched.events.push_back({e.time, sim::FailureKind::StallStart, e.server, 0});
      return;
    case ReplayEvent::Kind::Unstall:
      sched.events.push_back({e.time, sim::FailureKind::StallEnd, e.server, 0});
      return;
  }
}

/// Variable-rate generic Poisson source feeding the controller for
/// admission and the published alias table for routing. Rate changes
/// cancel and re-draw the pending interarrival — valid because the
/// exponential is memoryless.
struct GenericDriver {
  sim::Engine& engine;
  Controller& controller;
  const std::vector<sim::ServerSim*>& servers;
  sim::ServiceDistribution work;
  sim::RngStream arrivals;
  sim::RngStream routing;
  sim::RngStream admission;
  FaultInjector* chaos = nullptr;
  double rate = 0.0;
  sim::EventId pending = 0;
  bool has_pending = false;
  std::uint64_t dispatch_sample = 0;  ///< record every Nth dispatch (0 = off)
  std::uint64_t dispatches = 0;
  std::uint64_t rate_epoch = 0;
  std::uint64_t routes_to_quarantined = 0;  ///< see ReplayResult

  void set_rate(double r) {
    if (has_pending) {
      engine.cancel(pending);
      has_pending = false;
    }
    rate = r;
    BLADE_OBS_EVENT(EpochMark, rate_epoch++, engine.now(), r, 0.0);
    schedule_next();
  }

  void schedule_next() {
    if (!(rate > 0.0)) return;
    pending = engine.schedule(arrivals.exponential(1.0 / rate), [this] { fire(); });
    has_pending = true;
  }

  void fire() {
    has_pending = false;
    const double t = engine.now();
    bool heard = true;  // did the controller's telemetry see this arrival?
    double report_t = t;
    if (chaos != nullptr) {
      const ObservationFault f = chaos->corrupt_observation(t);
      heard = !f.drop;
      report_t = f.time;
      // Phantom spikes: telemetry reports arrivals that never happened.
      // A draw of 2.0 can never be shed, so phantoms perturb only the
      // estimators and counters, not the routed workload.
      for (unsigned k = 0; heard && k < f.phantoms; ++k) {
        (void)controller.on_generic_arrival(report_t, 2.0);
      }
      if (chaos->should_fault_solver()) controller.arm_solver_fault();
    }
    // A dropped observation still carries a real task: it routes through
    // the published table, bypassing admission the controller never saw.
    const bool admit = heard ? controller.on_generic_arrival(report_t, admission.uniform()) : true;
    if (admit) {
      const auto table = controller.weights();
      if (table && table->size() == servers.size()) {
        sim::Task task;
        task.cls = sim::TaskClass::Generic;
        task.work = work.sample(arrivals);
        const std::size_t dest = table->sample(routing.uniform(), routing.uniform());
        ++dispatches;
        if (dispatch_sample > 0 && dispatches % dispatch_sample == 0) {
          BLADE_OBS_EVENT(Dispatch, dest, t, dispatches, 0.0);
        }
        servers[dest]->arrive(task);
        if (controller.health_enabled()) {
          // Contract violation tally, judged on the state the routing
          // decision was made under (on_dispatch below may quarantine
          // dest itself): a quarantined destination only counts while a
          // healthy alternative was available — serving a degraded blade
          // beats blackout when the fleet is dark.
          if (controller.health_state(dest) == HealthState::Quarantined) {
            for (std::size_t i = 0; i < servers.size(); ++i) {
              if (i != dest && controller.available_blades(i) > 0 &&
                  controller.health_state(i) != HealthState::Quarantined) {
                ++routes_to_quarantined;
                break;
              }
            }
          }
          controller.on_dispatch(t, dest);
        }
      }
    }
    schedule_next();
  }
};

ReplayResult replay_impl(const model::Cluster& cluster, const ControllerConfig& cfg,
                         const ReplayTrace& trace, const ReplayOptions& options) {
  trace.validate(cluster.size());
  FaultInjector* chaos = options.chaos;
  const double warmup = options.warmup;
  const double service_scv = options.service_scv;
  if (!(warmup >= 0.0) || warmup >= trace.horizon) {
    throw std::invalid_argument("replay: warmup must be in [0, horizon)");
  }
  const bool slo_enabled = options.slo.any_enabled();
  if (slo_enabled && options.slo_epochs < 1) {
    throw std::invalid_argument("replay: slo_epochs must be >= 1");
  }

  sim::Engine engine;
  sim::ResponseTimeCollector collector(warmup, false);
  Controller controller(cluster, cfg);
  if (!options.checkpoint_in.empty()) {
    const blade::Status restored = controller.restore_checkpoint(options.checkpoint_in);
    if (!restored.ok()) {
      throw std::invalid_argument("replay: checkpoint restore failed: " +
                                  restored.error().context);
    }
  }

  const sim::SchedulingMode mode = sim::to_mode(cfg.discipline);
  std::vector<std::unique_ptr<sim::ServerSim>> servers;
  std::vector<sim::ServerSim*> raw;
  for (const auto& srv : cluster.servers()) {
    servers.push_back(
        std::make_unique<sim::ServerSim>(engine, srv.size(), srv.speed(), mode, collector));
    raw.push_back(servers.back().get());
  }

  // Special streams: each arrival feeds the controller's lambda''_i
  // estimator and then enters its server (RNG stream ids match the
  // static simulator's convention).
  std::vector<std::unique_ptr<sim::PoissonSource>> sources;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& srv = cluster.server(i);
    if (srv.special_rate() > 0.0) {
      sim::ServerSim* dest = raw[i];
      sources.push_back(std::make_unique<sim::PoissonSource>(
          engine, srv.special_rate(),
          sim::ServiceDistribution::from_scv(cluster.rbar(), service_scv),
          sim::TaskClass::Special, sim::RngStream(trace.seed, 2 * i + 1),
          [dest, i, &engine, &controller](sim::Task t) {
            controller.on_special_arrival(engine.now(), i);
            dest->arrive(t);
          }));
    }
  }

  GenericDriver driver{engine,
                       controller,
                       raw,
                       sim::ServiceDistribution::from_scv(cluster.rbar(), service_scv),
                       sim::RngStream(trace.seed, 1000003),
                       sim::RngStream(trace.seed, 1000033),
                       sim::RngStream(trace.seed, 1000019),
                       chaos};
  driver.dispatch_sample = options.dispatch_sample;

  // Failure/recovery events mutate the simulated blades first, then tell
  // the controller, which re-solves and republishes at the same instant.
  // Gray events (slowdowns, stalls) mutate only the blades: the
  // controller hears nothing — detecting them is the health tracker's
  // job, fed by the dispatch/completion stream below.
  sim::FailureSchedule failures;
  for (const auto& e : trace.events) {
    if (e.kind == ReplayEvent::Kind::Rate) {
      engine.schedule_at(e.time, [&driver, rate = e.rate] { driver.set_rate(rate); });
    } else {
      append_sim_event(failures, e);
    }
  }
  if (chaos != nullptr) {
    for (const ReplayEvent& e : chaos->flap_events(trace.horizon, cluster.size())) {
      append_sim_event(failures, e);
    }
    for (const ReplayEvent& e : chaos->gray_events(trace.horizon, cluster.size())) {
      append_sim_event(failures, e);
    }
  }
  sim::schedule_failures(engine, failures, raw, [&](const sim::FailureEvent& ev) {
    if (ev.kind == sim::FailureKind::Failure) {
      controller.on_failure(engine.now(), ev.server, ev.blades);
    } else if (ev.kind == sim::FailureKind::Recovery) {
      controller.on_recovery(engine.now(), ev.server, ev.blades);
    }
  });

  // Health scoring's observed-rate side: every generic completion at a
  // server reports to the controller at the instant it happens.
  if (controller.health_enabled()) {
    for (std::size_t i = 0; i < raw.size(); ++i) {
      raw[i]->set_completion_observer([&controller, &engine, i](const sim::Task& task, double) {
        if (task.cls == sim::TaskClass::Generic) controller.on_completion(engine.now(), i);
      });
    }
  }

  // Crash-safe checkpoint persistence: periodic atomic writes plus one
  // final write after the horizon, so a restarted process can resume
  // from the newest complete snapshot.
  std::uint64_t checkpoints_written = 0;
  const auto write_checkpoint = [&] {
    const blade::Status s =
        util::write_file_atomic(options.checkpoint_out, controller.checkpoint_json());
    if (!s.ok()) {
      throw std::runtime_error("replay: checkpoint write failed: " + s.error().context);
    }
    ++checkpoints_written;
    BLADE_OBS_COUNT("runtime.checkpoint_writes");
  };
  if (!options.checkpoint_out.empty()) {
    if (!(options.checkpoint_every >= 0.0) || !std::isfinite(options.checkpoint_every)) {
      throw std::invalid_argument("replay: checkpoint_every must be >= 0");
    }
    if (options.checkpoint_every > 0.0) {
      for (double t = options.checkpoint_every; t < trace.horizon; t += options.checkpoint_every) {
        engine.schedule_at(t, write_checkpoint);
      }
    }
  }

  ReplayResult result;

  // SLO epoch evaluation: split the horizon into slo_epochs windows and
  // feed each to the burn-rate monitors. Cumulative collector/controller
  // counters are differenced at the boundaries, so per-epoch means cost
  // O(1) regardless of sample volume.
  std::optional<obs::SloSet> slo_set;
  struct SloCursor {
    double response_sum = 0.0;
    std::uint64_t response_count = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t resolves = 0;
    double resolve_seconds = 0.0;
  };
  SloCursor cursor;
  if (slo_enabled) {
    obs::SloTargets targets = options.slo;
    const double epoch_len = trace.horizon / static_cast<double>(options.slo_epochs);
    if (!(targets.window > 0.0)) targets.window = 4.0 * epoch_len;
    targets.validate();
    slo_set.emplace(targets);
    for (int k = 1; k <= options.slo_epochs; ++k) {
      const double t1 = (k == options.slo_epochs) ? trace.horizon
                                                  : epoch_len * static_cast<double>(k);
      engine.schedule_at(t1, [&, k, t1, epoch_len] {
        const auto& gen = collector.generic();
        const ControllerStats now = controller.stats();
        obs::SloEpoch epoch;
        epoch.index = k;
        epoch.total = options.slo_epochs;
        epoch.t0 = t1 - epoch_len;
        epoch.t1 = t1;
        epoch.response_samples = gen.count() - cursor.response_count;
        epoch.mean_response =
            epoch.response_samples > 0
                ? (gen.sum() - cursor.response_sum) / static_cast<double>(epoch.response_samples)
                : 0.0;
        const std::uint64_t offered =
            (now.admitted - cursor.admitted) + (now.shed - cursor.shed);
        epoch.shed_fraction =
            offered > 0 ? static_cast<double>(now.shed - cursor.shed) /
                              static_cast<double>(offered)
                        : 0.0;
        epoch.resolves = now.resolves - cursor.resolves;
        epoch.resolve_seconds_mean =
            epoch.resolves > 0 ? (now.resolve_seconds_total - cursor.resolve_seconds) /
                                     static_cast<double>(epoch.resolves)
                               : 0.0;
        epoch.staleness = controller.lkg_age(t1);
        cursor.response_sum = gen.sum();
        cursor.response_count = gen.count();
        cursor.admitted = now.admitted;
        cursor.shed = now.shed;
        cursor.resolves = now.resolves;
        cursor.resolve_seconds = now.resolve_seconds_total;
        result.slo.push_back(slo_set->observe(epoch));
      });
    }
  }

  for (auto& src : sources) src->start();
  engine.run_until(trace.horizon);
  if (!options.checkpoint_out.empty()) write_checkpoint();

  result.stats = controller.stats();
  result.routes_to_quarantined = driver.routes_to_quarantined;
  result.checkpoints_written = checkpoints_written;
  result.shed_fraction = result.stats.shed_fraction();
  result.final_shed_probability = controller.shed_probability();
  result.final_fractions = controller.routing_fractions();
  result.final_mode = controller.mode();
  result.sim.generic_mean_response = collector.generic().mean();
  result.sim.generic_samples = collector.generic().count();
  result.sim.special_mean_response = collector.special().mean();
  result.sim.special_samples = collector.special().count();
  result.sim.events = engine.events_processed();
  for (const auto& s : servers) {
    sim::ServerObservation obs;
    obs.utilization = s->mean_utilization(0.0, trace.horizon);
    obs.time_avg_tasks = s->time_avg_tasks(0.0, trace.horizon);
    obs.completions = s->completions();
    obs.preemptions = s->preemptions();
    result.sim.servers.push_back(obs);
  }
  if (slo_set) result.slo_breaches = slo_set->total_breaches();
  return result;
}

/// The policy-harness counterpart of GenericDriver: same variable-rate
/// arrival process (same RNG stream), but every admitted-by-default task
/// routes through a DispatchPolicy over the live server state.
struct PolicyDriver {
  sim::Engine& engine;
  policy::DispatchPolicy& policy;
  const std::vector<sim::ServerSim*>& servers;
  std::vector<std::uint64_t>& routed;
  sim::ServiceDistribution work;
  sim::RngStream arrivals;
  double rate = 0.0;
  sim::EventId pending = 0;
  bool has_pending = false;

  void set_rate(double r) {
    if (has_pending) {
      engine.cancel(pending);
      has_pending = false;
    }
    rate = r;
    schedule_next();
  }

  void schedule_next() {
    if (!(rate > 0.0)) return;
    pending = engine.schedule(arrivals.exponential(1.0 / rate), [this] { fire(); });
    has_pending = true;
  }

  static policy::ServerState read_state(const void* ctx, std::size_t i) {
    const auto& raw = *static_cast<const std::vector<sim::ServerSim*>*>(ctx);
    const sim::ServerSim& s = *raw[i];
    return policy::ServerState{
        .speed = s.speed(),
        .blades = s.blades(),
        .available = s.available_blades(),
        .in_system = s.tasks_in_system(),
    };
  }

  void fire() {
    has_pending = false;
    sim::Task task;
    task.cls = sim::TaskClass::Generic;
    task.work = work.sample(arrivals);
    const policy::StateView view{&servers, &read_state, servers.size()};
    const std::size_t dest = policy.route(view);
    ++routed[dest];
    servers[dest]->arrive(task);
    schedule_next();
  }
};

}  // namespace

PolicyReplayResult replay_policy(const model::Cluster& cluster,
                                 const policy::PolicyConfig& policy_cfg,
                                 const ReplayTrace& trace, const ReplayOptions& options) {
  trace.validate(cluster.size());
  if (!(options.warmup >= 0.0) || options.warmup >= trace.horizon) {
    throw std::invalid_argument("replay_policy: warmup must be in [0, horizon)");
  }
  policy::DispatchPolicy policy(policy_cfg, cluster.size());

  sim::Engine engine;
  sim::ResponseTimeCollector collector(options.warmup, false);
  const sim::SchedulingMode mode = sim::SchedulingMode::Fcfs;
  std::vector<std::unique_ptr<sim::ServerSim>> servers;
  std::vector<sim::ServerSim*> raw;
  for (const auto& srv : cluster.servers()) {
    servers.push_back(
        std::make_unique<sim::ServerSim>(engine, srv.size(), srv.speed(), mode, collector));
    raw.push_back(servers.back().get());
  }

  // Special streams keep their servers partially busy exactly as in
  // replay() — same RNG stream ids, so the background load a policy sees
  // is identical to what the controller harness sees.
  std::vector<std::unique_ptr<sim::PoissonSource>> sources;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& srv = cluster.server(i);
    if (srv.special_rate() > 0.0) {
      sim::ServerSim* dest = raw[i];
      sources.push_back(std::make_unique<sim::PoissonSource>(
          engine, srv.special_rate(),
          sim::ServiceDistribution::from_scv(cluster.rbar(), options.service_scv),
          sim::TaskClass::Special, sim::RngStream(trace.seed, 2 * i + 1),
          [dest](sim::Task t) { dest->arrive(t); }));
    }
  }

  PolicyReplayResult result;
  result.routed_by_server.assign(cluster.size(), 0);
  PolicyDriver driver{engine,
                      policy,
                      raw,
                      result.routed_by_server,
                      sim::ServiceDistribution::from_scv(cluster.rbar(), options.service_scv),
                      sim::RngStream(trace.seed, 1000003)};

  sim::FailureSchedule failures;
  for (const auto& e : trace.events) {
    if (e.kind == ReplayEvent::Kind::Rate) {
      engine.schedule_at(e.time, [&driver, rate = e.rate] { driver.set_rate(rate); });
    } else {
      append_sim_event(failures, e);
    }
  }
  if (options.chaos != nullptr) {
    for (const ReplayEvent& e : options.chaos->flap_events(trace.horizon, cluster.size())) {
      append_sim_event(failures, e);
    }
    for (const ReplayEvent& e : options.chaos->gray_events(trace.horizon, cluster.size())) {
      append_sim_event(failures, e);
    }
  }
  sim::schedule_failures(engine, failures, raw, [](const sim::FailureEvent&) {});

  for (auto& src : sources) src->start();
  engine.run_until(trace.horizon);

  result.counters = policy.counters();
  result.sim.generic_mean_response = collector.generic().mean();
  result.sim.generic_samples = collector.generic().count();
  result.sim.special_mean_response = collector.special().mean();
  result.sim.special_samples = collector.special().count();
  result.sim.events = engine.events_processed();
  for (const auto& s : servers) {
    sim::ServerObservation obs;
    obs.utilization = s->mean_utilization(0.0, trace.horizon);
    obs.time_avg_tasks = s->time_avg_tasks(0.0, trace.horizon);
    obs.completions = s->completions();
    obs.preemptions = s->preemptions();
    result.sim.servers.push_back(obs);
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : result.routed_by_server) total += c;
  result.measured_fractions.assign(cluster.size(), 0.0);
  if (total > 0) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      result.measured_fractions[i] =
          static_cast<double>(result.routed_by_server[i]) / static_cast<double>(total);
    }
  }
  return result;
}

ReplayResult replay(const model::Cluster& cluster, const ControllerConfig& cfg,
                    const ReplayTrace& trace, double warmup, double service_scv) {
  ReplayOptions options;
  options.warmup = warmup;
  options.service_scv = service_scv;
  return replay_impl(cluster, cfg, trace, options);
}

ReplayResult replay(const model::Cluster& cluster, const ControllerConfig& cfg,
                    const ReplayTrace& trace, const ReplayOptions& options) {
  return replay_impl(cluster, cfg, trace, options);
}

ReplayResult replay_chaotic(const model::Cluster& cluster, const ControllerConfig& cfg,
                            const ReplayTrace& trace, FaultInjector& chaos, double warmup,
                            double service_scv) {
  ReplayOptions options;
  options.warmup = warmup;
  options.service_scv = service_scv;
  options.chaos = &chaos;
  return replay_impl(cluster, cfg, trace, options);
}

}  // namespace blade::runtime
