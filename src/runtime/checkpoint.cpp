// Controller checkpoint/restore: a version-1 JSON snapshot of the whole
// control-plane state (topology view, estimator states, last solve, LKG,
// degraded mode) so a restarted controller resumes mid-trace instead of
// re-warming from nothing. Schema in docs/resilience.md.
//
// restore_checkpoint validates the entire document into temporaries
// before mutating anything: on any error the controller keeps serving
// its current table untouched.

#include <cmath>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/controller.hpp"
#include "util/json.hpp"

namespace blade::runtime {

namespace {

/// Internal signal for a structurally bad document; converted to one
/// ErrorCode::ParseError at the restore boundary.
struct ParseFail {
  std::string what;
};

const util::JsonValue& field(const util::JsonValue& obj, const char* key,
                             util::JsonValue::Type type, const char* type_name) {
  const util::JsonValue* p = obj.find(key);
  if (p == nullptr || p->type != type) {
    throw ParseFail{std::string("checkpoint: missing or mistyped ") + type_name + " field '" +
                    key + "'"};
  }
  return *p;
}

double num(const util::JsonValue& obj, const char* key) {
  const double v = field(obj, key, util::JsonValue::Type::Number, "number").number;
  if (!std::isfinite(v)) throw ParseFail{std::string("checkpoint: field '") + key + "' is not finite"};
  return v;
}

std::uint64_t count(const util::JsonValue& obj, const char* key) {
  const double v = num(obj, key);
  if (v < 0.0 || v != std::floor(v)) {
    throw ParseFail{std::string("checkpoint: field '") + key + "' is not a non-negative integer"};
  }
  return static_cast<std::uint64_t>(v);
}

std::string text(const util::JsonValue& obj, const char* key) {
  return field(obj, key, util::JsonValue::Type::String, "string").string;
}

std::vector<double> num_array(const util::JsonValue& obj, const char* key) {
  const util::JsonValue& a = field(obj, key, util::JsonValue::Type::Array, "array");
  std::vector<double> out;
  out.reserve(a.array.size());
  for (const util::JsonValue& v : a.array) {
    if (v.type != util::JsonValue::Type::Number || !std::isfinite(v.number)) {
      throw ParseFail{std::string("checkpoint: array '") + key + "' holds a non-finite entry"};
    }
    out.push_back(v.number);
  }
  return out;
}

Mode parse_mode(const std::string& s) {
  if (s == "optimal") return Mode::Optimal;
  if (s == "last_known_good") return Mode::LastKnownGood;
  if (s == "fallback") return Mode::Fallback;
  if (s == "blackout") return Mode::Blackout;
  throw ParseFail{"checkpoint: unknown mode '" + s + "'"};
}

void write_array(util::JsonWriter& w, const std::vector<double>& xs) {
  w.begin_array();
  for (double x : xs) w.value(x);
  w.end_array();
}

}  // namespace

std::string Controller::checkpoint_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("version").value(1LL);
  w.key("n").value(static_cast<long long>(cluster_.size()));
  w.key("estimator").value(cfg_.estimator == EstimatorKind::Ewma ? "ewma" : "window");
  w.key("time").value(last_event_time_);
  w.key("avail").begin_array();
  for (unsigned a : avail_) w.value(static_cast<long long>(a));
  w.end_array();
  w.key("solved_lambda").value(solved_lambda_);
  w.key("solved_special");
  write_array(w, solved_special_);
  w.key("arrivals_since_check").value(static_cast<long long>(arrivals_since_check_));
  w.key("shed_probability").value(shed_probability());
  w.key("fractions");
  write_array(w, routing_fractions());  // empty = blackout (no table)
  w.key("mode").value(to_string(mode_));
  w.key("lkg").begin_object();
  w.key("valid").value(lkg_.valid);
  w.key("time").value(lkg_.time);
  w.key("lambda").value(lkg_.lambda);
  w.key("weights");
  write_array(w, lkg_.weights);
  w.key("avail").begin_array();
  for (unsigned a : lkg_.avail) w.value(static_cast<long long>(a));
  w.end_array();
  w.end_object();
  w.key("estimators").begin_array();
  if (cfg_.estimator == EstimatorKind::Ewma) {
    for (const EwmaRateEstimator& e : ewma_) {
      const EwmaState s = e.state();
      w.begin_object();
      w.key("half_life").value(s.half_life);
      w.key("start").value(s.start);
      w.key("last").value(s.last);
      w.key("weight").value(s.weight);
      w.key("count").value(static_cast<long long>(s.count));
      w.end_object();
    }
  } else {
    for (const WindowRateEstimator& e : window_) {
      const WindowState s = e.state();
      w.begin_object();
      w.key("window").value(s.window);
      w.key("start").value(s.start);
      w.key("last").value(s.last);
      w.key("count").value(static_cast<long long>(s.count));
      w.key("times");
      write_array(w, s.times);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

blade::Status Controller::restore_checkpoint(const std::string& json) {
  const std::size_t n = cluster_.size();

  // --- parse + structural validation, nothing mutated yet ---
  util::JsonValue doc;
  try {
    doc = util::parse_json(json);
  } catch (const std::exception& e) {
    return make_error(ErrorCode::ParseError, std::string("checkpoint: ") + e.what());
  }

  std::vector<unsigned> avail;
  double time = 0.0;
  double solved_lambda = 0.0;
  std::vector<double> solved_special;
  std::uint64_t arrivals_since_check = 0;
  double shed = 0.0;
  std::vector<double> fractions;
  Mode mode = Mode::Fallback;
  Lkg lkg;
  std::string estimator_kind;
  std::size_t doc_n = 0;
  std::vector<EwmaState> ewma_states;
  std::vector<WindowState> window_states;
  try {
    if (doc.type != util::JsonValue::Type::Object) throw ParseFail{"checkpoint: root is not an object"};
    if (count(doc, "version") != 1) throw ParseFail{"checkpoint: unsupported version"};
    doc_n = count(doc, "n");
    estimator_kind = text(doc, "estimator");
    if (estimator_kind != "ewma" && estimator_kind != "window") {
      throw ParseFail{"checkpoint: unknown estimator '" + estimator_kind + "'"};
    }
    time = num(doc, "time");
    for (double a : num_array(doc, "avail")) {
      if (a < 0.0 || a != std::floor(a)) throw ParseFail{"checkpoint: avail holds a non-count"};
      avail.push_back(static_cast<unsigned>(a));
    }
    solved_lambda = field(doc, "solved_lambda", util::JsonValue::Type::Number, "number").number;
    if (std::isnan(solved_lambda)) throw ParseFail{"checkpoint: solved_lambda is NaN"};
    solved_special = num_array(doc, "solved_special");
    arrivals_since_check = count(doc, "arrivals_since_check");
    shed = num(doc, "shed_probability");
    if (shed < 0.0 || shed > 1.0) throw ParseFail{"checkpoint: shed_probability outside [0, 1]"};
    fractions = num_array(doc, "fractions");
    mode = parse_mode(text(doc, "mode"));
    const util::JsonValue& lj = field(doc, "lkg", util::JsonValue::Type::Object, "object");
    lkg.valid = field(lj, "valid", util::JsonValue::Type::Bool, "bool").boolean;
    lkg.time = num(lj, "time");
    lkg.lambda = num(lj, "lambda");
    lkg.weights = num_array(lj, "weights");
    for (double a : num_array(lj, "avail")) {
      if (a < 0.0 || a != std::floor(a)) throw ParseFail{"checkpoint: lkg.avail holds a non-count"};
      lkg.avail.push_back(static_cast<unsigned>(a));
    }
    const util::JsonValue& ests = field(doc, "estimators", util::JsonValue::Type::Array, "array");
    for (const util::JsonValue& e : ests.array) {
      if (e.type != util::JsonValue::Type::Object) throw ParseFail{"checkpoint: estimator entry is not an object"};
      if (estimator_kind == "ewma") {
        ewma_states.push_back(
            EwmaState{num(e, "half_life"), num(e, "start"), num(e, "last"), num(e, "weight"),
                      count(e, "count")});
      } else {
        window_states.push_back(WindowState{num(e, "window"), num(e, "start"), num(e, "last"),
                                            num_array(e, "times"), count(e, "count")});
      }
    }
    // Internal size consistency is a document property, not a topology
    // match: enforce it here as ParseError.
    if (avail.size() != doc_n || solved_special.size() != doc_n ||
        (!fractions.empty() && fractions.size() != doc_n) ||
        (lkg.valid && (lkg.weights.size() != doc_n || lkg.avail.size() != doc_n)) ||
        (ewma_states.size() + window_states.size()) != doc_n + 1) {
      throw ParseFail{"checkpoint: array sizes disagree with n"};
    }
    if (!fractions.empty()) {
      const blade::Status s = util::AliasTable::validate_weights(fractions);
      if (!s.ok()) throw ParseFail{"checkpoint: fractions are not publishable (" + s.error().context + ")"};
    }
    if ((mode == Mode::Blackout) != fractions.empty()) {
      throw ParseFail{"checkpoint: mode disagrees with published fractions"};
    }
  } catch (const ParseFail& f) {
    return make_error(ErrorCode::ParseError, f.what);
  }

  // --- topology match (the checkpoint may be from another cluster) ---
  if (doc_n != n) {
    return make_error(ErrorCode::StaleState, "checkpoint: snapshot is for " +
                                                 std::to_string(doc_n) + " servers, cluster has " +
                                                 std::to_string(n));
  }
  const bool want_ewma = cfg_.estimator == EstimatorKind::Ewma;
  if (want_ewma != (estimator_kind == "ewma")) {
    return make_error(ErrorCode::StaleState,
                      "checkpoint: estimator kind '" + estimator_kind + "' does not match config");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (avail[i] > cluster_.server(i).size()) {
      return make_error(ErrorCode::StaleState,
                        "checkpoint: avail[" + std::to_string(i) + "] exceeds server size");
    }
  }

  // --- estimator snapshots, restored into copies first ---
  std::vector<EwmaRateEstimator> ewma = ewma_;
  std::vector<WindowRateEstimator> window = window_;
  for (std::size_t i = 0; i < ewma_states.size(); ++i) {
    const blade::Status s = ewma[i].restore(ewma_states[i]);
    if (!s.ok()) return s.error();
  }
  for (std::size_t i = 0; i < window_states.size(); ++i) {
    const blade::Status s = window[i].restore(window_states[i]);
    if (!s.ok()) return s.error();
  }

  // --- commit ---
  avail_ = std::move(avail);
  last_event_time_ = time;
  solved_lambda_ = solved_lambda;
  solved_special_ = std::move(solved_special);
  arrivals_since_check_ = arrivals_since_check;
  lkg_ = std::move(lkg);
  ewma_ = std::move(ewma);
  window_ = std::move(window);
  ws_.clear();  // cached brackets describe the pre-restore problem
  mcache_.invalidate();  // fitted to the pre-restore epoch's queues
  // Health state is deliberately not serialized (the schema stays v1):
  // gray scores are short-half-life observations of a live fleet, and a
  // restored process has been dark for an unknown interval. Scoring
  // re-learns from scratch after restore.
  if (health_) health_->reset_all(time);
  last_error_ = Error{ErrorCode::Ok, {}};
  if (fractions.empty()) {
    shed_prob_.store(1.0, std::memory_order_relaxed);
    table_.store(nullptr);
    ++stats_.publications;
    BLADE_OBS_COUNT("runtime.publications");
    BLADE_OBS_GAUGE_SET("runtime.shed_probability", 1.0);
    set_mode(Mode::Blackout, obs::Cause::Restore);
  } else {
    publish(fractions, shed);  // validated above; cannot fail
    set_mode(mode, obs::Cause::Restore);
  }
  ++stats_.restores;
  BLADE_OBS_COUNT("runtime.checkpoint_restores");
  // set_mode only bumps on an actual transition; a restore republishes
  // the table either way, so shards must drop their snapshots now.
  bump_publish_epoch();
  return {};
}

}  // namespace blade::runtime
