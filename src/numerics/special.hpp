// Stable special functions used by the queueing analytics: log-factorial,
// Poisson partial sums, and compensated summation.
#pragma once

#include <cstdint>
#include <span>

namespace blade::num {

/// ln(k!) computed exactly for small k and via lgamma beyond.
[[nodiscard]] double log_factorial(unsigned k) noexcept;

/// Poisson pmf  e^{-a} a^k / k!  computed in the log domain (stable for
/// large a and k).
[[nodiscard]] double poisson_pmf(unsigned k, double a) noexcept;

/// Regularized partial sum  e^{-a} * sum_{k=0}^{K} a^k/k!  (Poisson CDF at K).
/// Computed by forward recurrence on the pmf; stable for any a >= 0.
[[nodiscard]] double poisson_cdf(unsigned K, double a) noexcept;

/// Kahan–Babuska compensated accumulator for long sums of mixed magnitude.
class KahanSum {
 public:
  void add(double x) noexcept;
  [[nodiscard]] double value() const noexcept { return sum_ + c_; }
  void reset() noexcept { sum_ = c_ = 0.0; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Compensated sum of a span.
[[nodiscard]] double ksum(std::span<const double> xs) noexcept;

/// Relative difference |a-b| / max(|a|,|b|,1); convenient for tolerant
/// comparisons in tests and validation code.
[[nodiscard]] double rel_diff(double a, double b) noexcept;

}  // namespace blade::num
