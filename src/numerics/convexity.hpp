// Empirical convexity / monotonicity checks over a grid. The paper's
// solver correctness rests on T' being convex and its marginal cost being
// increasing in each lambda'_i; the property tests verify this on the
// actual model functions.
#pragma once

#include <functional>

namespace blade::num {

/// Result of a grid scan.
struct ShapeReport {
  bool holds = true;          ///< property satisfied at every checked point
  double worst_violation = 0.0;  ///< most negative margin observed
  double worst_x = 0.0;          ///< grid point of the worst violation
};

/// Checks f is nondecreasing on [a, b] sampled at `points` grid points,
/// allowing violations up to `slack` (for numerical noise).
[[nodiscard]] ShapeReport check_increasing(const std::function<double(double)>& f, double a,
                                           double b, int points = 200, double slack = 1e-9);

/// Checks midpoint convexity f((x+y)/2) <= (f(x)+f(y))/2 on a grid.
[[nodiscard]] ShapeReport check_convex(const std::function<double(double)>& f, double a, double b,
                                       int points = 200, double slack = 1e-9);

}  // namespace blade::num
