#include "numerics/erlang.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/special.hpp"
#include "obs/obs.hpp"

namespace blade::num {

namespace {

void check_m(unsigned m) {
  if (m == 0) throw std::invalid_argument("erlang: m must be >= 1");
}

void check_rho(double rho) {
  if (!std::isfinite(rho)) {
    // Distinguish corrupted inputs (NaN/Inf from upstream arithmetic)
    // from plain out-of-domain utilizations: the former is a numerics
    // failure worth its own counter and message.
    BLADE_OBS_COUNT("numerics.non_finite");
    throw std::invalid_argument("erlang: rho must be finite (NaN/Inf rejected)");
  }
  if (!(rho >= 0.0) || rho >= 1.0) {
    throw std::invalid_argument("erlang: rho must be in [0, 1)");
  }
}

}  // namespace

double erlang_b(unsigned m, double a) {
  check_m(m);
  if (!std::isfinite(a)) {
    BLADE_OBS_COUNT("numerics.non_finite");
    throw std::invalid_argument("erlang_b: a must be finite (NaN/Inf rejected)");
  }
  if (!(a >= 0.0)) throw std::invalid_argument("erlang_b: a must be >= 0");
  BLADE_OBS_COUNT("numerics.erlang_b_evals");
  double b = 1.0;
  for (unsigned k = 1; k <= m; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  return b;
}

double erlang_c(unsigned m, double rho) {
  check_m(m);
  check_rho(rho);
  BLADE_OBS_COUNT("numerics.erlang_c_evals");
  if (rho == 0.0) return 0.0;
  const double a = static_cast<double>(m) * rho;
  const double b = erlang_b(m, a);
  return b / (1.0 - rho * (1.0 - b));
}

double erlang_c_drho(unsigned m, double rho) {
  check_m(m);
  check_rho(rho);
  BLADE_OBS_COUNT("numerics.erlang_c_drho_evals");
  if (rho == 0.0) return m == 1 ? 1.0 : 0.0;
  const double a = static_cast<double>(m) * rho;
  const double b = erlang_b(m, a);
  // t = T_m / S_1 where T_m = a^m/m!, S_1 = sum_{k<m} a^k/k!.
  // B = T_m/(S_1+T_m)  =>  t = B/(1-B).
  const double t = b / (1.0 - b);
  const double u = 1.0 - rho + t;
  const double dt = (t * static_cast<double>(m) / rho) * u;
  return (dt * (1.0 - rho) + t) / (u * u);
}

ErlangCDerivs erlang_c_derivs(unsigned m, double rho) {
  check_m(m);
  check_rho(rho);
  BLADE_OBS_COUNT("numerics.erlang_c_evals");
  BLADE_OBS_COUNT("numerics.erlang_c_derivs_evals");
  ErlangCDerivs r;
  if (rho == 0.0) {
    // C has an m-th order zero at rho = 0: C(1, rho) = rho exactly, and
    // C(2, rho) = 2 rho^2 + O(rho^3).
    r.dc = (m == 1) ? 1.0 : 0.0;
    r.d2c = (m == 2) ? 4.0 : 0.0;
    return r;
  }
  const double md = static_cast<double>(m);
  const double a = md * rho;
  const double b = erlang_b(m, a);
  const double t = b / (1.0 - b);
  const double u = 1.0 - rho + t;
  const double one_minus = 1.0 - rho;
  r.c = t / u;
  const double tp = (t * md / rho) * u;
  const double up = tp - 1.0;
  r.dc = (tp * one_minus + t) / (u * u);
  const double tpp = md * ((tp / rho - t / (rho * rho)) * u + (t / rho) * up);
  r.d2c = (tpp * one_minus * u - 2.0 * up * (tp * one_minus + t)) / (u * u * u);
  return r;
}

double mmm_p0(unsigned m, double rho) {
  check_m(m);
  check_rho(rho);
  const double a = static_cast<double>(m) * rho;
  // p0^{-1} = S_1 + T_m/(1-rho). Scale by e^{-a}: e^{-a} S_1 is the Poisson
  // CDF at m-1 and e^{-a} T_m is the pmf at m, both stable.
  const double s1 = (m >= 1) ? poisson_cdf(m - 1, a) : 0.0;
  const double tm = poisson_pmf(m, a);
  const double inv_scaled = s1 + tm / (1.0 - rho);
  // p0 = e^{-a} / inv_scaled.
  const double log_p0 = -a - std::log(inv_scaled);
  return std::exp(log_p0);
}

double mmm_p0_drho(unsigned m, double rho) {
  check_m(m);
  check_rho(rho);
  const double p0 = mmm_p0(m, rho);
  const double md = static_cast<double>(m);
  // Paper:  dp0/drho = -p0^2 [ sum_{k=1}^{m-1} m^k rho^{k-1}/(k-1)!
  //                           + (m^m/m!) rho^{m-1}(m-(m-1)rho)/(1-rho)^2 ].
  KahanSum s;
  double term = md;  // k = 1: m^1 rho^0 / 0!
  for (unsigned k = 1; k <= m - 1; ++k) {
    s.add(term);
    term *= md * rho / static_cast<double>(k);  // advance to k+1
  }
  const double log_tail = md * std::log(md) + (md - 1.0) * std::log(rho) - log_factorial(m);
  const double tail = std::exp(log_tail) * (md - (md - 1.0) * rho) / ((1.0 - rho) * (1.0 - rho));
  return -p0 * p0 * (s.value() + tail);
}

double erlang_c_reference(unsigned m, double rho) {
  check_m(m);
  check_rho(rho);
  if (rho == 0.0) return 0.0;
  const double p0 = mmm_p0(m, rho);
  const double a = static_cast<double>(m) * rho;
  const double log_pm = std::log(p0) + static_cast<double>(m) * std::log(a) - log_factorial(m);
  return std::exp(log_pm) / (1.0 - rho);
}

}  // namespace blade::num
