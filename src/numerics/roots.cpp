#include "numerics/roots.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace blade::num {

namespace {

constexpr double kSupMargin = 1e-9;  // (1 - eps) clamp factor against the supremum

/// Wall-clock watchdog for RootOptions::max_seconds; unarmed (and free
/// of clock reads) when the budget is 0.
class Deadline {
 public:
  explicit Deadline(double max_seconds) {
    if (max_seconds > 0.0) {
      armed_ = true;
      at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(max_seconds));
    }
  }

  void check(const char* who) const {
    if (armed_ && std::chrono::steady_clock::now() > at_) {
      BLADE_OBS_COUNT("roots.budget_exceeded");
      throw RootFindingError(std::string(who) + ": time budget exceeded");
    }
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// NaN/Inf guard on every evaluation: iterating on garbage turns one bad
/// kernel value into a silently wrong root, so fail loudly at the source.
double checked(const char* who, double x, double fx) {
  if (!std::isfinite(fx)) {
    BLADE_OBS_COUNT("roots.non_finite");
    std::ostringstream os;
    os << who << ": non-finite f(" << x << ") = " << fx;
    throw RootFindingError(os.str());
  }
  return fx;
}

}  // namespace

RootResult solve_increasing(const std::function<double(double)>& f, double target, double lower,
                            std::optional<double> sup, std::optional<double> initial_ub,
                            const RootOptions& opts) {
  RootResult res;
  if (sup && *sup <= lower) {
    throw RootFindingError("solve_increasing: empty domain (sup <= lower)");
  }
  const Deadline deadline(opts.max_seconds);
  const double f_lower = checked("solve_increasing", lower, f(lower));
  if (f_lower >= target) {
    res.x = lower;
    res.f = f_lower;
    return res;
  }

  double ub = initial_ub.value_or(std::max(1e-6, lower + 1e-6));
  if (ub <= lower) ub = lower + 1e-6;
  const double hard_ub = sup ? (1.0 - kSupMargin) * (*sup - lower) + lower
                             : std::numeric_limits<double>::infinity();
  ub = std::min(ub, hard_ub);

  int expansions = 0;
  double fub = checked("solve_increasing", ub, f(ub));
  while (fub < target) {
    deadline.check("solve_increasing");
    if (ub >= hard_ub) {
      // Saturated: f never reaches the target inside the domain. The best
      // feasible answer is the clamped upper bound (paper line (7)).
      res.x = hard_ub;
      res.f = fub;
      res.expansions = expansions;
      res.clamped_at_upper = true;
      return res;
    }
    ub = std::min(lower + 2.0 * (ub - lower), hard_ub);
    if (++expansions > opts.max_expansions) {
      throw RootFindingError("solve_increasing: bracketing failed (function may be bounded below target)");
    }
    fub = checked("solve_increasing", ub, f(ub));
  }

  double lb = lower;
  int it = 0;
  while (ub - lb > opts.tolerance && it < opts.max_iterations) {
    deadline.check("solve_increasing");
    const double mid = 0.5 * (lb + ub);
    if (checked("solve_increasing", mid, f(mid)) < target) {
      lb = mid;
    } else {
      ub = mid;
    }
    ++it;
  }
  res.x = 0.5 * (lb + ub);
  res.f = f(res.x);
  res.iterations = it;
  res.expansions = expansions;
  BLADE_OBS_COUNT("roots.solve_increasing_calls");
  BLADE_OBS_OBSERVE("roots.solve_increasing_iterations", it);
  return res;
}

RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  const RootOptions& opts) {
  const Deadline deadline(opts.max_seconds);
  double fa = checked("bisect", a, f(a));
  double fb = checked("bisect", b, f(b));
  if (fa == 0.0) return {a, 0.0, 0, 0, false};
  if (fb == 0.0) return {b, 0.0, 0, 0, false};
  if ((fa > 0.0) == (fb > 0.0)) {
    throw RootFindingError("bisect: root not bracketed");
  }
  int it = 0;
  while (b - a > opts.tolerance && it < opts.max_iterations) {
    deadline.check("bisect");
    const double mid = 0.5 * (a + b);
    const double fm = checked("bisect", mid, f(mid));
    if ((fm > 0.0) == (fa > 0.0)) {
      a = mid;
      fa = fm;
    } else {
      b = mid;
    }
    ++it;
  }
  const double x = 0.5 * (a + b);
  BLADE_OBS_COUNT("roots.bisect_calls");
  BLADE_OBS_OBSERVE("roots.bisect_iterations", it);
  return {x, f(x), it, 0, false};
}

RootResult brent(const std::function<double(double)>& f, double a, double b,
                 const RootOptions& opts) {
  const Deadline deadline(opts.max_seconds);
  double fa = checked("brent", a, f(a));
  double fb = checked("brent", b, f(b));
  if (fa == 0.0) return {a, 0.0, 0, 0, false};
  if (fb == 0.0) return {b, 0.0, 0, 0, false};
  if ((fa > 0.0) == (fb > 0.0)) {
    throw RootFindingError("brent: root not bracketed");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;  // previous step sizes for the safeguard
  double e = d;
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    deadline.check("brent");
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = e = b - a;
    }
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) +
                       0.5 * opts.tolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) break;
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Inverse quadratic interpolation (secant when only two points differ).
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q; else p = -p;
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = checked("brent", b, f(b));
  }
  BLADE_OBS_COUNT("roots.brent_calls");
  BLADE_OBS_OBSERVE("roots.brent_iterations", it);
  return {b, fb, it, /*expansions=*/0, /*clamped_at_upper=*/false};
}

RootResult newton_safeguarded(const std::function<std::pair<double, double>(double)>& fdf,
                              double a, double b, const RootOptions& opts) {
  const Deadline deadline(opts.max_seconds);
  auto [fa, dfa] = fdf(a);
  auto [fb, dfb] = fdf(b);
  (void)dfa;
  (void)dfb;
  checked("newton_safeguarded", a, fa);
  checked("newton_safeguarded", b, fb);
  if (fa == 0.0) return {a, 0.0, 0, 0, false};
  if (fb == 0.0) return {b, 0.0, 0, 0, false};
  if ((fa > 0.0) == (fb > 0.0)) {
    throw RootFindingError("newton_safeguarded: root not bracketed");
  }
  double x = 0.5 * (a + b);
  double fx_last = fa;
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    deadline.check("newton_safeguarded");
    auto [fx, dfx] = fdf(x);
    checked("newton_safeguarded", x, fx);
    fx_last = fx;
    if (fx == 0.0) break;
    // Shrink the bracket around the root.
    if ((fx > 0.0) == (fa > 0.0)) {
      a = x;
      fa = fx;
    } else {
      b = x;
    }
    if (b - a <= opts.tolerance) break;
    double next = (dfx != 0.0) ? x - fx / dfx : 0.5 * (a + b);
    if (!(next > a && next < b)) next = 0.5 * (a + b);  // safeguard
    if (std::abs(next - x) <= 0.25 * opts.tolerance) {
      x = next;
      fx_last = fdf(x).first;
      break;
    }
    x = next;
  }
  BLADE_OBS_COUNT("roots.newton_calls");
  BLADE_OBS_OBSERVE("roots.newton_iterations", it);
  return {x, fx_last, it, /*expansions=*/0, /*clamped_at_upper=*/false};
}

}  // namespace blade::num
