// Numerical differentiation used as an independent check of the analytic
// derivatives (tests compare erlang_c_drho and the queueing marginals
// against these).
#pragma once

#include <functional>

namespace blade::num {

/// Central difference f'(x) with step h (default scaled to x).
[[nodiscard]] double central_difference(const std::function<double(double)>& f, double x,
                                        double h = 0.0);

/// Richardson-extrapolated central difference (two step sizes, h and h/2),
/// ~O(h^4) accurate; the workhorse for derivative cross-checks.
[[nodiscard]] double richardson_derivative(const std::function<double(double)>& f, double x,
                                           double h = 0.0);

/// Second derivative via the standard 3-point stencil (used by convexity
/// verification).
[[nodiscard]] double second_derivative(const std::function<double(double)>& f, double x,
                                       double h = 0.0);

}  // namespace blade::num
