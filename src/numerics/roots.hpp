// Root finding for monotone equations. The paper's two algorithms
// (Find_lambda'_i, Calculate T') are both "expand an upper bracket by
// doubling, then bisect"; BracketedBisection generalizes that pattern.
// Brent's method is provided as a faster alternative used by the
// closed-form solvers.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>

namespace blade::num {

/// Thrown when a solver cannot bracket or converge.
class RootFindingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Options shared by the solvers.
struct RootOptions {
  double tolerance = 1e-12;   ///< absolute width of the final bracket
  int max_iterations = 200;   ///< bisection/Brent iteration cap
  int max_expansions = 200;   ///< doubling steps allowed when bracketing
  /// Wall-clock watchdog: a solve exceeding this many seconds throws
  /// RootFindingError ("time budget exceeded"). 0 disables the check
  /// (and its per-iteration clock read) — the default, since these
  /// solvers are usually budgeted by max_iterations alone.
  double max_seconds = 0.0;
};

/// Result of a solve, including diagnostics used by the perf benches.
struct RootResult {
  double x = 0.0;            ///< located root (bracket midpoint)
  double f = 0.0;            ///< residual f(x)
  int iterations = 0;        ///< refinement iterations used
  int expansions = 0;        ///< bracketing expansions used
  bool clamped_at_upper = false;  ///< bracket hit the sup bound (saturation)
};

/// Solves f(x) = target for an *increasing* f on [lower, sup).
///
/// Mirrors the paper's Fig. 2 algorithm: the upper bound starts at
/// `initial_ub` (or a small default) and doubles until f(ub) >= target,
/// clamping to (1-eps)*sup when a finite supremum is given (the server
/// saturation point); then the bracket is bisected. If f(lower) >= target
/// the root is reported at `lower` (the "inactive server" case).
///
/// All four solvers reject a non-finite f(x) (NaN/Inf) with a
/// RootFindingError naming the evaluation point instead of iterating on
/// garbage, and honor RootOptions::max_seconds when set.
[[nodiscard]] RootResult solve_increasing(const std::function<double(double)>& f, double target,
                                          double lower, std::optional<double> sup,
                                          std::optional<double> initial_ub = std::nullopt,
                                          const RootOptions& opts = {});

/// Classic bisection on [a, b] with f(a), f(b) of opposite sign.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f, double a, double b,
                                const RootOptions& opts = {});

/// Brent's method on [a, b] with f(a), f(b) of opposite sign. Superlinear;
/// used where we can afford to require a pre-established bracket.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f, double a, double b,
                               const RootOptions& opts = {});

/// Safeguarded Newton: falls back to bisection steps whenever the Newton
/// step leaves the bracket or stalls. `fdf` returns {f(x), f'(x)}.
[[nodiscard]] RootResult newton_safeguarded(
    const std::function<std::pair<double, double>(double)>& fdf, double a, double b,
    const RootOptions& opts = {});

}  // namespace blade::num
