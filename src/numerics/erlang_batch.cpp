#include "numerics/erlang_batch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace blade::num {

namespace {

constexpr std::size_t W = kErlangBatchLanes;

void check_sizes(std::size_t n, std::size_t other, const char* what) {
  if (n != other) throw std::invalid_argument(std::string("erlang batch: ") + what);
}

void check_m_batch(std::span<const unsigned> m) {
  for (unsigned mi : m) {
    if (mi == 0) throw std::invalid_argument("erlang: m must be >= 1");
  }
}

void check_rho_batch(std::span<const double> rho) {
  for (double r : rho) {
    if (!std::isfinite(r)) {
      BLADE_OBS_COUNT("numerics.non_finite");
      throw std::invalid_argument("erlang: rho must be finite (NaN/Inf rejected)");
    }
    if (!(r >= 0.0) || r >= 1.0) {
      throw std::invalid_argument("erlang: rho must be in [0, 1)");
    }
  }
}

/// One padded block of the Erlang-B recurrence: lanes >= `live` carry
/// m = 0 and are never selected, so they stay at their b = 1 seed and
/// are discarded by the caller. The inner lane loop is a fixed-width
/// select chain the compiler turns into masked vector ops.
void recurrence_block(const unsigned* m, const double* a, double* b, std::size_t live) {
  double av[W];
  double bv[W];
  unsigned mv[W];
  unsigned max_m = 0;
  for (std::size_t w = 0; w < W; ++w) {
    const bool on = w < live;
    av[w] = on ? a[w] : 0.0;
    mv[w] = on ? m[w] : 0u;
    bv[w] = 1.0;
    max_m = std::max(max_m, mv[w]);
  }
  for (unsigned k = 1; k <= max_m; ++k) {
    const double kd = static_cast<double>(k);
    for (std::size_t w = 0; w < W; ++w) {
      const double next = av[w] * bv[w] / (kd + av[w] * bv[w]);
      bv[w] = k <= mv[w] ? next : bv[w];
    }
  }
  for (std::size_t w = 0; w < live; ++w) b[w] = bv[w];
}

void run_recurrence(std::span<const unsigned> m, std::span<const double> a,
                    std::span<double> b) {
  const std::size_t n = m.size();
  for (std::size_t base = 0; base < n; base += W) {
    const std::size_t live = std::min(W, n - base);
    recurrence_block(m.data() + base, a.data() + base, b.data() + base, live);
  }
}

}  // namespace

void erlang_b_batch(std::span<const unsigned> m, std::span<const double> a,
                    std::span<double> b) {
  const std::size_t n = m.size();
  check_sizes(n, a.size(), "a size mismatch");
  check_sizes(n, b.size(), "b size mismatch");
  check_m_batch(m);
  for (double ai : a) {
    if (!std::isfinite(ai)) {
      BLADE_OBS_COUNT("numerics.non_finite");
      throw std::invalid_argument("erlang_b: a must be finite (NaN/Inf rejected)");
    }
    if (!(ai >= 0.0)) throw std::invalid_argument("erlang_b: a must be >= 0");
  }
  BLADE_OBS_COUNT_N("numerics.erlang_b_evals", n);
  BLADE_OBS_COUNT("numerics.erlang_b_batch_calls");
  run_recurrence(m, a, b);
}

void erlang_c_derivs_batch(std::span<const unsigned> m, std::span<const double> rho,
                           std::span<double> c, std::span<double> dc,
                           std::span<double> d2c) {
  const std::size_t n = m.size();
  check_sizes(n, rho.size(), "rho size mismatch");
  check_sizes(n, c.size(), "c size mismatch");
  check_sizes(n, dc.size(), "dc size mismatch");
  check_sizes(n, d2c.size(), "d2c size mismatch");
  check_m_batch(m);
  check_rho_batch(rho);
  // A batch of n counts as n scalar evals (plus its own call counter) so
  // the CI eval-per-solve ratios stay comparable whichever path ran.
  BLADE_OBS_COUNT_N("numerics.erlang_b_evals", n);
  BLADE_OBS_COUNT_N("numerics.erlang_c_evals", n);
  BLADE_OBS_COUNT_N("numerics.erlang_c_derivs_evals", n);
  BLADE_OBS_COUNT_N("numerics.erlang_c_batch_evals", n);
  BLADE_OBS_COUNT("numerics.erlang_c_batch_calls");

  // One recurrence sweep for all lanes, then the scalar kernel's exact
  // O(1) epilogue per element (identical operation order keeps every
  // output bitwise equal to erlang_c_derivs).
  double a_buf[W];
  double b_buf[W];
  for (std::size_t base = 0; base < n; base += W) {
    const std::size_t live = std::min(W, n - base);
    for (std::size_t w = 0; w < live; ++w) {
      a_buf[w] = static_cast<double>(m[base + w]) * rho[base + w];
    }
    recurrence_block(m.data() + base, a_buf, b_buf, live);
    for (std::size_t w = 0; w < live; ++w) {
      const std::size_t i = base + w;
      if (rho[i] == 0.0) {
        c[i] = 0.0;
        dc[i] = (m[i] == 1) ? 1.0 : 0.0;
        d2c[i] = (m[i] == 2) ? 4.0 : 0.0;
        continue;
      }
      const double md = static_cast<double>(m[i]);
      const double b = b_buf[w];
      const double t = b / (1.0 - b);
      const double u = 1.0 - rho[i] + t;
      const double one_minus = 1.0 - rho[i];
      c[i] = t / u;
      const double tp = (t * md / rho[i]) * u;
      const double up = tp - 1.0;
      dc[i] = (tp * one_minus + t) / (u * u);
      const double tpp =
          md * ((tp / rho[i] - t / (rho[i] * rho[i])) * u + (t / rho[i]) * up);
      d2c[i] = (tpp * one_minus * u - 2.0 * up * (tp * one_minus + t)) / (u * u * u);
    }
  }
}

}  // namespace blade::num
