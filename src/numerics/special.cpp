#include "numerics/special.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace blade::num {

namespace {

// Exact ln(k!) for k <= 20 (20! is the last factorial exactly representable
// in uint64_t; doubles carry these sums exactly enough for our tolerances).
constexpr int kExactMax = 20;

const std::array<double, kExactMax + 1>& exact_table() {
  static const std::array<double, kExactMax + 1> table = [] {
    std::array<double, kExactMax + 1> t{};
    t[0] = 0.0;
    double acc = 0.0;
    for (int k = 1; k <= kExactMax; ++k) {
      acc += std::log(static_cast<double>(k));
      t[static_cast<std::size_t>(k)] = acc;
    }
    return t;
  }();
  return table;
}

}  // namespace

double log_factorial(unsigned k) noexcept {
  if (k <= kExactMax) return exact_table()[k];
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double poisson_pmf(unsigned k, double a) noexcept {
  if (a <= 0.0) return k == 0 ? 1.0 : 0.0;
  const double lp = -a + static_cast<double>(k) * std::log(a) - log_factorial(k);
  return std::exp(lp);
}

double poisson_cdf(unsigned K, double a) noexcept {
  if (a <= 0.0) return 1.0;
  // Forward recurrence from the mode side would be ideal; for the blade-server
  // sizes in play (m up to a few thousand) starting at k=0 with the pmf in the
  // log domain for the first term is accurate and simple: p_{k+1} = p_k * a/(k+1).
  double p = std::exp(-a);
  KahanSum s;
  if (p > 0.0) {
    s.add(p);
    for (unsigned k = 0; k < K; ++k) {
      p *= a / static_cast<double>(k + 1);
      s.add(p);
    }
    return std::min(1.0, s.value());
  }
  // e^{-a} underflows (a > ~745): sum the log-domain pmf terms around the
  // largest contributor instead.
  for (unsigned k = 0; k <= K; ++k) s.add(poisson_pmf(k, a));
  return std::min(1.0, s.value());
}

void KahanSum::add(double x) noexcept {
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    c_ += (sum_ - t) + x;
  } else {
    c_ += (x - t) + sum_;
  }
  sum_ = t;
}

double ksum(std::span<const double> xs) noexcept {
  KahanSum s;
  for (double x : xs) s.add(x);
  return s.value();
}

double rel_diff(double a, double b) noexcept {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) / scale;
}

}  // namespace blade::num
