// SoA-batched Erlang kernels: one Erlang-B recurrence advanced across
// many servers at once. The scalar kernels in erlang.hpp run the O(m)
// recurrence once per (m, rho) pair; the solver's per-server marginal
// sweeps, the surrogate-cache builds, and the controller's exact drift
// fallthrough all evaluate the *same* recurrence over n independent
// servers, so the loop is restructured as structure-of-arrays lanes:
//
//   for k = 1 .. max_i(m_i):
//     for each lane i (vectorized):
//       b_i = k <= m_i ? a_i b_i / (k + a_i b_i) : b_i
//
// Every lane performs exactly the scalar sequence of IEEE operations
// (the select only freezes finished lanes), so each batched output is
// bitwise identical to its scalar counterpart — the differential tests
// pin this. Inputs are validated with the same predicates and messages
// as the scalar kernels, and the obs counters advance by the batch size
// so per-solve eval accounting stays comparable across paths.
#pragma once

#include <cstddef>
#include <span>

#include "numerics/erlang.hpp"

namespace blade::num {

/// Lane block width of the batched recurrence (a full AVX-512 register
/// of doubles; narrower ISAs just unroll). Tail batches are padded with
/// inert (m = 0) lanes, so any n is legal.
inline constexpr std::size_t kErlangBatchLanes = 8;

/// Batched erlang_b: b[i] = erlang_b(m[i], a[i]) for every i, bitwise
/// identical to the scalar calls. All spans must have equal length;
/// validation (m >= 1, a finite and >= 0) matches the scalar kernel.
void erlang_b_batch(std::span<const unsigned> m, std::span<const double> a,
                    std::span<double> b);

/// Batched erlang_c_derivs: {c,dc,d2c}[i] = erlang_c_derivs(m[i], rho[i])
/// for every i from one lane-blocked recurrence sweep, bitwise identical
/// to the scalar kernel (including the rho == 0 limits). All spans must
/// have equal length; validation matches the scalar kernel.
void erlang_c_derivs_batch(std::span<const unsigned> m, std::span<const double> rho,
                           std::span<double> c, std::span<double> dc,
                           std::span<double> d2c);

}  // namespace blade::num
