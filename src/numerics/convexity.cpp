#include "numerics/convexity.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace blade::num {

namespace {
std::vector<double> grid(double a, double b, int points) {
  if (points < 3) throw std::invalid_argument("shape check: need at least 3 grid points");
  if (!(b > a)) throw std::invalid_argument("shape check: need b > a");
  std::vector<double> xs(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    xs[static_cast<std::size_t>(i)] =
        a + (b - a) * static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return xs;
}
}  // namespace

ShapeReport check_increasing(const std::function<double(double)>& f, double a, double b,
                             int points, double slack) {
  const auto xs = grid(a, b, points);
  ShapeReport rep;
  double prev = f(xs[0]);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double cur = f(xs[i]);
    const double margin = cur - prev;
    if (margin < -slack && margin < rep.worst_violation) {
      rep.holds = false;
      rep.worst_violation = margin;
      rep.worst_x = xs[i];
    }
    prev = cur;
  }
  return rep;
}

ShapeReport check_convex(const std::function<double(double)>& f, double a, double b, int points,
                         double slack) {
  const auto xs = grid(a, b, points);
  std::vector<double> fx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) fx[i] = f(xs[i]);
  ShapeReport rep;
  // Uniform grid: midpoint of xs[i-1], xs[i+1] is xs[i].
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    const double margin = 0.5 * (fx[i - 1] + fx[i + 1]) - fx[i];
    if (margin < -slack && margin < rep.worst_violation) {
      rep.holds = false;
      rep.worst_violation = margin;
      rep.worst_x = xs[i];
    }
  }
  return rep;
}

}  // namespace blade::num
