// Erlang B / Erlang C and their derivatives with respect to the server
// utilization rho. These are the kernels behind every response-time and
// marginal-cost evaluation in the optimizer.
//
// Stability: both functions are computed through the Erlang-B recurrence
//   B_0 = 1,  B_k = a B_{k-1} / (k + a B_{k-1}),   a = m * rho,
// which involves no factorials or powers and is stable for arbitrary m.
// The textbook formulas from the paper (p_0, partial p_0 / partial rho) are
// also provided (log-domain) for cross-validation in tests.
#pragma once

namespace blade::num {

/// Erlang-B blocking probability for m servers at offered load a = m*rho.
/// Defined for a >= 0, m >= 1; B(m, 0) == 0.
[[nodiscard]] double erlang_b(unsigned m, double a);

/// Erlang-C queueing probability P_q for an M/M/m queue with utilization
/// rho in [0, 1). This equals the paper's P_{q,i}.
[[nodiscard]] double erlang_c(unsigned m, double rho);

/// d/d(rho) of erlang_c(m, rho). Analytic, via
///   t = B/(1-B),  C = t/(1-rho+t),  dt/drho = (t m / rho)(1-rho+t),
///   dC/drho = (t' (1-rho) + t) / (1-rho+t)^2.
/// At rho == 0 the derivative is 0 for m >= 2 and 1 for m == 1.
[[nodiscard]] double erlang_c_drho(unsigned m, double rho);

/// Erlang C together with its first two rho-derivatives, all from a
/// single Erlang-B recurrence evaluation. This is the solver's hot-path
/// kernel: one marginal-cost evaluation needs C, C', and (for Newton
/// steps) C'', and computing them separately would run the O(m)
/// recurrence three times. With t = B/(1-B) and u = 1 - rho + t:
///   C   = t/u
///   C'  = (t'(1-rho) + t) / u^2                 t' = (t m / rho) u
///   C'' = (t''(1-rho) u - 2 u' (t'(1-rho)+t)) / u^3,   u' = t' - 1,
///         t'' = m [ (t'/rho - t/rho^2) u + (t/rho) u' ].
struct ErlangCDerivs {
  double c = 0.0;    ///< C(m, rho)
  double dc = 0.0;   ///< dC/drho
  double d2c = 0.0;  ///< d^2C/drho^2
};
[[nodiscard]] ErlangCDerivs erlang_c_derivs(unsigned m, double rho);

/// Steady-state probability p_0 of an empty M/M/m system (paper formula,
/// evaluated stably). Underflows to 0 gracefully for very large m*rho.
[[nodiscard]] double mmm_p0(unsigned m, double rho);

/// Paper's partial p_0 / partial rho (used only for cross-checking the
/// recurrence-based derivative; computed term-by-term, so intended for
/// moderate m).
[[nodiscard]] double mmm_p0_drho(unsigned m, double rho);

/// Direct textbook Erlang C through p_0 (reference implementation for
/// tests; subject to overflow for very large m, use erlang_c instead).
[[nodiscard]] double erlang_c_reference(unsigned m, double rho);

}  // namespace blade::num
