#include "numerics/differentiation.hpp"

#include <cmath>

namespace blade::num {

namespace {
double default_step(double x, double power) {
  const double eps = 2.220446049250313e-16;
  return std::pow(eps, power) * (std::abs(x) + 1.0);
}
}  // namespace

double central_difference(const std::function<double(double)>& f, double x, double h) {
  if (h <= 0.0) h = default_step(x, 1.0 / 3.0);
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

double richardson_derivative(const std::function<double(double)>& f, double x, double h) {
  if (h <= 0.0) h = default_step(x, 1.0 / 5.0);
  const double d1 = central_difference(f, x, h);
  const double d2 = central_difference(f, x, 0.5 * h);
  return (4.0 * d2 - d1) / 3.0;
}

double second_derivative(const std::function<double(double)>& f, double x, double h) {
  if (h <= 0.0) h = default_step(x, 1.0 / 4.0);
  return (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
}

}  // namespace blade::num
