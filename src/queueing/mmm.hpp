// Steady-state analytics of an M/M/m queue (Kleinrock vol. 1, ch. 3; the
// model each blade server is treated as in Section 2 of the paper).
//
// A queue is described by its number of servers m (blades) and the mean
// service time per server xbar = rbar / s. All performance quantities are
// functions of the total arrival rate lambda, which must satisfy
// lambda < m / xbar (rho < 1).
#pragma once

#include <stdexcept>

namespace blade::queue {

/// Thrown when a query would violate the stability condition rho < 1.
class UnstableQueueError : public std::domain_error {
 public:
  using std::domain_error::domain_error;
};

class MMmQueue {
 public:
  /// @param m     number of identical servers (blades), m >= 1
  /// @param xbar  mean service time on one server, xbar > 0
  MMmQueue(unsigned m, double xbar);

  [[nodiscard]] unsigned servers() const noexcept { return m_; }
  [[nodiscard]] double mean_service_time() const noexcept { return xbar_; }
  /// Service rate of a single server, mu = 1/xbar.
  [[nodiscard]] double service_rate() const noexcept { return 1.0 / xbar_; }
  /// Saturation arrival rate m/xbar (exclusive upper bound for lambda).
  [[nodiscard]] double max_arrival_rate() const noexcept {
    return static_cast<double>(m_) / xbar_;
  }

  /// Server utilization rho = lambda * xbar / m. Throws if rho >= 1.
  [[nodiscard]] double utilization(double lambda) const;

  /// p_0: probability the system is empty.
  [[nodiscard]] double p_empty(double lambda) const;

  /// p_k: probability of exactly k tasks in the system.
  [[nodiscard]] double p_k(unsigned k, double lambda) const;

  /// P_q: probability an arrival must queue (Erlang C).
  [[nodiscard]] double prob_queueing(double lambda) const;

  /// Nbar: mean number of tasks in the system, m rho + rho/(1-rho) P_q.
  [[nodiscard]] double mean_tasks(double lambda) const;

  /// Nbar_q: mean queue length (excluding tasks in service).
  [[nodiscard]] double mean_queue_length(double lambda) const;

  /// T: mean response time, xbar (1 + P_q / (m (1-rho))).
  [[nodiscard]] double mean_response_time(double lambda) const;

  /// W: mean waiting time, T - xbar.
  [[nodiscard]] double mean_waiting_time(double lambda) const;

  /// W* = xbar/m: expected time to the next service completion when all
  /// servers are busy (min of m i.i.d. exponentials).
  [[nodiscard]] double next_completion_time() const noexcept {
    return xbar_ / static_cast<double>(m_);
  }

  /// W_0 = P_q * W*: expected time until a server becomes available.
  [[nodiscard]] double server_available_time(double lambda) const;

 private:
  unsigned m_;
  double xbar_;
};

}  // namespace blade::queue
