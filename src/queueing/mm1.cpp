#include "queueing/mm1.hpp"

#include <stdexcept>

namespace blade::queue {

namespace {
void check(double xbar, double rho) {
  if (!(xbar > 0.0)) throw std::invalid_argument("mm1: xbar must be > 0");
  if (!(rho >= 0.0) || rho >= 1.0) throw std::invalid_argument("mm1: rho must be in [0, 1)");
}
}  // namespace

double mm1_response_time(double xbar, double rho) {
  check(xbar, rho);
  return xbar / (1.0 - rho);
}

double mm1_priority_generic_response_time(double xbar, double rho, double rho2) {
  check(xbar, rho);
  if (!(rho2 >= 0.0) || rho2 >= 1.0) throw std::invalid_argument("mm1: rho2 must be in [0, 1)");
  return xbar * (1.0 + rho / ((1.0 - rho2) * (1.0 - rho)));
}

double mm1_dT_drho(double xbar, double rho) {
  check(xbar, rho);
  return xbar / ((1.0 - rho) * (1.0 - rho));
}

double mm1_priority_dT_drho(double xbar, double rho, double rho2) {
  check(xbar, rho);
  if (!(rho2 >= 0.0) || rho2 >= 1.0) throw std::invalid_argument("mm1: rho2 must be in [0, 1)");
  return xbar / ((1.0 - rho2) * (1.0 - rho) * (1.0 - rho));
}

}  // namespace blade::queue
