#include "queueing/waiting_distribution.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/erlang.hpp"
#include "numerics/roots.hpp"

namespace blade::queue {

WaitingTimeDistribution::WaitingTimeDistribution(unsigned m, double xbar, double lambda)
    : m_(m), xbar_(xbar) {
  if (m == 0) throw std::invalid_argument("WaitingTimeDistribution: m must be >= 1");
  if (!(xbar > 0.0)) throw std::invalid_argument("WaitingTimeDistribution: xbar must be > 0");
  if (!(lambda >= 0.0)) throw std::invalid_argument("WaitingTimeDistribution: lambda >= 0");
  mu_ = 1.0 / xbar;
  rho_ = lambda * xbar / m;
  if (rho_ >= 1.0) throw std::invalid_argument("WaitingTimeDistribution: rho >= 1");
  erlang_c_ = num::erlang_c(m, rho_);
  theta_ = m * mu_ * (1.0 - rho_);
}

double WaitingTimeDistribution::waiting_ccdf(double t) const {
  if (!(t >= 0.0)) throw std::invalid_argument("waiting_ccdf: t must be >= 0");
  return erlang_c_ * std::exp(-theta_ * t);
}

double WaitingTimeDistribution::waiting_quantile(double p) const {
  if (!(p >= 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("waiting_quantile: p must be in [0, 1)");
  }
  if (p <= 1.0 - erlang_c_) return 0.0;  // the atom at zero covers it
  return std::log(erlang_c_ / (1.0 - p)) / theta_;
}

double WaitingTimeDistribution::response_ccdf(double t) const {
  if (!(t >= 0.0)) throw std::invalid_argument("response_ccdf: t must be >= 0");
  const double c = erlang_c_;
  const double no_wait = (1.0 - c) * std::exp(-mu_ * t);
  if (std::abs(mu_ - theta_) < 1e-9 * mu_) {
    // Degenerate case theta == mu (rho == 1 - 1/m): W + S is
    // hypoexponential with equal rates -> Erlang-2-like tail.
    return no_wait + c * std::exp(-mu_ * t) * (1.0 + mu_ * t);
  }
  const double wait = c * (std::exp(-theta_ * t) +
                           theta_ * (std::exp(-theta_ * t) - std::exp(-mu_ * t)) / (mu_ - theta_));
  return no_wait + wait;
}

double WaitingTimeDistribution::response_quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("response_quantile: p must be in (0, 1)");
  }
  // CCDF is strictly decreasing from 1; find t with response_ccdf(t) = 1-p.
  const double target = 1.0 - p;
  auto increasing = [&](double t) { return 1.0 - response_ccdf(t); };  // CDF
  const num::RootOptions opts{.tolerance = 1e-12, .max_iterations = 300, .max_expansions = 200};
  const auto root = num::solve_increasing(increasing, p, 0.0, std::nullopt, xbar_, opts);
  (void)target;
  return root.x;
}

double WaitingTimeDistribution::mean_response() const {
  return xbar_ + erlang_c_ / theta_;
}

}  // namespace blade::queue
