#include "queueing/priority_ctmc.hpp"

#include <stdexcept>

#include "numerics/special.hpp"

namespace blade::queue {

namespace {

/// State layout: s < m (queues empty) occupy indices [0, m); the full
/// states (s == m) occupy m + q1*(Q+1) + q2.
struct Layout {
  unsigned m;
  unsigned Q;

  [[nodiscard]] std::size_t size() const {
    return m + static_cast<std::size_t>(Q + 1) * (Q + 1);
  }
  [[nodiscard]] std::size_t idle(unsigned s) const { return s; }
  [[nodiscard]] std::size_t full(unsigned q1, unsigned q2) const {
    return m + static_cast<std::size_t>(q1) * (Q + 1) + q2;
  }
};

}  // namespace

PriorityCtmcResult solve_priority_mmm(unsigned m, double xbar, double lambda_special,
                                      double lambda_generic, unsigned queue_bound) {
  if (m == 0) throw std::invalid_argument("solve_priority_mmm: m must be >= 1");
  if (!(xbar > 0.0)) throw std::invalid_argument("solve_priority_mmm: xbar must be > 0");
  if (!(lambda_special > 0.0) || !(lambda_generic > 0.0)) {
    throw std::invalid_argument("solve_priority_mmm: class rates must be > 0");
  }
  if (queue_bound < 8) throw std::invalid_argument("solve_priority_mmm: queue bound too small");
  const double mu = 1.0 / xbar;
  const double rho = (lambda_special + lambda_generic) * xbar / m;
  if (rho >= 1.0) throw std::invalid_argument("solve_priority_mmm: unstable (rho >= 1)");

  const Layout lay{m, queue_bound};
  Ctmc chain(lay.size());

  // Idle-side states: s tasks in service, empty queues.
  for (unsigned s = 0; s < m; ++s) {
    const auto arrive_to = (s + 1 < m) ? lay.idle(s + 1) : lay.full(0, 0);
    chain.add_rate(lay.idle(s), arrive_to, lambda_special + lambda_generic);
    if (s >= 1) chain.add_rate(lay.idle(s), lay.idle(s - 1), s * mu);
  }

  // Full states: all m blades busy, (q1, q2) waiting.
  for (unsigned q1 = 0; q1 <= queue_bound; ++q1) {
    for (unsigned q2 = 0; q2 <= queue_bound; ++q2) {
      const auto here = lay.full(q1, q2);
      if (q1 < queue_bound) chain.add_rate(here, lay.full(q1 + 1, q2), lambda_special);
      if (q2 < queue_bound) chain.add_rate(here, lay.full(q1, q2 + 1), lambda_generic);
      // A completion frees one blade; the head of the queue (special
      // first) takes it immediately, else the system drops to m-1 busy.
      const double srv = m * mu;
      if (q1 > 0) {
        chain.add_rate(here, lay.full(q1 - 1, q2), srv);
      } else if (q2 > 0) {
        chain.add_rate(here, lay.full(0, q2 - 1), srv);
      } else {
        chain.add_rate(here, m >= 2 ? lay.idle(m - 1) : lay.idle(0), srv);
      }
    }
  }

  const auto sol = chain.stationary();

  PriorityCtmcResult res;
  res.converged = sol.converged;
  res.sweeps = sol.sweeps;

  num::KahanSum q1_mean, q2_mean, busy, boundary;
  for (unsigned s = 0; s < m; ++s) {
    busy.add(sol.pi[lay.idle(s)] * s);
  }
  for (unsigned q1 = 0; q1 <= queue_bound; ++q1) {
    for (unsigned q2 = 0; q2 <= queue_bound; ++q2) {
      const double p = sol.pi[lay.full(q1, q2)];
      q1_mean.add(p * q1);
      q2_mean.add(p * q2);
      busy.add(p * m);
      if (q1 == queue_bound || q2 == queue_bound) boundary.add(p);
    }
  }
  res.truncation_mass = boundary.value();
  res.utilization = busy.value() / m;
  // Little's law per class on the waiting room.
  res.special_wait = q1_mean.value() / lambda_special;
  res.generic_wait = q2_mean.value() / lambda_generic;
  res.special_response = res.special_wait + xbar;
  res.generic_response = res.generic_wait + xbar;
  return res;
}

}  // namespace blade::queue
