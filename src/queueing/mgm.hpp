// Allen–Cunneen approximation for M/G/m queues: relaxes the paper's
// exponential-service assumption to general service distributions with a
// given squared coefficient of variation (SCV). Used by the sensitivity
// ablation that asks how the optimal distribution would shift if task
// sizes were not exponential (SCV != 1).
//
//   Wq(M/G/m) ~= (Ca^2 + Cs^2)/2 * Wq(M/M/m)
//
// With Poisson arrivals Ca^2 = 1; SCV = 1 recovers the exact M/M/m value.
#pragma once

namespace blade::queue {

class MGmApprox {
 public:
  /// @param m            servers, >= 1
  /// @param xbar         mean service time, > 0
  /// @param service_scv  squared coefficient of variation of service time,
  ///                     >= 0 (0 = deterministic, 1 = exponential)
  MGmApprox(unsigned m, double xbar, double service_scv);

  [[nodiscard]] unsigned servers() const noexcept { return m_; }
  [[nodiscard]] double service_scv() const noexcept { return scv_; }
  [[nodiscard]] double max_arrival_rate() const noexcept;

  /// Approximate mean waiting time at arrival rate lambda.
  [[nodiscard]] double mean_waiting_time(double lambda) const;

  /// Approximate mean response time = xbar + Wq.
  [[nodiscard]] double mean_response_time(double lambda) const;

 private:
  unsigned m_;
  double xbar_;
  double scv_;
};

/// Exact Pollaczek-Khinchine mean waiting time for M/G/1:
///   Wq = lambda E[S^2] / (2 (1 - rho)) = rho xbar (1 + scv) / (2 (1 - rho)).
/// The Allen-Cunneen approximation coincides with this at m = 1, so it
/// anchors both the approximation and the general-service simulator.
[[nodiscard]] double mg1_waiting_time(double xbar, double service_scv, double lambda);

}  // namespace blade::queue
