// The paper's blade-server queue: an M/M/m system fed by two merged
// Poisson streams — generic tasks (rate lambda1, the decision variable)
// and preloaded special tasks (rate lambda2, fixed) — under one of two
// queueing disciplines:
//
//   Discipline::Fcfs               Section 3: all tasks share one FCFS
//                                  queue; T'_i = T_i of the merged M/M/m.
//   Discipline::SpecialPriority    Section 4 (Theorem 2): special tasks
//                                  have non-preemptive priority; the
//                                  generic waiting term gains a factor
//                                  1/(1 - rho''_i).
//
// Besides the response times, this class exposes the analytic derivatives
// dT'/drho and dT'/dlambda1 and the Lagrange marginal
//   G(lambda1) = T'(lambda1) + lambda1 * dT'/dlambda1,
// which is what the optimizer equalizes across servers (eq. (1) in the
// paper up to the constant 1/lambda').
#pragma once

#include <span>
#include <utility>

namespace blade::queue {

enum class Discipline {
  Fcfs,             ///< special tasks mixed FCFS with generic tasks (Sec. 3)
  SpecialPriority,  ///< special tasks have non-preemptive priority (Sec. 4)
};

/// Returns "fcfs" or "priority".
[[nodiscard]] const char* to_string(Discipline d) noexcept;

class BladeQueue {
 public:
  /// @param m        number of blades, >= 1
  /// @param xbar     mean task execution time on one blade (rbar/s), > 0
  /// @param lambda2  arrival rate of special tasks, >= 0, with
  ///                 lambda2 * xbar / m < 1
  /// @param d        queueing discipline for the special stream
  /// @param service_scv  squared coefficient of variation of task sizes.
  ///                 1 (default) is the paper's exponential assumption and
  ///                 makes every formula exact; other values apply the
  ///                 Allen–Cunneen M/G/m correction (1+scv)/2 to the
  ///                 waiting term, an approximation used by the
  ///                 sensitivity ablation.
  BladeQueue(unsigned m, double xbar, double lambda2, Discipline d, double service_scv = 1.0);

  [[nodiscard]] unsigned blades() const noexcept { return m_; }
  [[nodiscard]] double mean_service_time() const noexcept { return xbar_; }
  [[nodiscard]] double special_rate() const noexcept { return lambda2_; }
  [[nodiscard]] Discipline discipline() const noexcept { return disc_; }
  [[nodiscard]] double service_scv() const noexcept { return scv_; }

  /// rho'' = lambda2 * xbar / m: utilization due to special tasks alone.
  [[nodiscard]] double special_utilization() const noexcept;

  /// Largest admissible generic rate: m/xbar - lambda2 (exclusive).
  [[nodiscard]] double max_generic_rate() const noexcept;

  /// Total utilization rho = (lambda1 + lambda2) xbar / m; throws if >= 1.
  [[nodiscard]] double utilization(double lambda1) const;

  /// T'_i(lambda1): mean response time of *generic* tasks.
  [[nodiscard]] double generic_response_time(double lambda1) const;

  /// Mean response time of *special* tasks (equals the generic one under
  /// FCFS; smaller under priority).
  [[nodiscard]] double special_response_time(double lambda1) const;

  /// Analytic dT'/drho at the utilization implied by lambda1.
  [[nodiscard]] double dT_drho(double lambda1) const;

  /// Analytic dT'/dlambda1 = (xbar/m) dT'/drho.
  [[nodiscard]] double dT_dlambda(double lambda1) const;

  /// Lagrange marginal G(lambda1) = T' + lambda1 dT'/dlambda1. Strictly
  /// increasing in lambda1 (convexity of lambda1 * T').
  [[nodiscard]] double lagrange_marginal(double lambda1) const;

  /// {G(lambda1), dG/dlambda1} from ONE Erlang-B recurrence evaluation
  /// (num::erlang_c_derivs shares C, C', C'' across the marginal and its
  /// derivative). dG = 2 dT'/dlambda1 + lambda1 d^2T'/dlambda1^2 is the
  /// slope Newton's method needs; it is positive by convexity. If the
  /// analytic second derivative is not finite (extreme rho), the slope
  /// falls back to a guarded central difference of lagrange_marginal.
  [[nodiscard]] std::pair<double, double> lagrange_marginal_with_derivative(
      double lambda1) const;

  /// Response time evaluated directly at a given total utilization (used
  /// by shape tests that sweep rho rather than lambda1).
  [[nodiscard]] double response_time_at_rho(double rho) const;

 private:
  /// (1 + scv)/2: multiplier on every waiting-time term.
  [[nodiscard]] double variability_factor() const noexcept { return 0.5 * (1.0 + scv_); }

  unsigned m_;
  double xbar_;
  double lambda2_;
  Discipline disc_;
  double scv_;
};

/// Batched Lagrange marginals across servers:
///   g[j] = queues[j].lagrange_marginal(lambda1s[j])
/// computed from ONE lane-blocked Erlang-B sweep (erlang_b_batch) instead
/// of the three recurrences the scalar chain runs per server. Each output
/// is bitwise identical to the scalar call — the epilogue replicates the
/// scalar operation order exactly — so gradient sweeps can switch paths
/// freely. Spans must share one length; per-element validation (rho < 1)
/// matches BladeQueue::utilization.
void batch_lagrange_marginal(std::span<const BladeQueue> queues,
                             std::span<const double> lambda1s, std::span<double> g);

/// One queue, many rates — the surrogate-cache build sweep. Bitwise
/// identical to calling q.lagrange_marginal(lambda1s[j]) per element.
void batch_lagrange_marginal(const BladeQueue& q, std::span<const double> lambda1s,
                             std::span<double> g);

/// Batched {G, dG} across servers via num::erlang_c_derivs_batch —
/// bitwise identical to lagrange_marginal_with_derivative per element,
/// including its guarded central-difference curvature fallback.
void batch_lagrange_marginal_with_derivative(std::span<const BladeQueue> queues,
                                             std::span<const double> lambda1s,
                                             std::span<double> g, std::span<double> dg);

/// One queue, many rates variant of the derivative form (spline nodes of
/// the marginal surrogate need G and dG at every knot).
void batch_lagrange_marginal_with_derivative(const BladeQueue& q,
                                             std::span<const double> lambda1s,
                                             std::span<double> g, std::span<double> dg);

}  // namespace blade::queue
