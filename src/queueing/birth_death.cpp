#include "queueing/birth_death.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/special.hpp"

namespace blade::queue {

BirthDeathChain::BirthDeathChain(std::function<double(unsigned)> birth,
                                 std::function<double(unsigned)> death, unsigned max_state)
    : birth_(std::move(birth)), death_(std::move(death)), max_state_(max_state) {
  if (!birth_ || !death_) throw std::invalid_argument("BirthDeathChain: null rate function");
  if (max_state == 0) throw std::invalid_argument("BirthDeathChain: need max_state >= 1");
}

const std::vector<double>& BirthDeathChain::stationary() const {
  if (!pi_.empty()) return pi_;
  // Unnormalized weights via detailed balance, in a scaled form that
  // avoids overflow: renormalize whenever the running weight grows large.
  std::vector<double> w(max_state_ + 1);
  w[0] = 1.0;
  double scale_correction = 0.0;  // log-scale applied so far (uniform, cancels)
  for (unsigned k = 0; k < max_state_; ++k) {
    const double b = birth_(k);
    const double d = death_(k + 1);
    if (b < 0.0) throw std::domain_error("BirthDeathChain: negative birth rate");
    if (b > 0.0 && !(d > 0.0)) {
      throw std::domain_error("BirthDeathChain: state reachable but death rate is 0");
    }
    w[k + 1] = (b == 0.0) ? 0.0 : w[k] * b / d;
    if (w[k + 1] > 1e280) {
      const double s = w[k + 1];
      for (unsigned j = 0; j <= k + 1; ++j) w[j] /= s;
      scale_correction += std::log(s);
    }
  }
  (void)scale_correction;  // uniform scaling cancels in normalization
  num::KahanSum z;
  for (double x : w) z.add(x);
  if (!(z.value() > 0.0)) throw std::domain_error("BirthDeathChain: degenerate chain");
  pi_.resize(w.size());
  for (std::size_t k = 0; k < w.size(); ++k) pi_[k] = w[k] / z.value();
  return pi_;
}

double BirthDeathChain::expectation(const std::function<double(unsigned)>& f) const {
  const auto& pi = stationary();
  num::KahanSum acc;
  for (unsigned k = 0; k <= max_state_; ++k) acc.add(pi[k] * f(k));
  return acc.value();
}

double BirthDeathChain::mean_state() const {
  return expectation([](unsigned k) { return static_cast<double>(k); });
}

double BirthDeathChain::tail_probability(unsigned k) const {
  const auto& pi = stationary();
  num::KahanSum acc;
  for (unsigned j = k; j <= max_state_; ++j) acc.add(pi[j]);
  return std::min(1.0, acc.value());
}

double BirthDeathChain::boundary_mass() const { return stationary().back(); }

}  // namespace blade::queue
