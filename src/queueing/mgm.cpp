#include "queueing/mgm.hpp"

#include <stdexcept>

#include "queueing/mmm.hpp"

namespace blade::queue {

MGmApprox::MGmApprox(unsigned m, double xbar, double service_scv)
    : m_(m), xbar_(xbar), scv_(service_scv) {
  if (m == 0) throw std::invalid_argument("MGmApprox: m must be >= 1");
  if (!(xbar > 0.0)) throw std::invalid_argument("MGmApprox: xbar must be > 0");
  if (!(service_scv >= 0.0)) throw std::invalid_argument("MGmApprox: scv must be >= 0");
}

double MGmApprox::max_arrival_rate() const noexcept {
  return static_cast<double>(m_) / xbar_;
}

double MGmApprox::mean_waiting_time(double lambda) const {
  const MMmQueue base(m_, xbar_);
  const double wq_mmm = base.mean_waiting_time(lambda);
  return 0.5 * (1.0 + scv_) * wq_mmm;  // Ca^2 = 1 for Poisson arrivals
}

double MGmApprox::mean_response_time(double lambda) const {
  return xbar_ + mean_waiting_time(lambda);
}

double mg1_waiting_time(double xbar, double service_scv, double lambda) {
  if (!(xbar > 0.0)) throw std::invalid_argument("mg1_waiting_time: xbar must be > 0");
  if (!(service_scv >= 0.0)) throw std::invalid_argument("mg1_waiting_time: scv must be >= 0");
  if (!(lambda >= 0.0)) throw std::invalid_argument("mg1_waiting_time: lambda must be >= 0");
  const double rho = lambda * xbar;
  if (rho >= 1.0) throw std::invalid_argument("mg1_waiting_time: rho >= 1");
  return rho * xbar * (1.0 + service_scv) / (2.0 * (1.0 - rho));
}

}  // namespace blade::queue
