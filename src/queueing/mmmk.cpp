#include "queueing/mmmk.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "numerics/special.hpp"

namespace blade::queue {

MMmKQueue::MMmKQueue(unsigned m, unsigned K, double xbar) : m_(m), K_(K), xbar_(xbar) {
  if (m == 0) throw std::invalid_argument("MMmKQueue: m must be >= 1");
  if (K < m) throw std::invalid_argument("MMmKQueue: K must be >= m");
  if (!(xbar > 0.0)) throw std::invalid_argument("MMmKQueue: xbar must be > 0");
}

double MMmKQueue::weight(unsigned k, double a) const {
  // log of a^k/k! for k <= m, and a^m/m! (a/m)^{k-m} beyond.
  const double md = static_cast<double>(m_);
  double lw;
  if (k <= m_) {
    lw = static_cast<double>(k) * std::log(a) - num::log_factorial(k);
  } else {
    lw = md * std::log(a) - num::log_factorial(m_) +
         static_cast<double>(k - m_) * (std::log(a) - std::log(md));
  }
  return lw;
}

double MMmKQueue::p_k(unsigned k, double lambda) const {
  if (k > K_) return 0.0;
  if (!(lambda > 0.0)) return k == 0 ? 1.0 : 0.0;
  const double a = lambda * xbar_;
  // Normalize in the log domain against the max weight to avoid overflow.
  double max_lw = weight(0, a);
  for (unsigned j = 1; j <= K_; ++j) max_lw = std::max(max_lw, weight(j, a));
  num::KahanSum z;
  for (unsigned j = 0; j <= K_; ++j) z.add(std::exp(weight(j, a) - max_lw));
  return std::exp(weight(k, a) - max_lw) / z.value();
}

double MMmKQueue::blocking_probability(double lambda) const { return p_k(K_, lambda); }

double MMmKQueue::effective_arrival_rate(double lambda) const {
  return lambda * (1.0 - blocking_probability(lambda));
}

double MMmKQueue::mean_tasks(double lambda) const {
  num::KahanSum n;
  for (unsigned k = 1; k <= K_; ++k) {
    n.add(static_cast<double>(k) * p_k(k, lambda));
  }
  return n.value();
}

double MMmKQueue::mean_response_time(double lambda) const {
  if (!(lambda > 0.0)) throw std::invalid_argument("MMmKQueue: lambda must be > 0");
  const double eff = effective_arrival_rate(lambda);
  return mean_tasks(lambda) / eff;
}

}  // namespace blade::queue
