#include "queueing/hetero_server.hpp"

#include <bit>
#include <stdexcept>

#include "numerics/special.hpp"
#include "queueing/ctmc.hpp"

namespace blade::queue {

namespace {

struct Layout {
  unsigned m;
  unsigned Q;
  unsigned full_mask;

  [[nodiscard]] std::size_t size() const {
    return (1u << m) + Q;  // all masks with q = 0, then q = 1..Q at full
  }
  [[nodiscard]] std::size_t state(unsigned mask, unsigned q) const {
    if (q == 0) return mask;
    return (1u << m) + (q - 1);
  }
};

/// Fastest free blade under the mask (assignment policy).
unsigned fastest_free(const std::vector<double>& speeds, unsigned mask) {
  unsigned best = speeds.size();
  for (unsigned i = 0; i < speeds.size(); ++i) {
    if ((mask >> i) & 1u) continue;
    if (best == speeds.size() || speeds[i] > speeds[best]) best = i;
  }
  return best;
}

}  // namespace

HeteroServerResult solve_hetero_server(const std::vector<double>& speeds, double rbar,
                                       double lambda, unsigned queue_bound) {
  const auto m = static_cast<unsigned>(speeds.size());
  if (m == 0 || m > 10) {
    throw std::invalid_argument("solve_hetero_server: need 1..10 blades");
  }
  if (!(rbar > 0.0)) throw std::invalid_argument("solve_hetero_server: rbar must be > 0");
  if (queue_bound < 16) throw std::invalid_argument("solve_hetero_server: queue bound too small");
  double total_speed = 0.0;
  for (double s : speeds) {
    if (!(s > 0.0)) throw std::invalid_argument("solve_hetero_server: speeds must be > 0");
    total_speed += s;
  }
  if (!(lambda > 0.0) || lambda >= total_speed / rbar) {
    throw std::invalid_argument("solve_hetero_server: unstable arrival rate");
  }

  const Layout lay{m, queue_bound, (1u << m) - 1u};
  Ctmc chain(lay.size());

  // Partially busy states (q = 0).
  for (unsigned mask = 0; mask <= lay.full_mask; ++mask) {
    if (mask != lay.full_mask) {
      const unsigned f = fastest_free(speeds, mask);
      chain.add_rate(lay.state(mask, 0), lay.state(mask | (1u << f), 0), lambda);
    } else {
      chain.add_rate(lay.state(mask, 0), lay.state(mask, 1), lambda);
    }
    for (unsigned i = 0; i < m; ++i) {
      if (!((mask >> i) & 1u)) continue;
      chain.add_rate(lay.state(mask, 0), lay.state(mask & ~(1u << i), 0), speeds[i] / rbar);
    }
  }
  // Queued states (mask full, q >= 1).
  for (unsigned q = 1; q <= queue_bound; ++q) {
    if (q < queue_bound) {
      chain.add_rate(lay.state(lay.full_mask, q), lay.state(lay.full_mask, q + 1), lambda);
    }
    for (unsigned i = 0; i < m; ++i) {
      // Blade i completes; the queue head takes the freed blade, so the
      // mask stays full and only q drops.
      chain.add_rate(lay.state(lay.full_mask, q), lay.state(lay.full_mask, q - 1),
                     speeds[i] / rbar);
    }
  }

  const auto sol = chain.stationary();

  HeteroServerResult res;
  res.converged = sol.converged;
  num::KahanSum n_mean, busy_speed;
  for (unsigned mask = 0; mask <= lay.full_mask; ++mask) {
    const double p = sol.pi[lay.state(mask, 0)];
    n_mean.add(p * std::popcount(mask));
    double sp = 0.0;
    for (unsigned i = 0; i < m; ++i) {
      if ((mask >> i) & 1u) sp += speeds[i];
    }
    busy_speed.add(p * sp);
  }
  for (unsigned q = 1; q <= queue_bound; ++q) {
    const double p = sol.pi[lay.state(lay.full_mask, q)];
    n_mean.add(p * (m + q));
    busy_speed.add(p * total_speed);
  }
  res.truncation_mass = sol.pi[lay.state(lay.full_mask, queue_bound)];
  res.mean_tasks = n_mean.value();
  res.mean_response = res.mean_tasks / lambda;  // Little (no loss up to truncation)
  res.utilization = busy_speed.value() / total_speed;
  return res;
}

}  // namespace blade::queue
