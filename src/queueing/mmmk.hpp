// M/M/m/K: finite waiting room extension. The paper assumes an infinite
// queue; real blade chassis have bounded admission buffers, so this module
// quantifies how close the infinite-queue model is for realistic K
// (used by the finite-capacity ablation bench and tests).
#pragma once

namespace blade::queue {

class MMmKQueue {
 public:
  /// @param m     servers, >= 1
  /// @param K     system capacity (in service + waiting), K >= m
  /// @param xbar  mean service time per server, > 0
  MMmKQueue(unsigned m, unsigned K, double xbar);

  [[nodiscard]] unsigned servers() const noexcept { return m_; }
  [[nodiscard]] unsigned capacity() const noexcept { return K_; }

  /// Probability of k tasks in the system (k <= K). Accepts any lambda > 0;
  /// finite-capacity systems are always stable.
  [[nodiscard]] double p_k(unsigned k, double lambda) const;

  /// Blocking probability p_K (arrivals lost).
  [[nodiscard]] double blocking_probability(double lambda) const;

  /// Effective (accepted) throughput lambda (1 - p_K).
  [[nodiscard]] double effective_arrival_rate(double lambda) const;

  /// Mean number of tasks in the system.
  [[nodiscard]] double mean_tasks(double lambda) const;

  /// Mean response time of *accepted* tasks (Little on the effective rate).
  [[nodiscard]] double mean_response_time(double lambda) const;

 private:
  /// Unnormalized state weights relative to state 0; returns normalizer sum.
  [[nodiscard]] double weight(unsigned k, double a) const;

  unsigned m_;
  unsigned K_;
  double xbar_;
};

}  // namespace blade::queue
