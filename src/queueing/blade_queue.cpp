#include "queueing/blade_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/erlang.hpp"
#include "queueing/mmm.hpp"

namespace blade::queue {

const char* to_string(Discipline d) noexcept {
  return d == Discipline::Fcfs ? "fcfs" : "priority";
}

BladeQueue::BladeQueue(unsigned m, double xbar, double lambda2, Discipline d, double service_scv)
    : m_(m), xbar_(xbar), lambda2_(lambda2), disc_(d), scv_(service_scv) {
  if (m == 0) throw std::invalid_argument("BladeQueue: m must be >= 1");
  if (!(xbar > 0.0)) throw std::invalid_argument("BladeQueue: xbar must be > 0");
  if (!(lambda2 >= 0.0)) throw std::invalid_argument("BladeQueue: lambda2 must be >= 0");
  if (!(service_scv >= 0.0)) throw std::invalid_argument("BladeQueue: scv must be >= 0");
  if (special_utilization() >= 1.0) {
    throw UnstableQueueError("BladeQueue: special tasks alone saturate the server");
  }
}

double BladeQueue::special_utilization() const noexcept {
  return lambda2_ * xbar_ / static_cast<double>(m_);
}

double BladeQueue::max_generic_rate() const noexcept {
  return static_cast<double>(m_) / xbar_ - lambda2_;
}

double BladeQueue::utilization(double lambda1) const {
  if (!(lambda1 >= 0.0)) throw std::invalid_argument("BladeQueue: lambda1 must be >= 0");
  const double rho = (lambda1 + lambda2_) * xbar_ / static_cast<double>(m_);
  if (rho >= 1.0) {
    throw UnstableQueueError("BladeQueue: generic + special arrivals exceed capacity");
  }
  return rho;
}

double BladeQueue::response_time_at_rho(double rho) const {
  if (!(rho >= 0.0) || rho >= 1.0) {
    throw std::invalid_argument("BladeQueue: rho must be in [0, 1)");
  }
  const double pq = num::erlang_c(m_, rho);
  const double md = static_cast<double>(m_);
  double wait = variability_factor() * pq / (md * (1.0 - rho)) * xbar_;
  if (disc_ == Discipline::SpecialPriority) {
    wait /= (1.0 - special_utilization());
  }
  return xbar_ + wait;
}

double BladeQueue::generic_response_time(double lambda1) const {
  return response_time_at_rho(utilization(lambda1));
}

double BladeQueue::special_response_time(double lambda1) const {
  const double rho = utilization(lambda1);
  const double pq = num::erlang_c(m_, rho);
  const double md = static_cast<double>(m_);
  if (disc_ == Discipline::Fcfs) {
    return xbar_ + variability_factor() * pq * xbar_ / (md * (1.0 - rho));
  }
  // Theorem 2's intermediate result: W'' = W_0 / (1 - rho'').
  const double w0 = variability_factor() * pq * xbar_ / md;
  return xbar_ + w0 / (1.0 - special_utilization());
}

double BladeQueue::dT_drho(double lambda1) const {
  const double rho = utilization(lambda1);
  const double md = static_cast<double>(m_);
  const double pq = num::erlang_c(m_, rho);
  const double dpq = num::erlang_c_drho(m_, rho);
  // T' = xbar (1 + f * C/(1-rho) / m) with f = (1+scv)/2 times 1 (FCFS)
  // or 1/(1-rho'') (priority); f is constant in rho either way.
  double f = variability_factor();
  if (disc_ == Discipline::SpecialPriority) f /= (1.0 - special_utilization());
  const double one_minus = 1.0 - rho;
  return xbar_ * f / md * (dpq * one_minus + pq) / (one_minus * one_minus);
}

double BladeQueue::dT_dlambda(double lambda1) const {
  return xbar_ / static_cast<double>(m_) * dT_drho(lambda1);
}

double BladeQueue::lagrange_marginal(double lambda1) const {
  return generic_response_time(lambda1) + lambda1 * dT_dlambda(lambda1);
}

std::pair<double, double> BladeQueue::lagrange_marginal_with_derivative(double lambda1) const {
  const double rho = utilization(lambda1);
  const double md = static_cast<double>(m_);
  const auto k = num::erlang_c_derivs(m_, rho);
  double f = variability_factor();
  if (disc_ == Discipline::SpecialPriority) f /= (1.0 - special_utilization());
  const double one_minus = 1.0 - rho;
  const double scale = xbar_ * f / md;
  const double T = xbar_ + scale * k.c / one_minus;  // T' = xbar + xbar f C /(m(1-rho))
  const double dT_drho_v = scale * (k.dc * one_minus + k.c) / (one_minus * one_minus);
  const double d2T_drho2_v =
      scale * (k.d2c * one_minus * one_minus + 2.0 * (k.dc * one_minus + k.c)) /
      (one_minus * one_minus * one_minus);
  const double s = xbar_ / md;  // drho/dlambda1
  const double dT_dl = s * dT_drho_v;
  const double d2T_dl2 = s * s * d2T_drho2_v;
  const double g = T + lambda1 * dT_dl;
  double dg = 2.0 * dT_dl + lambda1 * d2T_dl2;
  if (!std::isfinite(dg)) {
    // Analytic curvature overflowed (rho pushed against 1): guarded
    // central difference of the marginal keeps Newton usable, and the
    // differential tests pin this fallback against the analytic branch.
    const double sup = max_generic_rate();
    const double h = std::max(1e-9, 1e-7 * std::min(lambda1, sup - lambda1));
    const double hi = std::min(lambda1 + h, (1.0 - 1e-12) * sup);
    const double lo = std::max(lambda1 - h, 0.0);
    if (hi > lo) dg = (lagrange_marginal(hi) - lagrange_marginal(lo)) / (hi - lo);
  }
  return {g, dg};
}

}  // namespace blade::queue
