#include "queueing/blade_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "numerics/erlang.hpp"
#include "numerics/erlang_batch.hpp"
#include "obs/obs.hpp"
#include "queueing/mmm.hpp"

namespace blade::queue {

const char* to_string(Discipline d) noexcept {
  return d == Discipline::Fcfs ? "fcfs" : "priority";
}

BladeQueue::BladeQueue(unsigned m, double xbar, double lambda2, Discipline d, double service_scv)
    : m_(m), xbar_(xbar), lambda2_(lambda2), disc_(d), scv_(service_scv) {
  if (m == 0) throw std::invalid_argument("BladeQueue: m must be >= 1");
  if (!(xbar > 0.0)) throw std::invalid_argument("BladeQueue: xbar must be > 0");
  if (!(lambda2 >= 0.0)) throw std::invalid_argument("BladeQueue: lambda2 must be >= 0");
  if (!(service_scv >= 0.0)) throw std::invalid_argument("BladeQueue: scv must be >= 0");
  if (special_utilization() >= 1.0) {
    throw UnstableQueueError("BladeQueue: special tasks alone saturate the server");
  }
}

double BladeQueue::special_utilization() const noexcept {
  return lambda2_ * xbar_ / static_cast<double>(m_);
}

double BladeQueue::max_generic_rate() const noexcept {
  return static_cast<double>(m_) / xbar_ - lambda2_;
}

double BladeQueue::utilization(double lambda1) const {
  if (!(lambda1 >= 0.0)) throw std::invalid_argument("BladeQueue: lambda1 must be >= 0");
  const double rho = (lambda1 + lambda2_) * xbar_ / static_cast<double>(m_);
  if (rho >= 1.0) {
    throw UnstableQueueError("BladeQueue: generic + special arrivals exceed capacity");
  }
  return rho;
}

double BladeQueue::response_time_at_rho(double rho) const {
  if (!(rho >= 0.0) || rho >= 1.0) {
    throw std::invalid_argument("BladeQueue: rho must be in [0, 1)");
  }
  const double pq = num::erlang_c(m_, rho);
  const double md = static_cast<double>(m_);
  double wait = variability_factor() * pq / (md * (1.0 - rho)) * xbar_;
  if (disc_ == Discipline::SpecialPriority) {
    wait /= (1.0 - special_utilization());
  }
  return xbar_ + wait;
}

double BladeQueue::generic_response_time(double lambda1) const {
  return response_time_at_rho(utilization(lambda1));
}

double BladeQueue::special_response_time(double lambda1) const {
  const double rho = utilization(lambda1);
  const double pq = num::erlang_c(m_, rho);
  const double md = static_cast<double>(m_);
  if (disc_ == Discipline::Fcfs) {
    return xbar_ + variability_factor() * pq * xbar_ / (md * (1.0 - rho));
  }
  // Theorem 2's intermediate result: W'' = W_0 / (1 - rho'').
  const double w0 = variability_factor() * pq * xbar_ / md;
  return xbar_ + w0 / (1.0 - special_utilization());
}

double BladeQueue::dT_drho(double lambda1) const {
  const double rho = utilization(lambda1);
  const double md = static_cast<double>(m_);
  const double pq = num::erlang_c(m_, rho);
  const double dpq = num::erlang_c_drho(m_, rho);
  // T' = xbar (1 + f * C/(1-rho) / m) with f = (1+scv)/2 times 1 (FCFS)
  // or 1/(1-rho'') (priority); f is constant in rho either way.
  double f = variability_factor();
  if (disc_ == Discipline::SpecialPriority) f /= (1.0 - special_utilization());
  const double one_minus = 1.0 - rho;
  return xbar_ * f / md * (dpq * one_minus + pq) / (one_minus * one_minus);
}

double BladeQueue::dT_dlambda(double lambda1) const {
  return xbar_ / static_cast<double>(m_) * dT_drho(lambda1);
}

double BladeQueue::lagrange_marginal(double lambda1) const {
  return generic_response_time(lambda1) + lambda1 * dT_dlambda(lambda1);
}

std::pair<double, double> BladeQueue::lagrange_marginal_with_derivative(double lambda1) const {
  const double rho = utilization(lambda1);
  const double md = static_cast<double>(m_);
  const auto k = num::erlang_c_derivs(m_, rho);
  double f = variability_factor();
  if (disc_ == Discipline::SpecialPriority) f /= (1.0 - special_utilization());
  const double one_minus = 1.0 - rho;
  const double scale = xbar_ * f / md;
  const double T = xbar_ + scale * k.c / one_minus;  // T' = xbar + xbar f C /(m(1-rho))
  const double dT_drho_v = scale * (k.dc * one_minus + k.c) / (one_minus * one_minus);
  const double d2T_drho2_v =
      scale * (k.d2c * one_minus * one_minus + 2.0 * (k.dc * one_minus + k.c)) /
      (one_minus * one_minus * one_minus);
  const double s = xbar_ / md;  // drho/dlambda1
  const double dT_dl = s * dT_drho_v;
  const double d2T_dl2 = s * s * d2T_drho2_v;
  const double g = T + lambda1 * dT_dl;
  double dg = 2.0 * dT_dl + lambda1 * d2T_dl2;
  if (!std::isfinite(dg)) {
    // Analytic curvature overflowed (rho pushed against 1): guarded
    // central difference of the marginal keeps Newton usable, and the
    // differential tests pin this fallback against the analytic branch.
    const double sup = max_generic_rate();
    const double h = std::max(1e-9, 1e-7 * std::min(lambda1, sup - lambda1));
    const double hi = std::min(lambda1 + h, (1.0 - 1e-12) * sup);
    const double lo = std::max(lambda1 - h, 0.0);
    if (hi > lo) dg = (lagrange_marginal(hi) - lagrange_marginal(lo)) / (hi - lo);
  }
  return {g, dg};
}

namespace {

void check_batch_sizes(std::size_t n, std::size_t got, const char* what) {
  if (n != got) {
    throw std::invalid_argument(std::string("batch_lagrange_marginal: ") + what);
  }
}

/// Shared front half of both batch forms: per-element utilization (with
/// the scalar path's validation and saturation throw) and offered loads,
/// ready for one lane-blocked recurrence sweep. `queue_at(j)` lets the
/// same code serve the many-queues and one-queue-many-rates shapes.
template <typename QueueAt>
void gather_inputs(QueueAt&& queue_at, std::span<const double> lambda1s,
                   std::vector<unsigned>& m, std::vector<double>& rho) {
  const std::size_t n = lambda1s.size();
  m.resize(n);
  rho.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const BladeQueue& q = queue_at(j);
    m[j] = q.blades();
    rho[j] = q.utilization(lambda1s[j]);
  }
}

/// Epilogue of lagrange_marginal, operation for operation: erlang_c and
/// erlang_c_drho reconstructed from the shared Erlang-B value, then the
/// scalar T / dT'/drho / G chain. Bitwise identical to the scalar path
/// because B is (one recurrence per lane, identical IEEE sequence) and
/// every subsequent expression keeps the scalar order.
double marginal_from_b(const BladeQueue& q, double lambda1, double rho, double b) {
  const double md = static_cast<double>(q.blades());
  const double xbar = q.mean_service_time();
  const double vf = 0.5 * (1.0 + q.service_scv());
  const double pq = rho == 0.0 ? 0.0 : b / (1.0 - rho * (1.0 - b));
  // generic_response_time
  double wait = vf * pq / (md * (1.0 - rho)) * xbar;
  if (q.discipline() == Discipline::SpecialPriority) {
    wait /= (1.0 - q.special_utilization());
  }
  const double T = xbar + wait;
  // dT_drho
  double dpq;
  if (rho == 0.0) {
    dpq = q.blades() == 1 ? 1.0 : 0.0;
  } else {
    const double t = b / (1.0 - b);
    const double u = 1.0 - rho + t;
    const double dt = (t * md / rho) * u;
    dpq = (dt * (1.0 - rho) + t) / (u * u);
  }
  double f = vf;
  if (q.discipline() == Discipline::SpecialPriority) f /= (1.0 - q.special_utilization());
  const double one_minus = 1.0 - rho;
  const double dT_drho_v = xbar * f / md * (dpq * one_minus + pq) / (one_minus * one_minus);
  const double dT_dlambda_v = xbar / md * dT_drho_v;
  return T + lambda1 * dT_dlambda_v;
}

template <typename QueueAt>
void batch_marginal_impl(QueueAt&& queue_at, std::span<const double> lambda1s,
                         std::span<double> g) {
  const std::size_t n = lambda1s.size();
  check_batch_sizes(n, g.size(), "g size mismatch");
  std::vector<unsigned> m;
  std::vector<double> rho;
  gather_inputs(queue_at, lambda1s, m, rho);
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (std::size_t j = 0; j < n; ++j) a[j] = static_cast<double>(m[j]) * rho[j];
  num::erlang_b_batch(m, a, b);
  // The scalar chain logically evaluates C and C' per server; count them
  // so eval-per-solve accounting stays honest whichever path ran.
  BLADE_OBS_COUNT_N("numerics.erlang_c_evals", n);
  BLADE_OBS_COUNT_N("numerics.erlang_c_drho_evals", n);
  for (std::size_t j = 0; j < n; ++j) {
    g[j] = marginal_from_b(queue_at(j), lambda1s[j], rho[j], b[j]);
  }
}

template <typename QueueAt>
void batch_marginal_deriv_impl(QueueAt&& queue_at, std::span<const double> lambda1s,
                               std::span<double> g, std::span<double> dg) {
  const std::size_t n = lambda1s.size();
  check_batch_sizes(n, g.size(), "g size mismatch");
  check_batch_sizes(n, dg.size(), "dg size mismatch");
  std::vector<unsigned> m;
  std::vector<double> rho;
  gather_inputs(queue_at, lambda1s, m, rho);
  std::vector<double> c(n);
  std::vector<double> dc(n);
  std::vector<double> d2c(n);
  num::erlang_c_derivs_batch(m, rho, c, dc, d2c);
  for (std::size_t j = 0; j < n; ++j) {
    const BladeQueue& q = queue_at(j);
    const double md = static_cast<double>(q.blades());
    const double xbar = q.mean_service_time();
    double f = 0.5 * (1.0 + q.service_scv());
    if (q.discipline() == Discipline::SpecialPriority) {
      f /= (1.0 - q.special_utilization());
    }
    const double one_minus = 1.0 - rho[j];
    const double scale = xbar * f / md;
    const double T = xbar + scale * c[j] / one_minus;
    const double dT_drho_v = scale * (dc[j] * one_minus + c[j]) / (one_minus * one_minus);
    const double d2T_drho2_v =
        scale * (d2c[j] * one_minus * one_minus + 2.0 * (dc[j] * one_minus + c[j])) /
        (one_minus * one_minus * one_minus);
    const double s = xbar / md;
    const double dT_dl = s * dT_drho_v;
    const double d2T_dl2 = s * s * d2T_drho2_v;
    g[j] = T + lambda1s[j] * dT_dl;
    double dgj = 2.0 * dT_dl + lambda1s[j] * d2T_dl2;
    if (!std::isfinite(dgj)) {
      // Same guarded central difference as the scalar kernel (rho pushed
      // against 1); rare enough that the scalar re-evaluation is fine.
      const double sup = q.max_generic_rate();
      const double h = std::max(1e-9, 1e-7 * std::min(lambda1s[j], sup - lambda1s[j]));
      const double hi = std::min(lambda1s[j] + h, (1.0 - 1e-12) * sup);
      const double lo = std::max(lambda1s[j] - h, 0.0);
      if (hi > lo) dgj = (q.lagrange_marginal(hi) - q.lagrange_marginal(lo)) / (hi - lo);
    }
    dg[j] = dgj;
  }
}

}  // namespace

void batch_lagrange_marginal(std::span<const BladeQueue> queues,
                             std::span<const double> lambda1s, std::span<double> g) {
  check_batch_sizes(lambda1s.size(), queues.size(), "queue count mismatch");
  batch_marginal_impl([&](std::size_t j) -> const BladeQueue& { return queues[j]; },
                      lambda1s, g);
}

void batch_lagrange_marginal(const BladeQueue& q, std::span<const double> lambda1s,
                             std::span<double> g) {
  batch_marginal_impl([&](std::size_t) -> const BladeQueue& { return q; }, lambda1s, g);
}

void batch_lagrange_marginal_with_derivative(std::span<const BladeQueue> queues,
                                             std::span<const double> lambda1s,
                                             std::span<double> g, std::span<double> dg) {
  check_batch_sizes(lambda1s.size(), queues.size(), "queue count mismatch");
  batch_marginal_deriv_impl([&](std::size_t j) -> const BladeQueue& { return queues[j]; },
                            lambda1s, g, dg);
}

void batch_lagrange_marginal_with_derivative(const BladeQueue& q,
                                             std::span<const double> lambda1s,
                                             std::span<double> g, std::span<double> dg) {
  batch_marginal_deriv_impl([&](std::size_t) -> const BladeQueue& { return q; }, lambda1s,
                            g, dg);
}

}  // namespace blade::queue
