// Generic birth-death chain steady-state solver. M/M/m, M/M/m/K, and
// M/M/1 are all birth-death processes, so this gives an independent
// numerical cross-check of every closed-form formula in the library:
// the detailed-balance recurrence pi_{k+1} = pi_k * birth(k)/death(k+1)
// needs nothing but the rate functions.
#pragma once

#include <functional>
#include <vector>

namespace blade::queue {

class BirthDeathChain {
 public:
  /// @param birth  birth(k): rate from state k to k+1, >= 0
  /// @param death  death(k): rate from state k to k-1 (k >= 1), > 0 where
  ///               reachable
  /// @param max_state  truncation bound (inclusive); for infinite chains
  ///               choose it so the tail mass is negligible
  BirthDeathChain(std::function<double(unsigned)> birth, std::function<double(unsigned)> death,
                  unsigned max_state);

  /// Steady-state distribution pi_0..pi_max (normalized over the
  /// truncated range). Computed once, cached.
  [[nodiscard]] const std::vector<double>& stationary() const;

  [[nodiscard]] unsigned max_state() const noexcept { return max_state_; }

  /// E[f(K)] under the stationary distribution.
  [[nodiscard]] double expectation(const std::function<double(unsigned)>& f) const;

  /// Mean state E[K].
  [[nodiscard]] double mean_state() const;

  /// P(K >= k).
  [[nodiscard]] double tail_probability(unsigned k) const;

  /// Mass at the truncation boundary (sanity check: should be ~0 when the
  /// truncation is adequate).
  [[nodiscard]] double boundary_mass() const;

 private:
  std::function<double(unsigned)> birth_;
  std::function<double(unsigned)> death_;
  unsigned max_state_;
  mutable std::vector<double> pi_;  // lazily filled
};

}  // namespace blade::queue
