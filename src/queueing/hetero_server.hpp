// Heterogeneous-blade server: the paper assumes the m blades of a server
// are identical. Real chassis often mix generations. This module solves
// the M/M/m-with-distinct-blade-speeds queue *exactly* (truncated CTMC,
// fastest-free-blade assignment, FCFS) and quantifies the error of the
// paper's natural work-around -- replacing the mixed server by an
// equivalent homogeneous one of the same total speed.
//
// State space: which blades are busy (bitmask over m blades) plus the
// queue length; waiting tasks exist only when all blades are busy.
#pragma once

#include <vector>

namespace blade::queue {

struct HeteroServerResult {
  double mean_response = 0.0;   ///< mean response time (FCFS, all tasks)
  double mean_tasks = 0.0;      ///< E[N]
  double utilization = 0.0;     ///< busy speed-weighted fraction in [0,1]
  double truncation_mass = 0.0; ///< stationary mass at the queue bound
  bool converged = false;
};

/// Solves the heterogeneous-blade server at arrival rate lambda.
///
/// @param speeds       per-blade speeds (1..10 blades; state space 2^m)
/// @param rbar         mean task size; blade i serves at rate speeds[i]/rbar
/// @param lambda       Poisson arrival rate; requires
///                     lambda < sum(speeds)/rbar
/// @param queue_bound  waiting-room truncation (>= 16)
[[nodiscard]] HeteroServerResult solve_hetero_server(const std::vector<double>& speeds,
                                                     double rbar, double lambda,
                                                     unsigned queue_bound = 400);

}  // namespace blade::queue
