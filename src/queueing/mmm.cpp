#include "queueing/mmm.hpp"

#include <cmath>

#include "numerics/erlang.hpp"
#include "numerics/special.hpp"

namespace blade::queue {

MMmQueue::MMmQueue(unsigned m, double xbar) : m_(m), xbar_(xbar) {
  if (m == 0) throw std::invalid_argument("MMmQueue: m must be >= 1");
  if (!(xbar > 0.0)) throw std::invalid_argument("MMmQueue: xbar must be > 0");
}

double MMmQueue::utilization(double lambda) const {
  if (!(lambda >= 0.0)) throw std::invalid_argument("MMmQueue: lambda must be >= 0");
  const double rho = lambda * xbar_ / static_cast<double>(m_);
  if (rho >= 1.0) {
    throw UnstableQueueError("MMmQueue: arrival rate exceeds capacity (rho >= 1)");
  }
  return rho;
}

double MMmQueue::p_empty(double lambda) const {
  return num::mmm_p0(m_, utilization(lambda));
}

double MMmQueue::p_k(unsigned k, double lambda) const {
  const double rho = utilization(lambda);
  if (rho == 0.0) return k == 0 ? 1.0 : 0.0;
  const double a = static_cast<double>(m_) * rho;
  const double log_p0 = std::log(num::mmm_p0(m_, rho));
  double log_pk;
  if (k <= m_) {
    log_pk = log_p0 + static_cast<double>(k) * std::log(a) - num::log_factorial(k);
  } else {
    log_pk = log_p0 + static_cast<double>(m_) * std::log(static_cast<double>(m_)) +
             static_cast<double>(k) * std::log(rho) - num::log_factorial(m_);
  }
  return std::exp(log_pk);
}

double MMmQueue::prob_queueing(double lambda) const {
  return num::erlang_c(m_, utilization(lambda));
}

double MMmQueue::mean_tasks(double lambda) const {
  const double rho = utilization(lambda);
  const double pq = num::erlang_c(m_, rho);
  return static_cast<double>(m_) * rho + rho / (1.0 - rho) * pq;
}

double MMmQueue::mean_queue_length(double lambda) const {
  const double rho = utilization(lambda);
  const double pq = num::erlang_c(m_, rho);
  return rho / (1.0 - rho) * pq;
}

double MMmQueue::mean_response_time(double lambda) const {
  const double rho = utilization(lambda);
  const double pq = num::erlang_c(m_, rho);
  return xbar_ * (1.0 + pq / (static_cast<double>(m_) * (1.0 - rho)));
}

double MMmQueue::mean_waiting_time(double lambda) const {
  return mean_response_time(lambda) - xbar_;
}

double MMmQueue::server_available_time(double lambda) const {
  return prob_queueing(lambda) * next_completion_time();
}

}  // namespace blade::queue
