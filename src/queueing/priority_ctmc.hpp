// Exact CTMC of the two-class non-preemptive-priority M/M/m blade server.
//
// Because both classes share one exponential service distribution, the
// state only needs (tasks in service, special waiting, generic waiting);
// the composition of the tasks *in service* is irrelevant to the
// dynamics. The chain is truncated at configurable queue bounds and
// solved for its stationary distribution, giving mean per-class waiting
// times with no approximation beyond truncation -- the independent check
// of Theorem 2 that the paper never performs.
#pragma once

#include "queueing/ctmc.hpp"

namespace blade::queue {

struct PriorityCtmcResult {
  double special_wait = 0.0;    ///< W'' (mean waiting of special tasks)
  double generic_wait = 0.0;    ///< W'  (mean waiting of generic tasks)
  double special_response = 0.0;  ///< W'' + xbar
  double generic_response = 0.0;  ///< W'  + xbar
  double utilization = 0.0;     ///< mean busy servers / m
  double truncation_mass = 0.0;  ///< stationary mass on boundary states
  bool converged = false;
  int sweeps = 0;
};

/// Solves the truncated chain.
/// @param m            blades
/// @param xbar         mean service time per blade
/// @param lambda_special  arrival rate of the prioritized class
/// @param lambda_generic  arrival rate of the low-priority class
/// @param queue_bound  per-class waiting-queue truncation (>= 8)
[[nodiscard]] PriorityCtmcResult solve_priority_mmm(unsigned m, double xbar,
                                                    double lambda_special,
                                                    double lambda_generic,
                                                    unsigned queue_bound = 160);

}  // namespace blade::queue
