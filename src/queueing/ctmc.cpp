#include "queueing/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace blade::queue {

Ctmc::Ctmc(std::size_t states) : out_(states) {
  if (states == 0) throw std::invalid_argument("Ctmc: need at least one state");
}

void Ctmc::add_rate(std::size_t from, std::size_t to, double rate) {
  if (from >= out_.size() || to >= out_.size()) throw std::out_of_range("Ctmc: bad state index");
  if (from == to) throw std::invalid_argument("Ctmc: self-loops are not allowed");
  if (!(rate > 0.0)) throw std::invalid_argument("Ctmc: rate must be > 0");
  for (auto& [t, r] : out_[from]) {
    if (t == to) {
      r += rate;
      return;
    }
  }
  out_[from].emplace_back(to, rate);
}

double Ctmc::exit_rate(std::size_t s) const {
  if (s >= out_.size()) throw std::out_of_range("Ctmc: bad state index");
  double total = 0.0;
  for (const auto& [t, r] : out_[s]) total += r;
  return total;
}

void Ctmc::step(const std::vector<double>& in, std::vector<double>& out, double lam) const {
  const std::size_t n = out_.size();
  for (std::size_t j = 0; j < n; ++j) out[j] = in[j];
  for (std::size_t i = 0; i < n; ++i) {
    const double base = in[i] / lam;
    for (const auto& [j, r] : out_[i]) {
      const double flow = base * r;
      out[i] -= flow;
      out[j] += flow;
    }
  }
}

Ctmc::Solution Ctmc::stationary(const SolveOptions& opts) const {
  const std::size_t n = out_.size();
  // Uniformization constant: a hair above the largest exit rate.
  double lam = 0.0;
  for (std::size_t s = 0; s < n; ++s) lam = std::max(lam, exit_rate(s));
  if (!(lam > 0.0)) throw std::domain_error("Ctmc::stationary: chain has no transitions");
  lam *= 1.05;

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);

  Solution sol;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    step(pi, next, lam);
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) delta += std::abs(next[j] - pi[j]);
    pi.swap(next);
    sol.sweeps = sweep + 1;
    sol.residual = delta;
    if (delta < opts.tolerance) {
      sol.converged = true;
      break;
    }
  }
  // Normalize (guards drift from rounding).
  double z = 0.0;
  for (double x : pi) z += x;
  for (double& x : pi) x /= z;
  sol.pi = std::move(pi);
  return sol;
}

std::vector<double> Ctmc::transient(const std::vector<double>& pi0, double t,
                                    double tail_mass) const {
  const std::size_t n = out_.size();
  if (pi0.size() != n) throw std::invalid_argument("Ctmc::transient: pi0 size mismatch");
  if (!(t >= 0.0)) throw std::invalid_argument("Ctmc::transient: t must be >= 0");
  if (t == 0.0) return pi0;

  double lam = 0.0;
  for (std::size_t s = 0; s < n; ++s) lam = std::max(lam, exit_rate(s));
  if (!(lam > 0.0)) return pi0;
  lam *= 1.05;

  // pi(t) = sum_j w_j v_j,  w_j = Poisson(lam t; j),  v_j = v_{j-1} P.
  const double a = lam * t;
  std::vector<double> v = pi0;
  std::vector<double> next(n);
  std::vector<double> acc(n, 0.0);
  double w = std::exp(-a);  // j = 0 weight
  double covered = 0.0;
  // When e^{-a} underflows, start accumulating once weights become
  // representable; the recurrence below handles it because w stays 0
  // until multiplied up -- so seed via scaled logs instead.
  bool underflow = (w == 0.0);
  double logw = -a;  // log of the running weight when underflowed
  for (std::size_t j = 0;; ++j) {
    if (underflow && logw > -700.0) {
      w = std::exp(logw);
      underflow = false;
    }
    if (!underflow) {
      for (std::size_t s = 0; s < n; ++s) acc[s] += w * v[s];
      covered += w;
      if (1.0 - covered < tail_mass && static_cast<double>(j) > a) break;
    }
    // Advance v <- v P and the Poisson weight.
    step(v, next, lam);
    v.swap(next);
    if (!underflow) {
      w *= a / static_cast<double>(j + 1);
    } else {
      logw += std::log(a) - std::log(static_cast<double>(j + 1));
    }
    if (j > 1000000) throw std::runtime_error("Ctmc::transient: series did not converge");
  }
  // Normalize the truncated series.
  double z = 0.0;
  for (double x : acc) z += x;
  for (double& x : acc) x /= z;
  return acc;
}

}  // namespace blade::queue
