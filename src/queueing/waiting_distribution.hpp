// Distributional results for the M/M/m FCFS queue -- the paper optimizes
// only the *mean* response time; service-level objectives are usually
// percentiles. For M/M/m the waiting time has the classic mixed
// distribution
//   P(W = 0) = 1 - C,   P(W > t) = C e^{-theta t},  theta = m mu (1 - rho)
// (C = Erlang C), and the response time T = W + S (S ~ Exp(mu),
// independent under FCFS) has a two-exponential tail. Both CCDFs and
// their quantiles are provided; the priority-discipline generic class has
// no simple closed form and is handled by simulation (util::Histogram).
#pragma once

namespace blade::queue {

class WaitingTimeDistribution {
 public:
  /// @param m     servers, >= 1
  /// @param xbar  mean service time, > 0
  /// @param lambda  total arrival rate with rho < 1
  WaitingTimeDistribution(unsigned m, double xbar, double lambda);

  /// P(W > t): probability of waiting longer than t (t >= 0).
  [[nodiscard]] double waiting_ccdf(double t) const;

  /// Smallest t with P(W <= t) >= p. Returns 0 when p <= 1 - C.
  [[nodiscard]] double waiting_quantile(double p) const;

  /// P(T > t) for the response time T = W + S.
  [[nodiscard]] double response_ccdf(double t) const;

  /// Smallest t with P(T <= t) >= p (bisection on the monotone CCDF).
  [[nodiscard]] double response_quantile(double p) const;

  /// Mean response time (cross-check against MMmQueue).
  [[nodiscard]] double mean_response() const;

  [[nodiscard]] double prob_queueing() const noexcept { return erlang_c_; }
  [[nodiscard]] double decay_rate() const noexcept { return theta_; }

 private:
  unsigned m_;
  double xbar_;
  double mu_;
  double rho_;
  double erlang_c_;
  double theta_;  // m mu (1 - rho)
};

}  // namespace blade::queue
