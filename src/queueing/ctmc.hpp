// Sparse continuous-time Markov chain with a steady-state solver
// (uniformization + power iteration). Used to validate the paper's
// priority formula (Theorem 2) against the *exact* two-class chain --
// a check the paper itself never performs.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace blade::queue {

class Ctmc {
 public:
  explicit Ctmc(std::size_t states);

  /// Adds (accumulates) a transition rate from -> to, rate > 0, from != to.
  void add_rate(std::size_t from, std::size_t to, double rate);

  [[nodiscard]] std::size_t states() const noexcept { return out_.size(); }

  /// Total outgoing rate of a state.
  [[nodiscard]] double exit_rate(std::size_t s) const;

  struct SolveOptions {
    double tolerance = 1e-12;  ///< L1 change per sweep to declare converged
    int max_sweeps = 200000;
  };

  struct Solution {
    std::vector<double> pi;
    int sweeps = 0;
    bool converged = false;
    double residual = 0.0;  ///< final L1 change
  };

  /// Stationary distribution via the uniformized DTMC P = I + Q/Lambda.
  /// The chain must be irreducible over the supplied states.
  [[nodiscard]] Solution stationary(const SolveOptions& opts) const;
  [[nodiscard]] Solution stationary() const { return stationary(SolveOptions{}); }

  /// Transient distribution pi(t) = pi0 e^{Qt} by uniformization:
  /// pi(t) = sum_j Poisson(Lambda t; j) pi0 P^j, with the series
  /// truncated once the remaining Poisson mass is below `tail_mass`.
  [[nodiscard]] std::vector<double> transient(const std::vector<double>& pi0, double t,
                                              double tail_mass = 1e-12) const;

 private:
  /// One uniformized step: out = in * (I + Q/lam).
  void step(const std::vector<double>& in, std::vector<double>& out, double lam) const;

  std::vector<std::vector<std::pair<std::size_t, double>>> out_;
};

}  // namespace blade::queue
