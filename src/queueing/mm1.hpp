// Closed-form M/M/1 results used by Theorems 1 and 3 (the m_i = 1 special
// case). Provided separately so the theorem implementations and their
// tests can reference the textbook formulas directly.
#pragma once

namespace blade::queue {

/// Mean response time of an M/M/1 queue: xbar / (1 - rho).
[[nodiscard]] double mm1_response_time(double xbar, double rho);

/// Generic-task response time with a prioritized special stream at
/// utilization rho2 (Theorem 3 preliminaries):
///   T' = xbar (1 + rho / ((1 - rho2)(1 - rho))).
[[nodiscard]] double mm1_priority_generic_response_time(double xbar, double rho, double rho2);

/// dT'/drho for the plain M/M/1: xbar / (1-rho)^2.
[[nodiscard]] double mm1_dT_drho(double xbar, double rho);

/// dT'/drho for the prioritized case: xbar / ((1-rho2)(1-rho)^2).
[[nodiscard]] double mm1_priority_dT_drho(double xbar, double rho, double rho2);

}  // namespace blade::queue
