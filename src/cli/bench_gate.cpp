#include "cli/bench_gate.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace blade::cli {

namespace {

using blade::util::JsonValue;

bool load_json(const std::string& path, JsonValue& doc, std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "bench_check: cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    doc = blade::util::parse_json(buf.str());
  } catch (const std::exception& e) {
    err << "bench_check: " << path << ": " << e.what() << '\n';
    return false;
  }
  return true;
}

/// Value of a `name[:field]` metric spec; -1 when absent. `field`
/// defaults to "count", and may be any numeric key of the metric record
/// (timers export "count", "sum", "mean", quantiles, ...).
double counter_total(const JsonValue& doc, const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string field = colon == std::string::npos ? "count" : spec.substr(colon + 1);
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr) return -1.0;
  for (const JsonValue& m : metrics->array) {
    const JsonValue* n = m.find("name");
    if (n == nullptr || n->string != name) continue;
    if (const JsonValue* v = m.find(field)) return v->number;
    return -1.0;
  }
  return -1.0;
}

}  // namespace

int run_bench_check(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  std::size_t arg0 = 0;
  bool min_ratio = false;
  if (!args.empty() && args[0] == "--min-ratio") {
    min_ratio = true;
    arg0 = 1;
  }
  if (args.size() - arg0 != 5) {
    err << "usage: bench_check [--min-ratio] <baseline.json> <current.json> "
           "<numerator-counter> <denominator-counter> <factor>\n";
    return 2;
  }
  JsonValue baseline;
  JsonValue current;
  if (!load_json(args[arg0], baseline, err) || !load_json(args[arg0 + 1], current, err)) return 2;
  const std::string num_name = args[arg0 + 2];
  const std::string den_name = args[arg0 + 3];
  double factor = 0.0;
  try {
    factor = std::stod(args[arg0 + 4]);
  } catch (const std::exception&) {
    err << "bench_check: factor '" << args[arg0 + 4] << "' is not a number\n";
    return 2;
  }
  if (!(factor > 0.0)) {
    err << "bench_check: factor must be > 0\n";
    return 2;
  }

  struct Ratio {
    double num, den, value;
  };
  auto ratio_of = [&](const JsonValue& doc, const char* label, Ratio& r) {
    r.num = counter_total(doc, num_name);
    r.den = counter_total(doc, den_name);
    if (r.num < 0.0 || r.den <= 0.0) {
      err << "bench_check: " << label << " is missing counter '"
          << (r.num < 0.0 ? num_name : den_name) << "' (was the bench built with "
          << "BLADE_OBS=ON and run to completion?)\n";
      return false;
    }
    r.value = r.num / r.den;
    return true;
  };
  Ratio base{};
  Ratio cur{};
  if (!ratio_of(baseline, "baseline", base)) return 2;
  if (!ratio_of(current, "current", cur)) return 1;

  const double limit = factor * base.value;
  out << num_name << " / " << den_name << ": baseline " << base.value << " (" << base.num << "/"
      << base.den << "), current " << cur.value << " (" << cur.num << "/" << cur.den << "), "
      << (min_ratio ? "floor " : "limit ") << limit << " (x" << factor << ")\n";
  if (min_ratio ? cur.value < limit : cur.value > limit) {
    err << "bench_check: FAIL: per-" << den_name << " " << num_name << " "
        << (min_ratio ? "fell below" : "regressed beyond") << " x" << factor << " of baseline\n";
    return 1;
  }
  out << "bench_check: OK\n";
  return 0;
}

}  // namespace blade::cli
