// Command layer of the bladecli tool. Each command is a pure function
// from parsed options to report text, so the whole surface is unit
// testable without process spawning; examples/bladecli.cpp is a thin
// argv wrapper.
#pragma once

#include <cstdint>
#include <string>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::cli {

struct CommonOptions {
  queue::Discipline discipline = queue::Discipline::Fcfs;
  double service_scv = 1.0;  ///< task-size variability (1 = exponential)
  int verbosity = 0;         ///< --verbose: solver convergence summaries on stderr
  int threads = 0;           ///< --threads: sweep worker count (0 = shared default pool)
  /// --shards: optimize / serve-replay through the sharded hierarchical
  /// solver with this many cells (0 = flat paper solver).
  std::size_t shards = 0;
  /// --prune-k: per-cell top-k rate-matrix pruning (requires --shards).
  std::size_t prune_k = 0;
  /// --policy: dispatch policy name for `sim` / `serve-replay`
  /// (random, round-robin, jsq, jsq-d, sb-d, ha-jsq-d, wjsq-d,
  /// opt-split). Empty = opt-split for `sim`, the adaptive controller
  /// for `serve-replay`.
  std::string policy;
  /// --probe-d: probes per arrival for the d-choices policies.
  unsigned probe_d = 2;
};

/// `optimize`: solve one instance and print the paper-style table.
[[nodiscard]] std::string run_optimize(const model::Cluster& cluster, double lambda,
                                       const CommonOptions& opts);

/// `sweep`: minimized T' over a lambda' grid, printed as CSV.
[[nodiscard]] std::string run_sweep(const model::Cluster& cluster, double lo, double hi,
                                    std::size_t points, const CommonOptions& opts);

/// `validate`: optimize, simulate at the optimal rates, report CI.
[[nodiscard]] std::string run_validate(const model::Cluster& cluster, double lambda,
                                       int replications, std::uint64_t seed,
                                       const CommonOptions& opts);

/// `sensitivity`: which parameter moves T'* the most on this cluster.
[[nodiscard]] std::string run_sensitivity(const model::Cluster& cluster, double lambda,
                                          const CommonOptions& opts);

/// `percentiles`: per-server waiting/response percentiles of generic
/// tasks at the optimal split (FCFS closed forms; exact model only).
[[nodiscard]] std::string run_percentiles(const model::Cluster& cluster, double lambda,
                                          const CommonOptions& opts);

/// `allocate`: integer blade-allocation design over the cluster's chassis
/// speeds with the same total blade count.
[[nodiscard]] std::string run_allocate(const model::Cluster& cluster, double lambda,
                                       const CommonOptions& opts);

/// `sim`: simulate one dispatch policy routing the generic stream at
/// rate lambda and report measured T', per-server assignment fractions,
/// and the policy's probe-cost counters next to the analytic optimum.
[[nodiscard]] std::string run_sim(const model::Cluster& cluster, double lambda,
                                  std::uint64_t seed, const CommonOptions& opts);

/// `trace`: diurnal-profile study (adaptive vs static split).
[[nodiscard]] std::string run_trace(const model::Cluster& cluster, double trough, double peak,
                                    const CommonOptions& opts);

/// `figures`: regenerate a paper figure (4..15) as CSV or JSON. This one
/// does not take a spec file -- the figures define their own clusters.
[[nodiscard]] std::string run_figure(int number, const std::string& format,
                                     std::size_t points = 25);

/// `consolidate`: SLO-constrained blade power-down over a diurnal day.
[[nodiscard]] std::string run_consolidate(const model::Cluster& cluster, double trough,
                                          double peak, double slo, const CommonOptions& opts);

/// Knobs for `serve-replay` (defaults marked 0 are derived from the
/// trace: half-life = horizon/100, seed from the trace file).
struct ServeOptions {
  double half_life = 0.0;           ///< --half-life: estimator memory
  double utilization_ceiling = 0.95;  ///< --ceiling: admission-control cap
  double drift_threshold = 0.02;    ///< --drift: hysteresis threshold
  std::uint64_t seed = 0;           ///< --seed: overrides the trace's seed
  std::uint64_t chaos_seed = 0;     ///< --chaos-seed: fault-injection seed (0 = off)
  std::string chaos_profile = "moderate";  ///< --chaos-profile: none/light/moderate/heavy
  /// --slo-target: mean-T' objective per epoch (0 = SLO evaluation off).
  double slo_target = 0.0;
  /// --slo-max-shed: shed-fraction objective per epoch (with --slo-target).
  double slo_max_shed = 0.05;
  int slo_epochs = 12;              ///< --slo-epochs: windows across the horizon
  /// --recorder-out: dump the flight recorder after the replay. A `.json`
  /// suffix writes Chrome trace-event format (load in Perfetto), anything
  /// else (e.g. `.jsonl`) the line-oriented JSONL schema.
  std::string recorder_out;
  std::size_t recorder_capacity = 0;  ///< --recorder-capacity: per-thread ring slots
  /// --health: per-blade gray-failure scoring + the quarantine state
  /// machine (runtime/health.hpp). The sub-knobs below override the
  /// HealthConfig defaults only when --health is given.
  bool health = false;
  double health_suspect = 0.7;          ///< --health-suspect: Healthy -> Suspect score
  double health_quarantine = 0.45;      ///< --health-quarantine: fast-path / relapse score
  double health_recover = 0.9;          ///< --health-recover: recovery score (hysteresis)
  double health_suspect_dwell = 8.0;    ///< --health-suspect-dwell: Suspect dwell time
  double health_quarantine_dwell = 30.0;  ///< --health-quarantine-dwell: min quarantine time
  double health_probation_dwell = 20.0;   ///< --health-probation-dwell: probation clear time
  double health_half_life = 20.0;       ///< --health-half-life: score EWMA memory
  /// --checkpoint-out: atomically persist controller checkpoints here
  /// (temp file + rename; a crash never leaves a torn file).
  std::string checkpoint_out;
  /// --checkpoint-every: sim-time interval between periodic checkpoint
  /// writes (0 with --checkpoint-out = final checkpoint only).
  double checkpoint_every = 0.0;
  /// --checkpoint-in: restore controller state from this checkpoint file
  /// before the replay starts.
  std::string checkpoint_in;
};

/// `serve-replay`: replay an event trace (rate swings, blade failures,
/// recoveries) through the runtime controller and the simulator.
/// `trace_text` is the trace file's content; pass the result of
/// runtime::to_text(runtime::reference_failure_trace(...)) for the
/// built-in "reference" scenario.
[[nodiscard]] std::string run_serve_replay(const model::Cluster& cluster,
                                           const std::string& trace_text,
                                           const ServeOptions& serve, const CommonOptions& opts);

/// Usage text for the argv wrapper.
[[nodiscard]] std::string usage();

/// Full argv driver: parses arguments (argv[0] ignored), loads the spec,
/// dispatches, and returns the report. Throws SpecError /
/// std::invalid_argument with a user-facing message on bad input.
[[nodiscard]] std::string run_cli(const std::vector<std::string>& args);

}  // namespace blade::cli
