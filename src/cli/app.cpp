#include "cli/app.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cli/spec.hpp"
#include "cloud/consolidation.hpp"
#include "obs/build_info.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "cloud/experiments.hpp"
#include "cloud/series.hpp"
#include "cloud/trace.hpp"
#include "core/allocation.hpp"
#include "core/batch.hpp"
#include "core/optimizer.hpp"
#include "core/sensitivity.hpp"
#include "core/sharded.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "policy/policy.hpp"
#include "queueing/waiting_distribution.hpp"
#include "runtime/chaos.hpp"
#include "runtime/replay.hpp"
#include "sim/dispatcher.hpp"
#include "sim/simulation.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace blade::cli {

namespace {

opt::LoadDistributionOptimizer make_solver(const model::Cluster& cluster,
                                           const CommonOptions& opts) {
  opt::OptimizerOptions oo;
  oo.service_scv = opts.service_scv;
  oo.verbosity = opts.verbosity;
  return opt::LoadDistributionOptimizer(cluster, opts.discipline, oo);
}

void check_lambda(const model::Cluster& cluster, double lambda) {
  if (!(lambda > 0.0) || lambda >= cluster.max_generic_rate()) {
    throw std::invalid_argument("lambda must be in (0, " +
                                std::to_string(cluster.max_generic_rate()) + ")");
  }
}

/// Builds the policy config the `sim` / `serve-replay --policy` paths
/// share: weights for the weighted kinds come from the paper solver at
/// `lambda`, speeds for sb-d from the cluster.
policy::PolicyConfig make_policy_config(const model::Cluster& cluster, double lambda,
                                        const std::string& name, std::uint64_t seed,
                                        const CommonOptions& opts) {
  auto kind = policy::parse_policy_kind(name);
  if (!kind) throw std::invalid_argument(kind.error().context);
  policy::PolicyConfig cfg;
  cfg.kind = kind.value();
  cfg.probe_d = opts.probe_d;
  cfg.seed = seed;
  // Dedicated routing stream id, decorrelated from the arrival streams
  // (which use the sim layer's 1000003/2i+1 convention over the seed).
  cfg.stream = 77;
  if (policy::needs_weights(cfg.kind)) {
    cfg.weights = make_solver(cluster, opts).optimize(lambda).rates;
  }
  if (cfg.kind == policy::PolicyKind::SpeedBiasedD) {
    for (const auto& s : cluster.servers()) cfg.speeds.push_back(s.speed());
  }
  return cfg;
}

}  // namespace

std::string run_optimize(const model::Cluster& cluster, double lambda,
                         const CommonOptions& opts) {
  check_lambda(cluster, lambda);
  opt::LoadDistribution sol;
  std::string shard_line;
  if (opts.shards > 0) {
    opt::OptimizerOptions oo;
    oo.service_scv = opts.service_scv;
    oo.verbosity = opts.verbosity;
    opt::ShardOptions shard;
    shard.cells = opts.shards;
    shard.prune.top_k = opts.prune_k;
    opt::ShardedOptimizer solver(cluster, opts.discipline, oo, shard);
    opt::ShardedWorkspace ws;
    opt::ShardedLoadDistribution sharded;
    if (opts.threads > 0) {
      par::ThreadPool pool(static_cast<std::size_t>(opts.threads));
      sharded = solver.optimize(lambda, pool, ws);
    } else {
      sharded = solver.optimize(lambda, par::global_pool(), ws);
    }
    std::ostringstream sl;
    sl << "sharded solve: " << sharded.cells << " cells, " << sharded.server_classes
       << " server classes (" << sharded.coalesced_servers << " coalesced";
    if (opts.prune_k > 0) {
      sl << ", " << sharded.pruned_servers
         << " pruned, optimality loss <= " << util::fixed(sharded.prune_loss_bound, 9);
    }
    sl << ")\n";
    shard_line = sl.str();
    sol = std::move(sharded.dist);
  } else {
    if (opts.prune_k > 0) throw std::invalid_argument("--prune-k requires --shards");
    sol = make_solver(cluster, opts).optimize(lambda);
  }
  util::Table t({"i", "m_i", "s_i", "lambda'_i", "lambda''_i", "rho_i", "T'_i"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    t.add_row({std::to_string(i + 1), std::to_string(s.size()), util::fixed(s.speed(), 3),
               util::fixed(sol.rates[i]), util::fixed(s.special_rate()),
               util::fixed(sol.utilizations[i]), util::fixed(sol.response_times[i])});
  }
  std::ostringstream os;
  os << cluster.describe() << '\n'
     << "discipline = " << queue::to_string(opts.discipline) << ", scv = " << opts.service_scv
     << ", lambda' = " << lambda << "\n\n"
     << t.render() << shard_line << "minimized T' = " << util::fixed(sol.response_time)
     << "  (phi = " << util::fixed(sol.phi) << ")\n";
  return os.str();
}

std::string run_sweep(const model::Cluster& cluster, double lo, double hi, std::size_t points,
                      const CommonOptions& opts) {
  if (points < 2) throw std::invalid_argument("sweep needs at least 2 points");
  check_lambda(cluster, lo);
  check_lambda(cluster, hi);
  if (!(hi > lo)) throw std::invalid_argument("sweep needs hi > lo");
  const auto solver = make_solver(cluster, opts);
  const auto grid = par::linspace(lo, hi, points);
  // Batched solve: fixed-size warm-start chains sharded across the pool.
  // The chunking is thread-count independent, so the CSV is identical
  // for every --threads value.
  std::vector<opt::LoadDistribution> sols;
  if (opts.threads > 0) {
    par::ThreadPool pool(static_cast<std::size_t>(opts.threads));
    sols = opt::optimize_many(solver, grid, pool);
  } else {
    sols = opt::optimize_many(solver, grid);
  }
  std::ostringstream os;
  os << "lambda,T\n";
  os.setf(std::ios::fixed);
  os.precision(7);
  for (std::size_t i = 0; i < grid.size(); ++i) os << grid[i] << ',' << sols[i].response_time << '\n';
  return os.str();
}

std::string run_validate(const model::Cluster& cluster, double lambda, int replications,
                         std::uint64_t seed, const CommonOptions& opts) {
  check_lambda(cluster, lambda);
  if (opts.service_scv != 1.0) {
    throw std::invalid_argument(
        "validate requires scv = 1 (the simulator draws exponential task sizes)");
  }
  const auto sol = make_solver(cluster, opts).optimize(lambda);
  sim::SimConfig cfg;
  cfg.horizon = 40000.0;
  cfg.warmup = 4000.0;
  cfg.seed = seed;
  const auto mode = sim::to_mode(opts.discipline);
  const auto rep = sim::replicate(
      [&](const sim::SimConfig& c) { return sim::simulate_split(cluster, sol.rates, mode, c); },
      cfg, replications);
  std::ostringstream os;
  os << "analytic  T' = " << util::fixed(sol.response_time) << '\n'
     << "simulated T' = " << util::fixed(rep.generic_response.mean) << " +/- "
     << util::fixed(rep.generic_response.half_width) << " (95% CI, " << replications
     << " replications)\n"
     << "analytic value " << (rep.generic_response.contains(sol.response_time) ? "IS" : "is NOT")
     << " inside the confidence interval\n";
  return os.str();
}

std::string run_sensitivity(const model::Cluster& cluster, double lambda,
                            const CommonOptions& opts) {
  check_lambda(cluster, lambda);
  if (opts.service_scv != 1.0) {
    throw std::invalid_argument("sensitivity currently reports the exact (scv = 1) model");
  }
  const auto rep = opt::analyze_sensitivity(cluster, opts.discipline, lambda);
  util::Table t({"server", "dT/ds_i", "dT/dlambda''_i", "one extra blade"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    t.add_row({std::to_string(i + 1), util::fixed(rep.dT_dspeed[i], 6),
               util::fixed(rep.dT_dspecial[i], 6), util::fixed(rep.blade_value[i], 6)});
  }
  std::ostringstream os;
  os << "dT'/dlambda' = " << util::fixed(rep.dT_dlambda, 6)
     << "   dT'/drbar = " << util::fixed(rep.dT_drbar, 6) << "\n\n"
     << t.render()
     << "negative entries reduce T' (speed, blades); positive ones increase it.\n";
  return os.str();
}

std::string run_percentiles(const model::Cluster& cluster, double lambda,
                            const CommonOptions& opts) {
  check_lambda(cluster, lambda);
  if (opts.discipline != queue::Discipline::Fcfs || opts.service_scv != 1.0) {
    throw std::invalid_argument(
        "percentiles uses the exact FCFS M/M/m distribution (no --priority / --scv)");
  }
  const auto sol = make_solver(cluster, opts).optimize(lambda);
  util::Table t({"i", "lambda'_i", "P(wait)", "p50 T", "p90 T", "p99 T"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    if (sol.rates[i] <= 1e-12) {
      t.add_row({std::to_string(i + 1), "0", "--", "--", "--", "--"});
      continue;
    }
    const queue::WaitingTimeDistribution d(s.size(), s.mean_service_time(cluster.rbar()),
                                           sol.rates[i] + s.special_rate());
    t.add_row({std::to_string(i + 1), util::fixed(sol.rates[i], 4),
               util::fixed(d.prob_queueing(), 4), util::fixed(d.response_quantile(0.5), 4),
               util::fixed(d.response_quantile(0.9), 4),
               util::fixed(d.response_quantile(0.99), 4)});
  }
  std::ostringstream os;
  os << "per-server generic response-time percentiles at the optimal split\n"
     << "(lambda' = " << lambda << ", mean T' = " << util::fixed(sol.response_time, 4) << ")\n"
     << t.render();
  return os.str();
}

std::string run_allocate(const model::Cluster& cluster, double lambda,
                         const CommonOptions& opts) {
  check_lambda(cluster, lambda);
  opt::AllocationProblem p;
  for (const auto& s : cluster.servers()) p.speeds.push_back(s.speed());
  p.blade_budget = cluster.total_blades();
  p.rbar = cluster.rbar();
  // Use the cluster's average preload fraction as the design preload.
  double util_sum = 0.0;
  for (const auto& s : cluster.servers()) util_sum += s.special_utilization(cluster.rbar());
  p.preload_fraction = util_sum / static_cast<double>(cluster.size());
  p.discipline = opts.discipline;
  p.lambda_total = lambda;
  const auto res = opt::allocate_blades(p);

  const auto current = make_solver(cluster, opts).optimize(lambda);
  std::vector<double> sizes_d(res.sizes.begin(), res.sizes.end());
  std::ostringstream os;
  os << "current layout T' = " << util::fixed(current.response_time) << '\n'
     << "redesigned blades per chassis: " << util::to_string(sizes_d, 0)
     << "  -> T' = " << util::fixed(res.response_time) << " (" << res.evaluations
     << " inner solves)\n";
  return os.str();
}

std::string run_sim(const model::Cluster& cluster, double lambda, std::uint64_t seed,
                    const CommonOptions& opts) {
  check_lambda(cluster, lambda);
  const std::string name = opts.policy.empty() ? "opt-split" : opts.policy;
  const auto cfg = make_policy_config(cluster, lambda, name, seed, opts);
  sim::PolicyDispatcher dispatcher(cfg, cluster.size());

  sim::SimConfig scfg;
  scfg.horizon = 40000.0;
  scfg.warmup = 4000.0;
  scfg.seed = seed;
  scfg.service_scv = opts.service_scv;
  const auto res = sim::simulate_dispatched(cluster, lambda, dispatcher,
                                            sim::to_mode(opts.discipline), scfg);

  const auto optimum = make_solver(cluster, opts).optimize(lambda);
  const auto& c = dispatcher.counters();
  std::vector<double> fractions(cluster.size(), 0.0);
  std::uint64_t total = 0;
  for (const std::uint64_t k : dispatcher.routed_by_server()) total += k;
  for (std::size_t i = 0; i < cluster.size() && total > 0; ++i) {
    fractions[i] = static_cast<double>(dispatcher.routed_by_server()[i]) /
                   static_cast<double>(total);
  }

  std::ostringstream os;
  os << cluster.describe() << '\n'
     << "policy " << dispatcher.name();
  if (policy::probes_queue_state(cfg.kind) && cfg.kind != policy::PolicyKind::Jsq) {
    os << " (d = " << cfg.probe_d << ")";
  }
  os << ", lambda' = " << lambda << ", seed " << seed << "\n\n"
     << "measured T'       " << util::fixed(res.generic_mean_response, 4) << " generic ("
     << res.generic_samples << " tasks), " << util::fixed(res.special_mean_response, 4)
     << " special (" << res.special_samples << " tasks)\n"
     << "optimal-split T'  " << util::fixed(optimum.response_time, 4) << " (analytic)\n"
     << "measured split    " << util::to_string(fractions, 4) << '\n'
     << "probe cost        " << c.probes << " probes / " << c.routed << " routed = "
     << util::fixed(c.routed > 0 ? static_cast<double>(c.probes) /
                                       static_cast<double>(c.routed)
                                 : 0.0,
                    3)
     << " per task (" << c.redraws << " redraws, " << c.ties << " ties, " << c.herd_events
     << " herd events, " << c.fallback_scans << " fallback scans)\n";
  return os.str();
}

/// serve-replay with --policy: the trace's timeline through one fixed
/// dispatch policy (no controller) — the CLI face of replay_policy.
std::string run_serve_replay_policy(const model::Cluster& cluster, const std::string& trace_text,
                                    const ServeOptions& serve, const CommonOptions& opts) {
  auto trace = runtime::parse_replay_trace(trace_text);
  if (serve.seed > 0) trace.seed = serve.seed;
  // Weighted kinds solve at the trace's first announced rate: the static
  // split a planner would have provisioned before the timeline starts.
  double design_rate = 0.0;
  for (const auto& e : trace.events) {
    if (e.kind == runtime::ReplayEvent::Kind::Rate && e.rate > 0.0) {
      design_rate = e.rate;
      break;
    }
  }
  if (design_rate == 0.0) design_rate = 0.5 * cluster.max_generic_rate();
  const auto cfg = make_policy_config(cluster, design_rate, opts.policy, trace.seed, opts);

  runtime::ReplayOptions ropts;
  ropts.service_scv = opts.service_scv;
  runtime::PolicyReplayResult res;
  std::string chaos_line;
  auto profile = runtime::chaos_profile(serve.chaos_profile);
  if (!profile) throw std::invalid_argument(profile.error().context);
  if (serve.chaos_seed > 0) {
    runtime::FaultInjector chaos(serve.chaos_seed, profile.value());
    ropts.chaos = &chaos;
    res = runtime::replay_policy(cluster, cfg, trace, ropts);
    std::ostringstream cs;
    cs << "chaos             profile " << serve.chaos_profile << " (seed " << serve.chaos_seed
       << "): blade flaps merged into the failure schedule\n";
    chaos_line = cs.str();
  } else {
    res = runtime::replay_policy(cluster, cfg, trace, ropts);
  }

  const auto& c = res.counters;
  std::ostringstream os;
  os << cluster.describe() << '\n'
     << "replayed horizon " << trace.horizon << " (seed " << trace.seed << ") through policy "
     << policy::to_string(cfg.kind);
  if (policy::probes_queue_state(cfg.kind) && cfg.kind != policy::PolicyKind::Jsq) {
    os << " (d = " << cfg.probe_d << ")";
  }
  os << "\n\n"
     << "generic arrivals  " << c.routed << " routed (no admission control)\n"
     << chaos_line
     << "measured T'       " << util::fixed(res.sim.generic_mean_response, 4) << " generic ("
     << res.sim.generic_samples << " tasks), " << util::fixed(res.sim.special_mean_response, 4)
     << " special (" << res.sim.special_samples << " tasks)\n"
     << "measured split    " << util::to_string(res.measured_fractions, 4) << '\n'
     << "probe cost        " << c.probes << " probes / " << c.routed << " routed = "
     << util::fixed(c.routed > 0 ? static_cast<double>(c.probes) /
                                       static_cast<double>(c.routed)
                                 : 0.0,
                    3)
     << " per task (" << c.redraws << " redraws, " << c.ties << " ties, " << c.herd_events
     << " herd events, " << c.fallback_scans << " fallback scans)\n";
  return os.str();
}

std::string run_trace(const model::Cluster& cluster, double trough, double peak,
                      const CommonOptions& opts) {
  if (opts.service_scv != 1.0) {
    throw std::invalid_argument("trace uses the exact (scv = 1) model");
  }
  const auto profile = cloud::diurnal_profile(trough, peak, 24);
  const auto adaptive = cloud::run_adaptive(cluster, opts.discipline, profile);
  const double mean_rate = 0.5 * (trough + peak);
  const auto fixed = cloud::run_static(cluster, opts.discipline, profile, mean_rate);
  std::ostringstream os;
  os << "diurnal profile: 24 epochs, lambda' in [" << trough << ", " << peak << "]\n"
     << "adaptive (re-solve per epoch): mean T' = " << util::fixed(adaptive.mean_response_time, 4)
     << '\n'
     << "static split designed at " << mean_rate
     << ": mean T' = " << util::fixed(fixed.mean_response_time, 4) << " ("
     << fixed.overloaded_epochs << " overloaded epochs)\n";
  return os.str();
}

std::string run_serve_replay(const model::Cluster& cluster, const std::string& trace_text,
                             const ServeOptions& serve, const CommonOptions& opts) {
  if (opts.service_scv != 1.0) {
    throw std::invalid_argument("serve-replay draws exponential task sizes (no --scv)");
  }
  auto trace = runtime::parse_replay_trace(trace_text);
  if (serve.seed > 0) trace.seed = serve.seed;

  runtime::ControllerConfig cfg;
  cfg.discipline = opts.discipline;
  cfg.half_life = serve.half_life > 0.0 ? serve.half_life : trace.horizon / 100.0;
  cfg.utilization_ceiling = serve.utilization_ceiling;
  cfg.drift_threshold = serve.drift_threshold;
  cfg.shard_cells = opts.shards;
  cfg.prune_top_k = opts.prune_k;
  if (serve.health) {
    cfg.health.enabled = true;
    cfg.health.half_life = serve.health_half_life;
    cfg.health.suspect_threshold = serve.health_suspect;
    cfg.health.quarantine_threshold = serve.health_quarantine;
    cfg.health.recover_threshold = serve.health_recover;
    cfg.health.suspect_dwell = serve.health_suspect_dwell;
    cfg.health.quarantine_dwell = serve.health_quarantine_dwell;
    cfg.health.probation_dwell = serve.health_probation_dwell;
  }

  runtime::ReplayOptions ropts;
  ropts.checkpoint_out = serve.checkpoint_out;
  ropts.checkpoint_every = serve.checkpoint_every;
  if (!serve.checkpoint_in.empty()) {
    auto doc = util::read_file(serve.checkpoint_in);
    if (!doc) {
      throw std::invalid_argument("cannot read checkpoint '" + serve.checkpoint_in +
                                  "': " + doc.error().context);
    }
    ropts.checkpoint_in = std::move(doc.value());
  }
  if (serve.slo_target > 0.0) {
    ropts.slo.response_time = serve.slo_target;
    ropts.slo.max_shed_fraction = serve.slo_max_shed;
    ropts.slo_epochs = serve.slo_epochs;
  }
  if (!serve.recorder_out.empty()) {
    if (serve.recorder_capacity > 0) obs::recorder().set_capacity(serve.recorder_capacity);
    obs::recorder().reset();
  }

  runtime::ReplayResult res;
  std::string chaos_line;
  auto profile = runtime::chaos_profile(serve.chaos_profile);
  if (!profile) throw std::invalid_argument(profile.error().context);
  if (serve.chaos_seed > 0) {
    runtime::FaultInjector chaos(serve.chaos_seed, profile.value());
    ropts.chaos = &chaos;
    res = runtime::replay(cluster, cfg, trace, ropts);
    std::ostringstream cs;
    cs << "chaos             profile " << serve.chaos_profile << " (seed " << serve.chaos_seed
       << "): " << chaos.dropped() << " dropped, " << chaos.phantoms() << " phantom, "
       << chaos.timewarps() << " timewarped observations, " << chaos.solver_faults()
       << " solver faults\n";
    chaos_line = cs.str();
  } else {
    res = runtime::replay(cluster, cfg, trace, ropts);
  }

  std::string health_line;
  if (serve.health) {
    std::ostringstream hs;
    hs << "health            " << res.stats.health_transitions << " transitions ("
       << res.stats.quarantines << " quarantines, " << res.stats.probations << " probations, "
       << res.stats.health_recoveries << " recoveries), " << res.stats.quarantine_publications
       << " quarantine redistributions, " << res.routes_to_quarantined
       << " routes to quarantined\n";
    health_line = hs.str();
  }

  std::string checkpoint_line;
  if (!serve.checkpoint_out.empty() || !serve.checkpoint_in.empty()) {
    std::ostringstream ks;
    ks << "checkpoints       ";
    if (!serve.checkpoint_in.empty()) ks << "restored from " << serve.checkpoint_in << "; ";
    ks << res.checkpoints_written << " written";
    if (!serve.checkpoint_out.empty()) ks << " -> " << serve.checkpoint_out;
    ks << '\n';
    checkpoint_line = ks.str();
  }

  std::string recorder_line;
  if (!serve.recorder_out.empty()) {
    const obs::Dump dump = obs::recorder().dump("serve-replay");
    obs::write_dump_file(dump, serve.recorder_out);
    std::ostringstream rs;
    rs << "flight recorder   " << dump.total_events() << " events ("
       << dump.total_dropped() << " dropped) -> " << serve.recorder_out << '\n';
    recorder_line = rs.str();
  }

  std::ostringstream os;
  os << cluster.describe() << '\n'
     << "replayed horizon " << trace.horizon << " (seed " << trace.seed << ", half-life "
     << util::fixed(cfg.half_life, 3) << ", ceiling " << cfg.utilization_ceiling << ")\n\n"
     << "generic arrivals  " << res.stats.generic_arrivals << " offered, " << res.stats.admitted
     << " admitted, " << res.stats.shed << " shed ("
     << util::fixed(100.0 * res.shed_fraction, 3) << "%)\n"
     << "special arrivals  " << res.stats.special_arrivals << '\n'
     << "controller        " << res.stats.resolves << " resolves, "
     << res.stats.skipped_by_hysteresis << " drift checks skipped, "
     << res.stats.infeasible_resolves << " infeasible, " << res.stats.publications
     << " weight publications\n"
     << "events            " << res.stats.failures << " failures, " << res.stats.recoveries
     << " recoveries\n"
     << chaos_line
     << "resilience        " << res.stats.solver_failures << " contained solver failures ("
     << res.stats.lkg_publications << " served from LKG, " << res.stats.fallback_publications
     << " proportional), " << res.stats.rejected_observations
     << " rejected observations, final mode " << runtime::to_string(res.final_mode) << '\n'
     << "measured T'       " << util::fixed(res.sim.generic_mean_response, 4) << " generic ("
     << res.sim.generic_samples << " tasks), " << util::fixed(res.sim.special_mean_response, 4)
     << " special (" << res.sim.special_samples << " tasks)\n"
     << "final split       " << util::to_string(res.final_fractions, 4) << " (shed prob "
     << util::fixed(res.final_shed_probability, 4) << ")\n"
     << health_line << checkpoint_line << recorder_line;
  if (!res.slo.empty()) {
    os << '\n';
    for (const auto& s : res.slo) os << s.line << '\n';
    os << "slo               " << res.slo_breaches << " objective breach"
       << (res.slo_breaches == 1 ? "" : "es") << " across " << res.slo.size() << " epochs\n";
  }
  return os.str();
}

std::string run_figure(int number, const std::string& format, std::size_t points) {
  const auto fig = cloud::figure(number, points);
  if (format == "csv") return cloud::to_csv(fig);
  if (format == "json") return cloud::to_json(fig) + "\n";
  if (format == "ascii") return cloud::ascii_plot(fig);
  throw std::invalid_argument("figures: format must be csv, json, or ascii");
}

std::string run_consolidate(const model::Cluster& cluster, double trough, double peak,
                            double slo, const CommonOptions& opts) {
  if (opts.service_scv != 1.0) {
    throw std::invalid_argument("consolidate uses the exact (scv = 1) model");
  }
  const auto profile = cloud::diurnal_profile(trough, peak, 24);
  const auto plan = cloud::plan_consolidation(cluster, opts.discipline, profile, slo);
  unsigned lo = cluster.total_blades();
  unsigned hi = 0;
  for (const auto& e : plan.epochs) {
    lo = std::min(lo, e.total_active);
    hi = std::max(hi, e.total_active);
  }
  std::ostringstream os;
  os << "diurnal day, lambda' in [" << trough << ", " << peak << "], SLO T' <= " << slo << '\n'
     << "active blades: " << lo << " (off-peak) .. " << hi << " (peak) of "
     << cluster.total_blades() << '\n'
     << "blade-time switched off: " << util::fixed(100.0 * plan.energy_savings(), 1) << "%\n";
  return os.str();
}

std::string usage() {
  return "usage: bladecli <command> <spec-file> [args] [flags]\n"
         "\n"
         "commands:\n"
         "  optimize <spec> <lambda>                solve one instance\n"
         "  sweep <spec> <lo> <hi> <points>         T' over a lambda grid (CSV)\n"
         "  validate <spec> <lambda>                simulate at the optimum\n"
         "  sensitivity <spec> <lambda>             parameter sensitivities\n"
         "  percentiles <spec> <lambda>             per-server response percentiles\n"
         "  allocate <spec> <lambda>                repack blades across chassis\n"
         "  trace <spec> <trough> <peak>            diurnal-profile study\n"
         "  sim <spec> <lambda>                     simulate one dispatch policy\n"
         "                                          (see --policy / --probe-d)\n"
         "  serve-replay <spec> <trace|reference>   replay an event trace through the\n"
         "                                          online controller + simulator\n"
         "                                          (or one policy, with --policy)\n"
         "  figures <number> <csv|json|ascii>       regenerate a paper figure (4..15)\n"
         "  consolidate <spec> <trough> <peak> <slo> blade power-down plan\n"
         "\n"
         "flags:\n"
         "  --priority        special tasks get non-preemptive priority\n"
         "  --scv <x>         task-size SCV (default 1 = exponential)\n"
         "  --reps <n>        validate: replications (default 6)\n"
         "  --policy <name>   sim / serve-replay: dispatch policy (random,\n"
         "                    round-robin, jsq, jsq-d, sb-d, ha-jsq-d, wjsq-d,\n"
         "                    opt-split); sim defaults to opt-split\n"
         "  --probe-d <k>     probes per arrival for d-choices policies (default 2)\n"
         "  --seed <n>        validate / serve-replay: base seed (default 1)\n"
         "  --half-life <t>   serve-replay: estimator half-life (default horizon/100)\n"
         "  --ceiling <u>     serve-replay: admission utilization ceiling (default 0.95)\n"
         "  --drift <x>       serve-replay: hysteresis re-solve threshold (default 0.02)\n"
         "  --chaos-seed <n>  serve-replay: enable deterministic fault injection\n"
         "  --chaos-profile <p>         none, light, moderate (default), or heavy\n"
         "  --slo-target <t>  serve-replay: per-epoch mean-T' objective; prints\n"
         "                    burn-rate SLO lines per epoch\n"
         "  --slo-max-shed <f>          shed-fraction objective (default 0.05)\n"
         "  --slo-epochs <n>  serve-replay: SLO windows across the horizon (default 12)\n"
         "  --recorder-out <path>       serve-replay: dump the flight recorder\n"
         "                    (.json = Chrome trace for Perfetto, else JSONL)\n"
         "  --recorder-capacity <n>     per-thread ring slots for the dump\n"
         "  --health          serve-replay: gray-failure detection (per-blade\n"
         "                    health scoring + the quarantine state machine)\n"
         "  --health-suspect / --health-quarantine / --health-recover <score>\n"
         "                    state-machine thresholds (default 0.7 / 0.45 / 0.9)\n"
         "  --health-suspect-dwell / --health-quarantine-dwell /\n"
         "  --health-probation-dwell <t> dwell times (default 8 / 30 / 20)\n"
         "  --health-half-life <t>      score EWMA memory (default 20)\n"
         "  --checkpoint-out <path>     serve-replay: crash-safe controller\n"
         "                    checkpoints (atomic temp-file + rename)\n"
         "  --checkpoint-every <t>      periodic checkpoint interval in sim time\n"
         "                    (default 0 = final checkpoint only)\n"
         "  --checkpoint-in <path>      restore controller state before the replay\n"
         "  --verbose         solver convergence summaries on stderr\n"
         "  --threads <n>     sweep: worker threads (default 0 = shared pool)\n"
         "  --shards <n>      optimize / serve-replay: sharded hierarchical solver\n"
         "                    with n cells (default 0 = flat paper solver)\n"
         "  --prune-k <k>     sharded solver: keep top-k server classes per cell\n"
         "  --metrics-out <path>        export run metrics after the command\n"
         "                    ('-' appends the rendering to the report itself)\n"
         "  --metrics-format <f>        json (default), prom, or csv\n"
         "  --version         build attribution (git hash, compiler, BLADE_OBS)\n";
}

namespace {

std::string dispatch(const std::vector<std::string>& pos, const CommonOptions& opts, int reps,
                     std::uint64_t seed, const ServeOptions& serve) {
  const std::string& cmd = pos[0];
  auto need = [&](std::size_t n, const char* shape) {
    if (pos.size() != n) {
      throw std::invalid_argument(std::string("usage: bladecli ") + shape);
    }
  };
  if (cmd == "optimize") {
    need(3, "optimize <spec> <lambda>");
    return run_optimize(load_cluster_spec(pos[1]), std::stod(pos[2]), opts);
  }
  if (cmd == "sweep") {
    need(5, "sweep <spec> <lo> <hi> <points>");
    return run_sweep(load_cluster_spec(pos[1]), std::stod(pos[2]), std::stod(pos[3]),
                     static_cast<std::size_t>(std::stoul(pos[4])), opts);
  }
  if (cmd == "validate") {
    need(3, "validate <spec> <lambda>");
    return run_validate(load_cluster_spec(pos[1]), std::stod(pos[2]), reps, seed, opts);
  }
  if (cmd == "sensitivity") {
    need(3, "sensitivity <spec> <lambda>");
    return run_sensitivity(load_cluster_spec(pos[1]), std::stod(pos[2]), opts);
  }
  if (cmd == "percentiles") {
    need(3, "percentiles <spec> <lambda>");
    return run_percentiles(load_cluster_spec(pos[1]), std::stod(pos[2]), opts);
  }
  if (cmd == "allocate") {
    need(3, "allocate <spec> <lambda>");
    return run_allocate(load_cluster_spec(pos[1]), std::stod(pos[2]), opts);
  }
  if (cmd == "trace") {
    need(4, "trace <spec> <trough> <peak>");
    return run_trace(load_cluster_spec(pos[1]), std::stod(pos[2]), std::stod(pos[3]), opts);
  }
  if (cmd == "sim") {
    need(3, "sim <spec> <lambda> [--policy <name>] [--probe-d <k>]");
    return run_sim(load_cluster_spec(pos[1]), std::stod(pos[2]), seed, opts);
  }
  if (cmd == "serve-replay") {
    need(3, "serve-replay <spec> <trace-file|reference>");
    const auto cluster = load_cluster_spec(pos[1]);
    std::string text;
    if (pos[2] == "reference") {
      text = runtime::to_text(runtime::reference_failure_trace(cluster, 6000.0));
    } else {
      std::ifstream in(pos[2]);
      if (!in) throw std::invalid_argument("cannot open trace file '" + pos[2] + "'");
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    if (!opts.policy.empty()) return run_serve_replay_policy(cluster, text, serve, opts);
    return run_serve_replay(cluster, text, serve, opts);
  }
  if (cmd == "figures") {
    need(3, "figures <number> <csv|json|ascii>");
    return run_figure(std::stoi(pos[1]), pos[2]);
  }
  if (cmd == "consolidate") {
    need(5, "consolidate <spec> <trough> <peak> <slo>");
    return run_consolidate(load_cluster_spec(pos[1]), std::stod(pos[2]), std::stod(pos[3]),
                           std::stod(pos[4]), opts);
  }
  throw std::invalid_argument("unknown command '" + cmd + "'\n" + usage());
}

}  // namespace

std::string run_cli(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  CommonOptions opts;
  ServeOptions serve;
  int reps = 6;
  std::uint64_t seed = 1;
  std::string metrics_out;
  obs::ExportFormat metrics_format = obs::ExportFormat::Json;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) throw std::invalid_argument(std::string(flag) + " needs a value");
      return args[++i];
    };
    if (a == "--priority") {
      opts.discipline = queue::Discipline::SpecialPriority;
    } else if (a == "--scv") {
      opts.service_scv = std::stod(next("--scv"));
    } else if (a == "--reps") {
      reps = std::stoi(next("--reps"));
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::stoull(next("--seed")));
      serve.seed = seed;
    } else if (a == "--half-life") {
      serve.half_life = std::stod(next("--half-life"));
    } else if (a == "--ceiling") {
      serve.utilization_ceiling = std::stod(next("--ceiling"));
    } else if (a == "--drift") {
      serve.drift_threshold = std::stod(next("--drift"));
    } else if (a == "--chaos-seed") {
      serve.chaos_seed = static_cast<std::uint64_t>(std::stoull(next("--chaos-seed")));
    } else if (a == "--chaos-profile") {
      serve.chaos_profile = next("--chaos-profile");
    } else if (a == "--slo-target") {
      serve.slo_target = std::stod(next("--slo-target"));
      if (!(serve.slo_target > 0.0)) throw std::invalid_argument("--slo-target must be > 0");
    } else if (a == "--slo-max-shed") {
      serve.slo_max_shed = std::stod(next("--slo-max-shed"));
    } else if (a == "--slo-epochs") {
      serve.slo_epochs = std::stoi(next("--slo-epochs"));
      if (serve.slo_epochs < 1) throw std::invalid_argument("--slo-epochs must be >= 1");
    } else if (a == "--recorder-out") {
      serve.recorder_out = next("--recorder-out");
    } else if (a == "--recorder-capacity") {
      serve.recorder_capacity = static_cast<std::size_t>(std::stoul(next("--recorder-capacity")));
    } else if (a == "--health") {
      serve.health = true;
    } else if (a == "--health-suspect") {
      serve.health_suspect = std::stod(next("--health-suspect"));
    } else if (a == "--health-quarantine") {
      serve.health_quarantine = std::stod(next("--health-quarantine"));
    } else if (a == "--health-recover") {
      serve.health_recover = std::stod(next("--health-recover"));
    } else if (a == "--health-suspect-dwell") {
      serve.health_suspect_dwell = std::stod(next("--health-suspect-dwell"));
    } else if (a == "--health-quarantine-dwell") {
      serve.health_quarantine_dwell = std::stod(next("--health-quarantine-dwell"));
    } else if (a == "--health-probation-dwell") {
      serve.health_probation_dwell = std::stod(next("--health-probation-dwell"));
    } else if (a == "--health-half-life") {
      serve.health_half_life = std::stod(next("--health-half-life"));
    } else if (a == "--checkpoint-out") {
      serve.checkpoint_out = next("--checkpoint-out");
    } else if (a == "--checkpoint-every") {
      serve.checkpoint_every = std::stod(next("--checkpoint-every"));
      if (serve.checkpoint_every < 0.0) {
        throw std::invalid_argument("--checkpoint-every must be >= 0");
      }
    } else if (a == "--checkpoint-in") {
      serve.checkpoint_in = next("--checkpoint-in");
    } else if (a == "--verbose") {
      opts.verbosity = 1;
    } else if (a == "--threads") {
      opts.threads = std::stoi(next("--threads"));
      if (opts.threads < 0) throw std::invalid_argument("--threads must be >= 0");
    } else if (a == "--shards") {
      opts.shards = static_cast<std::size_t>(std::stoul(next("--shards")));
    } else if (a == "--policy") {
      opts.policy = next("--policy");
    } else if (a == "--probe-d") {
      const int d = std::stoi(next("--probe-d"));
      if (d < 1) throw std::invalid_argument("--probe-d must be >= 1");
      opts.probe_d = static_cast<unsigned>(d);
    } else if (a == "--prune-k") {
      opts.prune_k = static_cast<std::size_t>(std::stoul(next("--prune-k")));
    } else if (a == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else if (a == "--metrics-format") {
      metrics_format = obs::parse_export_format(next("--metrics-format"));
    } else if (a == "--version") {
      return obs::build_info_text();
    } else if (!a.empty() && a[0] == '-') {
      throw std::invalid_argument("unknown flag '" + a + "'\n" + usage());
    } else {
      pos.push_back(a);
    }
  }
  if (pos.empty()) throw std::invalid_argument(usage());
  std::string out = dispatch(pos, opts, reps, seed, serve);
  // Export after the command so the file reflects the whole run. Workers
  // are idle here (every command drains its sweeps before returning), so
  // the snapshot is an exact cut.
  if (!metrics_out.empty()) {
    if (metrics_out == "-") {
      out += obs::render(obs::registry().snapshot(), metrics_format);
    } else {
      obs::write_metrics_file(metrics_out, metrics_format);
    }
  }
  return out;
}

}  // namespace blade::cli
