// Library core of the bench_check perf-smoke gate, factored out of
// tools/bench_check.cpp so tests drive both gate modes in-process.
//
// Usage (args, program name excluded):
//   [--min-ratio] <baseline.json> <current.json> <numerator> <denominator> <factor>
//
// Compares the numerator/denominator counter ratio between a checked-in
// baseline BENCH_*.json export and a fresh one. Counters are addressed
// as `name` or `name:field` where `field` is a numeric key of the metric
// record ("count" when omitted) — timer aggregates like
// `runtime.shard.bench.route_seconds:sum` are reachable that way.
//
// Default (max-ratio) mode treats the ratio as a cost (lower is better):
// fail when current > factor * baseline. With --min-ratio the ratio is a
// throughput (higher is better): fail when current < factor * baseline.
// Counter ratios are machine-load independent, so the default mode is
// safe on shared CI runners; --min-ratio gates over a wall-clock
// denominator trade that safety for a real throughput floor, which is
// why the factor there is deliberately slack (e.g. 0.4).
//
// exit 0: within the allowed factor
// exit 1: regression, or a counter missing from the current export
// exit 2: usage / unreadable input
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace blade::cli {

int run_bench_check(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace blade::cli
