#include "cli/spec.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace blade::cli {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw SpecError("spec line " + std::to_string(line_no) + ": " + what);
}

double parse_double(const std::string& tok, std::size_t line_no, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) fail(line_no, std::string("trailing junk in ") + what);
    return v;
  } catch (const SpecError&) {
    throw;
  } catch (const std::exception&) {
    fail(line_no, std::string("cannot parse ") + what + " '" + tok + "'");
  }
}

unsigned parse_unsigned(const std::string& tok, std::size_t line_no, const char* what) {
  const double v = parse_double(tok, line_no, what);
  if (v < 1.0 || v != static_cast<double>(static_cast<unsigned>(v))) {
    fail(line_no, std::string(what) + " must be a positive integer");
  }
  return static_cast<unsigned>(v);
}

}  // namespace

model::Cluster parse_cluster_spec(const std::string& text) {
  double rbar = 1.0;
  std::optional<double> preload;
  struct Row {
    unsigned blades;
    double speed;
    std::optional<double> special;
    std::size_t line_no;
  };
  std::vector<Row> rows;

  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = util::trim(raw);
    if (line.empty()) continue;

    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (head == "server") {
      std::vector<std::string> toks;
      std::string t;
      while (ls >> t) toks.push_back(t);
      if (toks.size() < 2 || toks.size() > 3) {
        fail(line_no, "expected 'server <blades> <speed> [special_rate]'");
      }
      Row row;
      row.blades = parse_unsigned(toks[0], line_no, "blade count");
      row.speed = parse_double(toks[1], line_no, "speed");
      if (!(row.speed > 0.0)) fail(line_no, "speed must be > 0");
      if (toks.size() == 3) {
        row.special = parse_double(toks[2], line_no, "special rate");
        if (*row.special < 0.0) fail(line_no, "special rate must be >= 0");
      }
      row.line_no = line_no;
      rows.push_back(row);
    } else if (head == "rbar" || head == "preload") {
      std::string eq, val;
      ls >> eq >> val;
      if (eq != "=" || val.empty()) fail(line_no, "expected '" + head + " = <value>'");
      const double v = parse_double(val, line_no, head.c_str());
      if (head == "rbar") {
        if (!(v > 0.0)) fail(line_no, "rbar must be > 0");
        rbar = v;
      } else {
        if (!(v >= 0.0) || v >= 1.0) fail(line_no, "preload must be in [0, 1)");
        preload = v;
      }
    } else {
      fail(line_no, "unknown directive '" + head + "'");
    }
  }

  if (rows.empty()) throw SpecError("spec contains no 'server' lines");
  std::vector<model::BladeServer> servers;
  servers.reserve(rows.size());
  for (const auto& row : rows) {
    double special;
    if (row.special) {
      special = *row.special;
    } else if (preload) {
      special = *preload * row.blades * row.speed / rbar;
    } else {
      fail(row.line_no, "server has no special rate and no 'preload =' default was given");
    }
    servers.emplace_back(row.blades, row.speed, special);
  }
  return model::Cluster(std::move(servers), rbar);
}

model::Cluster load_cluster_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpecError("cannot open spec file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_cluster_spec(buf.str());
}

std::string to_spec(const model::Cluster& cluster) {
  std::ostringstream os;
  os << "rbar = " << cluster.rbar() << '\n';
  for (const auto& s : cluster.servers()) {
    os << "server " << s.size() << ' ' << s.speed() << ' ' << s.special_rate() << '\n';
  }
  return os.str();
}

}  // namespace blade::cli
