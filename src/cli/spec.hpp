// Text format for cluster specifications, so the CLI (and scripts) can
// describe a blade center without recompiling:
//
//   # comment
//   rbar = 1.0            # mean task size (default 1.0)
//   preload = 0.3         # default special load as a capacity fraction
//   server 2 1.6          # blades speed        -> special rate from preload
//   server 4 1.5 1.8      # blades speed rate   -> explicit special rate
//
// Lines are whitespace-separated; '#' starts a comment; blank lines are
// ignored. Parsing errors carry the line number.
#pragma once

#include <stdexcept>
#include <string>

#include "model/cluster.hpp"

namespace blade::cli {

/// Thrown on malformed specs; the message names the offending line.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a spec document into a Cluster.
[[nodiscard]] model::Cluster parse_cluster_spec(const std::string& text);

/// Reads and parses a spec file.
[[nodiscard]] model::Cluster load_cluster_spec(const std::string& path);

/// Serializes a cluster back into spec text (round-trips through
/// parse_cluster_spec).
[[nodiscard]] std::string to_spec(const model::Cluster& cluster);

}  // namespace blade::cli
