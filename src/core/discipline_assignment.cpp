#include "core/discipline_assignment.hpp"

#include <limits>
#include <stdexcept>

#include "numerics/special.hpp"

namespace blade::opt {

double special_mean_response(const model::Cluster& cluster,
                             const std::vector<queue::Discipline>& ds,
                             const std::vector<double>& rates) {
  if (ds.size() != cluster.size() || rates.size() != cluster.size()) {
    throw std::invalid_argument("special_mean_response: size mismatch");
  }
  num::KahanSum weighted;
  double total_special = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    if (s.special_rate() <= 0.0) continue;
    const auto q = s.queue(cluster.rbar(), ds[i]);
    weighted.add(s.special_rate() * q.special_response_time(rates[i]));
    total_special += s.special_rate();
  }
  if (total_special <= 0.0) return 0.0;
  return weighted.value() / total_special;
}

namespace {

DisciplineAssignment evaluate(const model::Cluster& cluster,
                              std::vector<queue::Discipline> ds, double lambda_total,
                              double special_slo) {
  DisciplineAssignment a;
  a.disciplines = std::move(ds);
  OptimizerOptions opts;
  opts.rate_tolerance = 1e-10;
  opts.phi_tolerance = 1e-10;
  a.distribution =
      LoadDistributionOptimizer(cluster, a.disciplines, opts).optimize(lambda_total);
  a.generic_response = a.distribution.response_time;
  a.special_response = special_mean_response(cluster, a.disciplines, a.distribution.rates);
  a.feasible = a.special_response <= special_slo;
  return a;
}

}  // namespace

DisciplineAssignmentResult assign_disciplines(const model::Cluster& cluster, double lambda_total,
                                              double special_slo) {
  if (!(special_slo > 0.0)) {
    throw std::invalid_argument("assign_disciplines: special SLO must be > 0");
  }
  if (!(lambda_total > 0.0) || lambda_total >= cluster.max_generic_rate()) {
    throw std::invalid_argument("assign_disciplines: infeasible lambda'");
  }

  // Servers where the discipline actually matters.
  std::vector<std::size_t> flexible;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.server(i).special_rate() > 0.0) flexible.push_back(i);
  }
  if (flexible.size() > 16) {
    throw std::invalid_argument("assign_disciplines: too many special-loaded servers (> 16)");
  }

  DisciplineAssignmentResult res;
  const std::vector<queue::Discipline> fcfs(cluster.size(), queue::Discipline::Fcfs);
  std::vector<queue::Discipline> prio(cluster.size(), queue::Discipline::Fcfs);
  for (std::size_t i : flexible) prio[i] = queue::Discipline::SpecialPriority;

  res.all_fcfs = evaluate(cluster, fcfs, lambda_total, special_slo);
  res.all_priority = evaluate(cluster, prio, lambda_total, special_slo);
  res.evaluated = 2;

  double best_T = std::numeric_limits<double>::infinity();
  const std::size_t combos = 1u << flexible.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::vector<queue::Discipline> ds(cluster.size(), queue::Discipline::Fcfs);
    for (std::size_t b = 0; b < flexible.size(); ++b) {
      if ((mask >> b) & 1u) ds[flexible[b]] = queue::Discipline::SpecialPriority;
    }
    auto a = evaluate(cluster, std::move(ds), lambda_total, special_slo);
    ++res.evaluated;
    if (a.feasible && a.generic_response < best_T) {
      best_T = a.generic_response;
      res.best = std::move(a);
      res.any_feasible = true;
    }
  }
  return res;
}

}  // namespace blade::opt
