// Sharded hierarchical solver for fleet-scale instances (n ~ 100,000).
//
// The paper's flat optimizer evaluates every server in every outer
// phi-iteration, so solve cost is O(n * inner) and the reproduction is
// effectively capped near n = 1,000. The Lagrange structure nests
// cleanly across partitions: the optimality condition is ONE global
// multiplier phi with g_i(lambda'_i) = phi for every active server, so
//
//   F(phi) = sum_i lambda'_i(phi) = sum_cells F_c(phi)
//
// where F_c is the cell's aggregate rate curve at the SAME phi. Each
// F_c is increasing (a sum of increasing per-server curves), hence F is
// too, and the outer search over phi is exactly the flat one — the
// sharded solver reuses detail::run_phi_search verbatim and solves the
// IDENTICAL fixed point. Sharded-vs-flat agreement is therefore an
// exact mathematical claim, which is what the shard-vs-flat
// differential battery (tests/test_sharded_differential.cpp) pins down;
// with a single cell and coalescing disabled the call sequence is
// bitwise the flat one.
//
// What makes it fast:
//   * class coalescing — servers in a cell with identical (m, speed,
//     special rate, discipline) share one inner solve per probe; a
//     catalog fleet of 100,000 blades built from dozens of SKUs costs a
//     few hundred inner solves per probe instead of 100,000;
//   * per-cell warm brackets — the same monotone [rates_lo, rates_hi]
//     state the flat workspace keeps, held per cell and reused across
//     outer probes and across solves;
//   * pool parallelism — cells are evaluated concurrently over a
//     ThreadPool with cost-weighted deterministic chunking
//     (par::for_each_weighted_chunk), so chunk boundaries never depend
//     on the pool's thread count;
//   * optional rate-matrix pruning (PruneOptions) — each cell routes to
//     only its top-k most attractive servers, with a weak-duality
//     optimality-loss bound computed from the converged multiplier and
//     surfaced in the result (Zhao & Mukherjee, PAPERS.md).
#pragma once

#include <cstddef>
#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "parallel/thread_pool.hpp"
#include "queueing/blade_queue.hpp"
#include "util/status.hpp"

namespace blade::opt {

/// Rate-matrix pruning: restrict each cell's dispatcher to its k most
/// attractive servers (ranked by empty-system response time T'_i(0),
/// ties broken by server index). Pruned servers receive zero generic
/// load; the solve reports a bound on the resulting optimality loss.
struct PruneOptions {
  /// Keep at most this many servers per cell; 0 (default) keeps all.
  std::size_t top_k = 0;
};

struct ShardOptions {
  /// Number of cells; 0 (default) picks n / min_cell_size clamped to
  /// [1, 64]. Always clamped to at most n.
  std::size_t cells = 0;
  /// Target lower bound on cell size used by the automatic cell count.
  std::size_t min_cell_size = 64;
  /// Coalesce servers with identical (size, speed, special rate,
  /// discipline) within a cell into one equivalence class solved once
  /// per probe. Exact for the shared global multiplier (identical
  /// marginal curves have identical roots); disable to force one class
  /// per server, e.g. for the bitwise flat-identity tests.
  bool coalesce_identical = true;
  /// Fill per-server utilizations / response times in the result. The
  /// minimized T', rates, and phi are always produced; the runtime
  /// controller turns this off to keep re-solves O(classes) except for
  /// the final rate expansion.
  bool finalize_metrics = true;
  PruneOptions prune;

  /// Throws std::invalid_argument when min_cell_size is 0.
  void validate() const;
};

/// A flat LoadDistribution plus shard-layer diagnostics.
struct ShardedLoadDistribution {
  LoadDistribution dist;
  std::size_t cells = 0;              ///< cells the cluster was split into
  std::size_t server_classes = 0;     ///< kept equivalence classes (solve width)
  std::size_t coalesced_servers = 0;  ///< servers riding a class representative
  std::size_t pruned_servers = 0;     ///< servers excluded by PruneOptions
  /// Upper bound on T'(returned) - T'(unpruned optimum), from the
  /// weak-duality certificate at the converged multiplier. 0 when
  /// nothing was pruned; +inf when the certificate could not be
  /// evaluated (never observed in practice).
  double prune_loss_bound = 0.0;
};

/// Per-cell warm-start state reused across outer probes and, when the
/// caller keeps one alive, across solves — the sharded analogue of
/// SolverWorkspace (same monotone-bracket caching, held per cell).
/// NOT thread-safe: one workspace per concurrent solve. The solver
/// resizes it as needed; a default-constructed workspace fits any
/// instance.
class ShardedWorkspace {
 public:
  ShardedWorkspace() = default;

  /// Drops every cached value, including the cross-solve phi seed.
  void clear();

  /// The converged phi of the last solve on this workspace (< 0 when
  /// the workspace has not completed a solve yet). Exposed for tests.
  [[nodiscard]] double seed_phi() const noexcept { return seed_phi_; }

 private:
  friend class ShardedOptimizer;

  struct CellState {
    std::vector<double> rates_lo;  ///< per-class rates at phi_lo
    std::vector<double> rates_hi;  ///< per-class rates at phi_hi
    std::vector<double> scratch;   ///< per-class rates at the probe phi
    double total = 0.0;            ///< F_c at the probe phi
    long evals = 0;                ///< marginal evaluations in this cell
    Error err{ErrorCode::Ok, {}};  ///< first inner failure, if any
  };

  std::vector<CellState> cells_;
  double seed_phi_ = -1.0;
};

/// Drop-in hierarchical counterpart of LoadDistributionOptimizer: same
/// options, same error taxonomy (plus an Infeasible specific to pruned
/// capacity), a LoadDistribution inside the result. Construction
/// partitions the cluster into contiguous cells and builds the class
/// structure once; solves only touch class representatives until the
/// final O(n) rate expansion.
///
/// Budget semantics: OptimizerOptions::max_marginal_evaluations /
/// max_solve_seconds are enforced BETWEEN outer probes (cells run
/// concurrently, so a mid-probe global trip would be racy); a solve
/// fails with BudgetExceeded after the first probe that crosses the
/// budget. The flat solver trips mid-probe, so the two paths can differ
/// in exactly when — never whether — a pathological solve is cut off.
class ShardedOptimizer {
 public:
  ShardedOptimizer(model::Cluster cluster, queue::Discipline d, OptimizerOptions opts = {},
                   ShardOptions shard = {});

  /// Heterogeneous disciplines: ds[i] applies to server i.
  ShardedOptimizer(model::Cluster cluster, std::vector<queue::Discipline> ds,
                   OptimizerOptions opts = {}, ShardOptions shard = {});

  [[nodiscard]] const model::Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] const std::vector<queue::Discipline>& disciplines() const noexcept {
    return discs_;
  }
  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t server_classes() const noexcept { return server_classes_; }
  [[nodiscard]] std::size_t coalesced_servers() const noexcept { return coalesced_servers_; }
  [[nodiscard]] std::size_t pruned_servers() const noexcept { return pruned_servers_; }
  /// Saturation point of the kept (non-pruned) servers; equals the
  /// cluster's lambda'_max when nothing is pruned.
  [[nodiscard]] double kept_capacity() const noexcept { return kept_capacity_; }

  /// Solve on the global pool with a fresh workspace / the caller's
  /// workspace / an explicit pool. Throws like the flat optimize().
  [[nodiscard]] ShardedLoadDistribution optimize(double lambda_total) const;
  ShardedLoadDistribution optimize(double lambda_total, ShardedWorkspace& ws) const;
  ShardedLoadDistribution optimize(double lambda_total, par::ThreadPool& pool,
                                   ShardedWorkspace& ws) const;

  /// Non-throwing counterparts; the same containment contract as the
  /// flat try_optimize (typed errors, never exceptions).
  [[nodiscard]] Expected<ShardedLoadDistribution> try_optimize(double lambda_total) const;
  Expected<ShardedLoadDistribution> try_optimize(double lambda_total,
                                                 ShardedWorkspace& ws) const;
  Expected<ShardedLoadDistribution> try_optimize(double lambda_total, par::ThreadPool& pool,
                                                 ShardedWorkspace& ws) const;

 private:
  /// Servers of one cell sharing identical queueing behavior; the class
  /// is solved once per probe through its representative
  /// (members.front(), the lowest global index).
  struct ServerClass {
    std::vector<std::size_t> members;  ///< global indices, ascending
  };

  struct Cell {
    std::size_t begin = 0;  ///< contiguous global range [begin, end)
    std::size_t end = 0;
    std::vector<ServerClass> classes;        ///< kept, in first-occurrence order
    std::vector<queue::BladeQueue> queues;   ///< one per kept class (representative's)
    std::vector<ServerClass> pruned;         ///< classes cut by PruneOptions
    std::vector<queue::BladeQueue> pruned_queues;
  };

  void build_cells();
  void prepare_workspace(ShardedWorkspace& ws) const;
  Expected<ShardedLoadDistribution> optimize_core(double lambda_total, par::ThreadPool& pool,
                                                  ShardedWorkspace& ws) const;
  void finalize(ShardedLoadDistribution& out, double lambda_total) const;
  [[nodiscard]] double prune_bound(const ShardedWorkspace& ws, double phi, double lambda_total,
                                   double t_prime, long* evals) const;

  model::Cluster cluster_;
  std::vector<queue::Discipline> discs_;  // one per server
  OptimizerOptions opts_;
  ShardOptions shard_;
  std::vector<Cell> cells_;
  std::vector<double> cell_cost_;  ///< classes per cell (chunking weights)
  std::size_t cell_chunk_ = 1;
  std::size_t server_classes_ = 0;
  std::size_t coalesced_servers_ = 0;
  std::size_t pruned_servers_ = 0;
  double kept_capacity_ = 0.0;
};

}  // namespace blade::opt
