#include "core/gradient_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/special.hpp"

namespace blade::opt {

std::vector<double> project_capped_simplex(const std::vector<double>& v,
                                           const std::vector<double>& ub, double target) {
  if (v.size() != ub.size()) {
    throw std::invalid_argument("project_capped_simplex: size mismatch");
  }
  double cap = 0.0;
  for (double u : ub) {
    if (!(u >= 0.0)) throw std::invalid_argument("project_capped_simplex: negative bound");
    cap += u;
  }
  if (cap < target) {
    throw std::invalid_argument("project_capped_simplex: bounds cannot carry the target mass");
  }

  auto assigned = [&](double tau) {
    num::KahanSum s;
    for (std::size_t i = 0; i < v.size(); ++i) {
      s.add(std::clamp(v[i] - tau, 0.0, ub[i]));
    }
    return s.value();
  };

  // assigned(tau) is nonincreasing; bracket tau.
  double lo = 0.0;
  double hi = 0.0;
  for (double x : v) {
    lo = std::min(lo, x - 1.0);
    hi = std::max(hi, x);
  }
  lo -= 1.0;  // assigned(lo) >= target guaranteed only after widening
  while (assigned(lo) < target) lo -= std::max(1.0, hi - lo);
  while (assigned(hi) > target) hi += std::max(1.0, hi - lo);

  for (int it = 0; it < 200 && hi - lo > 1e-15 * std::max(1.0, std::abs(hi)); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (assigned(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double tau = 0.5 * (lo + hi);
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::clamp(v[i] - tau, 0.0, ub[i]);
  // Push the residual rounding error onto an interior coordinate.
  num::KahanSum s;
  for (double x : out) s.add(x);
  double residual = target - s.value();
  for (std::size_t i = 0; i < out.size() && residual != 0.0; ++i) {
    const double room_up = ub[i] - out[i];
    const double delta = std::clamp(residual, -out[i], room_up);
    out[i] += delta;
    residual -= delta;
  }
  return out;
}

GradientResult gradient_optimize(const model::Cluster& cluster, queue::Discipline d,
                                 double lambda_total, const GradientOptions& opts) {
  const ResponseTimeObjective obj(cluster, d, lambda_total);
  const std::size_t n = obj.size();

  std::vector<double> ub(n);
  for (std::size_t i = 0; i < n; ++i) ub[i] = (1.0 - opts.saturation_margin) * obj.rate_bound(i);

  // Feasible start: proportional to free capacity.
  std::vector<double> x(n);
  {
    double cap = 0.0;
    for (double u : ub) cap += u;
    for (std::size_t i = 0; i < n; ++i) x[i] = lambda_total * ub[i] / cap;
  }

  double fx = obj.value(x);
  double step = opts.initial_step;
  GradientResult res;
  for (int it = 0; it < opts.max_iterations; ++it) {
    const auto g = obj.gradient(x);
    // Backtracking projected step.
    bool improved = false;
    for (int bt = 0; bt < 60; ++bt) {
      std::vector<double> trial(n);
      for (std::size_t i = 0; i < n; ++i) trial[i] = x[i] - step * g[i];
      trial = project_capped_simplex(trial, ub, lambda_total);
      const double ft = obj.value(trial);
      if (ft < fx) {
        const double gain = fx - ft;
        x = std::move(trial);
        fx = ft;
        improved = true;
        step *= 1.5;  // allow the step to grow again after a success
        res.iterations = it + 1;
        if (gain < opts.tolerance) {
          res.converged = true;
        }
        break;
      }
      step *= 0.5;
    }
    if (!improved) {
      res.converged = true;  // no descent direction within step limits
      res.iterations = it + 1;
      break;
    }
    if (res.converged) break;
  }

  res.distribution.rates = x;
  res.distribution.response_time = fx;
  res.distribution.utilizations = obj.utilizations(x);
  res.distribution.response_times.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.distribution.response_times[i] = obj.queue(i).generic_response_time(x[i]);
  }
  // Report the mean active marginal as the multiplier estimate.
  num::KahanSum phi;
  int actives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > 1e-9 * lambda_total) {
      phi.add(obj.marginal(i, x[i]));
      ++actives;
    }
  }
  if (actives > 0) res.distribution.phi = phi.value() / actives;
  return res;
}

}  // namespace blade::opt
