#include "core/objective.hpp"

#include <stdexcept>

#include "numerics/special.hpp"

namespace blade::opt {

namespace {
void check_feasible(const model::Cluster& cluster, double lambda_total) {
  if (!(lambda_total > 0.0)) {
    throw std::invalid_argument("ResponseTimeObjective: lambda' must be > 0");
  }
  if (lambda_total >= cluster.max_generic_rate()) {
    throw std::invalid_argument(
        "ResponseTimeObjective: lambda' exceeds the cluster saturation point lambda'_max");
  }
}
}  // namespace

ResponseTimeObjective::ResponseTimeObjective(const model::Cluster& cluster, queue::Discipline d,
                                             double lambda_total, double service_scv)
    : queues_(cluster.queues(d, service_scv)), lambda_total_(lambda_total) {
  check_feasible(cluster, lambda_total);
}

ResponseTimeObjective::ResponseTimeObjective(const model::Cluster& cluster,
                                             const std::vector<queue::Discipline>& ds,
                                             double lambda_total, double service_scv)
    : queues_(cluster.queues(ds, service_scv)), lambda_total_(lambda_total) {
  check_feasible(cluster, lambda_total);
}

double ResponseTimeObjective::value(std::span<const double> rates) const {
  if (rates.size() != queues_.size()) {
    throw std::invalid_argument("ResponseTimeObjective::value: rate vector size mismatch");
  }
  num::KahanSum acc;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (rates[i] == 0.0) continue;  // zero weight: T'_i irrelevant
    acc.add(rates[i] * queues_[i].generic_response_time(rates[i]));
  }
  return acc.value() / lambda_total_;
}

double ResponseTimeObjective::marginal(std::size_t i, double rate) const {
  return queues_.at(i).lagrange_marginal(rate) / lambda_total_;
}

std::pair<double, double> ResponseTimeObjective::marginal_with_derivative(std::size_t i,
                                                                          double rate) const {
  const auto [g, dg] = queues_.at(i).lagrange_marginal_with_derivative(rate);
  return {g / lambda_total_, dg / lambda_total_};
}

std::vector<double> ResponseTimeObjective::gradient(std::span<const double> rates) const {
  if (rates.size() != queues_.size()) {
    throw std::invalid_argument("ResponseTimeObjective::gradient: rate vector size mismatch");
  }
  // Full-gradient sweeps ride the SoA-batched Erlang kernel: one
  // lane-blocked recurrence across all servers instead of three scalar
  // recurrences each. Outputs are bitwise identical to marginal(i, r)
  // (batch_lagrange_marginal replicates the scalar operation order), so
  // the projected-gradient solver sees the exact same iterates.
  std::vector<double> g(rates.size());
  queue::batch_lagrange_marginal(queues_, rates, g);
  for (double& gi : g) gi /= lambda_total_;
  return g;
}

std::vector<double> ResponseTimeObjective::utilizations(std::span<const double> rates) const {
  if (rates.size() != queues_.size()) {
    throw std::invalid_argument("ResponseTimeObjective::utilizations: rate vector size mismatch");
  }
  std::vector<double> rho(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) rho[i] = queues_[i].utilization(rates[i]);
  return rho;
}

}  // namespace blade::opt
