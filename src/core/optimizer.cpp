#include "core/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/roots.hpp"
#include "numerics/special.hpp"

namespace blade::opt {

double LoadDistribution::total_rate() const {
  num::KahanSum s;
  for (double r : rates) s.add(r);
  return s.value();
}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster, queue::Discipline d,
                                                     OptimizerOptions opts)
    : LoadDistributionOptimizer(
          model::Cluster(cluster),  // delegate with a uniform discipline vector
          std::vector<queue::Discipline>(cluster.size(), d), opts) {}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster,
                                                     std::vector<queue::Discipline> ds,
                                                     OptimizerOptions opts)
    : cluster_(std::move(cluster)), discs_(std::move(ds)), opts_(opts) {
  if (discs_.size() != cluster_.size()) {
    throw std::invalid_argument("LoadDistributionOptimizer: discipline vector size mismatch");
  }
  if (!(opts_.rate_tolerance > 0.0) || !(opts_.phi_tolerance > 0.0)) {
    throw std::invalid_argument("LoadDistributionOptimizer: tolerances must be > 0");
  }
}

double LoadDistributionOptimizer::find_rate(const ResponseTimeObjective& obj, std::size_t i,
                                            double phi, long* evals) const {
  const double sup = obj.rate_bound(i);
  auto g = [&](double lam) {
    if (evals) ++*evals;
    return obj.marginal(i, lam);
  };

  // Inactive server: even the first infinitesimal unit of load costs more
  // than phi (paper: the bisection bracket collapses onto lb = 0).
  if (g(0.0) >= phi) return 0.0;

  const double hard_ub = (1.0 - opts_.saturation_margin) * sup;
  // Expand ub by doubling until g(ub) >= phi, clamping at the saturation
  // guard exactly as lines (4)-(8) of Fig. 2.
  double ub = std::min(hard_ub, 1e-3 * sup);
  int guard = 0;
  while (g(ub) < phi) {
    if (ub >= hard_ub) return hard_ub;  // saturated at this phi
    ub = std::min(2.0 * ub, hard_ub);
    if (++guard > 200) {
      throw num::RootFindingError("find_rate: failed to bracket lambda'_i");
    }
  }

  double lb = 0.0;
  int it = 0;
  while (ub - lb > opts_.rate_tolerance && it < opts_.max_iterations) {
    const double mid = 0.5 * (lb + ub);
    if (g(mid) < phi) {
      lb = mid;
    } else {
      ub = mid;
    }
    ++it;
  }
  return 0.5 * (lb + ub);
}

LoadDistribution LoadDistributionOptimizer::optimize(double lambda_total) const {
  const double lambda_max = cluster_.max_generic_rate();
  if (!(lambda_total > 0.0)) {
    throw std::invalid_argument("optimize: lambda' must be > 0");
  }
  if (lambda_total >= lambda_max) {
    throw std::invalid_argument("optimize: lambda' >= lambda'_max (infeasible)");
  }

  const ResponseTimeObjective obj(cluster_, discs_, lambda_total, opts_.service_scv);
  const std::size_t n = obj.size();
  long inner_evals = 0;

  auto total_assigned = [&](double phi) {
    num::KahanSum f;
    for (std::size_t i = 0; i < n; ++i) f.add(find_rate(obj, i, phi, &inner_evals));
    return f.value();
  };

  // Outer bracket (Fig. 3 lines (1)-(10)): start phi small and double
  // until the induced total meets lambda'.
  double phi_ub = 1e-6;
  int expansions = 0;
  while (total_assigned(phi_ub) < lambda_total) {
    phi_ub *= 2.0;
    if (++expansions > 200) {
      throw num::RootFindingError("optimize: failed to bracket phi");
    }
  }

  // Outer bisection (lines (11)-(27)).
  double phi_lb = 0.0;
  int outer_it = 0;
  while (phi_ub - phi_lb > opts_.phi_tolerance && outer_it < opts_.max_iterations) {
    const double mid = 0.5 * (phi_lb + phi_ub);
    if (total_assigned(mid) < lambda_total) {
      phi_lb = mid;
    } else {
      phi_ub = mid;
    }
    ++outer_it;
  }
  const double phi = 0.5 * (phi_lb + phi_ub);

  LoadDistribution out;
  out.phi = phi;
  out.outer_iterations = outer_it;
  out.rates.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.rates[i] = find_rate(obj, i, phi, &inner_evals);

  // The bisected rates can miss lambda' by a hair; rescale the assigned
  // mass onto the constraint so downstream consumers see an exactly
  // feasible point (the correction is within the solver tolerance).
  const double assigned = [&] {
    num::KahanSum s;
    for (double r : out.rates) s.add(r);
    return s.value();
  }();
  if (assigned > 0.0) {
    const double scale = lambda_total / assigned;
    for (double& r : out.rates) r *= scale;
  }

  out.inner_evaluations = inner_evals;
  out.utilizations = obj.utilizations(out.rates);
  out.response_times.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.response_times[i] = obj.queue(i).generic_response_time(out.rates[i]);
  }
  out.response_time = obj.value(out.rates);
  return out;
}

}  // namespace blade::opt
