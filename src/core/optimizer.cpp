#include "core/optimizer.hpp"

#include <cmath>
#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/solver_core.hpp"
#include "numerics/roots.hpp"
#include "numerics/special.hpp"
#include "obs/obs.hpp"

namespace blade::opt {

void OptimizerOptions::validate() const {
  if (!(rate_tolerance > 0.0)) {
    throw std::invalid_argument("OptimizerOptions: rate_tolerance must be > 0");
  }
  if (!(phi_tolerance > 0.0)) {
    throw std::invalid_argument("OptimizerOptions: phi_tolerance must be > 0");
  }
  if (max_iterations < 1) {
    throw std::invalid_argument("OptimizerOptions: max_iterations must be >= 1");
  }
  if (!(saturation_margin > 0.0) || !(saturation_margin < 1.0)) {
    throw std::invalid_argument("OptimizerOptions: saturation_margin must be in (0, 1)");
  }
  if (!(service_scv >= 0.0)) {
    throw std::invalid_argument("OptimizerOptions: service_scv must be >= 0");
  }
  if (max_marginal_evaluations < 0) {
    throw std::invalid_argument("OptimizerOptions: max_marginal_evaluations must be >= 0");
  }
  if (!(max_solve_seconds >= 0.0) || !std::isfinite(max_solve_seconds)) {
    throw std::invalid_argument("OptimizerOptions: max_solve_seconds must be finite and >= 0");
  }
}

double LoadDistribution::total_rate() const {
  num::KahanSum s;
  for (double r : rates) s.add(r);
  return s.value();
}

std::size_t LoadDistribution::active_servers() const noexcept {
  std::size_t active = 0;
  for (double r : rates) {
    if (r > 0.0) ++active;
  }
  return active;
}

std::string LoadDistribution::summary() const {
  std::ostringstream os;
  os << std::setprecision(10) << "optimize: converged outer_it=" << outer_iterations
     << " phi=" << phi << " active=" << active_servers() << "/" << rates.size()
     << " inner_evals=" << inner_evaluations << " T'=" << response_time;
  return os.str();
}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster, queue::Discipline d,
                                                     OptimizerOptions opts)
    : LoadDistributionOptimizer(
          model::Cluster(cluster),  // delegate with a uniform discipline vector
          std::vector<queue::Discipline>(cluster.size(), d), opts) {}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster,
                                                     std::vector<queue::Discipline> ds,
                                                     OptimizerOptions opts)
    : cluster_(std::move(cluster)), discs_(std::move(ds)), opts_(opts) {
  if (discs_.size() != cluster_.size()) {
    throw std::invalid_argument("LoadDistributionOptimizer: discipline vector size mismatch");
  }
  opts_.validate();
}

void SolverWorkspace::clear() {
  prepare(0);
  rates_lo_.clear();
  rates_hi_.clear();
  scratch_.clear();
  seed_phi_ = -1.0;
}

void SolverWorkspace::prepare(std::size_t n) {
  // Rates at phi = 0 are identically zero (every g_i(0) > 0), so the lower
  // end of the outer bracket starts valid without any evaluation.
  br_ = detail::PhiBracket{};
  rates_lo_.assign(n, 0.0);
  rates_hi_.assign(n, 0.0);
  scratch_.assign(n, 0.0);
}

void throw_solver_error(const Error& error) {
  if (error.code == ErrorCode::InvalidArgument || error.code == ErrorCode::Infeasible) {
    throw std::invalid_argument(error.context);
  }
  throw num::RootFindingError(error.context);
}

double LoadDistributionOptimizer::find_rate(const ResponseTimeObjective& obj, std::size_t i,
                                            double phi, long* evals) const {
  return find_rate_bracketed(obj, i, phi, 0.0, -1.0, evals);
}

double LoadDistributionOptimizer::find_rate_bracketed(const ResponseTimeObjective& obj,
                                                      std::size_t i, double phi, double lo,
                                                      double hi, long* evals) const {
  detail::SolveBudget budget = detail::SolveBudget::from(opts_);
  auto res = detail::find_rate_core(opts_, obj, i, phi, lo, hi, evals, budget);
  if (!res) throw_solver_error(res.error());
  return res.value();
}

Expected<double> LoadDistributionOptimizer::try_find_rate(const ResponseTimeObjective& obj,
                                                          std::size_t i, double phi,
                                                          long* evals) const {
  return try_find_rate_bracketed(obj, i, phi, 0.0, -1.0, evals);
}

Expected<double> LoadDistributionOptimizer::try_find_rate_bracketed(
    const ResponseTimeObjective& obj, std::size_t i, double phi, double lo, double hi,
    long* evals) const {
  detail::SolveBudget budget = detail::SolveBudget::from(opts_);
  try {
    return detail::find_rate_core(opts_, obj, i, phi, lo, hi, evals, budget);
  } catch (const std::exception& e) {
    return detail::make_solver_error(ErrorCode::Internal,
                                     std::string("find_rate: unexpected exception: ") + e.what());
  }
}

LoadDistribution LoadDistributionOptimizer::optimize(double lambda_total) const {
  // A fresh workspace per call keeps optimize() deterministic and
  // state-free; only callers that thread their own workspace opt into
  // cross-solve warm starts.
  SolverWorkspace ws;
  return optimize(lambda_total, ws);
}

LoadDistribution LoadDistributionOptimizer::optimize(double lambda_total,
                                                     SolverWorkspace& ws) const {
  auto res = optimize_core(lambda_total, ws);
  if (!res) throw_solver_error(res.error());
  return std::move(res).value();
}

Expected<LoadDistribution> LoadDistributionOptimizer::try_optimize(double lambda_total) const {
  SolverWorkspace ws;
  return try_optimize(lambda_total, ws);
}

Expected<LoadDistribution> LoadDistributionOptimizer::try_optimize(double lambda_total,
                                                                   SolverWorkspace& ws) const {
  try {
    return optimize_core(lambda_total, ws);
  } catch (const std::exception& e) {
    // The numeric core returns its own failures as typed errors; anything
    // thrown past it (queueing-layer domain checks on a corrupted
    // instance, for example) is converted here so the no-throw contract
    // of the try_ path holds.
    return detail::make_solver_error(ErrorCode::Internal,
                                     std::string("optimize: unexpected exception: ") + e.what());
  }
}

Expected<LoadDistribution> LoadDistributionOptimizer::optimize_core(double lambda_total,
                                                                    SolverWorkspace& ws) const {
  const double lambda_max = cluster_.max_generic_rate();
  BLADE_OBS_EVENT(SolveStart, 0, lambda_total, lambda_max, 0.0);
  if (!(lambda_total > 0.0)) {
    BLADE_OBS_EVENT(SolveEnd, ErrorCode::InvalidArgument, 0.0, 0.0, 0.0);
    return detail::make_solver_error(ErrorCode::InvalidArgument, "optimize: lambda' must be > 0");
  }
  if (lambda_total >= lambda_max) {
    std::ostringstream os;
    os << std::setprecision(10) << "optimize: lambda'=" << lambda_total
       << " >= lambda'_max=" << lambda_max << " (infeasible)";
    BLADE_OBS_EVENT(SolveEnd, ErrorCode::Infeasible, 0.0, 0.0, 0.0);
    return detail::make_solver_error(ErrorCode::Infeasible, os.str());
  }

  BLADE_OBS_SPAN("optimize");
  BLADE_OBS_TIMER("optimizer.solve_seconds");
  BLADE_OBS_COUNT("optimizer.solves");

  const ResponseTimeObjective obj(cluster_, discs_, lambda_total, opts_.service_scv);
  const std::size_t n = obj.size();
  long inner_evals = 0;
  const double tol = opts_.rate_tolerance;
  detail::SolveBudget budget = detail::SolveBudget::from(opts_);
  ws.prepare(n);

  // F(phi) = sum_i lambda'_i(phi), evaluated into ws.scratch_. Each inner
  // solve warm-starts from the monotone bracket the workspace has
  // accumulated: F_i is increasing in phi, so for any phi inside
  // [phi_lo, phi_hi] server i's rate lies in [rate_lo_i, rate_hi_i]
  // (widened by the inner tolerance to absorb endpoint fuzz). A failed
  // inner solve parks its error in `err`; every call site checks before
  // using the total.
  std::optional<Error> err;
  auto total_at = [&](double phi) -> double {
    const bool use_lo = phi >= ws.br_.phi_lo;
    const bool use_hi = ws.br_.phi_hi >= 0.0 && phi <= ws.br_.phi_hi;
    num::KahanSum f;
    for (std::size_t i = 0; i < n; ++i) {
      const double lo = use_lo ? ws.rates_lo_[i] - tol : 0.0;
      const double hi = use_hi ? ws.rates_hi_[i] + tol : -1.0;
      auto r = detail::find_rate_core(opts_, obj, i, phi, lo, hi, &inner_evals, budget);
      if (!r) {
        err = r.error();
        return std::numeric_limits<double>::quiet_NaN();
      }
      ws.scratch_[i] = r.value();
      f.add(r.value());
    }
    return f.value();
  };
  // Fold an evaluation into the workspace bracket. Only monotone
  // improvements are kept (phi_lo only moves up, phi_hi only moves
  // down), so out-of-order evaluations cannot loosen an established end.
  auto absorb = [&](double phi, double total) {
    if (total < lambda_total) {
      if (phi >= ws.br_.phi_lo) {
        ws.br_.phi_lo = phi;
        ws.br_.total_lo = total;
        ws.rates_lo_.swap(ws.scratch_);
      }
    } else if (ws.br_.phi_hi < 0.0 || phi <= ws.br_.phi_hi) {
      ws.br_.phi_hi = phi;
      ws.br_.total_hi = total;
      ws.rates_hi_.swap(ws.scratch_);
    }
  };

  auto search = detail::run_phi_search(opts_, lambda_total, lambda_max, ws.seed_phi_, ws.br_,
                                       err, total_at, absorb);
  if (!search) {
    BLADE_OBS_EVENT(SolveEnd, search.error().code, 0.0, 0.0, inner_evals);
    return search.error();
  }
  const int outer_it = search.value();

  LoadDistribution out;
  out.phi = ws.br_.phi_hi;
  out.outer_iterations = outer_it;

  // Final rates from BOTH bracket ends -- the rate vectors cached in the
  // workspace from the last accepted outer iterates, so no re-solve is
  // needed (see extract_rates for why midpoint-only extraction is
  // unsafe on step-like F).
  out.rates = ws.rates_hi_;
  detail::extract_rates(ws.br_, ws.rates_lo_, out.rates, lambda_total, opts_.rate_tolerance);

  // Seed the next solve on this workspace from the converged multiplier.
  ws.seed_phi_ = ws.br_.phi_hi;

  out.inner_evaluations = inner_evals;
  out.utilizations = obj.utilizations(out.rates);
  out.response_times.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.response_times[i] = obj.queue(i).generic_response_time(out.rates[i]);
  }
  out.response_time = obj.value(out.rates);

  BLADE_OBS_COUNT_N("optimizer.outer_iterations", outer_it);
  BLADE_OBS_COUNT_N("optimizer.inner_evaluations", inner_evals);
  BLADE_OBS_EVENT(SolveEnd, ErrorCode::Ok, out.phi, outer_it, inner_evals);

  if (opts_.verbosity >= 1) {
    const std::string line = out.summary();
    if (opts_.diagnostic_sink) {
      opts_.diagnostic_sink(line);
    } else {
      std::clog << line << '\n';
    }
  }
  return out;
}

}  // namespace blade::opt
