#include "core/optimizer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "numerics/roots.hpp"
#include "numerics/special.hpp"
#include "obs/obs.hpp"

namespace blade::opt {

void OptimizerOptions::validate() const {
  if (!(rate_tolerance > 0.0)) {
    throw std::invalid_argument("OptimizerOptions: rate_tolerance must be > 0");
  }
  if (!(phi_tolerance > 0.0)) {
    throw std::invalid_argument("OptimizerOptions: phi_tolerance must be > 0");
  }
  if (max_iterations < 1) {
    throw std::invalid_argument("OptimizerOptions: max_iterations must be >= 1");
  }
  if (!(saturation_margin > 0.0) || !(saturation_margin < 1.0)) {
    throw std::invalid_argument("OptimizerOptions: saturation_margin must be in (0, 1)");
  }
  if (!(service_scv >= 0.0)) {
    throw std::invalid_argument("OptimizerOptions: service_scv must be >= 0");
  }
  if (max_marginal_evaluations < 0) {
    throw std::invalid_argument("OptimizerOptions: max_marginal_evaluations must be >= 0");
  }
  if (!(max_solve_seconds >= 0.0) || !std::isfinite(max_solve_seconds)) {
    throw std::invalid_argument("OptimizerOptions: max_solve_seconds must be finite and >= 0");
  }
}

double LoadDistribution::total_rate() const {
  num::KahanSum s;
  for (double r : rates) s.add(r);
  return s.value();
}

std::size_t LoadDistribution::active_servers() const noexcept {
  std::size_t active = 0;
  for (double r : rates) {
    if (r > 0.0) ++active;
  }
  return active;
}

std::string LoadDistribution::summary() const {
  std::ostringstream os;
  os << std::setprecision(10) << "optimize: converged outer_it=" << outer_iterations
     << " phi=" << phi << " active=" << active_servers() << "/" << rates.size()
     << " inner_evals=" << inner_evaluations << " T'=" << response_time;
  return os.str();
}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster, queue::Discipline d,
                                                     OptimizerOptions opts)
    : LoadDistributionOptimizer(
          model::Cluster(cluster),  // delegate with a uniform discipline vector
          std::vector<queue::Discipline>(cluster.size(), d), opts) {}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster,
                                                     std::vector<queue::Discipline> ds,
                                                     OptimizerOptions opts)
    : cluster_(std::move(cluster)), discs_(std::move(ds)), opts_(opts) {
  if (discs_.size() != cluster_.size()) {
    throw std::invalid_argument("LoadDistributionOptimizer: discipline vector size mismatch");
  }
  opts_.validate();
}

void SolverWorkspace::clear() {
  prepare(0);
  rates_lo_.clear();
  rates_hi_.clear();
  scratch_.clear();
  seed_phi_ = -1.0;
}

void SolverWorkspace::prepare(std::size_t n) {
  // Rates at phi = 0 are identically zero (every g_i(0) > 0), so the lower
  // end of the outer bracket starts valid without any evaluation.
  phi_lo_ = 0.0;
  phi_hi_ = -1.0;
  total_lo_ = 0.0;
  total_hi_ = 0.0;
  rates_lo_.assign(n, 0.0);
  rates_hi_.assign(n, 0.0);
  scratch_.assign(n, 0.0);
}

namespace {

/// Builds the typed error AND bumps the matching observability counter,
/// so every failure — thrown or returned — is visible in --metrics-out.
Error solver_error(ErrorCode code, std::string context) {
  switch (code) {
    case ErrorCode::InvalidArgument:
      BLADE_OBS_COUNT("solver.failures.invalid_argument");
      break;
    case ErrorCode::Infeasible:
      BLADE_OBS_COUNT("solver.failures.infeasible");
      break;
    case ErrorCode::BracketNotFound:
      BLADE_OBS_COUNT("solver.failures.bracket_not_found");
      break;
    case ErrorCode::NonConvergence:
      BLADE_OBS_COUNT("solver.failures.non_convergence");
      break;
    case ErrorCode::NonFinite:
      BLADE_OBS_COUNT("solver.failures.non_finite");
      break;
    case ErrorCode::BudgetExceeded:
      BLADE_OBS_COUNT("solver.budget_exceeded");
      break;
    default:
      BLADE_OBS_COUNT("solver.failures.internal");
      break;
  }
  return Error{code, std::move(context)};
}

/// Per-solve watchdog state shared by every inner solve of one optimize
/// call: a marginal-evaluation counter and (when armed) a wall-clock
/// deadline. The clock is only read every 16th evaluation, so an armed
/// time budget costs a fraction of one Erlang kernel per check.
struct SolveBudget {
  long max_evals = 0;
  bool timed = false;
  double max_seconds = 0.0;
  std::chrono::steady_clock::time_point deadline{};
  long used = 0;

  static SolveBudget from(const OptimizerOptions& opts) {
    SolveBudget b;
    b.max_evals = opts.max_marginal_evaluations;
    if (opts.max_solve_seconds > 0.0) {
      b.timed = true;
      b.max_seconds = opts.max_solve_seconds;
      b.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(opts.max_solve_seconds));
    }
    return b;
  }

  /// Accounts one marginal evaluation; the BudgetExceeded error when a
  /// watchdog trips, nullopt otherwise.
  std::optional<Error> charge() {
    ++used;
    if (max_evals > 0 && used > max_evals) {
      std::ostringstream os;
      os << "optimize: marginal-evaluation budget exceeded (max_marginal_evaluations="
         << max_evals << ")";
      return solver_error(ErrorCode::BudgetExceeded, os.str());
    }
    if (timed && (used & 15) == 0 && std::chrono::steady_clock::now() > deadline) {
      std::ostringstream os;
      os << "optimize: wall-time budget exceeded (max_solve_seconds=" << max_seconds << ")";
      return solver_error(ErrorCode::BudgetExceeded, os.str());
    }
    return std::nullopt;
  }
};

/// The non-throwing inner solve (Fig. 2 with the rtsafe Newton loop).
/// Identical numerics to the pre-resilience implementation; the failure
/// exits (bracket exhaustion, NaN marginals, budget, strict
/// non-convergence) return typed errors instead of throwing.
Expected<double> find_rate_core(const OptimizerOptions& opts, const ResponseTimeObjective& obj,
                                std::size_t i, double phi, double lo, double hi, long* evals,
                                SolveBudget& budget) {
  const double sup = obj.rate_bound(i);
  if (!std::isfinite(sup)) {
    std::ostringstream os;
    os << std::setprecision(10) << "find_rate: non-finite rate bound for server " << i;
    return solver_error(ErrorCode::NonFinite, os.str());
  }
  const double hard_ub = (1.0 - opts.saturation_margin) * sup;
  const double tol = opts.rate_tolerance;
  lo = std::clamp(lo, 0.0, hard_ub);
  const bool have_hi = hi >= 0.0;
  if (have_hi) hi = std::clamp(hi, lo, hard_ub);

  // Collapsed warm bracket: the outer bracket already pins this server's
  // rate to within the solver tolerance — no evaluation needed at all.
  if (have_hi && hi - lo <= tol) {
    BLADE_OBS_COUNT("optimizer.warm_bracket_hits");
    return 0.5 * (lo + hi);
  }

  std::optional<Error> err;
  auto g_at = [&](double lam) -> double {
    if (auto e = budget.charge()) {
      err = std::move(e);
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (evals) ++*evals;
    const double g = obj.marginal(i, lam);
    if (!std::isfinite(g)) {
      std::ostringstream os;
      os << std::setprecision(10) << "find_rate: non-finite marginal g_" << i << "(" << lam
         << ") = " << g;
      err = solver_error(ErrorCode::NonFinite, os.str());
      return std::numeric_limits<double>::quiet_NaN();
    }
    return g;
  };

  // Inactive server: even the first infinitesimal unit of load costs more
  // than phi (paper: the bisection bracket collapses onto lb = 0). From a
  // warm bracket this is the root sitting at/below the cached lower end.
  double glo = g_at(lo);
  if (err) return std::move(*err);
  if (glo >= phi) return lo;

  double ghi;
  if (have_hi) {
    ghi = g_at(hi);
    if (err) return std::move(*err);
    if (ghi < phi) {
      if (hi >= hard_ub) {
        BLADE_OBS_COUNT("optimizer.saturation_clamps");
        return hard_ub;  // saturated at this phi
      }
      // The warm upper end undershot (only possible by the tolerance fuzz
      // of the cached endpoint); resume the Fig. 2 doubling from there.
      lo = hi;
      glo = ghi;
      hi = -1.0;
    }
  }
  if (hi < 0.0) {
    // Cold upper bound: expand by doubling until g(ub) >= phi, clamping
    // at the saturation guard exactly as lines (4)-(8) of Fig. 2. The
    // last undershooting probe becomes the Newton lower end, so no
    // evaluation is repeated.
    double ub = std::min(hard_ub, std::max(1e-3 * sup, 2.0 * lo));
    int guard = 0;
    double gub = g_at(ub);
    if (err) return std::move(*err);
    while (gub < phi) {
      if (ub >= hard_ub) {
        BLADE_OBS_COUNT("optimizer.saturation_clamps");
        return hard_ub;  // saturated at this phi
      }
      lo = ub;
      glo = gub;
      ub = std::min(2.0 * ub, hard_ub);
      if (++guard > 200) {
        std::ostringstream os;
        os << std::setprecision(10) << "find_rate: failed to bracket lambda'_" << i
           << " (phi=" << phi << ", sup=" << sup << ", ub=" << ub << " after " << guard
           << " doublings)";
        return solver_error(ErrorCode::BracketNotFound, os.str());
      }
      gub = g_at(ub);
      if (err) return std::move(*err);
    }
    hi = ub;
    ghi = gub;
  }

  // Safeguarded Newton on g(x) = phi over [lo, hi] (rtsafe-style): take
  // the Newton step when it stays inside the bracket and at least halves
  // the previous step, otherwise bisect — superlinear near the root,
  // never slower than bisection. One derivative-returning marginal
  // evaluation (a single Erlang kernel) per iteration.
  double x = 0.5 * (lo + hi);
  double dx_old = hi - lo;
  double dx = dx_old;
  double result = x;
  bool converged = false;
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    if (auto e = budget.charge()) return std::move(*e);
    if (evals) ++*evals;
    const auto [gx, dgx] = obj.marginal_with_derivative(i, x);
    if (!std::isfinite(gx)) {
      std::ostringstream os;
      os << std::setprecision(10) << "find_rate: non-finite marginal g_" << i << "(" << x
         << ") = " << gx;
      return solver_error(ErrorCode::NonFinite, os.str());
    }
    const double fx = gx - phi;
    if (fx == 0.0) {
      result = x;
      converged = true;
      break;
    }
    if (fx < 0.0) {
      lo = x;
    } else {
      hi = x;
    }
    if (hi - lo <= tol) {
      result = 0.5 * (lo + hi);
      converged = true;
      break;
    }
    double next;
    const bool newton_ok = dgx > 0.0 && std::isfinite(dgx);
    if (!newton_ok || 2.0 * std::abs(fx) > std::abs(dx_old * dgx) ||
        !((next = x - fx / dgx) > lo && next < hi)) {
      dx_old = dx;
      dx = 0.5 * (hi - lo);
      next = 0.5 * (lo + hi);
    } else {
      dx_old = dx;
      dx = std::abs(next - x);
    }
    result = next;
    if (dx <= 0.5 * tol) {
      ++it;
      converged = true;
      break;
    }
    x = next;
  }
  BLADE_OBS_COUNT("optimizer.find_rate_calls");
  BLADE_OBS_OBSERVE("optimizer.inner_iterations", it);
  if (!converged && opts.strict_convergence && hi - lo > tol) {
    std::ostringstream os;
    os << std::setprecision(10) << "find_rate: lambda'_" << i << " bracket still " << (hi - lo)
       << " wide after max_iterations=" << opts.max_iterations;
    return solver_error(ErrorCode::NonConvergence, os.str());
  }
  return result;
}

}  // namespace

void throw_solver_error(const Error& error) {
  if (error.code == ErrorCode::InvalidArgument || error.code == ErrorCode::Infeasible) {
    throw std::invalid_argument(error.context);
  }
  throw num::RootFindingError(error.context);
}

double LoadDistributionOptimizer::find_rate(const ResponseTimeObjective& obj, std::size_t i,
                                            double phi, long* evals) const {
  return find_rate_bracketed(obj, i, phi, 0.0, -1.0, evals);
}

double LoadDistributionOptimizer::find_rate_bracketed(const ResponseTimeObjective& obj,
                                                      std::size_t i, double phi, double lo,
                                                      double hi, long* evals) const {
  SolveBudget budget = SolveBudget::from(opts_);
  auto res = find_rate_core(opts_, obj, i, phi, lo, hi, evals, budget);
  if (!res) throw_solver_error(res.error());
  return res.value();
}

Expected<double> LoadDistributionOptimizer::try_find_rate(const ResponseTimeObjective& obj,
                                                          std::size_t i, double phi,
                                                          long* evals) const {
  return try_find_rate_bracketed(obj, i, phi, 0.0, -1.0, evals);
}

Expected<double> LoadDistributionOptimizer::try_find_rate_bracketed(
    const ResponseTimeObjective& obj, std::size_t i, double phi, double lo, double hi,
    long* evals) const {
  SolveBudget budget = SolveBudget::from(opts_);
  try {
    return find_rate_core(opts_, obj, i, phi, lo, hi, evals, budget);
  } catch (const std::exception& e) {
    return solver_error(ErrorCode::Internal,
                        std::string("find_rate: unexpected exception: ") + e.what());
  }
}

LoadDistribution LoadDistributionOptimizer::optimize(double lambda_total) const {
  // A fresh workspace per call keeps optimize() deterministic and
  // state-free; only callers that thread their own workspace opt into
  // cross-solve warm starts.
  SolverWorkspace ws;
  return optimize(lambda_total, ws);
}

LoadDistribution LoadDistributionOptimizer::optimize(double lambda_total,
                                                     SolverWorkspace& ws) const {
  auto res = optimize_core(lambda_total, ws);
  if (!res) throw_solver_error(res.error());
  return std::move(res).value();
}

Expected<LoadDistribution> LoadDistributionOptimizer::try_optimize(double lambda_total) const {
  SolverWorkspace ws;
  return try_optimize(lambda_total, ws);
}

Expected<LoadDistribution> LoadDistributionOptimizer::try_optimize(double lambda_total,
                                                                   SolverWorkspace& ws) const {
  try {
    return optimize_core(lambda_total, ws);
  } catch (const std::exception& e) {
    // The numeric core returns its own failures as typed errors; anything
    // thrown past it (queueing-layer domain checks on a corrupted
    // instance, for example) is converted here so the no-throw contract
    // of the try_ path holds.
    return solver_error(ErrorCode::Internal,
                        std::string("optimize: unexpected exception: ") + e.what());
  }
}

Expected<LoadDistribution> LoadDistributionOptimizer::optimize_core(double lambda_total,
                                                                    SolverWorkspace& ws) const {
  const double lambda_max = cluster_.max_generic_rate();
  if (!(lambda_total > 0.0)) {
    return solver_error(ErrorCode::InvalidArgument, "optimize: lambda' must be > 0");
  }
  if (lambda_total >= lambda_max) {
    std::ostringstream os;
    os << std::setprecision(10) << "optimize: lambda'=" << lambda_total
       << " >= lambda'_max=" << lambda_max << " (infeasible)";
    return solver_error(ErrorCode::Infeasible, os.str());
  }

  BLADE_OBS_SPAN("optimize");
  BLADE_OBS_TIMER("optimizer.solve_seconds");
  BLADE_OBS_COUNT("optimizer.solves");

  const ResponseTimeObjective obj(cluster_, discs_, lambda_total, opts_.service_scv);
  const std::size_t n = obj.size();
  long inner_evals = 0;
  const double tol = opts_.rate_tolerance;
  SolveBudget budget = SolveBudget::from(opts_);
  ws.prepare(n);

  // F(phi) = sum_i lambda'_i(phi), evaluated into ws.scratch_. Each inner
  // solve warm-starts from the monotone bracket the workspace has
  // accumulated: F_i is increasing in phi, so for any phi inside
  // [phi_lo, phi_hi] server i's rate lies in [rate_lo_i, rate_hi_i]
  // (widened by the inner tolerance to absorb endpoint fuzz). A failed
  // inner solve parks its error in `err`; every call site checks before
  // using the total.
  std::optional<Error> err;
  auto total_at = [&](double phi) -> double {
    const bool use_lo = phi >= ws.phi_lo_;
    const bool use_hi = ws.phi_hi_ >= 0.0 && phi <= ws.phi_hi_;
    num::KahanSum f;
    for (std::size_t i = 0; i < n; ++i) {
      const double lo = use_lo ? ws.rates_lo_[i] - tol : 0.0;
      const double hi = use_hi ? ws.rates_hi_[i] + tol : -1.0;
      auto r = find_rate_core(opts_, obj, i, phi, lo, hi, &inner_evals, budget);
      if (!r) {
        err = r.error();
        return std::numeric_limits<double>::quiet_NaN();
      }
      ws.scratch_[i] = r.value();
      f.add(r.value());
    }
    return f.value();
  };
  // Fold an evaluation into the workspace bracket. Only monotone
  // improvements are kept (phi_lo only moves up, phi_hi only moves
  // down), so out-of-order evaluations cannot loosen an established end.
  auto absorb = [&](double phi, double total) {
    if (total < lambda_total) {
      if (phi >= ws.phi_lo_) {
        ws.phi_lo_ = phi;
        ws.total_lo_ = total;
        ws.rates_lo_.swap(ws.scratch_);
      }
    } else if (ws.phi_hi_ < 0.0 || phi <= ws.phi_hi_) {
      ws.phi_hi_ = phi;
      ws.total_hi_ = total;
      ws.rates_hi_.swap(ws.scratch_);
    }
  };

  // Outer bracket (Fig. 3 lines (1)-(10)): start phi at the previous
  // solve's converged multiplier when the workspace has one (cross-solve
  // warm start -- for a sweep of nearby lambda' values the very first
  // probe usually covers or nearly covers), otherwise small, and double
  // until the induced total meets lambda'.
  double phi_probe =
      (ws.seed_phi_ > 0.0 && std::isfinite(ws.seed_phi_)) ? ws.seed_phi_ : 1e-6;
  int expansions = 0;
  while (true) {
    const double total = total_at(phi_probe);
    if (err) return std::move(*err);
    const bool covered = total >= lambda_total;
    absorb(phi_probe, total);
    if (covered) break;
    phi_probe *= 2.0;
    if (++expansions > 200) {
      std::ostringstream os;
      os << std::setprecision(10) << "optimize: failed to bracket phi (lambda'=" << lambda_total
         << ", lambda'_max=" << lambda_max << ", phi_ub=" << phi_probe << " after " << expansions
         << " doublings)";
      return solver_error(ErrorCode::BracketNotFound, os.str());
    }
  }
  BLADE_OBS_COUNT_N("optimizer.phi_expansions", expansions);

  // Outer refinement (replacing the bisection of lines (11)-(27)): Brent
  // on F(phi) - lambda' over the established bracket. The endpoint
  // values are already known from the expansion, so nothing is
  // re-evaluated; every new evaluation is absorbed into the workspace, so
  // the inner warm brackets tighten as the outer iteration converges.
  // The bracket-width trace is the solver's convergence signature.
  int outer_it = 0;
  if (ws.total_hi_ - lambda_total != 0.0) {
    double a = ws.phi_lo_, fa = ws.total_lo_ - lambda_total;
    double b = ws.phi_hi_, fb = ws.total_hi_ - lambda_total;
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    double c = a, fc = fa;
    double d = b - a, e = d;
    // Brent worst-case iteration count is quadratic in log(width/tol);
    // cap it well under max_iterations so the bisection polish below
    // always has budget left even on pathologically step-like F.
    const int brent_cap = std::min(60, opts_.max_iterations);
    while (fb != 0.0 && outer_it < brent_cap) {
      if ((fb > 0.0) == (fc > 0.0)) {
        c = a;
        fc = fa;
        d = e = b - a;
      }
      if (std::abs(fc) < std::abs(fb)) {
        a = b;
        b = c;
        c = a;
        fa = fb;
        fb = fc;
        fc = fa;
      }
      const double brent_tol =
          2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) + 0.5 * opts_.phi_tolerance;
      const double m = 0.5 * (c - b);
      if (std::abs(m) <= brent_tol) break;
      if (std::abs(e) >= brent_tol && std::abs(fa) > std::abs(fb)) {
        const double s = fb / fa;
        double p, q;
        if (a == c) {
          p = 2.0 * m * s;
          q = 1.0 - s;
        } else {
          const double qq = fa / fc;
          const double r = fb / fc;
          p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
          q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
        }
        if (p > 0.0) {
          q = -q;
        } else {
          p = -p;
        }
        if (2.0 * p < std::min(3.0 * m * q - std::abs(brent_tol * q), std::abs(e * q))) {
          e = d;
          d = p / q;
        } else {
          d = m;
          e = m;
        }
      } else {
        d = m;
        e = m;
      }
      a = b;
      fa = fb;
      b += (std::abs(d) > brent_tol) ? d : (m > 0.0 ? brent_tol : -brent_tol);
      const double total = total_at(b);
      if (err) return std::move(*err);
      fb = total - lambda_total;
      absorb(b, total);
      ++outer_it;
      BLADE_OBS_SERIES_APPEND("optimizer.phi_bracket", outer_it,
                              ws.phi_hi_ >= 0.0 ? ws.phi_hi_ - ws.phi_lo_ : 0.0);
    }
  }
  // Bisection polish: Brent converges on the root of F - lambda' but can
  // stop with one side of the sign bracket still wide (F is step-like
  // around flat-marginal servers). The extraction below interpolates
  // between the bracket ends, so tighten the bracket itself to the same
  // phi_tolerance the seed bisection guaranteed.
  while (ws.phi_hi_ - ws.phi_lo_ > opts_.phi_tolerance && outer_it < opts_.max_iterations) {
    const double mid = 0.5 * (ws.phi_lo_ + ws.phi_hi_);
    if (!(mid > ws.phi_lo_ && mid < ws.phi_hi_)) break;  // bracket at fp resolution
    const double total = total_at(mid);
    if (err) return std::move(*err);
    absorb(mid, total);
    ++outer_it;
    BLADE_OBS_SERIES_APPEND("optimizer.phi_bracket", outer_it, ws.phi_hi_ - ws.phi_lo_);
  }
  if (opts_.strict_convergence && ws.phi_hi_ - ws.phi_lo_ > opts_.phi_tolerance) {
    const double mid = 0.5 * (ws.phi_lo_ + ws.phi_hi_);
    if (mid > ws.phi_lo_ && mid < ws.phi_hi_) {  // width above fp resolution
      std::ostringstream os;
      os << std::setprecision(10) << "optimize: phi bracket still " << (ws.phi_hi_ - ws.phi_lo_)
         << " wide after max_iterations=" << opts_.max_iterations;
      return solver_error(ErrorCode::NonConvergence, os.str());
    }
  }

  LoadDistribution out;
  out.phi = ws.phi_hi_;
  out.outer_iterations = outer_it;

  // Extract the final rates from BOTH bracket ends -- the rate vectors
  // cached in the workspace from the last accepted outer iterates, so no
  // re-solve is needed. Evaluating only at the midpoint is unsafe: wide
  // servers (large m_i) have nearly flat marginal-cost curves, so F(phi)
  // is step-like and the midpoint can land below the step, assigning
  // zero load everywhere. phi_hi is guaranteed by the bracketing
  // invariant to cover lambda' (F(phi_hi) >= lambda' > F(phi_lo)), so
  // interpolating between the two rate vectors yields a feasible point
  // whose marginals stay inside the [phi_lo, phi_hi] band: the flat
  // servers -- exactly the ones whose load the band cannot pin down --
  // absorb the residual, where the objective is insensitive by that same
  // flatness.
  auto total_of = [](const std::vector<double>& rates) {
    num::KahanSum s;
    for (double r : rates) s.add(r);
    return s.value();
  };
  out.rates = ws.rates_hi_;
  double assigned = ws.total_hi_;
  if (assigned > lambda_total && assigned - ws.total_lo_ > opts_.rate_tolerance) {
    const double t =
        std::clamp((lambda_total - ws.total_lo_) / (assigned - ws.total_lo_), 0.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      out.rates[i] = ws.rates_lo_[i] + t * (out.rates[i] - ws.rates_lo_[i]);
    }
    assigned = total_of(out.rates);
  }

  // The interpolated rates can still miss lambda' by floating-point
  // residue; rescale the assigned mass onto the constraint so downstream
  // consumers see an exactly feasible point.
  if (assigned > 0.0) {
    const double scale = lambda_total / assigned;
    for (double& r : out.rates) r *= scale;
  }

  // Seed the next solve on this workspace from the converged multiplier.
  ws.seed_phi_ = ws.phi_hi_;

  out.inner_evaluations = inner_evals;
  out.utilizations = obj.utilizations(out.rates);
  out.response_times.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.response_times[i] = obj.queue(i).generic_response_time(out.rates[i]);
  }
  out.response_time = obj.value(out.rates);

  BLADE_OBS_COUNT_N("optimizer.outer_iterations", outer_it);
  BLADE_OBS_COUNT_N("optimizer.inner_evaluations", inner_evals);

  if (opts_.verbosity >= 1) {
    const std::string line = out.summary();
    if (opts_.diagnostic_sink) {
      opts_.diagnostic_sink(line);
    } else {
      std::clog << line << '\n';
    }
  }
  return out;
}

}  // namespace blade::opt
