#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "numerics/roots.hpp"
#include "numerics/special.hpp"
#include "obs/obs.hpp"

namespace blade::opt {

void OptimizerOptions::validate() const {
  if (!(rate_tolerance > 0.0)) {
    throw std::invalid_argument("OptimizerOptions: rate_tolerance must be > 0");
  }
  if (!(phi_tolerance > 0.0)) {
    throw std::invalid_argument("OptimizerOptions: phi_tolerance must be > 0");
  }
  if (max_iterations < 1) {
    throw std::invalid_argument("OptimizerOptions: max_iterations must be >= 1");
  }
  if (!(saturation_margin > 0.0) || !(saturation_margin < 1.0)) {
    throw std::invalid_argument("OptimizerOptions: saturation_margin must be in (0, 1)");
  }
  if (!(service_scv >= 0.0)) {
    throw std::invalid_argument("OptimizerOptions: service_scv must be >= 0");
  }
}

double LoadDistribution::total_rate() const {
  num::KahanSum s;
  for (double r : rates) s.add(r);
  return s.value();
}

std::size_t LoadDistribution::active_servers() const noexcept {
  std::size_t active = 0;
  for (double r : rates) {
    if (r > 0.0) ++active;
  }
  return active;
}

std::string LoadDistribution::summary() const {
  std::ostringstream os;
  os << std::setprecision(10) << "optimize: converged outer_it=" << outer_iterations
     << " phi=" << phi << " active=" << active_servers() << "/" << rates.size()
     << " inner_evals=" << inner_evaluations << " T'=" << response_time;
  return os.str();
}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster, queue::Discipline d,
                                                     OptimizerOptions opts)
    : LoadDistributionOptimizer(
          model::Cluster(cluster),  // delegate with a uniform discipline vector
          std::vector<queue::Discipline>(cluster.size(), d), opts) {}

LoadDistributionOptimizer::LoadDistributionOptimizer(model::Cluster cluster,
                                                     std::vector<queue::Discipline> ds,
                                                     OptimizerOptions opts)
    : cluster_(std::move(cluster)), discs_(std::move(ds)), opts_(opts) {
  if (discs_.size() != cluster_.size()) {
    throw std::invalid_argument("LoadDistributionOptimizer: discipline vector size mismatch");
  }
  opts_.validate();
}

double LoadDistributionOptimizer::find_rate(const ResponseTimeObjective& obj, std::size_t i,
                                            double phi, long* evals) const {
  const double sup = obj.rate_bound(i);
  auto g = [&](double lam) {
    if (evals) ++*evals;
    return obj.marginal(i, lam);
  };

  // Inactive server: even the first infinitesimal unit of load costs more
  // than phi (paper: the bisection bracket collapses onto lb = 0).
  if (g(0.0) >= phi) return 0.0;

  const double hard_ub = (1.0 - opts_.saturation_margin) * sup;
  // Expand ub by doubling until g(ub) >= phi, clamping at the saturation
  // guard exactly as lines (4)-(8) of Fig. 2.
  double ub = std::min(hard_ub, 1e-3 * sup);
  int guard = 0;
  while (g(ub) < phi) {
    if (ub >= hard_ub) {
      BLADE_OBS_COUNT("optimizer.saturation_clamps");
      return hard_ub;  // saturated at this phi
    }
    ub = std::min(2.0 * ub, hard_ub);
    if (++guard > 200) {
      std::ostringstream os;
      os << std::setprecision(10) << "find_rate: failed to bracket lambda'_" << i
         << " (phi=" << phi << ", sup=" << sup << ", ub=" << ub << " after " << guard
         << " doublings)";
      throw num::RootFindingError(os.str());
    }
  }

  double lb = 0.0;
  int it = 0;
  while (ub - lb > opts_.rate_tolerance && it < opts_.max_iterations) {
    const double mid = 0.5 * (lb + ub);
    if (g(mid) < phi) {
      lb = mid;
    } else {
      ub = mid;
    }
    ++it;
  }
  BLADE_OBS_COUNT("optimizer.find_rate_calls");
  BLADE_OBS_OBSERVE("optimizer.inner_iterations", it);
  return 0.5 * (lb + ub);
}

LoadDistribution LoadDistributionOptimizer::optimize(double lambda_total) const {
  const double lambda_max = cluster_.max_generic_rate();
  if (!(lambda_total > 0.0)) {
    throw std::invalid_argument("optimize: lambda' must be > 0");
  }
  if (lambda_total >= lambda_max) {
    std::ostringstream os;
    os << std::setprecision(10) << "optimize: lambda'=" << lambda_total
       << " >= lambda'_max=" << lambda_max << " (infeasible)";
    throw std::invalid_argument(os.str());
  }

  BLADE_OBS_SPAN("optimize");
  BLADE_OBS_TIMER("optimizer.solve_seconds");
  BLADE_OBS_COUNT("optimizer.solves");

  const ResponseTimeObjective obj(cluster_, discs_, lambda_total, opts_.service_scv);
  const std::size_t n = obj.size();
  long inner_evals = 0;

  auto total_assigned = [&](double phi) {
    num::KahanSum f;
    for (std::size_t i = 0; i < n; ++i) f.add(find_rate(obj, i, phi, &inner_evals));
    return f.value();
  };

  // Outer bracket (Fig. 3 lines (1)-(10)): start phi small and double
  // until the induced total meets lambda'.
  double phi_ub = 1e-6;
  int expansions = 0;
  while (total_assigned(phi_ub) < lambda_total) {
    phi_ub *= 2.0;
    if (++expansions > 200) {
      std::ostringstream os;
      os << std::setprecision(10) << "optimize: failed to bracket phi (lambda'=" << lambda_total
         << ", lambda'_max=" << lambda_max << ", phi_ub=" << phi_ub << " after " << expansions
         << " doublings)";
      throw num::RootFindingError(os.str());
    }
  }
  BLADE_OBS_COUNT_N("optimizer.phi_expansions", expansions);

  // Outer bisection (lines (11)-(27)). The bracket-width trace is the
  // solver's convergence signature: geometric decay until phi_tolerance.
  double phi_lb = 0.0;
  int outer_it = 0;
  while (phi_ub - phi_lb > opts_.phi_tolerance && outer_it < opts_.max_iterations) {
    const double mid = 0.5 * (phi_lb + phi_ub);
    if (total_assigned(mid) < lambda_total) {
      phi_lb = mid;
    } else {
      phi_ub = mid;
    }
    ++outer_it;
    BLADE_OBS_SERIES_APPEND("optimizer.phi_bracket", outer_it, phi_ub - phi_lb);
  }
  LoadDistribution out;
  out.phi = phi_ub;
  out.outer_iterations = outer_it;

  // Extract the final rates from BOTH bracket ends. Evaluating only at
  // the midpoint is unsafe: wide servers (large m_i) have nearly flat
  // marginal-cost curves, so F(phi) is step-like and the midpoint can
  // land below the step, assigning zero load everywhere. phi_ub is
  // guaranteed by the bracketing invariant to cover lambda'
  // (F(phi_ub) >= lambda' > F(phi_lb)), so interpolating between the two
  // rate vectors yields a feasible point whose marginals stay inside the
  // [phi_lb, phi_ub] band: the flat servers -- exactly the ones whose
  // load the band cannot pin down -- absorb the residual, where the
  // objective is insensitive by that same flatness.
  auto rates_at = [&](double phi_val) {
    std::vector<double> rates(n);
    for (std::size_t i = 0; i < n; ++i) rates[i] = find_rate(obj, i, phi_val, &inner_evals);
    return rates;
  };
  auto total_of = [](const std::vector<double>& rates) {
    num::KahanSum s;
    for (double r : rates) s.add(r);
    return s.value();
  };
  out.rates = rates_at(phi_ub);
  double assigned = total_of(out.rates);
  if (assigned > lambda_total) {
    const std::vector<double> lo_rates = rates_at(phi_lb);
    const double lo_total = total_of(lo_rates);
    if (assigned - lo_total > opts_.rate_tolerance) {
      const double t = std::clamp((lambda_total - lo_total) / (assigned - lo_total), 0.0, 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        out.rates[i] = lo_rates[i] + t * (out.rates[i] - lo_rates[i]);
      }
      assigned = total_of(out.rates);
    }
  }

  // The interpolated rates can still miss lambda' by floating-point
  // residue; rescale the assigned mass onto the constraint so downstream
  // consumers see an exactly feasible point.
  if (assigned > 0.0) {
    const double scale = lambda_total / assigned;
    for (double& r : out.rates) r *= scale;
  }

  out.inner_evaluations = inner_evals;
  out.utilizations = obj.utilizations(out.rates);
  out.response_times.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.response_times[i] = obj.queue(i).generic_response_time(out.rates[i]);
  }
  out.response_time = obj.value(out.rates);

  BLADE_OBS_COUNT_N("optimizer.outer_iterations", outer_it);
  BLADE_OBS_COUNT_N("optimizer.inner_evaluations", inner_evals);

  if (opts_.verbosity >= 1) {
    const std::string line = out.summary();
    if (opts_.diagnostic_sink) {
      opts_.diagnostic_sink(line);
    } else {
      std::clog << line << '\n';
    }
  }
  return out;
}

}  // namespace blade::opt
