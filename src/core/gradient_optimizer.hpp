// Alternative solver used for the optimizer ablation: projected gradient
// descent on the simplex { lambda >= 0, sum lambda_i = lambda' } clipped
// below each server's saturation point. Converges to the same optimum as
// the paper's double bisection (the program is convex); the benches
// compare evaluation counts and wall time.
#pragma once

#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

struct GradientOptions {
  double initial_step = 1.0;      ///< starting step size (adapted by backtracking)
  double tolerance = 1e-12;       ///< stop when the objective improvement drops below
  int max_iterations = 20000;     ///< outer iteration cap
  double saturation_margin = 1e-9;  ///< box bound: (1 - margin) * sup_i
};

struct GradientResult {
  LoadDistribution distribution;
  int iterations = 0;
  bool converged = false;
};

/// Projects v onto { x : 0 <= x_i <= ub_i, sum x_i = target } (Euclidean).
/// Exposed for unit tests. Throws if sum ub_i < target.
[[nodiscard]] std::vector<double> project_capped_simplex(const std::vector<double>& v,
                                                         const std::vector<double>& ub,
                                                         double target);

/// Solves the load-distribution problem by projected gradient descent.
[[nodiscard]] GradientResult gradient_optimize(const model::Cluster& cluster,
                                               queue::Discipline d, double lambda_total,
                                               const GradientOptions& opts = {});

}  // namespace blade::opt
