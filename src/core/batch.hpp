// Batched solves: many load-distribution instances through one optimizer
// (or many optimizers) with warm-started workspaces, optionally sharded
// across a ThreadPool.
//
// Determinism contract: optimize_many splits the batch into fixed-size
// chunks (BatchOptions::chunk) whose boundaries depend only on the batch
// size -- never on the pool's thread count. Each chunk runs sequentially
// on one worker with its own SolverWorkspace, so solve k always
// warm-starts from solve k-1 of the SAME chunk. Results are therefore
// bitwise identical for any thread count, including a 1-thread pool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/optimizer.hpp"
#include "parallel/thread_pool.hpp"
#include "util/status.hpp"

namespace blade::opt {

/// Outcome of one batch item: the solution, or the typed diagnostic of
/// its failure (see util/status.hpp for the codes).
using SolveOutcome = Expected<LoadDistribution>;

struct BatchOptions {
  /// Solves per warm-start chain. Larger chunks amortize more warm
  /// starts per workspace but expose less parallelism; 16 keeps an
  /// 8-thread pool saturated from ~128 instances up.
  std::size_t chunk = 16;

  /// Optional per-item cost hints (relative weights, finite and >= 0).
  /// When set, chunk boundaries are cut by accumulated cost instead of
  /// item count (par::for_each_weighted_chunk), so a batch mixing cheap
  /// and expensive instances no longer straggles one pool thread behind
  /// a fixed-size chunk of expensive ones. Must be empty or exactly the
  /// batch size. Boundaries stay a pure function of (size, chunk,
  /// hints): the thread-count determinism contract is unchanged.
  std::vector<double> cost_hints;

  /// Throws std::invalid_argument when chunk == 0.
  void validate() const;
};

/// One instance of a heterogeneous batch: solve `solver`'s problem at
/// total generic rate `lambda_total`.
struct SolveRequest {
  const LoadDistributionOptimizer* solver = nullptr;
  double lambda_total = 0.0;
};

/// Solves the same cluster at each rate in `lambdas`, sharded across
/// `pool`. Results are in input order; every item runs to completion and
/// carries its own status, so one poisoned instance cannot hide the
/// others' outcomes. Safe to call from multiple threads at once (the
/// solver is const and each chunk owns its workspace) but NOT from a
/// task already running on `pool` -- that can deadlock a busy pool; use
/// optimize_chain inside pool tasks instead.
[[nodiscard]] std::vector<SolveOutcome> optimize_many_checked(
    const LoadDistributionOptimizer& solver, std::span<const double> lambdas,
    par::ThreadPool& pool, const BatchOptions& opts = {});

/// optimize_many_checked on the global pool.
[[nodiscard]] std::vector<SolveOutcome> optimize_many_checked(
    const LoadDistributionOptimizer& solver, std::span<const double> lambdas,
    const BatchOptions& opts = {});

/// Heterogeneous checked batch (see the SolveRequest overload below for
/// the chunking/warm-start contract).
[[nodiscard]] std::vector<SolveOutcome> optimize_many_checked(
    std::span<const SolveRequest> requests, par::ThreadPool& pool, const BatchOptions& opts = {});

/// Throwing convenience over optimize_many_checked: returns the plain
/// solutions when every item succeeded. When any item failed, throws for
/// the LOWEST failing index (deterministic, unlike the historical
/// "first exception to land" behavior) with a message carrying that
/// item's diagnostic plus the total failure count; the exception type
/// follows throw_solver_error (std::invalid_argument for
/// infeasible/invalid items, num::RootFindingError otherwise).
[[nodiscard]] std::vector<LoadDistribution> optimize_many(const LoadDistributionOptimizer& solver,
                                                          std::span<const double> lambdas,
                                                          par::ThreadPool& pool,
                                                          const BatchOptions& opts = {});

/// optimize_many on the global pool.
[[nodiscard]] std::vector<LoadDistribution> optimize_many(const LoadDistributionOptimizer& solver,
                                                          std::span<const double> lambdas,
                                                          const BatchOptions& opts = {});

/// Heterogeneous batch: each request carries its own solver. Requests
/// are chunked in input order, so put requests for the same solver with
/// nearby rates next to each other to benefit from warm starts (the
/// workspace re-seeds whenever the solver pointer changes).
[[nodiscard]] std::vector<LoadDistribution> optimize_many(std::span<const SolveRequest> requests,
                                                          par::ThreadPool& pool,
                                                          const BatchOptions& opts = {});

/// Sequential warm-start chain: one workspace threaded through every
/// rate, no pool. The poolless building block optimize_many shards; use
/// it directly for work already running inside a pool task (nested
/// submit-and-wait on the same pool can deadlock) or for ordered sweeps
/// where cross-solve warm starts matter more than parallelism.
[[nodiscard]] std::vector<LoadDistribution> optimize_chain(const LoadDistributionOptimizer& solver,
                                                           std::span<const double> lambdas);

}  // namespace blade::opt
