// Shared numeric core of the flat and sharded load-distribution solvers:
// the inner rate solve (Fig. 2 with the rtsafe Newton loop), the outer
// phi search (seeded doubling expansion + Brent + bisection polish), and
// the bracket-end rate extraction. The flat LoadDistributionOptimizer
// and the sharded hierarchical solver (core/sharded.hpp) both delegate
// here, which is what makes "sharded with 1 cell" bitwise identical to
// the flat path: there is exactly one implementation of every numeric
// step, parameterized only by how F(phi) is assembled.
//
// Everything here is an implementation detail (namespace opt::detail);
// the stable surfaces are LoadDistributionOptimizer and ShardedOptimizer.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/optimizer.hpp"
#include "numerics/special.hpp"
#include "obs/obs.hpp"
#include "util/status.hpp"

namespace blade::opt::detail {

/// Builds the typed error AND bumps the matching observability counter,
/// so every failure — thrown or returned — is visible in --metrics-out.
inline Error make_solver_error(ErrorCode code, std::string context) {
  switch (code) {
    case ErrorCode::InvalidArgument:
      BLADE_OBS_COUNT("solver.failures.invalid_argument");
      break;
    case ErrorCode::Infeasible:
      BLADE_OBS_COUNT("solver.failures.infeasible");
      break;
    case ErrorCode::BracketNotFound:
      BLADE_OBS_COUNT("solver.failures.bracket_not_found");
      break;
    case ErrorCode::NonConvergence:
      BLADE_OBS_COUNT("solver.failures.non_convergence");
      break;
    case ErrorCode::NonFinite:
      BLADE_OBS_COUNT("solver.failures.non_finite");
      break;
    case ErrorCode::BudgetExceeded:
      BLADE_OBS_COUNT("solver.budget_exceeded");
      // A tripped watchdog is a flight-recorder moment: record it and
      // snapshot every ring so the dump's tail explains what the solver
      // was doing when the budget ran out.
      BLADE_OBS_EVENT(WatchdogTrip, ErrorCode::BudgetExceeded, 0.0, 0.0, 0.0);
      BLADE_OBS_DUMP("watchdog");
      break;
    default:
      BLADE_OBS_COUNT("solver.failures.internal");
      break;
  }
  return Error{code, std::move(context)};
}

/// Per-solve watchdog state shared by every inner solve of one optimize
/// call: a marginal-evaluation counter and (when armed) a wall-clock
/// deadline. The clock is only read every 16th evaluation, so an armed
/// time budget costs a fraction of one Erlang kernel per check. A
/// default-constructed budget (max_evals = 0, untimed) never trips — the
/// sharded solver hands one to each cell and enforces the user's budgets
/// itself, between outer probes.
struct SolveBudget {
  long max_evals = 0;
  bool timed = false;
  double max_seconds = 0.0;
  std::chrono::steady_clock::time_point deadline{};
  long used = 0;

  static SolveBudget from(const OptimizerOptions& opts) {
    SolveBudget b;
    b.max_evals = opts.max_marginal_evaluations;
    if (opts.max_solve_seconds > 0.0) {
      b.timed = true;
      b.max_seconds = opts.max_solve_seconds;
      b.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(opts.max_solve_seconds));
    }
    return b;
  }

  /// Accounts one marginal evaluation; the BudgetExceeded error when a
  /// watchdog trips, nullopt otherwise.
  std::optional<Error> charge() {
    ++used;
    if (max_evals > 0 && used > max_evals) {
      std::ostringstream os;
      os << "optimize: marginal-evaluation budget exceeded (max_marginal_evaluations="
         << max_evals << ")";
      return make_solver_error(ErrorCode::BudgetExceeded, os.str());
    }
    if (timed && (used & 15) == 0 && std::chrono::steady_clock::now() > deadline) {
      std::ostringstream os;
      os << "optimize: wall-time budget exceeded (max_solve_seconds=" << max_seconds << ")";
      return make_solver_error(ErrorCode::BudgetExceeded, os.str());
    }
    return std::nullopt;
  }
};

/// The non-throwing inner solve (Fig. 2 with the rtsafe Newton loop).
/// Identical numerics to the pre-resilience implementation; the failure
/// exits (bracket exhaustion, NaN marginals, budget, strict
/// non-convergence) return typed errors instead of throwing.
///
/// `Obj` is any objective exposing rate_bound(i), marginal(i, rate), and
/// marginal_with_derivative(i, rate) — ResponseTimeObjective for the
/// flat solver, the per-cell objective (global-lambda' marginal scaling
/// over a cell sub-cluster) for the sharded one.
template <class Obj>
Expected<double> find_rate_core(const OptimizerOptions& opts, const Obj& obj, std::size_t i,
                                double phi, double lo, double hi, long* evals,
                                SolveBudget& budget) {
  const double sup = obj.rate_bound(i);
  if (!std::isfinite(sup)) {
    std::ostringstream os;
    os << std::setprecision(10) << "find_rate: non-finite rate bound for server " << i;
    return make_solver_error(ErrorCode::NonFinite, os.str());
  }
  const double hard_ub = (1.0 - opts.saturation_margin) * sup;
  const double tol = opts.rate_tolerance;
  lo = std::clamp(lo, 0.0, hard_ub);
  const bool have_hi = hi >= 0.0;
  if (have_hi) hi = std::clamp(hi, lo, hard_ub);

  // Collapsed warm bracket: the outer bracket already pins this server's
  // rate to within the solver tolerance — no evaluation needed at all.
  if (have_hi && hi - lo <= tol) {
    BLADE_OBS_COUNT("optimizer.warm_bracket_hits");
    return 0.5 * (lo + hi);
  }

  std::optional<Error> err;
  auto g_at = [&](double lam) -> double {
    if (auto e = budget.charge()) {
      err = std::move(e);
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (evals) ++*evals;
    const double g = obj.marginal(i, lam);
    if (!std::isfinite(g)) {
      std::ostringstream os;
      os << std::setprecision(10) << "find_rate: non-finite marginal g_" << i << "(" << lam
         << ") = " << g;
      err = make_solver_error(ErrorCode::NonFinite, os.str());
      return std::numeric_limits<double>::quiet_NaN();
    }
    return g;
  };

  // Inactive server: even the first infinitesimal unit of load costs more
  // than phi (paper: the bisection bracket collapses onto lb = 0). From a
  // warm bracket this is the root sitting at/below the cached lower end.
  double glo = g_at(lo);
  if (err) return std::move(*err);
  if (glo >= phi) return lo;

  double ghi;
  if (have_hi) {
    ghi = g_at(hi);
    if (err) return std::move(*err);
    if (ghi < phi) {
      if (hi >= hard_ub) {
        BLADE_OBS_COUNT("optimizer.saturation_clamps");
        return hard_ub;  // saturated at this phi
      }
      // The warm upper end undershot (only possible by the tolerance fuzz
      // of the cached endpoint); resume the Fig. 2 doubling from there.
      lo = hi;
      glo = ghi;
      hi = -1.0;
    }
  }
  if (hi < 0.0) {
    // Cold upper bound: expand by doubling until g(ub) >= phi, clamping
    // at the saturation guard exactly as lines (4)-(8) of Fig. 2. The
    // last undershooting probe becomes the Newton lower end, so no
    // evaluation is repeated.
    double ub = std::min(hard_ub, std::max(1e-3 * sup, 2.0 * lo));
    int guard = 0;
    double gub = g_at(ub);
    if (err) return std::move(*err);
    while (gub < phi) {
      if (ub >= hard_ub) {
        BLADE_OBS_COUNT("optimizer.saturation_clamps");
        return hard_ub;  // saturated at this phi
      }
      lo = ub;
      glo = gub;
      ub = std::min(2.0 * ub, hard_ub);
      if (++guard > 200) {
        std::ostringstream os;
        os << std::setprecision(10) << "find_rate: failed to bracket lambda'_" << i
           << " (phi=" << phi << ", sup=" << sup << ", ub=" << ub << " after " << guard
           << " doublings)";
        return make_solver_error(ErrorCode::BracketNotFound, os.str());
      }
      gub = g_at(ub);
      if (err) return std::move(*err);
    }
    hi = ub;
    ghi = gub;
  }

  // Safeguarded Newton on g(x) = phi over [lo, hi] (rtsafe-style): take
  // the Newton step when it stays inside the bracket and at least halves
  // the previous step, otherwise bisect — superlinear near the root,
  // never slower than bisection. One derivative-returning marginal
  // evaluation (a single Erlang kernel) per iteration.
  double x = 0.5 * (lo + hi);
  double dx_old = hi - lo;
  double dx = dx_old;
  double result = x;
  bool converged = false;
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    if (auto e = budget.charge()) return std::move(*e);
    if (evals) ++*evals;
    const auto [gx, dgx] = obj.marginal_with_derivative(i, x);
    if (!std::isfinite(gx)) {
      std::ostringstream os;
      os << std::setprecision(10) << "find_rate: non-finite marginal g_" << i << "(" << x
         << ") = " << gx;
      return make_solver_error(ErrorCode::NonFinite, os.str());
    }
    const double fx = gx - phi;
    if (fx == 0.0) {
      result = x;
      converged = true;
      break;
    }
    if (fx < 0.0) {
      lo = x;
    } else {
      hi = x;
    }
    if (hi - lo <= tol) {
      result = 0.5 * (lo + hi);
      converged = true;
      break;
    }
    double next;
    const bool newton_ok = dgx > 0.0 && std::isfinite(dgx);
    if (!newton_ok || 2.0 * std::abs(fx) > std::abs(dx_old * dgx) ||
        !((next = x - fx / dgx) > lo && next < hi)) {
      dx_old = dx;
      dx = 0.5 * (hi - lo);
      next = 0.5 * (lo + hi);
    } else {
      dx_old = dx;
      dx = std::abs(next - x);
    }
    result = next;
    if (dx <= 0.5 * tol) {
      ++it;
      converged = true;
      break;
    }
    x = next;
  }
  BLADE_OBS_COUNT("optimizer.find_rate_calls");
  BLADE_OBS_OBSERVE("optimizer.inner_iterations", it);
  if (!converged && opts.strict_convergence && hi - lo > tol) {
    std::ostringstream os;
    os << std::setprecision(10) << "find_rate: lambda'_" << i << " bracket still " << (hi - lo)
       << " wide after max_iterations=" << opts.max_iterations;
    return make_solver_error(ErrorCode::NonConvergence, os.str());
  }
  return result;
}

/// The outer phi search shared by the flat and sharded solvers: seeded
/// doubling expansion until F(phi) covers lambda', Brent on F - lambda'
/// over the established bracket, then a bisection polish down to
/// phi_tolerance (F is step-like around flat-marginal servers, and the
/// extraction interpolates between the bracket ends, so the bracket
/// itself must be tight).
///
/// `total_at(phi)` evaluates F(phi), parking any inner failure in `err`
/// and returning NaN; `absorb(phi, total)` folds an evaluation into `br`
/// (and whatever per-server/per-cell rate state the caller keeps at the
/// bracket ends). Only monotone improvements may be kept: phi_lo only
/// moves up, phi_hi only moves down. `seed_phi` is the previous solve's
/// converged multiplier (< 0 or non-finite when there is none).
///
/// Returns the outer iteration count, or the search's typed error.
template <class TotalAt, class Absorb>
Expected<int> run_phi_search(const OptimizerOptions& opts, double lambda_total,
                             double lambda_max, double seed_phi, PhiBracket& br,
                             std::optional<Error>& err, TotalAt&& total_at, Absorb&& absorb) {
  // Outer bracket (Fig. 3 lines (1)-(10)): start phi at the previous
  // solve's converged multiplier when the workspace has one (cross-solve
  // warm start -- for a sweep of nearby lambda' values the very first
  // probe usually covers or nearly covers), otherwise small, and double
  // until the induced total meets lambda'.
  double phi_probe = (seed_phi > 0.0 && std::isfinite(seed_phi)) ? seed_phi : 1e-6;
  int expansions = 0;
  while (true) {
    const double total = total_at(phi_probe);
    if (err) return std::move(*err);
    const bool covered = total >= lambda_total;
    absorb(phi_probe, total);
    if (covered) break;
    phi_probe *= 2.0;
    if (++expansions > 200) {
      std::ostringstream os;
      os << std::setprecision(10) << "optimize: failed to bracket phi (lambda'=" << lambda_total
         << ", lambda'_max=" << lambda_max << ", phi_ub=" << phi_probe << " after " << expansions
         << " doublings)";
      return make_solver_error(ErrorCode::BracketNotFound, os.str());
    }
  }
  BLADE_OBS_COUNT_N("optimizer.phi_expansions", expansions);

  // Outer refinement (replacing the bisection of lines (11)-(27)): Brent
  // on F(phi) - lambda' over the established bracket. The endpoint
  // values are already known from the expansion, so nothing is
  // re-evaluated; every new evaluation is absorbed into the workspace, so
  // the inner warm brackets tighten as the outer iteration converges.
  // The bracket-width trace is the solver's convergence signature.
  int outer_it = 0;
  if (br.total_hi - lambda_total != 0.0) {
    double a = br.phi_lo, fa = br.total_lo - lambda_total;
    double b = br.phi_hi, fb = br.total_hi - lambda_total;
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    double c = a, fc = fa;
    double d = b - a, e = d;
    // Brent worst-case iteration count is quadratic in log(width/tol);
    // cap it well under max_iterations so the bisection polish below
    // always has budget left even on pathologically step-like F.
    const int brent_cap = std::min(60, opts.max_iterations);
    while (fb != 0.0 && outer_it < brent_cap) {
      if ((fb > 0.0) == (fc > 0.0)) {
        c = a;
        fc = fa;
        d = e = b - a;
      }
      if (std::abs(fc) < std::abs(fb)) {
        a = b;
        b = c;
        c = a;
        fa = fb;
        fb = fc;
        fc = fa;
      }
      const double brent_tol =
          2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) + 0.5 * opts.phi_tolerance;
      const double m = 0.5 * (c - b);
      if (std::abs(m) <= brent_tol) break;
      if (std::abs(e) >= brent_tol && std::abs(fa) > std::abs(fb)) {
        const double s = fb / fa;
        double p, q;
        if (a == c) {
          p = 2.0 * m * s;
          q = 1.0 - s;
        } else {
          const double qq = fa / fc;
          const double r = fb / fc;
          p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
          q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
        }
        if (p > 0.0) {
          q = -q;
        } else {
          p = -p;
        }
        if (2.0 * p < std::min(3.0 * m * q - std::abs(brent_tol * q), std::abs(e * q))) {
          e = d;
          d = p / q;
        } else {
          d = m;
          e = m;
        }
      } else {
        d = m;
        e = m;
      }
      a = b;
      fa = fb;
      b += (std::abs(d) > brent_tol) ? d : (m > 0.0 ? brent_tol : -brent_tol);
      const double total = total_at(b);
      if (err) return std::move(*err);
      fb = total - lambda_total;
      absorb(b, total);
      ++outer_it;
      BLADE_OBS_SERIES_APPEND("optimizer.phi_bracket", outer_it,
                              br.phi_hi >= 0.0 ? br.phi_hi - br.phi_lo : 0.0);
    }
  }
  // Bisection polish: Brent converges on the root of F - lambda' but can
  // stop with one side of the sign bracket still wide (F is step-like
  // around flat-marginal servers). The extraction below interpolates
  // between the bracket ends, so tighten the bracket itself to the same
  // phi_tolerance the seed bisection guaranteed.
  while (br.phi_hi - br.phi_lo > opts.phi_tolerance && outer_it < opts.max_iterations) {
    const double mid = 0.5 * (br.phi_lo + br.phi_hi);
    if (!(mid > br.phi_lo && mid < br.phi_hi)) break;  // bracket at fp resolution
    const double total = total_at(mid);
    if (err) return std::move(*err);
    absorb(mid, total);
    ++outer_it;
    BLADE_OBS_SERIES_APPEND("optimizer.phi_bracket", outer_it, br.phi_hi - br.phi_lo);
  }
  if (opts.strict_convergence && br.phi_hi - br.phi_lo > opts.phi_tolerance) {
    const double mid = 0.5 * (br.phi_lo + br.phi_hi);
    if (mid > br.phi_lo && mid < br.phi_hi) {  // width above fp resolution
      std::ostringstream os;
      os << std::setprecision(10) << "optimize: phi bracket still " << (br.phi_hi - br.phi_lo)
         << " wide after max_iterations=" << opts.max_iterations;
      return make_solver_error(ErrorCode::NonConvergence, os.str());
    }
  }
  return outer_it;
}

/// Extracts the final rates from BOTH bracket ends — `rates` enters as a
/// copy of the rate vector at phi_hi, `rates_lo` is the vector at
/// phi_lo. Evaluating only at the bracket midpoint is unsafe: wide
/// servers (large m_i) have nearly flat marginal-cost curves, so F(phi)
/// is step-like and the midpoint can land below the step, assigning zero
/// load everywhere. phi_hi is guaranteed by the bracketing invariant to
/// cover lambda' (F(phi_hi) >= lambda' > F(phi_lo)), so interpolating
/// between the two rate vectors yields a feasible point whose marginals
/// stay inside the [phi_lo, phi_hi] band: the flat servers — exactly the
/// ones whose load the band cannot pin down — absorb the residual, where
/// the objective is insensitive by that same flatness. A final rescale
/// puts the assigned mass exactly on the constraint, so downstream
/// consumers see an exactly feasible point.
inline void extract_rates(const PhiBracket& br, const std::vector<double>& rates_lo,
                          std::vector<double>& rates, double lambda_total,
                          double rate_tolerance) {
  auto total_of = [](const std::vector<double>& rs) {
    num::KahanSum s;
    for (double r : rs) s.add(r);
    return s.value();
  };
  double assigned = br.total_hi;
  if (assigned > lambda_total && assigned - br.total_lo > rate_tolerance) {
    const double t =
        std::clamp((lambda_total - br.total_lo) / (assigned - br.total_lo), 0.0, 1.0);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      rates[i] = rates_lo[i] + t * (rates[i] - rates_lo[i]);
    }
    assigned = total_of(rates);
  }
  if (assigned > 0.0) {
    const double scale = lambda_total / assigned;
    for (double& r : rates) r *= scale;
  }
}

}  // namespace blade::opt::detail
