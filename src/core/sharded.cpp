#include "core/sharded.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/objective.hpp"
#include "core/solver_core.hpp"
#include "numerics/special.hpp"
#include "obs/obs.hpp"
#include "parallel/sweep.hpp"

namespace blade::opt {

namespace {

/// Per-cell objective over the cell's class-representative queues with
/// the GLOBAL lambda' in the marginal scaling. Arithmetic is
/// term-for-term that of ResponseTimeObjective::marginal /
/// marginal_with_derivative — the class exists only because the flat
/// objective's constructor (correctly) rejects lambda' at or above the
/// saturation point of the cluster it is given, and a cell sub-cluster
/// saturates far below the global lambda' it must price against.
class CellObjective {
 public:
  CellObjective(const std::vector<queue::BladeQueue>& queues, double lambda_total)
      : queues_(&queues), lambda_total_(lambda_total) {}

  [[nodiscard]] double rate_bound(std::size_t i) const {
    return (*queues_)[i].max_generic_rate();
  }
  [[nodiscard]] double marginal(std::size_t i, double rate) const {
    return (*queues_)[i].lagrange_marginal(rate) / lambda_total_;
  }
  [[nodiscard]] std::pair<double, double> marginal_with_derivative(std::size_t i,
                                                                   double rate) const {
    const auto [g, dg] = (*queues_)[i].lagrange_marginal_with_derivative(rate);
    return {g / lambda_total_, dg / lambda_total_};
  }

 private:
  const std::vector<queue::BladeQueue>* queues_;
  double lambda_total_;
};

/// Coalescing key: two servers belong to the same class iff every
/// parameter entering their queueing model is bitwise identical.
using ClassKey = std::tuple<unsigned, std::uint64_t, std::uint64_t, int>;

ClassKey class_key(const model::BladeServer& s, queue::Discipline d) {
  return {s.size(), std::bit_cast<std::uint64_t>(s.speed()),
          std::bit_cast<std::uint64_t>(s.special_rate()), static_cast<int>(d)};
}

}  // namespace

void ShardOptions::validate() const {
  if (min_cell_size == 0) {
    throw std::invalid_argument("ShardOptions: min_cell_size must be >= 1");
  }
}

void ShardedWorkspace::clear() {
  cells_.clear();
  seed_phi_ = -1.0;
}

ShardedOptimizer::ShardedOptimizer(model::Cluster cluster, queue::Discipline d,
                                   OptimizerOptions opts, ShardOptions shard)
    : ShardedOptimizer(model::Cluster(cluster),
                       std::vector<queue::Discipline>(cluster.size(), d), opts, shard) {}

ShardedOptimizer::ShardedOptimizer(model::Cluster cluster, std::vector<queue::Discipline> ds,
                                   OptimizerOptions opts, ShardOptions shard)
    : cluster_(std::move(cluster)), discs_(std::move(ds)), opts_(opts), shard_(shard) {
  if (discs_.size() != cluster_.size()) {
    throw std::invalid_argument("ShardedOptimizer: discipline vector size mismatch");
  }
  opts_.validate();
  shard_.validate();
  build_cells();
}

void ShardedOptimizer::build_cells() {
  const std::size_t n = cluster_.size();
  std::size_t cell_count = shard_.cells;
  if (cell_count == 0) {
    cell_count = std::clamp<std::size_t>(n / shard_.min_cell_size, 1, 64);
  }
  cell_count = std::min(cell_count, n);
  cells_.assign(cell_count, Cell{});

  const double rbar = cluster_.rbar();
  num::KahanSum capacity;
  for (std::size_t c = 0; c < cell_count; ++c) {
    Cell& cell = cells_[c];
    cell.begin = c * n / cell_count;
    cell.end = (c + 1) * n / cell_count;

    std::map<ClassKey, std::size_t> index;
    for (std::size_t g = cell.begin; g < cell.end; ++g) {
      if (!shard_.coalesce_identical) {
        cell.classes.push_back(ServerClass{{g}});
        continue;
      }
      const auto [it, inserted] =
          index.try_emplace(class_key(cluster_.server(g), discs_[g]), cell.classes.size());
      if (inserted) {
        cell.classes.push_back(ServerClass{{g}});
      } else {
        cell.classes[it->second].members.push_back(g);
      }
    }

    if (shard_.prune.top_k > 0 && shard_.prune.top_k < cell.end - cell.begin) {
      // Attraction of a class = its empty-system response time T'(0):
      // lambda'-independent, so the kept sets for increasing k are
      // nested and the pruned solution's T' is monotone in k. Ties
      // break by global index, keeping the selection total and
      // deterministic.
      std::vector<std::pair<double, std::size_t>> order;  // (T'(0), global index)
      order.reserve(cell.end - cell.begin);
      for (const ServerClass& cls : cell.classes) {
        const std::size_t rep = cls.members.front();
        const double attract = cluster_.server(rep)
                                   .queue(rbar, discs_[rep], opts_.service_scv)
                                   .generic_response_time(0.0);
        for (std::size_t g : cls.members) order.emplace_back(attract, g);
      }
      std::sort(order.begin(), order.end());
      std::vector<bool> keep(cell.end - cell.begin, false);
      for (std::size_t r = 0; r < shard_.prune.top_k; ++r) {
        keep[order[r].second - cell.begin] = true;
      }
      std::vector<ServerClass> kept_classes;
      for (ServerClass& cls : cell.classes) {
        ServerClass kept;
        ServerClass cut;
        for (std::size_t g : cls.members) {
          (keep[g - cell.begin] ? kept : cut).members.push_back(g);
        }
        if (!kept.members.empty()) kept_classes.push_back(std::move(kept));
        if (!cut.members.empty()) cell.pruned.push_back(std::move(cut));
      }
      cell.classes = std::move(kept_classes);
    }

    cell.queues.reserve(cell.classes.size());
    for (const ServerClass& cls : cell.classes) {
      const std::size_t rep = cls.members.front();
      cell.queues.push_back(cluster_.server(rep).queue(rbar, discs_[rep], opts_.service_scv));
      capacity.add(static_cast<double>(cls.members.size()) * cell.queues.back().max_generic_rate());
      server_classes_ += 1;
      coalesced_servers_ += cls.members.size() - 1;
    }
    cell.pruned_queues.reserve(cell.pruned.size());
    for (const ServerClass& cls : cell.pruned) {
      const std::size_t rep = cls.members.front();
      cell.pruned_queues.push_back(
          cluster_.server(rep).queue(rbar, discs_[rep], opts_.service_scv));
      pruned_servers_ += cls.members.size();
      coalesced_servers_ += cls.members.size() - 1;
    }
  }
  kept_capacity_ = capacity.value();

  cell_cost_.resize(cell_count);
  for (std::size_t c = 0; c < cell_count; ++c) {
    cell_cost_[c] = static_cast<double>(cells_[c].classes.size());
  }
  cell_chunk_ = std::max<std::size_t>(1, cell_count / 16);
}

void ShardedOptimizer::prepare_workspace(ShardedWorkspace& ws) const {
  ws.cells_.resize(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    auto& st = ws.cells_[c];
    const std::size_t k = cells_[c].classes.size();
    st.rates_lo.assign(k, 0.0);
    st.rates_hi.assign(k, 0.0);
    st.scratch.assign(k, 0.0);
    st.total = 0.0;
    st.evals = 0;
    st.err = Error{ErrorCode::Ok, {}};
  }
}

ShardedLoadDistribution ShardedOptimizer::optimize(double lambda_total) const {
  ShardedWorkspace ws;
  return optimize(lambda_total, ws);
}

ShardedLoadDistribution ShardedOptimizer::optimize(double lambda_total,
                                                   ShardedWorkspace& ws) const {
  return optimize(lambda_total, par::global_pool(), ws);
}

ShardedLoadDistribution ShardedOptimizer::optimize(double lambda_total, par::ThreadPool& pool,
                                                   ShardedWorkspace& ws) const {
  auto res = optimize_core(lambda_total, pool, ws);
  if (!res) throw_solver_error(res.error());
  return std::move(res).value();
}

Expected<ShardedLoadDistribution> ShardedOptimizer::try_optimize(double lambda_total) const {
  ShardedWorkspace ws;
  return try_optimize(lambda_total, ws);
}

Expected<ShardedLoadDistribution> ShardedOptimizer::try_optimize(double lambda_total,
                                                                 ShardedWorkspace& ws) const {
  return try_optimize(lambda_total, par::global_pool(), ws);
}

Expected<ShardedLoadDistribution> ShardedOptimizer::try_optimize(double lambda_total,
                                                                 par::ThreadPool& pool,
                                                                 ShardedWorkspace& ws) const {
  try {
    return optimize_core(lambda_total, pool, ws);
  } catch (const std::exception& e) {
    return detail::make_solver_error(ErrorCode::Internal,
                                     std::string("optimize: unexpected exception: ") + e.what());
  }
}

Expected<ShardedLoadDistribution> ShardedOptimizer::optimize_core(double lambda_total,
                                                                  par::ThreadPool& pool,
                                                                  ShardedWorkspace& ws) const {
  const double lambda_max = cluster_.max_generic_rate();
  if (!(lambda_total > 0.0)) {
    return detail::make_solver_error(ErrorCode::InvalidArgument, "optimize: lambda' must be > 0");
  }
  if (lambda_total >= lambda_max) {
    std::ostringstream os;
    os << std::setprecision(10) << "optimize: lambda'=" << lambda_total
       << " >= lambda'_max=" << lambda_max << " (infeasible)";
    return detail::make_solver_error(ErrorCode::Infeasible, os.str());
  }
  if (pruned_servers_ > 0 && lambda_total >= kept_capacity_) {
    std::ostringstream os;
    os << std::setprecision(10) << "optimize: lambda'=" << lambda_total
       << " >= pruned capacity " << kept_capacity_
       << " (infeasible under prune.top_k=" << shard_.prune.top_k << ")";
    return detail::make_solver_error(ErrorCode::Infeasible, os.str());
  }

  BLADE_OBS_SPAN("shard_optimize");
  BLADE_OBS_TIMER("solver.shard.solve_seconds");
  BLADE_OBS_COUNT("solver.shard.solves");
  BLADE_OBS_COUNT_N("solver.shard.cells", static_cast<long>(cells_.size()));
  BLADE_OBS_EVENT(SolveStart, cells_.size(), lambda_total, lambda_max, 0.0);

  prepare_workspace(ws);
  detail::PhiBracket br;
  const double tol = opts_.rate_tolerance;
  const std::size_t cell_count = cells_.size();

  // User budgets are enforced between probes (see the class comment);
  // each cell evaluation gets an inert per-call budget so the shared
  // inner solve never reads contended state from pool threads.
  const detail::SolveBudget user_budget = detail::SolveBudget::from(opts_);

  // One cell's F_c(phi): a warm-bracketed inner solve per class, class
  // counts folding into a compensated cell total. Never throws —
  // failures park in the cell state and the caller turns the first one
  // (lowest cell index, deterministically) into the solve's error.
  auto eval_cell = [&](std::size_t c, double phi, bool use_lo, bool use_hi) noexcept {
    const Cell& cell = cells_[c];
    auto& st = ws.cells_[c];
    try {
      const CellObjective obj(cell.queues, lambda_total);
      detail::SolveBudget inert;
      num::KahanSum f;
      for (std::size_t k = 0; k < cell.classes.size(); ++k) {
        const double lo = use_lo ? st.rates_lo[k] - tol : 0.0;
        const double hi = use_hi ? st.rates_hi[k] + tol : -1.0;
        auto r = detail::find_rate_core(opts_, obj, k, phi, lo, hi, &st.evals, inert);
        if (!r) {
          st.err = r.error();
          return;
        }
        st.scratch[k] = r.value();
        f.add(static_cast<double>(cell.classes[k].members.size()) * r.value());
      }
      st.total = f.value();
    } catch (const std::exception& e) {
      st.err = Error{ErrorCode::Internal,
                     std::string("optimize: unexpected exception in cell: ") + e.what()};
    } catch (...) {
      st.err = Error{ErrorCode::Internal, "optimize: unknown exception in cell"};
    }
  };

  std::optional<Error> err;
  long inner_evals = 0;
  auto total_at = [&](double phi) -> double {
    const bool use_lo = phi >= br.phi_lo;
    const bool use_hi = br.phi_hi >= 0.0 && phi <= br.phi_hi;
    if (cell_count == 1) {
      // Inline on the calling thread: with one cell (and coalescing
      // off) the call sequence is bitwise the flat solver's.
      eval_cell(0, phi, use_lo, use_hi);
    } else {
      par::for_each_weighted_chunk(pool, cell_count, cell_chunk_, cell_cost_,
                                   [&](std::size_t lo_c, std::size_t hi_c) {
                                     for (std::size_t c = lo_c; c < hi_c; ++c) {
                                       eval_cell(c, phi, use_lo, use_hi);
                                     }
                                   });
    }
    inner_evals = 0;
    for (std::size_t c = 0; c < cell_count; ++c) {
      if (ws.cells_[c].err.code != ErrorCode::Ok && !err) err = ws.cells_[c].err;
      inner_evals += ws.cells_[c].evals;
    }
    if (err) return std::numeric_limits<double>::quiet_NaN();
    if (user_budget.max_evals > 0 && inner_evals > user_budget.max_evals) {
      std::ostringstream os;
      os << "optimize: marginal-evaluation budget exceeded (max_marginal_evaluations="
         << user_budget.max_evals << ")";
      err = detail::make_solver_error(ErrorCode::BudgetExceeded, os.str());
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (user_budget.timed && std::chrono::steady_clock::now() > user_budget.deadline) {
      std::ostringstream os;
      os << "optimize: wall-time budget exceeded (max_solve_seconds=" << user_budget.max_seconds
         << ")";
      err = detail::make_solver_error(ErrorCode::BudgetExceeded, os.str());
      return std::numeric_limits<double>::quiet_NaN();
    }
    num::KahanSum f;
    for (std::size_t c = 0; c < cell_count; ++c) f.add(ws.cells_[c].total);
    return f.value();
  };
  auto absorb = [&](double phi, double total) {
    if (total < lambda_total) {
      if (phi >= br.phi_lo) {
        br.phi_lo = phi;
        br.total_lo = total;
        for (auto& st : ws.cells_) st.rates_lo.swap(st.scratch);
      }
    } else if (br.phi_hi < 0.0 || phi <= br.phi_hi) {
      br.phi_hi = phi;
      br.total_hi = total;
      for (auto& st : ws.cells_) st.rates_hi.swap(st.scratch);
    }
  };

  auto search = detail::run_phi_search(opts_, lambda_total, lambda_max, ws.seed_phi_, br, err,
                                       total_at, absorb);
  if (!search) {
    BLADE_OBS_EVENT(SolveEnd, search.error().code, 0.0, 0.0, inner_evals);
    return search.error();
  }

  // Expand the class-level bracket-end rates back to full length (pruned
  // servers stay at zero) and extract exactly as the flat path does.
  const std::size_t n = cluster_.size();
  ShardedLoadDistribution out;
  std::vector<double> rates_lo(n, 0.0);
  out.dist.rates.assign(n, 0.0);
  for (std::size_t c = 0; c < cell_count; ++c) {
    const auto& st = ws.cells_[c];
    const auto& classes = cells_[c].classes;
    for (std::size_t k = 0; k < classes.size(); ++k) {
      for (std::size_t g : classes[k].members) {
        rates_lo[g] = st.rates_lo[k];
        out.dist.rates[g] = st.rates_hi[k];
      }
    }
  }
  detail::extract_rates(br, rates_lo, out.dist.rates, lambda_total, opts_.rate_tolerance);
  ws.seed_phi_ = br.phi_hi;

  out.dist.phi = br.phi_hi;
  out.dist.outer_iterations = search.value();
  out.dist.inner_evaluations = inner_evals;
  out.cells = cell_count;
  out.server_classes = server_classes_;
  out.coalesced_servers = coalesced_servers_;
  out.pruned_servers = pruned_servers_;

  finalize(out, lambda_total);
  if (pruned_servers_ > 0) {
    out.prune_loss_bound =
        prune_bound(ws, br.phi_hi, lambda_total, out.dist.response_time, &out.dist.inner_evaluations);
    BLADE_OBS_GAUGE_SET("solver.shard.prune_loss_bound", out.prune_loss_bound);
  }

  BLADE_OBS_COUNT_N("solver.shard.outer_iterations", search.value());
  BLADE_OBS_COUNT_N("solver.shard.inner_evaluations", inner_evals);
  BLADE_OBS_EVENT(SolveEnd, ErrorCode::Ok, out.dist.phi, search.value(), inner_evals);
  if (coalesced_servers_ > 0) {
    BLADE_OBS_COUNT_N("solver.shard.coalesced_servers", static_cast<long>(coalesced_servers_));
  }
  if (pruned_servers_ > 0) {
    BLADE_OBS_COUNT_N("solver.shard.pruned_servers", static_cast<long>(pruned_servers_));
  }

  if (opts_.verbosity >= 1) {
    const std::string line = out.dist.summary();
    if (opts_.diagnostic_sink) {
      opts_.diagnostic_sink(line);
    } else {
      std::clog << line << '\n';
    }
  }
  return out;
}

void ShardedOptimizer::finalize(ShardedLoadDistribution& out, double lambda_total) const {
  const std::size_t n = cluster_.size();
  if (coalesced_servers_ == 0 && pruned_servers_ == 0) {
    // One server per class and nothing cut: run the flat finalization so
    // the single-cell configuration stays bitwise identical to the flat
    // solver all the way through the reported metrics.
    const ResponseTimeObjective obj(cluster_, discs_, lambda_total, opts_.service_scv);
    if (shard_.finalize_metrics) {
      out.dist.utilizations = obj.utilizations(out.dist.rates);
      out.dist.response_times.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.dist.response_times[i] = obj.queue(i).generic_response_time(out.dist.rates[i]);
      }
    }
    out.dist.response_time = obj.value(out.dist.rates);
    return;
  }

  // Class-structured finalization: one queue evaluation per class,
  // broadcast to the members (extraction preserves within-class
  // equality, so the representative's rate is every member's rate).
  if (shard_.finalize_metrics) {
    out.dist.utilizations.assign(n, 0.0);
    out.dist.response_times.assign(n, 0.0);
  }
  num::KahanSum acc;
  for (const Cell& cell : cells_) {
    for (std::size_t k = 0; k < cell.classes.size(); ++k) {
      const ServerClass& cls = cell.classes[k];
      const double rate = out.dist.rates[cls.members.front()];
      if (shard_.finalize_metrics) {
        const double rt = cell.queues[k].generic_response_time(rate);
        const double rho = cell.queues[k].utilization(rate);
        for (std::size_t g : cls.members) {
          out.dist.response_times[g] = rt;
          out.dist.utilizations[g] = rho;
        }
        if (rate != 0.0) acc.add(static_cast<double>(cls.members.size()) * rate * rt);
      } else if (rate != 0.0) {
        acc.add(static_cast<double>(cls.members.size()) * rate *
                cell.queues[k].generic_response_time(rate));
      }
    }
    if (shard_.finalize_metrics) {
      for (std::size_t k = 0; k < cell.pruned.size(); ++k) {
        const double rt = cell.pruned_queues[k].generic_response_time(0.0);
        const double rho = cell.pruned_queues[k].utilization(0.0);
        for (std::size_t g : cell.pruned[k].members) {
          out.dist.response_times[g] = rt;
          out.dist.utilizations[g] = rho;
        }
      }
    }
  }
  out.dist.response_time = acc.value() / lambda_total;
}

double ShardedOptimizer::prune_bound(const ShardedWorkspace& ws, double phi, double lambda_total,
                                     double t_prime, long* evals) const {
  // Weak-duality certificate: with per-server cost c_i(x) = x T'_i(x) /
  // lambda' (so T' of an assignment is sum_i c_i(x_i)), for ANY phi >= 0
  //
  //   T'_unpruned_opt >= g(phi) = sum_i min_{x>=0} [c_i(x) - phi x] + phi lambda'
  //
  // where the sum runs over ALL servers, pruned included. Hence
  //
  //   loss = T'(returned) - T'_unpruned_opt <= T'(returned) - g(phi).
  //
  // Each min term is 0 when g_i(0) >= phi (the cost is increasing from
  // zero) and otherwise sits at the phi-marginal point — for kept
  // classes exactly the rates_hi the solve already holds, for pruned
  // classes one cold inner solve at the converged multiplier. Terms are
  // evaluated at solver-tolerance minimizers, so each carries
  // O(tolerance^2) slack; the additive floor below absorbs it. Taking
  // min(0, term) is always valid (the true min is <= 0). If a pruned
  // class's inner solve fails the certificate is unavailable and the
  // bound degrades to +inf rather than under-reporting.
  num::KahanSum dual;
  detail::SolveBudget inert;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    const auto& st = ws.cells_[c];
    for (std::size_t k = 0; k < cell.classes.size(); ++k) {
      const double x = st.rates_hi[k];
      if (x <= 0.0) continue;
      const double cost = x * cell.queues[k].generic_response_time(x) / lambda_total;
      dual.add(static_cast<double>(cell.classes[k].members.size()) *
               std::min(0.0, cost - phi * x));
    }
    const CellObjective pruned_obj(cell.pruned_queues, lambda_total);
    for (std::size_t k = 0; k < cell.pruned.size(); ++k) {
      if (pruned_obj.marginal(k, 0.0) >= phi) continue;  // min at x = 0: term 0
      auto r = detail::find_rate_core(opts_, pruned_obj, k, phi, 0.0, -1.0, evals, inert);
      if (!r) return std::numeric_limits<double>::infinity();
      const double x = r.value();
      if (x <= 0.0) continue;
      const double cost = x * cell.pruned_queues[k].generic_response_time(x) / lambda_total;
      dual.add(static_cast<double>(cell.pruned[k].members.size()) *
               std::min(0.0, cost - phi * x));
    }
  }
  const double certificate = dual.value() + phi * lambda_total;
  const double raw = t_prime - certificate;
  return std::max(0.0, raw) + 1e-9 * (1.0 + std::abs(t_prime));
}

}  // namespace blade::opt
