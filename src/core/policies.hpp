// Baseline load-distribution policies. The paper evaluates only the
// optimal policy; these heuristics quantify the gap it closes (policy
// ablation bench) and serve as sanity lower bounds in property tests
// (optimal must never lose to any of them).
#pragma once

#include <string>
#include <vector>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

enum class Policy {
  ProportionalToCapacity,   ///< lambda'_i proportional to m_i s_i
  ProportionalToFreeCapacity,  ///< proportional to m_i s_i / rbar - lambda''_i
  EqualSplit,               ///< lambda' / n each (clamped at saturation)
  UtilizationBalancing,     ///< equalize total rho_i across servers
  GreedyIncremental,        ///< repeatedly route small increments to the
                            ///< server with the lowest marginal cost
};

[[nodiscard]] const char* to_string(Policy p) noexcept;

/// All baseline policies, for sweeping.
[[nodiscard]] std::vector<Policy> all_policies();

/// Computes the rate vector the policy would assign. All policies return
/// a feasible assignment (rates below each server's saturation point,
/// summing to lambda_total); infeasible preferences are clamped and the
/// overflow redistributed. Throws if lambda_total >= lambda'_max.
[[nodiscard]] std::vector<double> distribute(Policy p, const model::Cluster& cluster,
                                             queue::Discipline d, double lambda_total);

/// Convenience: the mean generic response time T' under a policy.
[[nodiscard]] double policy_response_time(Policy p, const model::Cluster& cluster,
                                          queue::Discipline d, double lambda_total);

}  // namespace blade::opt
