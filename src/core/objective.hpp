// The optimization objective of Section 3:
//   T'(lambda'_1..lambda'_n) = sum_i (lambda'_i / lambda') T'_i(lambda'_i)
// together with its per-server Lagrange marginals
//   g_i(lambda'_i) = dT'/dlambda'_i
//               = (1/lambda') (T'_i + lambda'_i dT'_i/dlambda'_i).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

class ResponseTimeObjective {
 public:
  /// @param cluster       the problem instance
  /// @param d             discipline of the special streams
  /// @param lambda_total  total generic arrival rate lambda' (> 0, and
  ///                      strictly below the cluster saturation point)
  /// @param service_scv   task-size variability (1 = the paper's exact
  ///                      exponential model; else Allen–Cunneen approx.)
  ResponseTimeObjective(const model::Cluster& cluster, queue::Discipline d, double lambda_total,
                        double service_scv = 1.0);

  /// Heterogeneous disciplines: ds[i] applies to server i (used by the
  /// discipline-assignment extension).
  ResponseTimeObjective(const model::Cluster& cluster, const std::vector<queue::Discipline>& ds,
                        double lambda_total, double service_scv = 1.0);

  [[nodiscard]] std::size_t size() const noexcept { return queues_.size(); }
  [[nodiscard]] double lambda_total() const noexcept { return lambda_total_; }
  [[nodiscard]] const queue::BladeQueue& queue(std::size_t i) const { return queues_.at(i); }

  /// Saturation point of server i's generic stream (exclusive bound).
  [[nodiscard]] double rate_bound(std::size_t i) const { return queues_.at(i).max_generic_rate(); }

  /// T'(rates): mean generic response time for a full assignment. The
  /// rates need not sum to lambda' (weights always use lambda'), so this
  /// is also usable on intermediate/infeasible iterates.
  [[nodiscard]] double value(std::span<const double> rates) const;

  /// g_i evaluated at a given per-server rate.
  [[nodiscard]] double marginal(std::size_t i, double rate) const;

  /// {g_i, dg_i/dlambda'_i} in one Erlang-kernel evaluation — the
  /// derivative-returning form the Newton inner solver consumes. The
  /// derivative is positive (T' is convex in lambda'_i); see
  /// BladeQueue::lagrange_marginal_with_derivative for the analytic form
  /// and its finite-difference fallback.
  [[nodiscard]] std::pair<double, double> marginal_with_derivative(std::size_t i,
                                                                  double rate) const;

  /// Full gradient (g_1..g_n) at an assignment.
  [[nodiscard]] std::vector<double> gradient(std::span<const double> rates) const;

  /// Per-server utilizations rho_i at an assignment.
  [[nodiscard]] std::vector<double> utilizations(std::span<const double> rates) const;

 private:
  std::vector<queue::BladeQueue> queues_;
  double lambda_total_;
};

}  // namespace blade::opt
