// Independent optimality certification. A feasible assignment is optimal
// iff (KKT for this convex program):
//   * active servers (lambda'_i > 0) share one marginal cost  g_i = phi;
//   * inactive servers satisfy  g_i(0) >= phi.
// The verifier recomputes the marginals from scratch, so it catches
// optimizer bugs rather than inheriting them.
#pragma once

#include <string>
#include <vector>

#include "core/objective.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

struct KktReport {
  bool feasible = false;        ///< rates >= 0, below bounds, sum to lambda'
  bool stationary = false;      ///< equal marginals on the active set
  bool complementary = false;   ///< inactive servers have g_i(0) >= phi
  double phi_estimate = 0.0;    ///< mean marginal over the active set
  double max_marginal_spread = 0.0;  ///< max |g_i - phi| over active servers
  double constraint_residual = 0.0;  ///< |sum rates - lambda'|
  std::vector<std::size_t> active;   ///< indices with lambda'_i > threshold
  std::string detail;                ///< first violation found, if any

  [[nodiscard]] bool optimal() const noexcept {
    return feasible && stationary && complementary;
  }
};

/// Verifies a distribution against the KKT conditions.
/// @param tolerance  absolute slack allowed on each condition
[[nodiscard]] KktReport verify_kkt(const model::Cluster& cluster, queue::Discipline d,
                                   double lambda_total, const std::vector<double>& rates,
                                   double tolerance = 1e-6);

}  // namespace blade::opt
