#include "core/allocation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"

namespace blade::opt {

namespace {

/// Builds the cluster for an allocation, skipping empty chassis.
model::Cluster build(const AllocationProblem& p, const std::vector<unsigned>& sizes) {
  std::vector<model::BladeServer> servers;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == 0) continue;
    const double special = p.preload_fraction * sizes[i] * p.speeds[i] / p.rbar;
    servers.emplace_back(sizes[i], p.speeds[i], special);
  }
  return model::Cluster(std::move(servers), p.rbar);
}

double generic_capacity(const AllocationProblem& p, const std::vector<unsigned>& sizes) {
  double cap = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    cap += (1.0 - p.preload_fraction) * sizes[i] * p.speeds[i] / p.rbar;
  }
  return cap;
}

/// T'* of an allocation; +inf when infeasible (with a safety margin so
/// greedy never parks the design on the edge of saturation).
double evaluate(const AllocationProblem& p, const std::vector<unsigned>& sizes, int& evals) {
  if (generic_capacity(p, sizes) * 0.999 <= p.lambda_total) {
    return std::numeric_limits<double>::infinity();
  }
  OptimizerOptions opts;
  opts.rate_tolerance = 1e-10;
  opts.phi_tolerance = 1e-10;
  ++evals;
  return LoadDistributionOptimizer(build(p, sizes), p.discipline, opts)
      .optimize(p.lambda_total)
      .response_time;
}

}  // namespace

AllocationResult allocate_blades(const AllocationProblem& problem) {
  const std::size_t n = problem.speeds.size();
  if (n == 0) throw std::invalid_argument("allocate_blades: no chassis");
  for (double s : problem.speeds) {
    if (!(s > 0.0)) throw std::invalid_argument("allocate_blades: speeds must be > 0");
  }
  if (problem.blade_budget == 0) throw std::invalid_argument("allocate_blades: zero budget");
  if (!(problem.rbar > 0.0)) throw std::invalid_argument("allocate_blades: rbar must be > 0");
  if (!(problem.preload_fraction >= 0.0) || problem.preload_fraction >= 1.0) {
    throw std::invalid_argument("allocate_blades: preload fraction must be in [0, 1)");
  }
  if (!(problem.lambda_total > 0.0)) {
    throw std::invalid_argument("allocate_blades: lambda_total must be > 0");
  }
  // Even the best case (every blade on the fastest chassis) must carry the load.
  const double best_speed = *std::max_element(problem.speeds.begin(), problem.speeds.end());
  const double max_cap =
      (1.0 - problem.preload_fraction) * problem.blade_budget * best_speed / problem.rbar;
  if (max_cap * 0.999 <= problem.lambda_total) {
    throw std::invalid_argument("allocate_blades: budget cannot carry lambda_total");
  }

  AllocationResult res;
  std::vector<unsigned> sizes(n, 0);
  unsigned placed = 0;

  // Phase 1: reach feasibility by raw capacity, fastest chassis first.
  {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return problem.speeds[a] > problem.speeds[b]; });
    std::size_t next = 0;
    while (placed < problem.blade_budget &&
           generic_capacity(problem, sizes) <= 1.05 * problem.lambda_total) {
      ++sizes[order[next % n]];
      ++placed;
      ++next;
    }
  }
  if (generic_capacity(problem, sizes) * 0.999 <= problem.lambda_total) {
    throw std::invalid_argument("allocate_blades: budget cannot carry lambda_total");
  }

  // Phase 2: greedy marginal placement of the remaining blades.
  double current = evaluate(problem, sizes, res.evaluations);
  for (; placed < problem.blade_budget; ++placed) {
    std::size_t best = n;
    double best_T = current;
    for (std::size_t i = 0; i < n; ++i) {
      ++sizes[i];
      const double t = evaluate(problem, sizes, res.evaluations);
      --sizes[i];
      if (t < best_T) {
        best_T = t;
        best = i;
      }
    }
    if (best == n) {
      // No single placement helps (can happen deep in the flat region);
      // fall back to the fastest chassis to keep the budget invariant.
      std::size_t fastest = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (problem.speeds[i] > problem.speeds[fastest]) fastest = i;
      }
      best = fastest;
      ++sizes[best];
      current = evaluate(problem, sizes, res.evaluations);
    } else {
      ++sizes[best];
      current = best_T;
    }
  }

  // Phase 3: pairwise-swap local search.
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 16) {
    improved = false;
    ++rounds;
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = 0; to < n; ++to) {
        // Re-check inside the inner loop: an accepted swap may have just
        // emptied this chassis, and a further decrement would wrap the
        // unsigned count.
        if (to == from || sizes[from] == 0) continue;
        --sizes[from];
        ++sizes[to];
        const double t = evaluate(problem, sizes, res.evaluations);
        if (t < current - 1e-12) {
          current = t;
          improved = true;
          res.swap_improved = true;
        } else {
          ++sizes[from];
          --sizes[to];
        }
      }
    }
  }

  res.sizes = std::move(sizes);
  res.response_time = current;
  return res;
}

}  // namespace blade::opt
