// Discrete design extension: given a blade budget and a set of server
// chassis with fixed speeds, how many blades should each chassis get so
// that the *optimally balanced* generic response time is smallest? This
// turns the paper's heterogeneity observations (Figs. 12-13) into a
// design tool.
//
// The search is greedy marginal allocation -- start from the smallest
// feasible configuration, then repeatedly give the next blade to the
// chassis where it lowers the re-optimized T'* the most -- followed by a
// pairwise-swap local search. Each candidate evaluation is a full solve
// of the inner load-distribution problem.
#pragma once

#include <vector>

#include "queueing/blade_queue.hpp"

namespace blade::opt {

struct AllocationProblem {
  std::vector<double> speeds;  ///< one entry per chassis, > 0
  unsigned blade_budget = 0;   ///< total blades to place (>= chassis count)
  double rbar = 1.0;           ///< mean task size
  double preload_fraction = 0.0;  ///< y: special load as a fraction of
                                  ///< each chassis's capacity, in [0, 1)
  queue::Discipline discipline = queue::Discipline::Fcfs;
  double lambda_total = 0.0;   ///< generic rate the design must carry
};

struct AllocationResult {
  std::vector<unsigned> sizes;  ///< blades per chassis (sums to budget)
  double response_time = 0.0;   ///< optimal T'* of the final design
  int evaluations = 0;          ///< inner solves performed
  bool swap_improved = false;   ///< local search found something greedy missed
};

/// Solves the allocation problem. Throws std::invalid_argument when the
/// budget cannot carry lambda_total even with every blade placed on the
/// fastest chassis, or on malformed inputs.
[[nodiscard]] AllocationResult allocate_blades(const AllocationProblem& problem);

}  // namespace blade::opt
