#include "core/sensitivity.hpp"

#include <stdexcept>

#include "core/optimizer.hpp"

namespace blade::opt {

namespace {

double solve(const model::Cluster& cluster, queue::Discipline d, double lambda) {
  OptimizerOptions opts;
  // Central differences divide by small steps; keep the solver tight.
  opts.rate_tolerance = 1e-13;
  opts.phi_tolerance = 1e-13;
  return LoadDistributionOptimizer(cluster, d, opts).optimize(lambda).response_time;
}

model::Cluster with_speed(const model::Cluster& base, std::size_t i, double speed) {
  std::vector<model::BladeServer> servers = base.servers();
  servers[i] = model::BladeServer(servers[i].size(), speed, servers[i].special_rate());
  return model::Cluster(std::move(servers), base.rbar());
}

model::Cluster with_special(const model::Cluster& base, std::size_t i, double rate) {
  std::vector<model::BladeServer> servers = base.servers();
  servers[i] = model::BladeServer(servers[i].size(), servers[i].speed(), rate);
  return model::Cluster(std::move(servers), base.rbar());
}

model::Cluster with_blades(const model::Cluster& base, std::size_t i, unsigned m) {
  std::vector<model::BladeServer> servers = base.servers();
  servers[i] = model::BladeServer(m, servers[i].speed(), servers[i].special_rate());
  return model::Cluster(std::move(servers), base.rbar());
}

}  // namespace

SensitivityReport analyze_sensitivity(const model::Cluster& cluster, queue::Discipline d,
                                      double lambda_total, double rel_step) {
  if (!(rel_step > 0.0)) throw std::invalid_argument("analyze_sensitivity: step must be > 0");
  if (!(lambda_total > 0.0) || lambda_total >= cluster.max_generic_rate()) {
    throw std::invalid_argument("analyze_sensitivity: infeasible lambda'");
  }

  SensitivityReport rep;
  const std::size_t n = cluster.size();
  const double base_T = solve(cluster, d, lambda_total);

  // dT/dlambda'.
  {
    const double h = rel_step * lambda_total;
    const double up = solve(cluster, d, lambda_total + h);
    const double dn = solve(cluster, d, lambda_total - h);
    rep.dT_dlambda = (up - dn) / (2.0 * h);
  }

  // dT/drbar. Note the special rates are absolute, so perturbing rbar
  // changes utilization exactly as the paper's model prescribes.
  {
    const double h = rel_step * cluster.rbar();
    const model::Cluster up(cluster.servers(), cluster.rbar() + h);
    const model::Cluster dn(cluster.servers(), cluster.rbar() - h);
    rep.dT_drbar = (solve(up, d, lambda_total) - solve(dn, d, lambda_total)) / (2.0 * h);
  }

  rep.dT_dspeed.resize(n);
  rep.dT_dspecial.resize(n);
  rep.blade_value.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& srv = cluster.server(i);
    {
      const double h = rel_step * srv.speed();
      const double up = solve(with_speed(cluster, i, srv.speed() + h), d, lambda_total);
      const double dn = solve(with_speed(cluster, i, srv.speed() - h), d, lambda_total);
      rep.dT_dspeed[i] = (up - dn) / (2.0 * h);
    }
    {
      const double h = rel_step * std::max(srv.special_rate(), 1.0);
      const double up = solve(with_special(cluster, i, srv.special_rate() + h), d, lambda_total);
      const double dn_rate = srv.special_rate() - h;
      if (dn_rate >= 0.0) {
        const double dn = solve(with_special(cluster, i, dn_rate), d, lambda_total);
        rep.dT_dspecial[i] = (up - dn) / (2.0 * h);
      } else {
        rep.dT_dspecial[i] = (up - base_T) / h;  // one-sided at the boundary
      }
    }
    rep.blade_value[i] = solve(with_blades(cluster, i, srv.size() + 1), d, lambda_total) - base_T;
  }
  return rep;
}

}  // namespace blade::opt
