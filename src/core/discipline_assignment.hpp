// Per-server discipline assignment: the paper analyzes the two
// disciplines (FCFS, non-preemptive priority) as global regimes. A cloud
// operator can choose per server: prioritize special tasks only where
// their SLA needs it, keeping the generic penalty local.
//
// Problem: choose d_1..d_n in {Fcfs, SpecialPriority} and the split to
// minimize the generic T' subject to the rate-weighted mean special-task
// response staying at or below `special_slo`. Servers without special
// load are pinned to FCFS (the discipline is vacuous there). The
// assignment space is enumerated exhaustively (2^k for k servers with
// special load; guarded), with one load-distribution solve per
// assignment.
#pragma once

#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

struct DisciplineAssignment {
  std::vector<queue::Discipline> disciplines;
  LoadDistribution distribution;
  double generic_response = 0.0;  ///< T' of generic tasks
  double special_response = 0.0;  ///< rate-weighted mean special response
  bool feasible = false;          ///< special SLO satisfied
};

struct DisciplineAssignmentResult {
  DisciplineAssignment best;       ///< feasible assignment with min generic T'
  DisciplineAssignment all_fcfs;   ///< baseline: no priority anywhere
  DisciplineAssignment all_priority;  ///< baseline: priority everywhere
  int evaluated = 0;
  bool any_feasible = false;
};

/// Rate-weighted mean special response of an assignment at a given split.
[[nodiscard]] double special_mean_response(const model::Cluster& cluster,
                                           const std::vector<queue::Discipline>& ds,
                                           const std::vector<double>& rates);

/// Solves the assignment problem. Throws when the cluster has more than
/// 16 special-loaded servers (enumeration guard) or lambda is infeasible.
[[nodiscard]] DisciplineAssignmentResult assign_disciplines(const model::Cluster& cluster,
                                                            double lambda_total,
                                                            double special_slo);

}  // namespace blade::opt
