#include "core/discrete_dp.hpp"

#include <limits>
#include <stdexcept>

#include "core/objective.hpp"

namespace blade::opt {

DpResult dp_distribution(const model::Cluster& cluster, queue::Discipline d, double lambda_total,
                         std::size_t units) {
  if (units < 2) throw std::invalid_argument("dp_distribution: need >= 2 units");
  if (!(lambda_total > 0.0) || lambda_total >= cluster.max_generic_rate()) {
    throw std::invalid_argument("dp_distribution: infeasible lambda'");
  }
  const ResponseTimeObjective obj(cluster, d, lambda_total);
  const std::size_t n = obj.size();
  const double delta = lambda_total / static_cast<double>(units);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // cost[i][u] = (u delta) * T'_i(u delta), infinity beyond saturation.
  std::vector<std::vector<double>> cost(n, std::vector<double>(units + 1, kInf));
  for (std::size_t i = 0; i < n; ++i) {
    const double bound = 0.999999 * obj.rate_bound(i);
    for (std::size_t u = 0; u <= units; ++u) {
      const double lam = static_cast<double>(u) * delta;
      if (lam >= bound) break;
      cost[i][u] = lam * obj.queue(i).generic_response_time(lam);
    }
  }

  // f[j] after considering servers 0..i: min cost of assigning j units.
  std::vector<double> f(units + 1, kInf);
  std::vector<std::vector<std::size_t>> choice(n, std::vector<std::size_t>(units + 1, 0));
  for (std::size_t u = 0; u <= units; ++u) f[u] = cost[0][u];
  for (std::size_t u = 0; u <= units; ++u) choice[0][u] = u;

  std::vector<double> g(units + 1);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j <= units; ++j) {
      double best = kInf;
      std::size_t best_u = 0;
      for (std::size_t u = 0; u <= j; ++u) {
        if (cost[i][u] == kInf) break;  // larger u only gets worse
        const double prev = f[j - u];
        if (prev == kInf) continue;
        const double val = prev + cost[i][u];
        if (val < best) {
          best = val;
          best_u = u;
        }
      }
      g[j] = best;
      choice[i][j] = best_u;
    }
    f.swap(g);
  }
  if (f[units] == kInf) {
    throw std::invalid_argument("dp_distribution: no feasible discrete assignment");
  }

  DpResult res;
  res.units = units;
  res.rates.assign(n, 0.0);
  std::size_t remaining = units;
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t u = choice[i][remaining];
    res.rates[i] = static_cast<double>(u) * delta;
    remaining -= u;
  }
  res.response_time = obj.value(res.rates);
  return res;
}

}  // namespace blade::opt
