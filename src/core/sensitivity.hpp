// Sensitivity of the *optimized* response time T'* to the problem
// parameters. The paper's rule-of-thumb ("to reduce T', increase m_i or
// s_i, or reduce rbar or lambda''_i") is qualitative; this module makes
// it quantitative: which knob buys the most per unit on a given cluster?
//
// Continuous parameters (speeds, special rates, rbar, lambda') are
// differentiated by central differences of the re-optimized T'*; blade
// counts are integral, so the report carries the exact one-blade deltas
// T'*(m_i + 1) - T'*(m_i) instead.
#pragma once

#include <vector>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

struct SensitivityReport {
  /// dT'*/dlambda': marginal cost of accepting more generic load. By the
  /// envelope theorem this equals phi - T'*/lambda' at the optimum (the
  /// multiplier phi prices the *unnormalized* weighted sum; the objective
  /// also carries an explicit 1/lambda'). Checked in tests.
  double dT_dlambda = 0.0;
  /// dT'*/drbar: effect of growing every task.
  double dT_drbar = 0.0;
  /// Per-server dT'*/ds_i (negative: faster blades help).
  std::vector<double> dT_dspeed;
  /// Per-server dT'*/dlambda''_i (positive: preload hurts).
  std::vector<double> dT_dspecial;
  /// Per-server exact effect of one extra blade: T'*(m_i+1) - T'*(m_i)
  /// (negative: the blade helps). The preload rate is held fixed, so the
  /// new blade is fully available to generic tasks.
  std::vector<double> blade_value;
};

/// Computes the full report; each entry re-solves the optimization, so
/// the cost is O(servers) solves.
/// @param rel_step  relative step for the central differences
[[nodiscard]] SensitivityReport analyze_sensitivity(const model::Cluster& cluster,
                                                    queue::Discipline d, double lambda_total,
                                                    double rel_step = 1e-5);

}  // namespace blade::opt
