// Certified surrogate of the per-server Lagrange marginal curves
//   G_i(lambda1) = T'_i + lambda1 dT'_i/dlambda1.
//
// The controller's drift check wants G_i at the currently-published
// split on every check (every check_interval arrivals); evaluating the
// exact kernel there costs an O(m) Erlang-B recurrence per server per
// check. This cache fits, once per solve epoch, a C1 piecewise-cubic
// Hermite spline through exact (G, dG) knots — Chebyshev-extrema spaced
// so knots cluster where the curve stiffens toward saturation — and then
// *certifies* the fit: the builder probes every segment against the
// exact batched kernel and publishes
//     bound(segment) = safety_factor * max_probe_error(segment)
// per segment (plus the global max as error_bound()), honored on sweeps
// far denser than the certification grid (test-enforced). The bound is
// segment-local because the fit error grows orders of magnitude toward
// saturation — a global bound would poison every evaluation at moderate
// load where the surrogate is nearly exact. Drift checks evaluate the spline
// and compare against the hysteresis band; only when the certified error
// straddles the band does the check fall through to the exact batched
// kernel (num::erlang_c_derivs_batch), and rates outside the certified
// domain force a re-solve outright. Topology or parameter changes
// invalidate the cache wholesale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "queueing/blade_queue.hpp"

namespace blade::opt {

/// One server's certified marginal-curve surrogate.
class MarginalSurrogate {
 public:
  struct Options {
    /// Spline segments over [0, hi]; knots are Chebyshev-extrema spaced.
    std::size_t segments = 48;
    /// Exact-kernel probes per segment used to certify the bound.
    std::size_t certify_samples = 8;
    /// Published bound = safety_factor * max certification error.
    double safety_factor = 2.0;
    /// Domain cap: hi = (1 - domain_margin) * max_generic_rate, keeping
    /// the last knot clear of the rho -> 1 blowup (the exact kernel
    /// throws past saturation anyway).
    double domain_margin = 2e-2;
  };

  /// Builds and certifies the surrogate for `q` (two batched kernel
  /// sweeps: knots with derivatives, then certification probes).
  MarginalSurrogate(const queue::BladeQueue& q, const Options& opt);
  explicit MarginalSurrogate(const queue::BladeQueue& q) : MarginalSurrogate(q, Options{}) {}

  [[nodiscard]] double lo() const noexcept { return x_.front(); }
  [[nodiscard]] double hi() const noexcept { return x_.back(); }
  [[nodiscard]] bool in_domain(double lambda1) const noexcept {
    return lambda1 >= lo() && lambda1 <= hi();
  }

  /// Certified bound on |eval(x) - G(x)| for every x in [lo, hi] (the
  /// max of the per-segment bounds; evaluations report the local one).
  [[nodiscard]] double error_bound() const noexcept { return bound_; }

  /// Spline evaluation; precondition in_domain(lambda1) (throws
  /// std::domain_error otherwise).
  [[nodiscard]] double eval(double lambda1) const;

  struct Value {
    double g = 0.0;      ///< spline value
    double bound = 0.0;  ///< certified error bound of the segment used
  };

  /// eval() plus the certified bound of the containing segment — the
  /// tight, local error the drift check compares its band against.
  [[nodiscard]] Value eval_with_bound(double lambda1) const;

 private:
  [[nodiscard]] std::size_t segment_of(double lambda1) const;

  std::vector<double> x_;   ///< knots (ascending)
  std::vector<double> g_;   ///< exact G at knots
  std::vector<double> dg_;  ///< exact dG at knots
  std::vector<double> seg_bound_;  ///< certified error per segment
  double bound_ = 0.0;             ///< max over seg_bound_
};

/// Per-cluster cache of MarginalSurrogates keyed to one solve epoch.
/// configure() pins the queue set (surviving topology + special
/// preloads); surrogates build lazily per server on first eval, so only
/// servers the drift check actually touches pay the build. invalidate()
/// drops everything (topology/parameter change, new solve).
class MarginalCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;           ///< spline evals served
    std::uint64_t builds = 0;         ///< per-server surrogate builds
    std::uint64_t invalidations = 0;  ///< whole-cache drops
    std::uint64_t out_of_domain = 0;  ///< evals past the certified domain
  };

  explicit MarginalCache(MarginalSurrogate::Options opt = {}) : opt_(opt) {}

  /// Pins the queue set for this epoch; drops any previous surrogates.
  void configure(std::vector<queue::BladeQueue> queues);

  /// Drops surrogates and the queue set; eval() refuses until the next
  /// configure(). No-op (not counted) when already invalid.
  void invalidate() noexcept;

  [[nodiscard]] bool valid() const noexcept { return configured_; }
  [[nodiscard]] std::size_t size() const noexcept { return queues_.size(); }

  struct Eval {
    double g = 0.0;      ///< surrogate marginal value
    double bound = 0.0;  ///< certified |g - exact| bound
  };

  /// Surrogate G_j(lambda1) with its certified bound; std::nullopt when
  /// the cache is unconfigured or lambda1 leaves the certified domain
  /// (callers must fall back to the exact kernel or force a re-solve).
  [[nodiscard]] std::optional<Eval> eval(std::size_t j, double lambda1);

  /// Exact marginals for the pinned queues at the given rates through
  /// the batched kernel — the fallthrough path when the certified error
  /// straddles the decision band. Requires valid().
  void exact(std::span<const double> lambda1s, std::span<double> g) const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  MarginalSurrogate::Options opt_;
  bool configured_ = false;
  std::vector<queue::BladeQueue> queues_;
  std::vector<std::optional<MarginalSurrogate>> surrogates_;
  Stats stats_;
};

}  // namespace blade::opt
