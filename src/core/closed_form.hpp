// Closed-form solutions for the single-blade case m_1 = ... = m_n = 1
// (Theorems 1 and 3). The raw theorem formulas assume every server
// receives positive load; the robust variants here add an active-set
// treatment (clamping lambda'_i at zero inside a monotone solve for phi),
// so they stay correct for small lambda' where slow servers should idle.
#pragma once

#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

/// Theorem 1 (no priority), raw formulas: phi then lambda'_i. Requires all
/// servers single-blade. May return negative rates when lambda' is small
/// enough that the all-active assumption fails; callers that cannot
/// guarantee the regime should use closed_form_distribution instead.
[[nodiscard]] std::vector<double> theorem1_rates(const model::Cluster& cluster,
                                                 double lambda_total);

/// Theorem 1's Lagrange multiplier phi.
[[nodiscard]] double theorem1_phi(const model::Cluster& cluster, double lambda_total);

/// Theorem 3 (priority): per-server rate at a given multiplier phi
/// (clamped at 0). Exposed for tests of the phi equation.
[[nodiscard]] double theorem3_rate(const model::BladeServer& server, double rbar,
                                   double lambda_total, double phi);

/// Robust closed-form solver for single-blade clusters under either
/// discipline. Solves the scalar monotone equation
///   sum_i max(0, lambda'_i(phi)) = lambda'
/// by bracket + bisection on phi, with lambda'_i(phi) from Theorem 1 or 3.
/// Matches LoadDistributionOptimizer to solver tolerance, at a fraction of
/// the cost (no nested bisection).
[[nodiscard]] LoadDistribution closed_form_distribution(const model::Cluster& cluster,
                                                        queue::Discipline d, double lambda_total);

}  // namespace blade::opt
