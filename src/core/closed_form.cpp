#include "core/closed_form.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/roots.hpp"
#include "numerics/special.hpp"

namespace blade::opt {

namespace {

void require_single_blade(const model::Cluster& cluster) {
  if (!cluster.all_single_blade()) {
    throw std::invalid_argument("closed form: all servers must have exactly one blade");
  }
}

void require_feasible(const model::Cluster& cluster, double lambda_total) {
  if (!(lambda_total > 0.0)) throw std::invalid_argument("closed form: lambda' must be > 0");
  if (lambda_total >= cluster.max_generic_rate()) {
    throw std::invalid_argument("closed form: lambda' >= lambda'_max (infeasible)");
  }
}

/// Theorem 1 per-server rate at multiplier phi (no clamping).
double theorem1_rate_raw(const model::BladeServer& server, double rbar, double lambda_total,
                         double phi) {
  const double xbar = server.mean_service_time(rbar);
  const double rho2 = server.special_utilization(rbar);
  return (1.0 - rho2 - std::sqrt(xbar * (1.0 - rho2) / (lambda_total * phi))) / xbar;
}

}  // namespace

double theorem1_phi(const model::Cluster& cluster, double lambda_total) {
  require_single_blade(cluster);
  require_feasible(cluster, lambda_total);
  num::KahanSum num_sum;   // sum sqrt((1-rho''_i)/xbar_i)
  num::KahanSum den_sum;   // sum (1-rho''_i)/xbar_i
  for (const auto& s : cluster.servers()) {
    const double xbar = s.mean_service_time(cluster.rbar());
    const double rho2 = s.special_utilization(cluster.rbar());
    num_sum.add(std::sqrt((1.0 - rho2) / xbar));
    den_sum.add((1.0 - rho2) / xbar);
  }
  const double num_v = num_sum.value() / std::sqrt(lambda_total);
  const double den_v = den_sum.value() - lambda_total;
  const double root = num_v / den_v;
  return root * root;
}

std::vector<double> theorem1_rates(const model::Cluster& cluster, double lambda_total) {
  const double phi = theorem1_phi(cluster, lambda_total);
  std::vector<double> rates;
  rates.reserve(cluster.size());
  for (const auto& s : cluster.servers()) {
    rates.push_back(theorem1_rate_raw(s, cluster.rbar(), lambda_total, phi));
  }
  return rates;
}

double theorem3_rate(const model::BladeServer& server, double rbar, double lambda_total,
                     double phi) {
  const double xbar = server.mean_service_time(rbar);
  const double rho2 = server.special_utilization(rbar);
  const double inner = lambda_total * phi / xbar + rho2 / (1.0 - rho2);
  const double rate = (1.0 - rho2 - std::sqrt(1.0 / inner)) / xbar;
  return rate > 0.0 ? rate : 0.0;
}

LoadDistribution closed_form_distribution(const model::Cluster& cluster, queue::Discipline d,
                                          double lambda_total) {
  require_single_blade(cluster);
  require_feasible(cluster, lambda_total);
  const double rbar = cluster.rbar();

  auto rate_at_phi = [&](const model::BladeServer& s, double phi) {
    if (d == queue::Discipline::SpecialPriority) {
      return theorem3_rate(s, rbar, lambda_total, phi);
    }
    const double raw = theorem1_rate_raw(s, rbar, lambda_total, phi);
    return raw > 0.0 ? raw : 0.0;
  };
  auto total_at_phi = [&](double phi) {
    num::KahanSum acc;
    for (const auto& s : cluster.servers()) acc.add(rate_at_phi(s, phi));
    return acc.value();
  };

  // total_at_phi is increasing in phi (each clamped theorem rate is), and
  // tends to lambda'_max as phi -> infinity; bracket and bisect.
  const num::RootOptions opts{.tolerance = 1e-14, .max_iterations = 400, .max_expansions = 400};
  const auto root =
      num::solve_increasing(total_at_phi, lambda_total, /*lower=*/0.0,
                            /*sup=*/std::nullopt, /*initial_ub=*/1e-6, opts);
  const double phi = root.x;

  LoadDistribution out;
  out.phi = phi;
  out.outer_iterations = root.iterations;
  out.rates.reserve(cluster.size());
  for (const auto& s : cluster.servers()) out.rates.push_back(rate_at_phi(s, phi));

  // Rescale the residual bisection error onto the constraint.
  num::KahanSum assigned;
  for (double r : out.rates) assigned.add(r);
  if (assigned.value() > 0.0) {
    const double scale = lambda_total / assigned.value();
    for (double& r : out.rates) r *= scale;
  }

  const ResponseTimeObjective obj(cluster, d, lambda_total);
  out.utilizations = obj.utilizations(out.rates);
  out.response_times.resize(out.rates.size());
  for (std::size_t i = 0; i < out.rates.size(); ++i) {
    out.response_times[i] = obj.queue(i).generic_response_time(out.rates[i]);
  }
  out.response_time = obj.value(out.rates);
  return out;
}

}  // namespace blade::opt
