#include "core/batch.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "parallel/sweep.hpp"

namespace blade::opt {

void BatchOptions::validate() const {
  if (chunk == 0) throw std::invalid_argument("BatchOptions: chunk must be >= 1");
}

std::vector<LoadDistribution> optimize_many(const LoadDistributionOptimizer& solver,
                                            std::span<const double> lambdas,
                                            par::ThreadPool& pool, const BatchOptions& opts) {
  opts.validate();
  BLADE_OBS_TIMER("optimizer.batch_seconds");
  BLADE_OBS_COUNT_N("optimizer.batch_solves", static_cast<long>(lambdas.size()));
  std::vector<LoadDistribution> out(lambdas.size());
  par::for_each_chunk(pool, lambdas.size(), opts.chunk, [&](std::size_t lo, std::size_t hi) {
    SolverWorkspace ws;  // per-chunk, so results never depend on thread count
    for (std::size_t i = lo; i < hi; ++i) out[i] = solver.optimize(lambdas[i], ws);
  });
  return out;
}

std::vector<LoadDistribution> optimize_many(const LoadDistributionOptimizer& solver,
                                            std::span<const double> lambdas,
                                            const BatchOptions& opts) {
  return optimize_many(solver, lambdas, par::global_pool(), opts);
}

std::vector<LoadDistribution> optimize_many(std::span<const SolveRequest> requests,
                                            par::ThreadPool& pool, const BatchOptions& opts) {
  opts.validate();
  for (const SolveRequest& r : requests) {
    if (r.solver == nullptr) {
      throw std::invalid_argument("optimize_many: SolveRequest::solver must not be null");
    }
  }
  BLADE_OBS_TIMER("optimizer.batch_seconds");
  BLADE_OBS_COUNT_N("optimizer.batch_solves", static_cast<long>(requests.size()));
  std::vector<LoadDistribution> out(requests.size());
  par::for_each_chunk(pool, requests.size(), opts.chunk, [&](std::size_t lo, std::size_t hi) {
    SolverWorkspace ws;
    const LoadDistributionOptimizer* current = nullptr;
    for (std::size_t i = lo; i < hi; ++i) {
      const SolveRequest& r = requests[i];
      if (r.solver != current) {
        // The cached brackets and phi seed describe the previous
        // problem; they are only valid warm starts for the same solver.
        ws.clear();
        current = r.solver;
      }
      out[i] = current->optimize(r.lambda_total, ws);
    }
  });
  return out;
}

std::vector<LoadDistribution> optimize_chain(const LoadDistributionOptimizer& solver,
                                             std::span<const double> lambdas) {
  std::vector<LoadDistribution> out;
  out.reserve(lambdas.size());
  SolverWorkspace ws;
  for (double lambda : lambdas) out.push_back(solver.optimize(lambda, ws));
  return out;
}

}  // namespace blade::opt
