#include "core/batch.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "parallel/sweep.hpp"

namespace blade::opt {

void BatchOptions::validate() const {
  if (chunk == 0) throw std::invalid_argument("BatchOptions: chunk must be >= 1");
}

namespace {

/// Placeholder every checked slot starts from; any slot still holding it
/// after the pool drains would be a sharding bug.
SolveOutcome unset_outcome() {
  return Error{ErrorCode::Internal, "optimize_many: item never executed"};
}

/// Unwraps a checked batch for the throwing API: all values, or one
/// exception for the lowest failing index that also reports how many
/// items failed in total.
std::vector<LoadDistribution> unwrap(std::vector<SolveOutcome>&& results) {
  std::size_t failed = 0;
  std::size_t first = results.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i]) {
      ++failed;
      if (first == results.size()) first = i;
    }
  }
  if (failed > 0) {
    const Error& e = results[first].error();
    std::ostringstream os;
    os << "optimize_many: " << failed << " of " << results.size()
       << " solves failed; item " << first << ": " << e.context;
    throw_solver_error(Error{e.code, os.str()});
  }
  std::vector<LoadDistribution> out;
  out.reserve(results.size());
  for (auto& r : results) out.push_back(std::move(r).value());
  return out;
}

/// Chunked dispatch honoring the optional cost hints; hint-free batches
/// take the fixed-size path unchanged.
void run_chunked(par::ThreadPool& pool, std::size_t n, const BatchOptions& opts,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (!opts.cost_hints.empty() && opts.cost_hints.size() != n) {
    throw std::invalid_argument("BatchOptions: cost_hints must be empty or match the batch size");
  }
  par::for_each_weighted_chunk(pool, n, opts.chunk, opts.cost_hints, body);
}

}  // namespace

std::vector<SolveOutcome> optimize_many_checked(const LoadDistributionOptimizer& solver,
                                                std::span<const double> lambdas,
                                                par::ThreadPool& pool, const BatchOptions& opts) {
  opts.validate();
  BLADE_OBS_TIMER("optimizer.batch_seconds");
  BLADE_OBS_COUNT_N("optimizer.batch_solves", static_cast<long>(lambdas.size()));
  std::vector<SolveOutcome> out(lambdas.size(), unset_outcome());
  run_chunked(pool, lambdas.size(), opts, [&](std::size_t lo, std::size_t hi) {
    SolverWorkspace ws;  // per-chunk, so results never depend on thread count
    for (std::size_t i = lo; i < hi; ++i) out[i] = solver.try_optimize(lambdas[i], ws);
  });
  return out;
}

std::vector<SolveOutcome> optimize_many_checked(const LoadDistributionOptimizer& solver,
                                                std::span<const double> lambdas,
                                                const BatchOptions& opts) {
  return optimize_many_checked(solver, lambdas, par::global_pool(), opts);
}

std::vector<SolveOutcome> optimize_many_checked(std::span<const SolveRequest> requests,
                                                par::ThreadPool& pool, const BatchOptions& opts) {
  opts.validate();
  for (const SolveRequest& r : requests) {
    if (r.solver == nullptr) {
      throw std::invalid_argument("optimize_many: SolveRequest::solver must not be null");
    }
  }
  BLADE_OBS_TIMER("optimizer.batch_seconds");
  BLADE_OBS_COUNT_N("optimizer.batch_solves", static_cast<long>(requests.size()));
  std::vector<SolveOutcome> out(requests.size(), unset_outcome());
  run_chunked(pool, requests.size(), opts, [&](std::size_t lo, std::size_t hi) {
    SolverWorkspace ws;
    const LoadDistributionOptimizer* current = nullptr;
    for (std::size_t i = lo; i < hi; ++i) {
      const SolveRequest& r = requests[i];
      if (r.solver != current) {
        // The cached brackets and phi seed describe the previous
        // problem; they are only valid warm starts for the same solver.
        ws.clear();
        current = r.solver;
      }
      out[i] = current->try_optimize(r.lambda_total, ws);
    }
  });
  return out;
}

std::vector<LoadDistribution> optimize_many(const LoadDistributionOptimizer& solver,
                                            std::span<const double> lambdas,
                                            par::ThreadPool& pool, const BatchOptions& opts) {
  return unwrap(optimize_many_checked(solver, lambdas, pool, opts));
}

std::vector<LoadDistribution> optimize_many(const LoadDistributionOptimizer& solver,
                                            std::span<const double> lambdas,
                                            const BatchOptions& opts) {
  return optimize_many(solver, lambdas, par::global_pool(), opts);
}

std::vector<LoadDistribution> optimize_many(std::span<const SolveRequest> requests,
                                            par::ThreadPool& pool, const BatchOptions& opts) {
  return unwrap(optimize_many_checked(requests, pool, opts));
}

std::vector<LoadDistribution> optimize_chain(const LoadDistributionOptimizer& solver,
                                             std::span<const double> lambdas) {
  std::vector<LoadDistribution> out;
  out.reserve(lambdas.size());
  SolverWorkspace ws;
  for (double lambda : lambdas) out.push_back(solver.optimize(lambda, ws));
  return out;
}

}  // namespace blade::opt
