#include "core/kkt.hpp"

#include <cmath>
#include <sstream>

#include "numerics/special.hpp"

namespace blade::opt {

KktReport verify_kkt(const model::Cluster& cluster, queue::Discipline d, double lambda_total,
                     const std::vector<double>& rates, double tolerance) {
  KktReport rep;
  const ResponseTimeObjective obj(cluster, d, lambda_total);
  if (rates.size() != obj.size()) {
    rep.detail = "rate vector size mismatch";
    return rep;
  }

  // Feasibility.
  num::KahanSum total;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] < -tolerance) {
      rep.detail = "negative rate at server " + std::to_string(i);
      return rep;
    }
    if (rates[i] >= obj.rate_bound(i)) {
      rep.detail = "rate at/above saturation for server " + std::to_string(i);
      return rep;
    }
    total.add(rates[i]);
  }
  rep.constraint_residual = std::abs(total.value() - lambda_total);
  if (rep.constraint_residual > tolerance * std::max(1.0, lambda_total)) {
    rep.detail = "rates do not sum to lambda'";
    return rep;
  }
  rep.feasible = true;

  // Active-set marginals. A rate is "active" when it is meaningfully
  // positive relative to the workload.
  const double active_threshold = tolerance * std::max(1.0, lambda_total);
  num::KahanSum marg_sum;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] > active_threshold) {
      rep.active.push_back(i);
      marg_sum.add(obj.marginal(i, rates[i]));
    }
  }
  if (rep.active.empty()) {
    rep.detail = "no active servers";
    return rep;
  }
  rep.phi_estimate = marg_sum.value() / static_cast<double>(rep.active.size());

  rep.stationary = true;
  for (std::size_t i : rep.active) {
    const double spread = std::abs(obj.marginal(i, rates[i]) - rep.phi_estimate);
    rep.max_marginal_spread = std::max(rep.max_marginal_spread, spread);
    if (spread > tolerance * std::max(1.0, rep.phi_estimate)) {
      rep.stationary = false;
      std::ostringstream os;
      os << "marginal spread " << spread << " at server " << i;
      rep.detail = os.str();
    }
  }

  rep.complementary = true;
  const double phi_slack = tolerance * std::max(1.0, rep.phi_estimate);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] > active_threshold) continue;
    const double g0 = obj.marginal(i, 0.0);
    if (g0 >= rep.phi_estimate - phi_slack) continue;  // properly inactive
    // Sub-threshold but positive rate: the threshold scales with
    // tolerance * lambda', so a slow server can carry a genuinely small
    // optimal load and still land here. Such a server satisfies KKT as
    // an *active* one -- its marginal at the actual rate must sit on the
    // shared phi.
    if (rates[i] > 0.0 &&
        std::abs(obj.marginal(i, rates[i]) - rep.phi_estimate) <= phi_slack) {
      continue;
    }
    rep.complementary = false;
    std::ostringstream os;
    os << "inactive server " << i << " has g(0) = " << g0 << " < phi = " << rep.phi_estimate;
    rep.detail = os.str();
  }
  return rep;
}

}  // namespace blade::opt
