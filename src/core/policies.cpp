#include "core/policies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/objective.hpp"
#include "numerics/roots.hpp"
#include "numerics/special.hpp"

namespace blade::opt {

namespace {

// Baselines never load a server beyond this fraction of its generic-rate
// saturation point. A blind heuristic that parked a server at rho = 1-1e-9
// would see astronomically large (though finite) response times; real
// admission control leaves headroom, and 98% keeps the comparison fair
// without changing who wins.
constexpr double kMargin = 0.02;

/// Assigns `target` proportionally to weights, capping at ub and
/// redistributing the overflow among uncapped servers.
std::vector<double> proportional_capped(const std::vector<double>& weights,
                                        const std::vector<double>& ub, double target) {
  const std::size_t n = weights.size();
  std::vector<double> out(n, 0.0);
  std::vector<bool> capped(n, false);
  double remaining = target;
  for (std::size_t round = 0; round < n; ++round) {
    double wsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!capped[i]) wsum += weights[i];
    }
    if (wsum <= 0.0) break;
    bool newly_capped = false;
    double overflow = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (capped[i]) continue;
      const double want = out[i] + remaining * weights[i] / wsum;
      if (want > ub[i]) {
        overflow += want - ub[i];
        out[i] = ub[i];
        capped[i] = true;
        newly_capped = true;
      } else {
        out[i] = want;
      }
    }
    remaining = overflow;
    if (!newly_capped) {
      remaining = 0.0;
      break;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, target)) {
    throw std::invalid_argument("policy: demand exceeds total capacity");
  }
  return out;
}

std::vector<double> bounds(const ResponseTimeObjective& obj) {
  std::vector<double> ub(obj.size());
  for (std::size_t i = 0; i < obj.size(); ++i) ub[i] = (1.0 - kMargin) * obj.rate_bound(i);
  return ub;
}

std::vector<double> utilization_balancing(const model::Cluster& cluster, double lambda_total) {
  // Find the common utilization level rho such that
  //   sum_i max(0, rho m_i / xbar_i - lambda''_i) = lambda'.
  auto assigned = [&](double rho) {
    num::KahanSum s;
    for (const auto& srv : cluster.servers()) {
      const double cap = srv.capacity(cluster.rbar());
      s.add(std::max(0.0, rho * cap - srv.special_rate()));
    }
    return s.value();
  };
  const num::RootOptions opts{.tolerance = 1e-14, .max_iterations = 200, .max_expansions = 60};
  const auto root = num::solve_increasing(assigned, lambda_total, 0.0, /*sup=*/1.0,
                                          /*initial_ub=*/0.5, opts);
  std::vector<double> out;
  out.reserve(cluster.size());
  for (const auto& srv : cluster.servers()) {
    const double cap = srv.capacity(cluster.rbar());
    out.push_back(std::max(0.0, root.x * cap - srv.special_rate()));
  }
  // Normalize the bisection residual.
  num::KahanSum s;
  for (double r : out) s.add(r);
  if (s.value() > 0.0) {
    const double scale = lambda_total / s.value();
    for (double& r : out) r *= scale;
  }
  return out;
}

std::vector<double> greedy_incremental(const ResponseTimeObjective& obj, double lambda_total) {
  // Route lambda' in small equal increments, each to the server whose
  // marginal cost at its current load is lowest (a discretized version of
  // the optimality condition).
  constexpr int kSteps = 4000;
  const auto ub = bounds(obj);
  const double delta = lambda_total / kSteps;
  std::vector<double> out(obj.size(), 0.0);
  for (int step = 0; step < kSteps; ++step) {
    std::size_t best = obj.size();
    double best_marginal = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (out[i] + delta > ub[i]) continue;
      const double g = obj.marginal(i, out[i]);
      if (g < best_marginal) {
        best_marginal = g;
        best = i;
      }
    }
    if (best == obj.size()) {
      throw std::invalid_argument("policy: greedy ran out of capacity");
    }
    out[best] += delta;
  }
  return out;
}

}  // namespace

const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::ProportionalToCapacity: return "proportional-capacity";
    case Policy::ProportionalToFreeCapacity: return "proportional-free-capacity";
    case Policy::EqualSplit: return "equal-split";
    case Policy::UtilizationBalancing: return "utilization-balancing";
    case Policy::GreedyIncremental: return "greedy-incremental";
  }
  return "unknown";
}

std::vector<Policy> all_policies() {
  return {Policy::ProportionalToCapacity, Policy::ProportionalToFreeCapacity, Policy::EqualSplit,
          Policy::UtilizationBalancing, Policy::GreedyIncremental};
}

std::vector<double> distribute(Policy p, const model::Cluster& cluster, queue::Discipline d,
                               double lambda_total) {
  const ResponseTimeObjective obj(cluster, d, lambda_total);
  const auto ub = bounds(obj);
  switch (p) {
    case Policy::ProportionalToCapacity: {
      std::vector<double> w;
      w.reserve(cluster.size());
      for (const auto& s : cluster.servers()) {
        w.push_back(static_cast<double>(s.size()) * s.speed());
      }
      return proportional_capped(w, ub, lambda_total);
    }
    case Policy::ProportionalToFreeCapacity: {
      std::vector<double> w;
      w.reserve(cluster.size());
      for (const auto& s : cluster.servers()) w.push_back(s.max_generic_rate(cluster.rbar()));
      return proportional_capped(w, ub, lambda_total);
    }
    case Policy::EqualSplit: {
      const std::vector<double> w(cluster.size(), 1.0);
      return proportional_capped(w, ub, lambda_total);
    }
    case Policy::UtilizationBalancing:
      return utilization_balancing(cluster, lambda_total);
    case Policy::GreedyIncremental:
      return greedy_incremental(obj, lambda_total);
  }
  throw std::logic_error("distribute: unknown policy");
}

double policy_response_time(Policy p, const model::Cluster& cluster, queue::Discipline d,
                            double lambda_total) {
  const ResponseTimeObjective obj(cluster, d, lambda_total);
  const auto rates = distribute(p, cluster, d, lambda_total);
  return obj.value(rates);
}

}  // namespace blade::opt
