// The paper's solver: Algorithm Find_lambda'_i (Fig. 2) nested inside
// Algorithm Calculate T' (Fig. 3). Both levels are bracket-then-bisect on
// monotone functions:
//
//   inner:  g_i(lambda'_i) = (1/lambda')(T'_i + lambda'_i dT'_i/dlambda'_i)
//           is strictly increasing (T' is convex in lambda'_i); given the
//           multiplier phi, solve g_i = phi on [0, m_i/xbar_i - lambda''_i).
//           If g_i(0) >= phi the server receives no generic load.
//
//   outer:  F(phi) = sum_i lambda'_i(phi) is increasing in phi; solve
//           F(phi) = lambda'.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/objective.hpp"
#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"
#include "util/status.hpp"

namespace blade::opt {

struct OptimizerOptions {
  double rate_tolerance = 1e-12;  ///< bisection width for each lambda'_i
  double phi_tolerance = 1e-12;   ///< bisection width for phi
  int max_iterations = 300;       ///< per bisection
  /// Fraction of the saturation point where the per-server bracket is
  /// clamped, mirroring the paper's (1 - epsilon) guard on line (7).
  double saturation_margin = 1e-9;
  /// Task-size squared coefficient of variation; 1 is the paper's exact
  /// exponential model, other values engage the Allen–Cunneen M/G/m
  /// approximation (used by the sensitivity ablation).
  double service_scv = 1.0;
  /// Opt-in diagnostics: at >= 1 every optimize() call emits a one-line
  /// convergence summary (LoadDistribution::summary()) so solver behavior
  /// is visible without a debugger. 0 (default) stays silent.
  int verbosity = 0;
  /// Where verbose diagnostics go; std::clog when unset. Also receives
  /// nothing on failure — failures carry their diagnostics inside the
  /// thrown exception message instead.
  std::function<void(const std::string&)> diagnostic_sink;

  // --- watchdogs (resilience layer) ---

  /// Per-solve budget of marginal-cost evaluations across ALL inner
  /// solves; exceeding it fails the solve with ErrorCode::BudgetExceeded
  /// instead of burning unbounded CPU on a pathological instance.
  /// 0 (default) = unlimited.
  long max_marginal_evaluations = 0;
  /// Per-solve wall-clock budget in seconds, checked every few marginal
  /// evaluations (ErrorCode::BudgetExceeded when tripped). 0 (default)
  /// = unlimited, and the solver never reads the clock.
  double max_solve_seconds = 0.0;
  /// When true, a solve whose phi bracket (outer) or rate bracket
  /// (inner) is still wider than its tolerance after max_iterations
  /// fails with ErrorCode::NonConvergence. When false (default, the
  /// paper's behavior) the solver returns the bracket midpoint as a
  /// best-effort answer.
  bool strict_convergence = false;

  /// Throws std::invalid_argument when any field is out of domain:
  /// tolerances must be > 0, max_iterations >= 1, saturation_margin in
  /// (0, 1), service_scv >= 0, max_marginal_evaluations >= 0,
  /// max_solve_seconds finite and >= 0. NaNs are rejected by the same
  /// checks.
  void validate() const;
};

/// Solution of the load-distribution problem.
struct LoadDistribution {
  std::vector<double> rates;         ///< lambda'_i
  std::vector<double> utilizations;  ///< rho_i at the optimum
  std::vector<double> response_times;  ///< per-server T'_i at the optimum
  double response_time = 0.0;        ///< minimized T'
  double phi = 0.0;                  ///< Lagrange multiplier (paper's phi)
  int outer_iterations = 0;          ///< phi bisection steps
  long inner_evaluations = 0;        ///< total marginal-cost evaluations

  [[nodiscard]] double total_rate() const;

  /// Servers with strictly positive generic load.
  [[nodiscard]] std::size_t active_servers() const noexcept;

  /// One-line convergence summary (iterations, final phi, active-server
  /// count, objective) — what OptimizerOptions::verbosity >= 1 emits.
  [[nodiscard]] std::string summary() const;
};

namespace detail {

/// The outer search's monotone bracket on the Lagrange multiplier:
/// F(phi_lo) < lambda' <= F(phi_hi), plus the totals at both ends.
/// Shared state shape of the flat SolverWorkspace and the sharded
/// solver's workspace; core/solver_core.hpp holds the search that
/// drives it.
struct PhiBracket {
  double phi_lo = 0.0;
  double phi_hi = -1.0;  ///< < 0: no covering phi found yet
  double total_lo = 0.0;  ///< F(phi_lo)
  double total_hi = 0.0;  ///< F(phi_hi)
};

}  // namespace detail

/// Mutable per-solve scratch reused across outer iterations — and, when
/// the caller keeps one alive, across successive solves (optimize_many,
/// sweeps). It caches the solver's monotone state:
///
///   * the current outer bracket [phi_lo, phi_hi] with F(phi_lo) < lambda'
///     <= F(phi_hi), and the full rate vector at BOTH ends — because each
///     F_i(phi) is increasing, [rate_lo_i, rate_hi_i] brackets server i's
///     rate for ANY phi inside the outer bracket, so inner searches
///     warm-start from there instead of from [0, sup);
///   * the converged phi of the previous solve on this workspace, used to
///     seed the next solve's bracketing expansion (cross-solve warm start
///     for sweeps over nearby lambda' values).
///
/// A workspace is NOT thread-safe: use one per thread (optimize_many
/// hands one to each pool task). A default-constructed workspace is
/// valid for any instance size; optimize() resizes it as needed.
class SolverWorkspace {
 public:
  SolverWorkspace() = default;

  /// Drops every cached value, including the cross-solve phi seed.
  void clear();

  /// The converged phi of the last solve on this workspace (< 0 when the
  /// workspace has not completed a solve yet). Exposed for tests.
  [[nodiscard]] double seed_phi() const noexcept { return seed_phi_; }

 private:
  friend class LoadDistributionOptimizer;

  /// Re-arms the per-solve bracket state (keeps the cross-solve seed).
  void prepare(std::size_t n);

  detail::PhiBracket br_;
  std::vector<double> rates_lo_;  ///< rates at phi_lo
  std::vector<double> rates_hi_;  ///< rates at phi_hi
  std::vector<double> scratch_;   ///< rates at the phi being evaluated
  double seed_phi_ = -1.0;
};

class LoadDistributionOptimizer {
 public:
  LoadDistributionOptimizer(model::Cluster cluster, queue::Discipline d,
                            OptimizerOptions opts = {});

  /// Heterogeneous disciplines: ds[i] applies to server i.
  LoadDistributionOptimizer(model::Cluster cluster, std::vector<queue::Discipline> ds,
                            OptimizerOptions opts = {});

  [[nodiscard]] const model::Cluster& cluster() const noexcept { return cluster_; }
  /// The common discipline; for heterogeneous setups, that of server 0.
  [[nodiscard]] queue::Discipline discipline() const noexcept { return discs_.front(); }
  [[nodiscard]] const std::vector<queue::Discipline>& disciplines() const noexcept {
    return discs_;
  }

  /// Solves for a given total generic rate lambda' in (0, lambda'_max).
  /// Throws std::invalid_argument when lambda' is infeasible.
  [[nodiscard]] LoadDistribution optimize(double lambda_total) const;

  /// Same solve, but threading the caller's workspace through so
  /// successive solves warm-start each other (see SolverWorkspace). The
  /// plain optimize() is exactly this with a fresh workspace, so a reused
  /// workspace changes results only below the solver tolerances.
  LoadDistribution optimize(double lambda_total, SolverWorkspace& ws) const;

  /// Non-throwing solve: the solution, or a typed diagnostic
  /// (Infeasible, InvalidArgument, BracketNotFound, NonConvergence,
  /// NonFinite, BudgetExceeded). Solver failures NEVER propagate as
  /// exceptions from this entry point — any exception escaping the
  /// numeric core is converted to ErrorCode::Internal — which is what
  /// lets the runtime controller contain a failed re-solve instead of
  /// unwinding the control thread. The throwing optimize() is a thin
  /// wrapper over the same core. Every failure increments the matching
  /// solver.failures.* / solver.budget_exceeded obs counter.
  [[nodiscard]] Expected<LoadDistribution> try_optimize(double lambda_total) const;
  Expected<LoadDistribution> try_optimize(double lambda_total, SolverWorkspace& ws) const;

  /// The inner algorithm (Fig. 2): lambda'_i achieving marginal cost phi.
  /// Exposed for tests; `evals` (optional) accumulates marginal evaluations.
  [[nodiscard]] double find_rate(const ResponseTimeObjective& obj, std::size_t i, double phi,
                                 long* evals = nullptr) const;

  /// Warm-bracketed inner solve: like find_rate but searching only
  /// [lo, hi] (clamped to the server's domain), where monotonicity of
  /// F_i(phi) guarantees the root lies within the bracket up to the
  /// solver tolerance. Pass hi < 0 when no upper bound is known (falls
  /// back to the doubling expansion of Fig. 2). Exposed for the
  /// warm-start invariant tests.
  [[nodiscard]] double find_rate_bracketed(const ResponseTimeObjective& obj, std::size_t i,
                                           double phi, double lo, double hi,
                                           long* evals = nullptr) const;

  /// Non-throwing counterparts of find_rate / find_rate_bracketed: the
  /// rate, or a typed diagnostic (BracketNotFound, NonConvergence under
  /// strict_convergence, NonFinite, BudgetExceeded). Budgets reset per
  /// call here; inside try_optimize one budget spans the whole solve.
  [[nodiscard]] Expected<double> try_find_rate(const ResponseTimeObjective& obj, std::size_t i,
                                               double phi, long* evals = nullptr) const;
  [[nodiscard]] Expected<double> try_find_rate_bracketed(const ResponseTimeObjective& obj,
                                                         std::size_t i, double phi, double lo,
                                                         double hi, long* evals = nullptr) const;

 private:
  Expected<LoadDistribution> optimize_core(double lambda_total, SolverWorkspace& ws) const;

  model::Cluster cluster_;
  std::vector<queue::Discipline> discs_;  // one per server
  OptimizerOptions opts_;
};

/// Maps a solver Error back onto the throwing API's exception types:
/// InvalidArgument / Infeasible become std::invalid_argument, everything
/// else num::RootFindingError (declared in numerics/roots.hpp). The
/// exception message is the error's context verbatim.
[[noreturn]] void throw_solver_error(const Error& error);

}  // namespace blade::opt
