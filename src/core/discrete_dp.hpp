// Independent exact-by-discretization solver: split lambda' into N equal
// units and minimize sum_i lambda_i T'_i(lambda_i) by dynamic programming
// over servers (classic separable resource allocation). Converges to the
// continuous optimum as N grows, with no reliance on convexity,
// derivatives, or KKT reasoning -- so it cross-checks the paper's
// bisection solver from a completely different direction.
#pragma once

#include <cstddef>
#include <vector>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::opt {

struct DpResult {
  std::vector<double> rates;   ///< lambda'_i on the discrete grid
  double response_time = 0.0;  ///< T' of the discrete assignment
  std::size_t units = 0;       ///< grid resolution used
};

/// Solves with `units` discretization steps (runtime O(n units^2), memory
/// O(n units); units ~ 2000 gives ~1e-3 relative accuracy on T').
[[nodiscard]] DpResult dp_distribution(const model::Cluster& cluster, queue::Discipline d,
                                       double lambda_total, std::size_t units = 2000);

}  // namespace blade::opt
