#include "core/marginal_cache.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/obs.hpp"

namespace blade::opt {

namespace {

/// Chebyshev-extrema abscissae mapped to [0, hi]: x_k = hi sin^2(pi k /
/// (2 N)). Knots cluster at both ends — the interesting ends: lambda1
/// near 0 (where zero-rate servers are probed) and near saturation
/// (where G and its derivatives blow up and equispaced Hermite fits
/// shed accuracy fastest).
std::vector<double> knots(double hi, std::size_t segments) {
  std::vector<double> x(segments + 1);
  for (std::size_t k = 0; k <= segments; ++k) {
    const double s =
        std::sin(std::numbers::pi * static_cast<double>(k) / (2.0 * static_cast<double>(segments)));
    x[k] = hi * s * s;
  }
  x.front() = 0.0;
  x.back() = hi;
  return x;
}

}  // namespace

MarginalSurrogate::MarginalSurrogate(const queue::BladeQueue& q, const Options& opt) {
  if (opt.segments < 2) throw std::invalid_argument("MarginalSurrogate: segments must be >= 2");
  if (opt.certify_samples < 1) {
    throw std::invalid_argument("MarginalSurrogate: certify_samples must be >= 1");
  }
  if (!(opt.safety_factor >= 1.0)) {
    throw std::invalid_argument("MarginalSurrogate: safety_factor must be >= 1");
  }
  if (!(opt.domain_margin > 0.0) || !(opt.domain_margin < 1.0)) {
    throw std::invalid_argument("MarginalSurrogate: domain_margin must be in (0, 1)");
  }
  const double hi = (1.0 - opt.domain_margin) * q.max_generic_rate();
  if (!(hi > 0.0)) throw std::invalid_argument("MarginalSurrogate: empty domain");

  x_ = knots(hi, opt.segments);
  g_.resize(x_.size());
  dg_.resize(x_.size());
  queue::batch_lagrange_marginal_with_derivative(q, x_, g_, dg_);

  // Certification: probe every segment interior against the exact
  // batched kernel; the published bound is the worst probe error times
  // the safety factor (the honesty test sweeps a far denser grid).
  const std::size_t probes_per_seg = opt.certify_samples;
  std::vector<double> px;
  px.reserve(opt.segments * probes_per_seg);
  for (std::size_t seg = 0; seg < opt.segments; ++seg) {
    const double a = x_[seg];
    const double b = x_[seg + 1];
    for (std::size_t s = 1; s <= probes_per_seg; ++s) {
      const double t = static_cast<double>(s) / (static_cast<double>(probes_per_seg) + 1.0);
      px.push_back(a + t * (b - a));
    }
  }
  std::vector<double> exact(px.size());
  queue::batch_lagrange_marginal(q, px, exact);
  // The bound is certified PER SEGMENT: the fit error grows orders of
  // magnitude toward saturation, and a single global bound would let the
  // steep tail poison every evaluation at moderate load (where the
  // surrogate is nearly exact). Floor per segment: even a probe-exact
  // fit publishes a nonzero bound, so |spread - band| <= bound
  // comparisons never work with a zero margin.
  seg_bound_.assign(opt.segments, 0.0);
  for (std::size_t seg = 0; seg < opt.segments; ++seg) {
    double seg_err = 0.0;
    for (std::size_t s = 0; s < probes_per_seg; ++s) {
      const std::size_t i = seg * probes_per_seg + s;
      seg_err = std::max(seg_err, std::abs(eval(px[i]) - exact[i]));
    }
    const double floor = 1e-12 * std::max(std::abs(g_[seg]), std::abs(g_[seg + 1]));
    seg_bound_[seg] = std::max(opt.safety_factor * seg_err, floor);
    bound_ = std::max(bound_, seg_bound_[seg]);
  }
  BLADE_OBS_COUNT("runtime.mcache.surrogate_builds");
  BLADE_OBS_OBSERVE("runtime.mcache.certified_bound", bound_);
}

std::size_t MarginalSurrogate::segment_of(double lambda1) const {
  // Binary search for the containing segment.
  const auto it = std::upper_bound(x_.begin(), x_.end(), lambda1);
  std::size_t seg = static_cast<std::size_t>(it - x_.begin());
  seg = seg == 0 ? 0 : seg - 1;
  if (seg >= x_.size() - 1) seg = x_.size() - 2;
  return seg;
}

double MarginalSurrogate::eval(double lambda1) const {
  if (!in_domain(lambda1)) {
    throw std::domain_error("MarginalSurrogate: lambda1 outside certified domain");
  }
  // Cubic Hermite basis on the containing segment.
  const std::size_t seg = segment_of(lambda1);
  const double h = x_[seg + 1] - x_[seg];
  const double t = (lambda1 - x_[seg]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * g_[seg] + h10 * h * dg_[seg] + h01 * g_[seg + 1] + h11 * h * dg_[seg + 1];
}

MarginalSurrogate::Value MarginalSurrogate::eval_with_bound(double lambda1) const {
  return Value{eval(lambda1), seg_bound_[segment_of(lambda1)]};
}

void MarginalCache::configure(std::vector<queue::BladeQueue> queues) {
  invalidate();
  queues_ = std::move(queues);
  surrogates_.assign(queues_.size(), std::nullopt);
  configured_ = true;
}

void MarginalCache::invalidate() noexcept {
  if (!configured_) return;
  configured_ = false;
  queues_.clear();
  surrogates_.clear();
  ++stats_.invalidations;
  BLADE_OBS_COUNT("runtime.mcache.invalidations");
}

std::optional<MarginalCache::Eval> MarginalCache::eval(std::size_t j, double lambda1) {
  if (!configured_ || j >= queues_.size()) return std::nullopt;
  if (!surrogates_[j].has_value()) {
    surrogates_[j].emplace(queues_[j], opt_);
    ++stats_.builds;
  }
  const MarginalSurrogate& s = *surrogates_[j];
  if (!s.in_domain(lambda1)) {
    ++stats_.out_of_domain;
    BLADE_OBS_COUNT("runtime.mcache.out_of_domain");
    return std::nullopt;
  }
  ++stats_.hits;
  const MarginalSurrogate::Value v = s.eval_with_bound(lambda1);
  return Eval{v.g, v.bound};
}

void MarginalCache::exact(std::span<const double> lambda1s, std::span<double> g) const {
  if (!configured_) throw std::logic_error("MarginalCache::exact: cache not configured");
  queue::batch_lagrange_marginal(queues_, lambda1s, g);
}

}  // namespace blade::opt
