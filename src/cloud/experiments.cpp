#include "cloud/experiments.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/batch.hpp"
#include "core/policies.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/simulation.hpp"

namespace blade::cloud {

ExampleTable example_table(queue::Discipline d) {
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  const opt::LoadDistributionOptimizer solver(cluster, d);
  const auto sol = solver.optimize(lambda);

  ExampleTable t;
  t.lambda_total = lambda;
  t.response_time = sol.response_time;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& srv = cluster.server(i);
    ExampleRow row;
    row.index = static_cast<int>(i) + 1;
    row.size = srv.size();
    row.speed = srv.speed();
    row.service_time = srv.mean_service_time(cluster.rbar());
    row.generic_rate = sol.rates[i];
    row.special_rate = srv.special_rate();
    row.utilization = sol.utilizations[i];
    t.rows.push_back(row);
  }
  return t;
}

FigureData response_time_figure(const std::string& id, const std::string& title,
                                const std::vector<model::NamedCluster>& groups,
                                queue::Discipline d, std::size_t points, double lo,
                                double hi_fraction) {
  if (groups.empty()) throw std::invalid_argument("response_time_figure: no groups");
  FigureData fig;
  fig.id = id;
  fig.title = title;
  fig.xlabel = "lambda'";
  fig.ylabel = "T'";
  fig.series.resize(groups.size());

  double overall_hi = 0.0;
  for (const auto& g : groups) {
    overall_hi = std::max(overall_hi, hi_fraction * g.cluster.max_generic_rate());
  }
  if (!(overall_hi > lo)) throw std::invalid_argument("response_time_figure: empty lambda range");

  // Common absolute grid; each group keeps the points below its own
  // saturation so the curves end where the paper's do.
  std::vector<double> grid(points);
  for (std::size_t k = 0; k < points; ++k) {
    grid[k] = lo + (overall_hi - lo) * static_cast<double>(k) / static_cast<double>(points - 1);
  }

  par::parallel_for(0, groups.size(), [&](std::size_t gi) {
    const auto& group = groups[gi];
    const double cutoff = hi_fraction * group.cluster.max_generic_rate();
    const opt::LoadDistributionOptimizer solver(group.cluster, d);
    Series s;
    s.label = group.name;
    for (double lambda : grid) {
      if (lambda > cutoff) break;
      s.x.push_back(lambda);
    }
    // The grid ascends, so chain the solves: each warm-starts from the
    // previous one's bracket. optimize_chain is poolless on purpose --
    // this body already runs inside parallel_for, and submit-and-wait on
    // the same pool from a task can deadlock.
    const auto sols = opt::optimize_chain(solver, s.x);
    s.y.reserve(sols.size());
    for (const auto& sol : sols) s.y.push_back(sol.response_time);
    fig.series[gi] = std::move(s);
  });
  return fig;
}

FigureData figure(int number, std::size_t points) {
  using queue::Discipline;
  const Discipline fcfs = Discipline::Fcfs;
  const Discipline prio = Discipline::SpecialPriority;
  switch (number) {
    case 4:
      return response_time_figure("fig04", "T' vs lambda' for five size groups (no priority)",
                                  model::size_groups(), fcfs, points);
    case 5:
      return response_time_figure("fig05", "T' vs lambda' for five size groups (priority)",
                                  model::size_groups(), prio, points);
    case 6:
      return response_time_figure("fig06", "T' vs lambda' and s (no priority)",
                                  model::speed_groups(), fcfs, points);
    case 7:
      return response_time_figure("fig07", "T' vs lambda' and s (priority)",
                                  model::speed_groups(), prio, points);
    case 8:
      return response_time_figure("fig08", "T' vs lambda' and rbar (no priority)",
                                  model::requirement_groups(), fcfs, points);
    case 9:
      return response_time_figure("fig09", "T' vs lambda' and rbar (priority)",
                                  model::requirement_groups(), prio, points);
    case 10:
      return response_time_figure("fig10", "T' vs lambda' and special load y (no priority)",
                                  model::special_rate_groups(), fcfs, points);
    case 11:
      return response_time_figure("fig11", "T' vs lambda' and special load y (priority)",
                                  model::special_rate_groups(), prio, points);
    case 12:
      return response_time_figure("fig12", "T' vs lambda' for size heterogeneity (no priority)",
                                  model::size_heterogeneity_groups(), fcfs, points);
    case 13:
      return response_time_figure("fig13", "T' vs lambda' for size heterogeneity (priority)",
                                  model::size_heterogeneity_groups(), prio, points);
    case 14:
      return response_time_figure("fig14", "T' vs lambda' for speed heterogeneity (no priority)",
                                  model::speed_heterogeneity_groups(), fcfs, points);
    case 15:
      return response_time_figure("fig15", "T' vs lambda' for speed heterogeneity (priority)",
                                  model::speed_heterogeneity_groups(), prio, points);
    default:
      throw std::invalid_argument("figure: paper figures are numbered 4..15");
  }
}

std::vector<ValidationRow> validate_examples(int replications, double horizon, double warmup) {
  std::vector<ValidationRow> rows;
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  for (queue::Discipline d : {queue::Discipline::Fcfs, queue::Discipline::SpecialPriority}) {
    const opt::LoadDistributionOptimizer solver(cluster, d);
    const auto sol = solver.optimize(lambda);

    sim::SimConfig cfg;
    cfg.horizon = horizon;
    cfg.warmup = warmup;
    const auto mode = sim::to_mode(d);
    const auto rep = sim::replicate(
        [&](const sim::SimConfig& c) { return sim::simulate_split(cluster, sol.rates, mode, c); },
        cfg, replications);

    ValidationRow row;
    row.label = d == queue::Discipline::Fcfs ? "example1 (fcfs)" : "example2 (priority)";
    row.analytic = sol.response_time;
    row.simulated = rep.generic_response.mean;
    row.ci_half = rep.generic_response.half_width;
    row.within_ci = rep.generic_response.contains(sol.response_time);
    rows.push_back(row);
  }
  return rows;
}

std::vector<AblationRow> policy_ablation(const model::Cluster& cluster, queue::Discipline d,
                                         const std::vector<double>& load_fractions) {
  std::vector<AblationRow> rows;
  const double lambda_max = cluster.max_generic_rate();
  const opt::LoadDistributionOptimizer solver(cluster, d);
  for (double f : load_fractions) {
    if (!(f > 0.0) || !(f < 1.0)) {
      throw std::invalid_argument("policy_ablation: load fractions must be in (0, 1)");
    }
    const double lambda = f * lambda_max;
    const double opt_T = solver.optimize(lambda).response_time;
    for (opt::Policy p : opt::all_policies()) {
      AblationRow row;
      row.policy = opt::to_string(p);
      row.lambda = lambda;
      row.policy_T = opt::policy_response_time(p, cluster, d, lambda);
      row.optimal_T = opt_T;
      row.penalty = row.policy_T / opt_T - 1.0;
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace blade::cloud
