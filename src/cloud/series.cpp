#include "cloud/series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace blade::cloud {

std::string to_csv(const FigureData& fig, int precision) {
  std::ostringstream os;
  os << "series," << fig.xlabel << ',' << fig.ylabel << '\n';
  os.setf(std::ios::fixed);
  os.precision(precision);
  for (const auto& s : fig.series) {
    if (s.x.size() != s.y.size()) throw std::logic_error("to_csv: ragged series");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      os << util::csv_escape(s.label) << ',' << s.x[i] << ',' << s.y[i] << '\n';
    }
  }
  return os.str();
}

std::string to_json(const FigureData& fig) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(fig.id);
  w.key("title").value(fig.title);
  w.key("xlabel").value(fig.xlabel);
  w.key("ylabel").value(fig.ylabel);
  w.key("series").begin_array();
  for (const auto& s : fig.series) {
    if (s.x.size() != s.y.size()) throw std::logic_error("to_json: ragged series");
    w.begin_object();
    w.key("label").value(s.label);
    w.key("x").begin_array();
    for (double v : s.x) w.value(v);
    w.end_array();
    w.key("y").begin_array();
    for (double v : s.y) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string ascii_plot(const FigureData& fig, int width, int height) {
  if (width < 16 || height < 4) throw std::invalid_argument("ascii_plot: canvas too small");
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const auto& s : fig.series) {
    for (double v : s.x) {
      xmin = std::min(xmin, v);
      xmax = std::max(xmax, v);
    }
    for (double v : s.y) {
      ymin = std::min(ymin, v);
      ymax = std::max(ymax, v);
    }
  }
  if (!(xmax > xmin) || !(ymax > ymin)) return "(ascii_plot: degenerate data)\n";

  static const char glyphs[] = "*+ox#@%&";
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t si = 0; si < fig.series.size(); ++si) {
    const char g = glyphs[si % (sizeof(glyphs) - 1)];
    const auto& s = fig.series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int cx = static_cast<int>(std::lround((s.x[i] - xmin) / (xmax - xmin) * (width - 1)));
      const int cy = static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) * (height - 1)));
      canvas[static_cast<std::size_t>(height - 1 - cy)][static_cast<std::size_t>(cx)] = g;
    }
  }

  std::ostringstream os;
  os << fig.title << "  (y: " << fig.ylabel << " in [" << ymin << ", " << ymax << "], x: "
     << fig.xlabel << " in [" << xmin << ", " << xmax << "])\n";
  for (const auto& row : canvas) os << '|' << row << "|\n";
  os << "legend:";
  for (std::size_t si = 0; si < fig.series.size(); ++si) {
    os << "  " << glyphs[si % (sizeof(glyphs) - 1)] << '=' << fig.series[si].label;
  }
  os << '\n';
  return os.str();
}

}  // namespace blade::cloud
