#include "cloud/report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace blade::cloud {

std::string render_example_table(const ExampleTable& table, const std::string& caption) {
  util::Table t({"i", "m_i", "s_i", "x_i", "lambda'_i", "lambda''_i", "rho_i"});
  for (const auto& r : table.rows) {
    t.add_row({std::to_string(r.index), std::to_string(r.size), util::fixed(r.speed, 1),
               util::fixed(r.service_time), util::fixed(r.generic_rate),
               util::fixed(r.special_rate), util::fixed(r.utilization)});
  }
  std::ostringstream os;
  os << caption << '\n'
     << t.render() << "lambda' = " << util::fixed(table.lambda_total, 2)
     << ",  minimized T' = " << util::fixed(table.response_time) << " s\n";
  return os.str();
}

std::string render_validation(const std::vector<ValidationRow>& rows) {
  util::Table t({"case", "analytic T'", "simulated T'", "95% CI half-width", "within CI"});
  t.set_align(0, util::Align::Left);
  for (const auto& r : rows) {
    t.add_row({r.label, util::fixed(r.analytic), util::fixed(r.simulated),
               util::fixed(r.ci_half), r.within_ci ? "yes" : "no"});
  }
  return t.render();
}

std::string render_ablation(const std::vector<AblationRow>& rows) {
  util::Table t({"policy", "lambda'", "policy T'", "optimal T'", "penalty"});
  t.set_align(0, util::Align::Left);
  for (const auto& r : rows) {
    t.add_row({r.policy, util::fixed(r.lambda, 3), util::fixed(r.policy_T),
               util::fixed(r.optimal_T), util::fixed(100.0 * r.penalty, 2) + "%"});
  }
  return t.render();
}

}  // namespace blade::cloud
