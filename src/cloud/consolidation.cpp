#include "cloud/consolidation.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/optimizer.hpp"

namespace blade::cloud {

namespace {

model::Cluster with_active(const model::Cluster& base, const std::vector<unsigned>& active) {
  std::vector<model::BladeServer> servers;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (active[i] == 0) continue;  // fully off (only allowed without special load)
    const auto& s = base.server(i);
    servers.emplace_back(active[i], s.speed(), s.special_rate());
  }
  return model::Cluster(std::move(servers), base.rbar());
}

/// Optimal T' on the reduced cluster; +inf when infeasible/unstable.
double evaluate(const model::Cluster& base, const std::vector<unsigned>& active,
                queue::Discipline d, double lambda) {
  // Validate per-server stability for the special streams first.
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto& s = base.server(i);
    if (active[i] == 0) {
      if (s.special_rate() > 0.0) return std::numeric_limits<double>::infinity();
      continue;
    }
    const double rho2 = s.special_rate() * base.rbar() / (s.speed() * active[i]);
    if (rho2 >= 0.999) return std::numeric_limits<double>::infinity();
  }
  const auto reduced = with_active(base, active);
  if (reduced.max_generic_rate() * 0.999 <= lambda) {
    return std::numeric_limits<double>::infinity();
  }
  opt::OptimizerOptions opts;
  opts.rate_tolerance = 1e-10;
  opts.phi_tolerance = 1e-10;
  return opt::LoadDistributionOptimizer(reduced, d, opts).optimize(lambda).response_time;
}

}  // namespace

ConsolidationPlan plan_consolidation(const model::Cluster& cluster, queue::Discipline d,
                                     const LoadProfile& profile, double slo) {
  if (!(slo > 0.0)) throw std::invalid_argument("plan_consolidation: slo must be > 0");
  if (profile.epoch_rates.empty()) throw std::invalid_argument("plan_consolidation: empty profile");

  std::vector<unsigned> full(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) full[i] = cluster.server(i).size();

  ConsolidationPlan plan;
  for (double lambda : profile.epoch_rates) {
    const double full_T = evaluate(cluster, full, d, lambda);
    if (!(full_T <= slo)) {
      throw std::invalid_argument(
          "plan_consolidation: even the full cluster misses the SLO in some epoch");
    }
    std::vector<unsigned> active = full;
    double current = full_T;
    // Greedy deactivation: in each round switch off the blade whose
    // removal keeps T'* lowest, while the SLO still holds.
    for (;;) {
      std::size_t best = cluster.size();
      double best_T = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        if (active[i] == 0) continue;
        --active[i];
        const double t = evaluate(cluster, active, d, lambda);
        ++active[i];
        if (t <= slo && t < best_T) {
          best_T = t;
          best = i;
        }
      }
      if (best == cluster.size()) break;  // no blade can be switched off
      --active[best];
      current = best_T;
    }

    EpochPlan ep;
    ep.lambda = lambda;
    ep.active_blades = active;
    for (unsigned a : active) ep.total_active += a;
    ep.response_time = current;
    plan.full_blade_epochs += static_cast<double>(cluster.total_blades());
    plan.active_blade_epochs += static_cast<double>(ep.total_active);
    plan.epochs.push_back(std::move(ep));
  }
  return plan;
}

}  // namespace blade::cloud
