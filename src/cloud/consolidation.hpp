// Server consolidation planner -- the paper's own motivation ("many
// companies typically run at 15-20% of their capacity"): given a
// time-varying load profile and a response-time SLO, how many blades can
// be powered off in each epoch?
//
// Per epoch the planner deactivates blades greedily (always the blade
// whose removal hurts the re-optimized T'* least) for as long as the SLO
// and stability hold. Special tasks pin their server: a server is never
// reduced below the capacity its dedicated stream needs, and at least
// one blade stays on per server with special load.
#pragma once

#include <vector>

#include "cloud/trace.hpp"
#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::cloud {

struct EpochPlan {
  double lambda = 0.0;
  std::vector<unsigned> active_blades;  ///< per server
  unsigned total_active = 0;
  double response_time = 0.0;  ///< optimal T' on the reduced cluster
};

struct ConsolidationPlan {
  std::vector<EpochPlan> epochs;
  double full_blade_epochs = 0.0;   ///< blades x epochs if nothing is off
  double active_blade_epochs = 0.0;  ///< blades x epochs actually on
  /// 1 - active/full: fraction of blade-time switched off.
  [[nodiscard]] double energy_savings() const noexcept {
    return full_blade_epochs > 0.0 ? 1.0 - active_blade_epochs / full_blade_epochs : 0.0;
  }
};

/// Plans blade activations per epoch. Throws if even the full cluster
/// misses the SLO in some epoch.
/// @param slo  upper bound on the optimal mean generic response time
[[nodiscard]] ConsolidationPlan plan_consolidation(const model::Cluster& cluster,
                                                   queue::Discipline d, const LoadProfile& profile,
                                                   double slo);

}  // namespace blade::cloud
