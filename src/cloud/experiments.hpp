// The paper's experiments as reusable descriptors: Tables 1-2 and the
// T'-vs-lambda' families behind Figs. 4-15, plus the two studies the
// paper lacks (simulation validation and policy ablation). Benches print
// these; integration tests assert their shapes.
#pragma once

#include <string>
#include <vector>

#include "cloud/series.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "model/paper_configs.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::cloud {

/// One row of Table 1 / Table 2.
struct ExampleRow {
  int index = 0;            ///< i
  unsigned size = 0;        ///< m_i
  double speed = 0.0;       ///< s_i
  double service_time = 0.0;  ///< xbar_i
  double generic_rate = 0.0;  ///< lambda'_i
  double special_rate = 0.0;  ///< lambda''_i
  double utilization = 0.0;   ///< rho_i
};

struct ExampleTable {
  std::vector<ExampleRow> rows;
  double response_time = 0.0;  ///< minimized T'
  double lambda_total = 0.0;   ///< lambda' distributed
};

/// Reproduces Table 1 (Fcfs) or Table 2 (SpecialPriority).
[[nodiscard]] ExampleTable example_table(queue::Discipline d);

/// Sweeps the minimized T' over lambda' for a family of cluster groups.
/// Each series runs from `lo_fraction` to `hi_fraction` of *its own*
/// saturation point on a common absolute grid; grid points at or beyond a
/// group's saturation are omitted (the curves end where the paper's do).
[[nodiscard]] FigureData response_time_figure(const std::string& id, const std::string& title,
                                              const std::vector<model::NamedCluster>& groups,
                                              queue::Discipline d, std::size_t points = 25,
                                              double lo = 1.0, double hi_fraction = 0.98);

/// The ten paper figures, in order fig04..fig15 (two disciplines x five
/// parameter families).
[[nodiscard]] FigureData figure(int number, std::size_t points = 25);

/// Simulation-vs-analytics validation on the Example 1/2 system.
struct ValidationRow {
  std::string label;       ///< "example1 (fcfs)" etc.
  double analytic = 0.0;   ///< model-predicted T'
  double simulated = 0.0;  ///< mean of replication means
  double ci_half = 0.0;    ///< 95% CI half width
  bool within_ci = false;  ///< analytic value inside the CI
};

[[nodiscard]] std::vector<ValidationRow> validate_examples(int replications = 8,
                                                           double horizon = 40000.0,
                                                           double warmup = 4000.0);

/// Policy-ablation study: T' penalty of each baseline over the optimum.
struct AblationRow {
  std::string policy;
  double lambda = 0.0;      ///< total generic rate
  double policy_T = 0.0;    ///< baseline T'
  double optimal_T = 0.0;   ///< minimized T'
  double penalty = 0.0;     ///< policy_T / optimal_T - 1
};

[[nodiscard]] std::vector<AblationRow> policy_ablation(const model::Cluster& cluster,
                                                       queue::Discipline d,
                                                       const std::vector<double>& load_fractions);

}  // namespace blade::cloud
