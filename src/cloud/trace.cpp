#include "cloud/trace.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "core/objective.hpp"
#include "core/optimizer.hpp"
#include "numerics/special.hpp"

namespace blade::cloud {

LoadProfile diurnal_profile(double trough, double peak, std::size_t epochs) {
  if (!(trough > 0.0) || !(peak >= trough)) {
    throw std::invalid_argument("diurnal_profile: need 0 < trough <= peak");
  }
  if (epochs < 2) throw std::invalid_argument("diurnal_profile: need >= 2 epochs");
  LoadProfile p;
  p.epoch_rates.resize(epochs);
  const double mid = 0.5 * (peak + trough);
  const double amp = 0.5 * (peak - trough);
  for (std::size_t e = 0; e < epochs; ++e) {
    // Cosine day: trough at the ends, peak in the middle.
    const double phase = 2.0 * 3.14159265358979323846 * static_cast<double>(e) /
                         static_cast<double>(epochs);
    p.epoch_rates[e] = mid - amp * std::cos(phase);
  }
  return p;
}

namespace {

void check_profile(const model::Cluster& cluster, const LoadProfile& profile) {
  if (profile.epoch_rates.empty()) throw std::invalid_argument("trace: empty profile");
  if (!(profile.epoch_duration > 0.0)) {
    throw std::invalid_argument("trace: epoch duration must be > 0");
  }
  for (double lam : profile.epoch_rates) {
    if (!(lam > 0.0) || lam >= cluster.max_generic_rate()) {
      throw std::invalid_argument("trace: every epoch rate must be feasible for the cluster");
    }
  }
}

void finalize(TraceResult& res) {
  num::KahanSum weighted;
  num::KahanSum weight;
  for (const auto& e : res.epochs) {
    if (!std::isfinite(e.response_time)) continue;
    weighted.add(e.lambda * e.response_time);
    weight.add(e.lambda);
  }
  res.mean_response_time = weight.value() > 0.0 ? weighted.value() / weight.value() : 0.0;
}

}  // namespace

TraceResult run_adaptive(const model::Cluster& cluster, queue::Discipline d,
                         const LoadProfile& profile) {
  check_profile(cluster, profile);
  const opt::LoadDistributionOptimizer solver(cluster, d);
  TraceResult res;
  res.epochs.reserve(profile.epoch_rates.size());
  for (double lam : profile.epoch_rates) {
    res.epochs.push_back({lam, solver.optimize(lam).response_time});
  }
  finalize(res);
  return res;
}

TraceResult run_controller(const model::Cluster& cluster, queue::Discipline d,
                           const LoadProfile& profile, runtime::ControllerConfig cfg) {
  check_profile(cluster, profile);
  cfg.discipline = d;
  runtime::Controller ctrl(cluster, cfg);

  TraceResult res;
  res.epochs.reserve(profile.epoch_rates.size());
  double t = 0.0;
  std::uint64_t k = 0;
  for (double lam : profile.epoch_rates) {
    const double epoch_end = t + profile.epoch_duration;
    const double gap = 1.0 / lam;
    // Evenly spaced arrivals at exactly lam; the golden-ratio sequence
    // stands in for the admission uniforms (equidistributed, seedless).
    while (t + gap <= epoch_end) {
      t += gap;
      const double u = std::fmod(static_cast<double>(++k) * 0.61803398874989485, 1.0);
      ctrl.on_generic_arrival(t, u);
    }
    t = epoch_end;
    ctrl.resolve_now(t);

    const double shed = ctrl.shed_probability();
    const double admitted = lam * (1.0 - shed);
    if (shed > 0.0) ++res.overloaded_epochs;
    const auto fractions = ctrl.routing_fractions();
    std::vector<double> rates(fractions.size());
    for (std::size_t i = 0; i < fractions.size(); ++i) rates[i] = admitted * fractions[i];
    const opt::ResponseTimeObjective obj(cluster, d, admitted);
    res.epochs.push_back({lam, obj.value(rates)});
  }
  finalize(res);
  return res;
}

TraceResult run_static(const model::Cluster& cluster, queue::Discipline d,
                       const LoadProfile& profile, double design_rate) {
  check_profile(cluster, profile);
  if (!(design_rate > 0.0) || design_rate >= cluster.max_generic_rate()) {
    throw std::invalid_argument("trace: infeasible design rate");
  }
  const opt::LoadDistributionOptimizer solver(cluster, d);
  const auto design = solver.optimize(design_rate);

  TraceResult res;
  res.epochs.reserve(profile.epoch_rates.size());
  for (double lam : profile.epoch_rates) {
    const double scale = lam / design_rate;
    std::vector<double> rates = design.rates;
    for (double& r : rates) r *= scale;

    // An epoch is overloaded if any server saturates under the scaled split.
    bool overloaded = false;
    const opt::ResponseTimeObjective obj(cluster, d, lam);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      if (rates[i] >= obj.rate_bound(i)) {
        overloaded = true;
        break;
      }
    }
    if (overloaded) {
      ++res.overloaded_epochs;
      res.epochs.push_back({lam, std::numeric_limits<double>::infinity()});
    } else {
      res.epochs.push_back({lam, obj.value(rates)});
    }
  }
  finalize(res);
  return res;
}

}  // namespace blade::cloud
