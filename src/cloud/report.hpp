// Rendering of experiment results in the paper's presentation style.
#pragma once

#include <string>

#include "cloud/experiments.hpp"

namespace blade::cloud {

/// Renders an ExampleTable like the paper's Table 1 / Table 2 (seven
/// decimal digits) plus the T' summary line.
[[nodiscard]] std::string render_example_table(const ExampleTable& table,
                                               const std::string& caption);

/// Renders the validation rows (analytic vs simulated with CI).
[[nodiscard]] std::string render_validation(const std::vector<ValidationRow>& rows);

/// Renders the policy-ablation rows.
[[nodiscard]] std::string render_ablation(const std::vector<AblationRow>& rows);

}  // namespace blade::cloud
