// Time-varying workload study: real cloud arrival rates swing through the
// day, while the paper optimizes for one stationary lambda'. This module
// models a piecewise-constant load profile (each epoch long enough for
// steady state, the standard quasi-stationary approximation) and compares
//   adaptive   re-solving the optimal split every epoch, against
//   static     one split chosen for a single design rate and kept fixed.
#pragma once

#include <cstddef>
#include <vector>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"
#include "runtime/controller.hpp"

namespace blade::cloud {

struct LoadProfile {
  std::vector<double> epoch_rates;  ///< lambda' per epoch, each feasible
  double epoch_duration = 1.0;      ///< identical length per epoch
};

/// Sinusoidal day: rates swing between trough and peak over `epochs`
/// epochs (peak at mid-profile). Requires 0 < trough <= peak.
[[nodiscard]] LoadProfile diurnal_profile(double trough, double peak, std::size_t epochs);

struct TraceEpoch {
  double lambda = 0.0;
  double response_time = 0.0;  ///< steady-state T' of this epoch's policy
};

struct TraceResult {
  std::vector<TraceEpoch> epochs;
  /// Task-weighted mean response time over the profile:
  /// sum(lambda_e T_e) / sum(lambda_e).
  double mean_response_time = 0.0;
  /// Number of epochs where the static split could not even stabilize the
  /// servers (infinite T'); always 0 for the adaptive policy.
  std::size_t overloaded_epochs = 0;
};

/// Re-optimizes the split at the start of every epoch.
[[nodiscard]] TraceResult run_adaptive(const model::Cluster& cluster, queue::Discipline d,
                                       const LoadProfile& profile);

/// Controller-backed adaptive mode: instead of handing each epoch's exact
/// rate to the solver (run_adaptive's oracle), a runtime::Controller only
/// sees the arrival stream — evenly spaced arrivals at the epoch rate —
/// and must estimate it, pass its hysteresis check, and republish. Each
/// epoch's T' is then evaluated analytically at the published routing
/// fractions and admitted rate. overloaded_epochs counts epochs the
/// controller ended with a nonzero shed probability (its utilization
/// ceiling engaged). `cfg.discipline` is overridden by `d`.
[[nodiscard]] TraceResult run_controller(const model::Cluster& cluster, queue::Discipline d,
                                         const LoadProfile& profile,
                                         runtime::ControllerConfig cfg = {});

/// Optimizes one split at `design_rate`, then *scales* it proportionally
/// to each epoch's total rate (the natural way to hold routing
/// probabilities fixed while the arrival process varies). Epochs whose
/// scaled split saturates any server are counted as overloaded and
/// excluded from the mean (reported separately).
[[nodiscard]] TraceResult run_static(const model::Cluster& cluster, queue::Discipline d,
                                     const LoadProfile& profile, double design_rate);

}  // namespace blade::cloud
