// Figure data structures: a labeled family of (x, y) series, one per
// cluster group, exactly mirroring how the paper presents Figs. 4-15
// (minimized T' as a function of the total generic rate lambda').
#pragma once

#include <string>
#include <vector>

namespace blade::cloud {

struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct FigureData {
  std::string id;      ///< e.g. "fig04"
  std::string title;
  std::string xlabel;  ///< "lambda'"
  std::string ylabel;  ///< "T'"
  std::vector<Series> series;
};

/// Long-format CSV: series,x,y (one row per point).
[[nodiscard]] std::string to_csv(const FigureData& fig, int precision = 7);

/// JSON document: {id, title, xlabel, ylabel, series:[{label, x:[], y:[]}]}.
[[nodiscard]] std::string to_json(const FigureData& fig);

/// A quick ASCII rendering (width x height characters) so bench output is
/// inspectable without plotting tools. Each series uses its own glyph.
[[nodiscard]] std::string ascii_plot(const FigureData& fig, int width = 72, int height = 20);

}  // namespace blade::cloud
