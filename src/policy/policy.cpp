#include "policy/policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace blade::policy {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Redraw budget per probe set before falling back to a deterministic
/// scan fill. 16 attempts per wanted probe keeps the expected rejection
/// tail negligible even when one server holds almost all probe mass.
constexpr std::size_t kRedrawFactor = 16;

/// Normalized-expected-work key: the time a new task expects to wait
/// out at server i if every in-system task needed one mean service,
/// (q_i + 1) / (a_i * s_i). Empty servers rank by raw capacity, so
/// queue-length ties break toward the faster / less-drained server.
[[nodiscard]] double hetero_key(const ServerState& s) noexcept {
  const double capacity = static_cast<double>(s.available) * s.speed;
  return (static_cast<double>(s.in_system) + 1.0) / capacity;
}

[[nodiscard]] std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

/// The availability contract's notion of "routable": blades up AND not
/// health-quarantined. Quarantined-but-up servers form the middle tier
/// between routable and dark (see the header contract).
[[nodiscard]] bool routable(const ServerState& s) noexcept {
  return s.available > 0 && !s.quarantined;
}

}  // namespace

const char* to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::Random: return "random";
    case PolicyKind::RoundRobin: return "round-robin";
    case PolicyKind::Jsq: return "jsq";
    case PolicyKind::JsqD: return "jsq-d";
    case PolicyKind::SpeedBiasedD: return "sb-d";
    case PolicyKind::HeteroJsqD: return "ha-jsq-d";
    case PolicyKind::WeightedJsqD: return "wjsq-d";
    case PolicyKind::OptSplit: return "opt-split";
  }
  return "unknown";
}

Expected<PolicyKind> parse_policy_kind(std::string_view name) {
  for (const PolicyKind kind : all_policy_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  std::string known;
  for (const PolicyKind kind : all_policy_kinds()) {
    if (!known.empty()) known += ", ";
    known += to_string(kind);
  }
  return make_error(ErrorCode::InvalidArgument,
                    "unknown policy '" + std::string(name) + "' (known: " + known + ")");
}

std::vector<PolicyKind> all_policy_kinds() {
  return {PolicyKind::Random,       PolicyKind::RoundRobin,   PolicyKind::Jsq,
          PolicyKind::JsqD,         PolicyKind::SpeedBiasedD, PolicyKind::HeteroJsqD,
          PolicyKind::WeightedJsqD, PolicyKind::OptSplit};
}

bool probes_queue_state(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::Jsq:
    case PolicyKind::JsqD:
    case PolicyKind::SpeedBiasedD:
    case PolicyKind::HeteroJsqD:
    case PolicyKind::WeightedJsqD:
      return true;
    case PolicyKind::Random:
    case PolicyKind::RoundRobin:
    case PolicyKind::OptSplit:
      return false;
  }
  return false;
}

bool needs_weights(PolicyKind kind) noexcept {
  return kind == PolicyKind::WeightedJsqD || kind == PolicyKind::OptSplit;
}

Status PolicyConfig::validate(std::size_t n) const {
  if (n == 0) {
    return make_error(ErrorCode::InvalidArgument, "policy: fleet must have >= 1 server");
  }
  const bool d_choices = kind == PolicyKind::JsqD || kind == PolicyKind::SpeedBiasedD ||
                         kind == PolicyKind::HeteroJsqD || kind == PolicyKind::WeightedJsqD;
  if (d_choices && probe_d == 0) {
    return make_error(ErrorCode::InvalidArgument,
                      std::string("policy ") + to_string(kind) + ": probe_d must be >= 1");
  }
  if (needs_weights(kind)) {
    if (weights.size() != n) {
      return make_error(ErrorCode::InvalidArgument,
                        std::string("policy ") + to_string(kind) + ": weights size " +
                            std::to_string(weights.size()) + " != fleet size " +
                            std::to_string(n));
    }
    if (Status s = util::AliasTable::validate_weights(weights); !s.ok()) return s;
  }
  if (kind == PolicyKind::SpeedBiasedD) {
    if (speeds.size() != n) {
      return make_error(ErrorCode::InvalidArgument,
                        "policy sb-d: speeds size " + std::to_string(speeds.size()) +
                            " != fleet size " + std::to_string(n));
    }
    if (Status s = util::AliasTable::validate_weights(speeds); !s.ok()) return s;
  }
  return {};
}

DispatchPolicy::DispatchPolicy(PolicyConfig cfg, std::size_t n)
    : cfg_(std::move(cfg)), n_(n), rng_(cfg_.seed, cfg_.stream) {
  if (Status s = cfg_.validate(n_); !s.ok()) {
    throw std::invalid_argument("DispatchPolicy: " + s.error().to_string());
  }
  hetero_key_ = cfg_.kind == PolicyKind::HeteroJsqD || cfg_.kind == PolicyKind::WeightedJsqD;
  // Every sampled policy draws through one alias table; uniform kinds
  // get an equal-weight table so a degenerate weighted policy consumes
  // the identical RNG stream as its uniform counterpart (the bitwise
  // metamorphic collapses in tests/test_policy.cpp rely on this).
  switch (cfg_.kind) {
    case PolicyKind::Random:
    case PolicyKind::JsqD:
    case PolicyKind::HeteroJsqD:
      probe_table_.emplace(std::span<const double>(uniform_weights(n_)));
      break;
    case PolicyKind::SpeedBiasedD:
      probe_table_.emplace(std::span<const double>(cfg_.speeds));
      break;
    case PolicyKind::WeightedJsqD:
    case PolicyKind::OptSplit:
      probe_table_.emplace(std::span<const double>(cfg_.weights));
      break;
    case PolicyKind::Jsq:
    case PolicyKind::RoundRobin:
      break;
  }
  if (probes_queue_state(cfg_.kind) && cfg_.kind != PolicyKind::Jsq) {
    const std::size_t d = std::min<std::size_t>(cfg_.probe_d, n_);
    probes_.reserve(d);
    seen_epoch_.assign(n_, 0);
  }
}

std::size_t DispatchPolicy::route(const StateView& view) {
  if (view.n != n_) {
    throw std::invalid_argument("DispatchPolicy::route: view size " + std::to_string(view.n) +
                                " != fleet size " + std::to_string(n_));
  }
  ++counters_.routed;
  BLADE_OBS_COUNT("policy.routed");
  switch (cfg_.kind) {
    case PolicyKind::Random:
    case PolicyKind::OptSplit:
      return route_sampled(view);
    case PolicyKind::RoundRobin:
      return route_round_robin(view);
    case PolicyKind::Jsq:
      return route_scan(view);
    case PolicyKind::JsqD:
    case PolicyKind::SpeedBiasedD:
    case PolicyKind::HeteroJsqD:
    case PolicyKind::WeightedJsqD:
      return route_probed(view);
  }
  throw std::logic_error("DispatchPolicy::route: unreachable kind");
}

std::size_t DispatchPolicy::route_sampled(const StateView& view) {
  const util::AliasTable& table = *probe_table_;
  const double u1 = rng_.uniform();
  const double u2 = rng_.uniform();
  const std::size_t first = table.sample(u1, u2);
  ++counters_.probes;
  BLADE_OBS_COUNT("policy.probes");
  {
    const ServerState s = view(first);
    if (routable(s)) return first;
    if (s.available > 0) {
      ++counters_.quarantine_skips;
      BLADE_OBS_COUNT("policy.quarantine_skips");
    }
  }
  // The drawn server is dark or quarantined: resample a bounded number
  // of times (each rejection keeps the conditional distribution
  // proportional to the weights of the still-unseen servers), then scan.
  for (std::size_t attempt = 0; attempt < kRedrawFactor; ++attempt) {
    ++counters_.redraws;
    BLADE_OBS_COUNT("policy.redraws");
    const std::size_t idx = table.sample(rng_.uniform(), rng_.uniform());
    ++counters_.probes;
    BLADE_OBS_COUNT("policy.probes");
    const ServerState s = view(idx);
    if (routable(s)) return idx;
    if (s.available > 0) {
      ++counters_.quarantine_skips;
      BLADE_OBS_COUNT("policy.quarantine_skips");
    }
  }
  ++counters_.fallback_scans;
  BLADE_OBS_COUNT("policy.fallback_scans");
  std::size_t best = kNpos;
  std::size_t best_q = 0;
  std::size_t qbest = kNpos;  // quarantined-but-up tier
  std::size_t qbest_q = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const ServerState s = view(i);
    if (s.available == 0) continue;
    if (s.quarantined) {
      if (qbest == kNpos || s.in_system < qbest_q) {
        qbest = i;
        qbest_q = s.in_system;
      }
      continue;
    }
    if (best == kNpos || s.in_system < best_q) {
      best = i;
      best_q = s.in_system;
    }
  }
  if (best != kNpos) return best;
  // Fleet otherwise dark: a quarantined-but-up server still serves,
  // degraded; only when nothing is up at all does the task park on the
  // original draw until a recovery.
  return qbest != kNpos ? qbest : first;
}

std::size_t DispatchPolicy::route_round_robin(const StateView& view) {
  // Walk the cycle from the cursor to the first routable server; a
  // fully dark fleet falls back to the cursor itself. The cursor always
  // lands one past the pick, so recovered servers rejoin the cycle in
  // order.
  const std::size_t start = rr_next_;
  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t idx = (start + step) % n_;
    ++counters_.probes;
    BLADE_OBS_COUNT("policy.probes");
    const ServerState s = view(idx);
    if (routable(s)) {
      if (step != 0) {
        ++counters_.fallback_scans;
        BLADE_OBS_COUNT("policy.fallback_scans");
      }
      rr_next_ = (idx + 1) % n_;
      return idx;
    }
    if (s.available > 0) {
      ++counters_.quarantine_skips;
      BLADE_OBS_COUNT("policy.quarantine_skips");
    }
  }
  ++counters_.fallback_scans;
  BLADE_OBS_COUNT("policy.fallback_scans");
  // No routable server. Prefer a quarantined-but-up server in cycle
  // order over parking on a dark queue.
  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t idx = (start + step) % n_;
    if (view(idx).available > 0) {
      rr_next_ = (idx + 1) % n_;
      return idx;
    }
  }
  rr_next_ = (start + 1) % n_;
  return start;
}

std::size_t DispatchPolicy::route_scan(const StateView& view) {
  // Full-information JSQ: lexicographic min of (tasks in system, index)
  // over the available servers. The probed route_probed() with d = n
  // lands on the same destination (a lexicographic min is probe-order
  // free), which the d=n-equals-true-JSQ test pins.
  counters_.probes += n_;
  BLADE_OBS_COUNT_N("policy.probes", n_);
  std::size_t best = kNpos;
  std::size_t best_q = 0;
  std::size_t qbest = kNpos;  // quarantined-but-up middle tier
  std::size_t qbest_q = 0;
  std::size_t dark_best = 0;
  std::size_t dark_q = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < n_; ++i) {
    const ServerState s = view(i);
    if (s.available == 0) {
      if (s.in_system < dark_q) {
        dark_q = s.in_system;
        dark_best = i;
      }
      continue;
    }
    if (s.quarantined) {
      ++counters_.quarantine_skips;
      BLADE_OBS_COUNT("policy.quarantine_skips");
      if (qbest == kNpos || s.in_system < qbest_q) {
        qbest = i;
        qbest_q = s.in_system;
      }
      continue;
    }
    if (best == kNpos) {
      best = i;
      best_q = s.in_system;
    } else if (s.in_system < best_q) {
      best = i;
      best_q = s.in_system;
    } else if (s.in_system == best_q) {
      ++counters_.ties;
      BLADE_OBS_COUNT("policy.ties");
    }
  }
  if (best == kNpos) {
    ++counters_.fallback_scans;
    BLADE_OBS_COUNT("policy.fallback_scans");
    return qbest != kNpos ? qbest : dark_best;
  }
  if (best_q > 0) {
    ++counters_.herd_events;
    BLADE_OBS_COUNT("policy.herd_events");
  }
  return best;
}

void DispatchPolicy::sample_probes() {
  const util::AliasTable& table = *probe_table_;
  const std::size_t d = std::min<std::size_t>(cfg_.probe_d, n_);
  probes_.clear();
  ++epoch_;
  // Rejection sampling from the fixed table conditioned on "not already
  // drawn" IS successive weighted sampling without replacement:
  // P(first = i) = w_i, P(second = j | first = i) = w_j / (1 - w_i).
  // The light-traffic oracle's closed forms integrate exactly this law.
  const std::size_t max_attempts = kRedrawFactor * d;
  std::size_t attempts = 0;
  while (probes_.size() < d && attempts < max_attempts) {
    ++attempts;
    const double u1 = rng_.uniform();
    const double u2 = rng_.uniform();
    const std::size_t idx = table.sample(u1, u2);
    if (seen_epoch_[idx] == epoch_) {
      ++counters_.redraws;
      BLADE_OBS_COUNT("policy.redraws");
      continue;
    }
    seen_epoch_[idx] = epoch_;
    probes_.push_back(static_cast<std::uint32_t>(idx));
  }
  // Pathological rejection tail (one server carries ~all probe mass, or
  // zero-weight servers make d distinct draws impossible): top up
  // deterministically with the lowest unseen indices so the probe set
  // always has d distinct members and d = n covers the whole fleet.
  for (std::size_t i = 0; probes_.size() < d && i < n_; ++i) {
    if (seen_epoch_[i] == epoch_) continue;
    seen_epoch_[i] = epoch_;
    probes_.push_back(static_cast<std::uint32_t>(i));
  }
}

std::size_t DispatchPolicy::select(const StateView& view, std::size_t count,
                                   bool respect_availability) {
  std::size_t best = kNpos;
  std::size_t best_q_key = 0;
  double best_h_key = 0.0;
  std::size_t best_q_seen = 0;  // raw queue of the winner, for herd detection
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t idx = probes_[k];
    const ServerState s = view(idx);
    if (respect_availability && !routable(s)) {
      if (s.available > 0) {
        ++counters_.quarantine_skips;
        BLADE_OBS_COUNT("policy.quarantine_skips");
      }
      continue;
    }
    if (hetero_key_ && respect_availability) {
      const double key = hetero_key(s);
      if (best == kNpos || key < best_h_key ||
          (key == best_h_key && idx < best)) {
        if (best != kNpos && key == best_h_key) {
          ++counters_.ties;
          BLADE_OBS_COUNT("policy.ties");
        }
        best = idx;
        best_h_key = key;
        best_q_seen = s.in_system;
      } else if (key == best_h_key) {
        ++counters_.ties;
        BLADE_OBS_COUNT("policy.ties");
      }
    } else {
      // Naive key (also the dark-fleet fallback for the hetero kinds,
      // where available = 0 makes the normalized key degenerate):
      // lexicographic (tasks in system, index).
      const std::size_t key = s.in_system;
      if (best == kNpos || key < best_q_key || (key == best_q_key && idx < best)) {
        if (best != kNpos && key == best_q_key) {
          ++counters_.ties;
          BLADE_OBS_COUNT("policy.ties");
        }
        best = idx;
        best_q_key = key;
        best_q_seen = s.in_system;
      } else if (key == best_q_key) {
        ++counters_.ties;
        BLADE_OBS_COUNT("policy.ties");
      }
    }
  }
  if (respect_availability && best != kNpos && best_q_seen > 0) {
    // Every available probe already holds work: the d-choices herd is
    // queueing behind busy servers this arrival.
    ++counters_.herd_events;
    BLADE_OBS_COUNT("policy.herd_events");
  }
  return best;
}

std::size_t DispatchPolicy::route_probed(const StateView& view) {
  sample_probes();
  counters_.probes += probes_.size();
  BLADE_OBS_COUNT_N("policy.probes", probes_.size());
  const std::size_t probed = select(view, probes_.size(), /*respect_availability=*/true);
  if (probed != kNpos) return probed;
  // Every probed server is dark or quarantined. Scan the fleet for the
  // best routable server under the policy's own key, then the best
  // quarantined-but-up server, before giving up on availability.
  ++counters_.fallback_scans;
  BLADE_OBS_COUNT("policy.fallback_scans");
  std::size_t best = kNpos;
  std::size_t best_q = 0;
  double best_h = 0.0;
  std::size_t qbest = kNpos;
  std::size_t qbest_q = 0;
  double qbest_h = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const ServerState s = view(i);
    if (s.available == 0) continue;
    if (s.quarantined) {
      if (hetero_key_) {
        const double key = hetero_key(s);
        if (qbest == kNpos || key < qbest_h) {
          qbest = i;
          qbest_h = key;
        }
      } else if (qbest == kNpos || s.in_system < qbest_q) {
        qbest = i;
        qbest_q = s.in_system;
      }
      continue;
    }
    if (hetero_key_) {
      const double key = hetero_key(s);
      if (best == kNpos || key < best_h) {
        best = i;
        best_h = key;
      }
    } else if (best == kNpos || s.in_system < best_q) {
      best = i;
      best_q = s.in_system;
    }
  }
  if (best != kNpos) return best;
  if (qbest != kNpos) return qbest;
  // Whole fleet dark: park the task on the least-loaded probed server.
  return select(view, probes_.size(), /*respect_availability=*/false);
}

std::vector<double> light_traffic_fractions(const PolicyConfig& cfg,
                                            const std::vector<ServerState>& fleet) {
  const std::size_t n = fleet.size();
  if (Status s = cfg.validate(n); !s.ok()) {
    throw std::invalid_argument("light_traffic_fractions: " + s.error().to_string());
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (fleet[i].available == 0) {
      throw std::invalid_argument(
          "light_traffic_fractions: server " + std::to_string(i) +
          " has no available blades (the limit assumes a fully up fleet)");
    }
    if (fleet[i].quarantined) {
      throw std::invalid_argument(
          "light_traffic_fractions: server " + std::to_string(i) +
          " is quarantined (the limit assumes a fully healthy fleet)");
    }
  }
  std::vector<double> f(n, 0.0);
  switch (cfg.kind) {
    case PolicyKind::RoundRobin: {
      std::fill(f.begin(), f.end(), 1.0 / static_cast<double>(n));
      return f;
    }
    case PolicyKind::Jsq: {
      // Every arrival sees an empty fleet; the lexicographic tie-break
      // sends everything to index 0.
      f[0] = 1.0;
      return f;
    }
    case PolicyKind::Random: {
      std::fill(f.begin(), f.end(), 1.0 / static_cast<double>(n));
      return f;
    }
    case PolicyKind::OptSplit: {
      double total = 0.0;
      for (const double w : cfg.weights) total += w;
      for (std::size_t i = 0; i < n; ++i) f[i] = cfg.weights[i] / total;
      return f;
    }
    case PolicyKind::JsqD:
    case PolicyKind::SpeedBiasedD:
    case PolicyKind::HeteroJsqD:
    case PolicyKind::WeightedJsqD:
      break;
  }
  const std::size_t d = std::min<std::size_t>(cfg.probe_d, n);
  if (d == 1 || n == 1) {
    // One probe: the fraction is just the probe distribution.
    std::vector<double> w;
    if (cfg.kind == PolicyKind::SpeedBiasedD) {
      w = cfg.speeds;
    } else if (cfg.kind == PolicyKind::WeightedJsqD) {
      w = cfg.weights;
    } else {
      w = uniform_weights(n);
    }
    double total = 0.0;
    for (const double x : w) total += x;
    for (std::size_t i = 0; i < n; ++i) f[i] = w[i] / total;
    return f;
  }
  if (d != 2) {
    throw std::invalid_argument(
        "light_traffic_fractions: closed form implemented for d <= 2 only (got d = " +
        std::to_string(d) + ")");
  }
  // d = 2 over an empty fleet: enumerate ordered probe pairs under
  // sampling-without-replacement, P{(i, j)} = p_i * p_j / (1 - p_i),
  // and award the pair to the comparison key's winner. With every
  // in_system = 0 the naive key always ties (min index wins) and the
  // hetero key reduces to 1 / (a_i * s_i) — Izagirre–Makowski's
  // light-traffic power-of-two structure.
  std::vector<double> p;
  if (cfg.kind == PolicyKind::SpeedBiasedD) {
    p = cfg.speeds;
  } else if (cfg.kind == PolicyKind::WeightedJsqD) {
    p = cfg.weights;
  } else {
    p = uniform_weights(n);
  }
  double total = 0.0;
  for (const double x : p) total += x;
  for (double& x : p) x /= total;
  const bool hetero = cfg.kind == PolicyKind::HeteroJsqD || cfg.kind == PolicyKind::WeightedJsqD;
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || p[j] == 0.0) continue;
      const double pair = p[i] * p[j] / (1.0 - p[i]);
      std::size_t winner;
      if (hetero) {
        // Float-exact: the same division the live policy computes.
        const double ki = 1.0 / (static_cast<double>(fleet[i].available) * fleet[i].speed);
        const double kj = 1.0 / (static_cast<double>(fleet[j].available) * fleet[j].speed);
        winner = ki < kj ? i : (kj < ki ? j : std::min(i, j));
      } else {
        winner = std::min(i, j);
      }
      f[winner] += pair;
    }
  }
  return f;
}

}  // namespace blade::policy
