// Heterogeneity-aware scalable dispatch policies. The paper proves
// optimality for centralized probabilistic splitting (O(1) state, no
// queue feedback); modern fleets route with O(d)-state policies such as
// JSQ(d). This family puts both behind one interface so the simulator,
// the CLI, and the bench matrix can run them head to head:
//
//   random       uniform pick, no queue feedback
//   round-robin  deterministic cycle, no queue feedback
//   jsq          full scan: min tasks-in-system, ties to the lowest index
//   jsq-d        JSQ(d) with uniform probing: d distinct probes, min raw
//                queue length (the naive policy Gardner et al. show can
//                lose to random under heterogeneity)
//   sb-d         speed-biased d-choices: probe probability proportional
//                to s_i, then min raw queue length among probes
//   ha-jsq-d     heterogeneity-aware JSQ(d): uniform probes compared by
//                normalized expected work (q+1)/(a_i s_i) — queue-length
//                ties resolve toward the faster server automatically
//   wjsq-d       JSQ(d) over the optimal split: probe probability equal
//                to the published alias weights, normalized-work compare
//   opt-split    the paper's policy: probabilistic split by the weights
//
// Probing is O(d) sampled (never a fleet scan): candidates come from a
// Walker/Vose alias table over the probe weights with rejection of
// duplicates, which realizes successive weighted sampling WITHOUT
// replacement (each redraw is the renormalized remaining distribution).
// Uniform policies use an equal-weight table, so a heterogeneity-aware
// policy with degenerate parameters consumes the same RNG stream as its
// uniform counterpart and collapses to it BITWISE (test-enforced).
//
// Availability contract: whenever at least one server fleet-wide has an
// available blade, route() returns a server with available > 0 (probed
// candidates that are failed/drained are skipped; if every probe is
// dark, a fallback scan picks the best available server). Only when the
// whole fleet is dark does route() hand back the best probed candidate
// (its queue holds the task until a recovery).
//
// Quarantine extension (gray failures, runtime/health.hpp): a server
// flagged quarantined in its ServerState is treated as unavailable by
// every probe and scan — unless the fleet is otherwise dark, in which
// case a quarantined-but-up server is preferred over a fully dark one
// (degraded service beats parking the task on a dead queue).
//
// Consistency contract: the StateView handed to route() must read LIVE
// server state at the arrival instant. Cached or snapshot-based views
// reintroduce the read-during-departure staleness bug class the policy
// oracle tests pin down (see sim::PolicyDispatcher).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/alias_table.hpp"
#include "util/fast_rng.hpp"
#include "util/status.hpp"

namespace blade::policy {

enum class PolicyKind : std::uint8_t {
  Random,
  RoundRobin,
  Jsq,
  JsqD,
  SpeedBiasedD,
  HeteroJsqD,
  WeightedJsqD,
  OptSplit,
};

[[nodiscard]] const char* to_string(PolicyKind kind) noexcept;

/// Parses a policy name ("jsq-d", "opt-split", ...). Unknown names
/// return ErrorCode::InvalidArgument listing the accepted spellings.
[[nodiscard]] Expected<PolicyKind> parse_policy_kind(std::string_view name);

/// All kinds, for sweeping (bench matrix, round-trip tests).
[[nodiscard]] std::vector<PolicyKind> all_policy_kinds();

/// True for the kinds that probe queue state per arrival (jsq, jsq-d,
/// sb-d, ha-jsq-d, wjsq-d); false for the stateless ones.
[[nodiscard]] bool probes_queue_state(PolicyKind kind) noexcept;

/// True for the kinds that need per-server weights in the config
/// (wjsq-d, opt-split); sb-d derives its weights from the speeds.
[[nodiscard]] bool needs_weights(PolicyKind kind) noexcept;

/// One server's dispatch-relevant state at the probe instant.
struct ServerState {
  double speed = 1.0;         ///< s_i
  unsigned blades = 1;        ///< installed m_i
  unsigned available = 1;     ///< usable blades now (0 = failed/drained)
  std::size_t in_system = 0;  ///< tasks running + queued now
  /// Health-quarantined (gray failure): blades are nominally up but the
  /// control plane has fenced the server off. Routed around unless the
  /// fleet is otherwise dark.
  bool quarantined = false;
};

/// Non-owning fleet accessor handed to route(): a C-style closure, so
/// the simulator adapter pays one indirect call per probe — no virtual
/// dispatch, no per-arrival O(n) snapshot copies (the probe read stays
/// consistent at event time by construction).
struct StateView {
  using Fn = ServerState (*)(const void*, std::size_t);

  const void* ctx = nullptr;
  Fn fn = nullptr;
  std::size_t n = 0;

  [[nodiscard]] ServerState operator()(std::size_t i) const { return fn(ctx, i); }
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::JsqD;
  unsigned probe_d = 2;       ///< probes per arrival for the d-choices kinds
  std::uint64_t seed = 1;     ///< RNG seed (FastRng, SplitMix64-decorrelated)
  std::uint64_t stream = 0;   ///< RNG stream id (e.g. the dispatch thread)
  /// Probe/sampling weights for wjsq-d and opt-split — typically the
  /// optimizer's published alias weights (rates or fractions; they are
  /// normalized). sb-d ignores this and uses the speeds from the view.
  std::vector<double> weights;
  /// Speeds used to build sb-d's probe table (probe probability
  /// proportional to s_i). Required for sb-d, ignored otherwise.
  std::vector<double> speeds;

  /// Why this config cannot drive a fleet of n servers, or ok.
  [[nodiscard]] Status validate(std::size_t n) const;
};

/// Everything the policy counted since construction. Plain counters so
/// tests and benches can assert without BLADE_OBS; the obs registry gets
/// the same increments under the `policy.*` names when instrumented.
struct PolicyCounters {
  std::uint64_t routed = 0;          ///< route() calls
  std::uint64_t probes = 0;          ///< distinct servers whose state was read
  std::uint64_t redraws = 0;         ///< duplicate/unavailable sample rejections
  std::uint64_t ties = 0;            ///< equal-key comparisons during selection
  std::uint64_t herd_events = 0;     ///< every available probe was busy
  std::uint64_t fallback_scans = 0;  ///< O(n) scans after an all-dark probe set
  std::uint64_t quarantine_skips = 0;  ///< up-but-quarantined candidates routed around
};

class DispatchPolicy {
 public:
  /// Throws std::invalid_argument when cfg.validate(n) fails.
  DispatchPolicy(PolicyConfig cfg, std::size_t n);

  /// Destination server index for one arriving task. `view.n` must equal
  /// the n the policy was built for.
  [[nodiscard]] std::size_t route(const StateView& view);

  [[nodiscard]] const PolicyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const PolicyCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const char* name() const noexcept { return to_string(cfg_.kind); }
  [[nodiscard]] std::size_t fleet_size() const noexcept { return n_; }

 private:
  [[nodiscard]] std::size_t route_sampled(const StateView& view);
  [[nodiscard]] std::size_t route_round_robin(const StateView& view);
  [[nodiscard]] std::size_t route_scan(const StateView& view);
  [[nodiscard]] std::size_t route_probed(const StateView& view);
  /// Fills probes_ with cfg_.probe_d distinct indices sampled from
  /// probe_table_ (weighted, without replacement).
  void sample_probes();
  /// Best available candidate among `count` probes_ entries by the
  /// policy's key; npos when none is available.
  [[nodiscard]] std::size_t select(const StateView& view, std::size_t count,
                                   bool respect_availability);

  PolicyConfig cfg_;
  std::size_t n_ = 0;
  bool hetero_key_ = false;  ///< normalized-work compare (ha-jsq-d, wjsq-d)
  std::optional<util::AliasTable> probe_table_;
  util::FastRng rng_;
  std::vector<std::uint32_t> probes_;      ///< scratch: sampled candidate indices
  std::vector<std::uint64_t> seen_epoch_;  ///< scratch: dedupe tags (O(d) reset)
  std::uint64_t epoch_ = 0;
  std::size_t rr_next_ = 0;
  PolicyCounters counters_;
};

/// Exact assignment fractions in the lambda -> 0 limit (every server
/// empty and fully available) — the light-traffic oracle in the style of
/// Izagirre & Makowski's heterogeneous power-of-two analysis: with all
/// queues empty the routing decision is a pure function of the probe
/// distribution and the policy's comparison key, so the per-server
/// fractions have a closed combinatorial form. Supports every
/// non-probing kind and the d = 2 probing kinds (the test battery's
/// JSQ(2) oracle); throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> light_traffic_fractions(
    const PolicyConfig& cfg, const std::vector<ServerState>& fleet);

}  // namespace blade::policy
