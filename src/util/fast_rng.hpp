// xoshiro256++ with SplitMix64 stream seeding: ~1 ns per draw, one
// 256-bit state per owner, no heap. Decorrelated streams come from
// seeding SplitMix64 with (seed, stream) exactly like sim::RngStream
// derives its engines, so per-thread / per-policy sequences are
// independent. Lives in util so both the runtime data plane
// (DispatchShard) and the dispatch-policy family can share one
// generator without layering cycles; runtime::FastRng is an alias.
#pragma once

#include <cstdint>

namespace blade::util {

/// SplitMix64 step — the same mixing function as sim::splitmix64 (the
/// sim layer forwards here), kept in util so sub-sim layers can derive
/// decorrelated stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class FastRng {
 public:
  explicit FastRng(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    // Fold the stream id into the seed through SplitMix64, then iterate
    // it to fill the 256-bit state. SplitMix64 output is
    // equidistributed, so an all-zero state (the one state xoshiro
    // cannot leave) is unreachable in practice; guard anyway since it
    // is cheap and the failure is silent.
    std::uint64_t z = splitmix64(seed ^ splitmix64(stream));
    for (std::uint64_t& s : s_) {
      z = splitmix64(z);
      s = z;
    }
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): the high 53 bits of one draw.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace blade::util
