// Minimal JSON emission (objects, arrays, strings, numbers, booleans) so
// benches and the CLI can produce machine-readable results without an
// external dependency, plus an equally minimal parser so the obs
// exporters can be round-tripped (tools/obs_report, exporter tests). The
// library still consumes specs through the simpler cli::spec format.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace blade::util {

/// Escapes a string for inclusion inside JSON quotes.
[[nodiscard]] std::string json_escape(const std::string& s);

/// A write-once JSON value builder with streaming semantics.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("fig04");
///   w.key("points").begin_array();
///   w.value(1.0).value(2.5);
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Emits an object key (must be inside an object).
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(bool v);

  /// The document so far; valid JSON once all scopes are closed.
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  /// True when every begun scope has been ended.
  [[nodiscard]] bool complete() const noexcept { return stack_.empty() && wrote_root_; }

 private:
  void pre_value();

  std::string out_;
  // Stack entries: 'o' = object (expecting key), 'v' = object (expecting
  // value after key), 'a' = array.
  std::vector<char> stack_;
  std::vector<bool> first_;  // first element of each open scope
  bool wrote_root_ = false;
};

/// A parsed JSON document node. Numbers are always doubles (the exporters
/// emit nothing wider than 2^53); objects preserve insertion order.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::Null; }

  /// Member lookup for objects; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Member access that throws std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
};

/// Parses a complete JSON document (throws std::invalid_argument on any
/// syntax error or trailing garbage). Accepts exactly what JsonWriter
/// emits plus standard whitespace and unicode escapes.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace blade::util
