#include "util/fileio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace blade::util {

namespace {

std::string errno_context(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

blade::Status write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return make_error(ErrorCode::Internal, errno_context("write_file_atomic: cannot open", tmp));
  }
  const std::size_t written = content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  // fflush before fclose so a write error surfaces here, while the temp
  // file can still be discarded without touching `path`.
  if (written != content.size() || std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return make_error(ErrorCode::Internal, errno_context("write_file_atomic: cannot write", tmp));
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return make_error(ErrorCode::Internal, errno_context("write_file_atomic: cannot close", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return make_error(ErrorCode::Internal, errno_context("write_file_atomic: cannot rename", path));
  }
  return {};
}

Expected<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(ErrorCode::Internal, errno_context("read_file: cannot open", path));
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return make_error(ErrorCode::Internal, errno_context("read_file: cannot read", path));
  }
  return out;
}

}  // namespace blade::util
