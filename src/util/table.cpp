#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace blade::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match header count");
  }
  rows_.push_back(std::move(cells));
}

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) throw std::out_of_range("Table::set_align: bad column");
  aligns_[column] = align;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out(widths[c], ' ');
    if (aligns_[c] == Align::Left) {
      std::copy(s.begin(), s.end(), out.begin());
    } else {
      std::copy(s.begin(), s.end(), out.begin() + static_cast<std::ptrdiff_t>(widths[c] - s.size()));
    }
    return out;
  };

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) os << std::string(widths[c] + 2, '-') << '+';
    os << '\n';
  };

  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << ' ' << pad(headers_[c], c) << " |";
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) os << ' ' << pad(row[c], c) << " |";
    os << '\n';
  }
  rule();
  return os.str();
}

std::string fixed(double x, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << x;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.render(); }

}  // namespace blade::util
