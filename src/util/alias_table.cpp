#include "util/alias_table.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace blade::util {

Status AliasTable::validate_weights(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) return make_error(ErrorCode::InvalidArgument, "AliasTable: no weights");
  if (n > static_cast<std::size_t>(UINT32_MAX)) {
    return make_error(ErrorCode::InvalidArgument, "AliasTable: too many weights");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    if (!std::isfinite(w) || w < 0.0) {
      std::ostringstream os;
      os << "AliasTable: weights must be finite and >= 0 (weight[" << i << "] = " << w << ")";
      return make_error(ErrorCode::InvalidArgument, os.str());
    }
    total += w;
  }
  if (!(total > 0.0)) {
    return make_error(ErrorCode::InvalidArgument, "AliasTable: all weights are zero");
  }
  return {};
}

Expected<AliasTable> AliasTable::try_make(std::span<const double> weights) {
  if (Status s = validate_weights(weights); !s.ok()) return s.error();
  AliasTable table;
  table.build(weights);
  return table;
}

AliasTable::AliasTable(std::span<const double> weights) {
  if (Status s = validate_weights(weights); !s.ok()) {
    throw std::invalid_argument(s.error().context);
  }
  build(weights);
}

void AliasTable::build(std::span<const double> weights) {
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) total += w;

  fractions_.resize(n);
  for (std::size_t i = 0; i < n; ++i) fractions_[i] = weights[i] / total;

  // Vose's stack construction over the weights scaled to mean 1. A zero
  // weight scales to exactly 0, lands on the small stack, and keeps
  // acceptance probability 0 — it can only redirect to its alias.
  std::vector<double> scaled(n);
  std::size_t heaviest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = fractions_[i] * static_cast<double>(n);
    if (fractions_[i] > fractions_[heaviest]) heaviest = i;
  }
  buckets_.assign(n, Bucket{0.0, static_cast<std::uint32_t>(heaviest), 0});
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    buckets_[s].prob = scaled[s];
    buckets_[s].alias = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    buckets_[large.back()].prob = 1.0;
    large.pop_back();
  }
  // Floating-point leftovers on the small stack: a positive weight is a
  // full bucket (its mass already matched within rounding); an exact
  // zero keeps prob 0 so sample() always takes its (positive) alias.
  while (!small.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    buckets_[s].prob = fractions_[s] > 0.0 ? 1.0 : 0.0;
  }
}

}  // namespace blade::util
