#include "util/csv.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace blade::util {

std::size_t Csv::add_column(std::string name) {
  names_.push_back(std::move(name));
  cols_.emplace_back();
  return names_.size() - 1;
}

void Csv::push(std::size_t col, double value) {
  if (col >= cols_.size()) throw std::out_of_range("Csv::push: bad column index");
  cols_[col].push_back(value);
}

void Csv::push_row(const std::vector<double>& row) {
  if (row.size() != cols_.size()) {
    throw std::invalid_argument("Csv::push_row: row size does not match column count");
  }
  for (std::size_t c = 0; c < row.size(); ++c) cols_[c].push_back(row[c]);
}

std::size_t Csv::rows() const {
  std::size_t r = 0;
  for (const auto& c : cols_) r = std::max(r, c.size());
  return r;
}

void Csv::write(std::ostream& os, int precision) const {
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    if (cols_[c].size() != cols_[0].size()) {
      throw std::logic_error("Csv::write: ragged columns");
    }
  }
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(names_[c]);
  }
  os << '\n';
  const std::size_t n = rows();
  std::ostringstream num;
  num.setf(std::ios::fixed);
  num.precision(precision);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      if (c) os << ',';
      num.str("");
      num << cols_[c][r];
      os << num.str();
    }
    os << '\n';
  }
}

std::string Csv::render(int precision) const {
  std::ostringstream os;
  write(os, precision);
  return os.str();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace blade::util
