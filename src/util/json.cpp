#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace blade::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple root values");
    wrote_root_ = true;
    return;
  }
  char& top = stack_.back();
  if (top == 'o') throw std::logic_error("JsonWriter: expected key inside object");
  if (top == 'v') {
    top = 'o';  // value after key consumed; next comes a key
    return;
  }
  // array
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back('o');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: end_object outside object");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back('a');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    throw std::logic_error("JsonWriter: end_array outside array");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  stack_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace blade::util
