#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace blade::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple root values");
    wrote_root_ = true;
    return;
  }
  char& top = stack_.back();
  if (top == 'o') throw std::logic_error("JsonWriter: expected key inside object");
  if (top == 'v') {
    top = 'o';  // value after key consumed; next comes a key
    return;
  }
  // array
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back('o');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: end_object outside object");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back('a');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    throw std::logic_error("JsonWriter: end_array outside array");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  stack_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::out_of_range("JsonValue::at: missing key '" + key + "'");
  return *v;
}

namespace {

// Recursive-descent parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("parse_json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        v.boolean = (c == 't');
        if (!consume_literal(c == 't' ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the basic-multilingual-plane code point (the
          // writer only ever emits control characters this way).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool saw_digit = false;
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        saw_digit = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!saw_digit) fail("invalid number");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

}  // namespace blade::util
