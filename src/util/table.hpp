// ASCII table rendering for bench/report output in the style of the
// paper's Tables 1 and 2.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace blade::util {

/// Column alignment for table cells.
enum class Align { Left, Right };

/// A simple monospace table builder.
///
/// Usage:
///   Table t({"i", "m_i", "lambda'_i"});
///   t.add_row({"1", "2", "0.6652046"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Sets alignment of a column (default: Right, which suits numbers).
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with unicode-free box drawing (pipes and dashes).
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

/// Formats a double with fixed precision (default 7, matching the paper's
/// tables which report 7 decimal digits).
[[nodiscard]] std::string fixed(double x, int precision = 7);

/// Writes the table to a stream; equivalent to `os << t.render()`.
std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace blade::util
