#include "util/status.hpp"

namespace blade {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Ok:
      return "ok";
    case ErrorCode::InvalidArgument:
      return "invalid_argument";
    case ErrorCode::Infeasible:
      return "infeasible";
    case ErrorCode::BracketNotFound:
      return "bracket_not_found";
    case ErrorCode::NonConvergence:
      return "non_convergence";
    case ErrorCode::NonFinite:
      return "non_finite";
    case ErrorCode::BudgetExceeded:
      return "budget_exceeded";
    case ErrorCode::ParseError:
      return "parse_error";
    case ErrorCode::StaleState:
      return "stale_state";
    case ErrorCode::Internal:
      return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = blade::to_string(code);
  if (!context.empty()) {
    out += ": ";
    out += context;
  }
  return out;
}

std::string Status::to_string() const {
  return ok() ? std::string("ok") : error().to_string();
}

}  // namespace blade
