#include "util/histogram.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace blade::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: need hi > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto b = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[b < counts_.size() ? b : counts_.size() - 1];
}

double Histogram::quantile(double p) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile: empty histogram");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("Histogram::quantile: p in [0,1]");
  const double target = p * static_cast<double>(total_);
  double acc = static_cast<double>(underflow_);
  if (target <= acc) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = acc + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const double frac = (target - acc) / static_cast<double>(counts_[b]);
      return lo_ + (static_cast<double>(b) + frac) * width_;
    }
    acc = next;
  }
  return hi_;  // inside the overflow mass
}

double Histogram::ccdf(double x) const {
  if (total_ == 0) throw std::logic_error("Histogram::ccdf: empty histogram");
  if (x < lo_) return 1.0 - static_cast<double>(underflow_) / static_cast<double>(total_);
  if (x >= hi_) return static_cast<double>(overflow_) / static_cast<double>(total_);
  const auto b = static_cast<std::size_t>((x - lo_) / width_);
  std::uint64_t above = overflow_;
  for (std::size_t j = b + 1; j < counts_.size(); ++j) above += counts_[j];
  // Split the containing bin proportionally.
  const double in_bin = static_cast<double>(counts_[b]);
  const double frac_above = (lo_ + (static_cast<double>(b) + 1.0) * width_ - x) / width_;
  return (static_cast<double>(above) + in_bin * frac_above) / static_cast<double>(total_);
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible layout");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::size_t log_bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the underflow bucket
  int exp = 0;
  std::frexp(v, &exp);  // v = f * 2^exp with f in [0.5, 1), so v in [2^(exp-1), 2^exp)
  const long b = static_cast<long>(exp) - kLogBucketMinExp;
  if (b < 1) return 0;
  if (b >= static_cast<long>(kLogBucketCount) - 1) return kLogBucketCount - 1;
  return static_cast<std::size_t>(b);
}

double log_bucket_lower(std::size_t b) noexcept {
  if (b == 0) return 0.0;
  return std::ldexp(1.0, kLogBucketMinExp + static_cast<int>(b) - 1);
}

double log_bucket_upper(std::size_t b) noexcept {
  if (b + 1 >= kLogBucketCount) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kLogBucketMinExp + static_cast<int>(b));
}

void LogHistogram::add(double v) noexcept {
  ++counts_[log_bucket_index(v)];
  ++total_;
  sum_ += v;
}

void LogHistogram::add_bucket(std::size_t b, std::uint64_t n, double sum) noexcept {
  if (b >= kLogBucketCount || n == 0) return;
  counts_[b] += n;
  total_ += n;
  sum_ += sum;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (std::size_t b = 0; b < kLogBucketCount; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
}

double LogHistogram::quantile(double p) const {
  if (total_ == 0) throw std::logic_error("LogHistogram::quantile: empty histogram");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("LogHistogram::quantile: p in [0,1]");
  const double target = p * static_cast<double>(total_);
  double acc = 0.0;
  for (std::size_t b = 0; b < kLogBucketCount; ++b) {
    const double next = acc + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const double lo = log_bucket_lower(b);
      double hi = log_bucket_upper(b);
      if (b == 0) return lo;  // underflow mass reports the floor
      if (!std::isfinite(hi)) hi = 2.0 * lo;  // overflow: report within one octave
      const double frac = (target - acc) / static_cast<double>(counts_[b]);
      // Geometric interpolation: edges are exponential, so interpolate in
      // log space for an estimate unbiased against the layout.
      return lo * std::pow(hi / lo, frac);
    }
    acc = next;
  }
  return log_bucket_lower(kLogBucketCount - 1);
}

}  // namespace blade::util
