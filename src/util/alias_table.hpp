// Walker/Vose alias method: O(n) construction, O(1) sampling from a
// fixed discrete distribution. The runtime controller publishes one of
// these per reconvergence epoch and the dispatcher draws from it per
// task, so sampling must not scan — two uniforms, one comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace blade::util {

class AliasTable {
 public:
  /// @param weights  unnormalized sampling weights; every entry must be
  ///                 finite and >= 0, at least one must be > 0. Zero
  ///                 entries are legal (a removed server) and are never
  ///                 returned by sample().
  explicit AliasTable(std::span<const double> weights);

  /// Why `weights` cannot back a table, or ok: rejects empty input,
  /// NaN/Inf/negative entries (with the offending index), an all-zero
  /// vector, and more than 2^32 entries. The constructor and try_make
  /// enforce exactly this predicate, so callers that must not throw
  /// (the runtime publish path) can pre-validate.
  [[nodiscard]] static Status validate_weights(std::span<const double> weights);

  /// Non-throwing construction: the table, or validate_weights' error.
  [[nodiscard]] static Expected<AliasTable> try_make(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Index i with probability fractions()[i], from two independent
  /// uniforms in [0, 1): u1 picks the bucket, u2 the bucket-vs-alias
  /// coin. Deterministic in (u1, u2), so a seeded RNG stream pins the
  /// whole routing sequence.
  [[nodiscard]] std::size_t sample(double u1, double u2) const noexcept;

  /// The normalized weights (sums to 1): the routing fractions this
  /// table realizes.
  [[nodiscard]] const std::vector<double>& fractions() const noexcept { return fractions_; }

 private:
  AliasTable() = default;  // used by try_make after validation
  void build(std::span<const double> weights);

  std::vector<double> prob_;           ///< bucket acceptance probability
  std::vector<std::uint32_t> alias_;   ///< bucket alias target
  std::vector<double> fractions_;
};

}  // namespace blade::util
