// Walker/Vose alias method: O(n) construction, O(1) sampling from a
// fixed discrete distribution. The runtime controller publishes one of
// these per reconvergence epoch and the dispatcher draws from it per
// task, so sampling must not scan — two uniforms, one comparison.
//
// Storage is a single interleaved bucket array (acceptance probability
// and alias index side by side, 16 bytes per bucket) rather than two
// parallel vectors: a sample touches exactly one bucket, so the fused
// layout halves the cache lines the dispatch hot path pulls per draw.
// The dispatch-shard regression tests pin the routed sequence bitwise
// against a two-array reference on seeded RNG streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace blade::util {

class AliasTable {
 public:
  /// @param weights  unnormalized sampling weights; every entry must be
  ///                 finite and >= 0, at least one must be > 0. Zero
  ///                 entries are legal (a removed server) and are never
  ///                 returned by sample().
  explicit AliasTable(std::span<const double> weights);

  /// Why `weights` cannot back a table, or ok: rejects empty input,
  /// NaN/Inf/negative entries (with the offending index), an all-zero
  /// vector, and more than 2^32 entries. The constructor and try_make
  /// enforce exactly this predicate, so callers that must not throw
  /// (the runtime publish path) can pre-validate.
  [[nodiscard]] static Status validate_weights(std::span<const double> weights);

  /// Non-throwing construction: the table, or validate_weights' error.
  [[nodiscard]] static Expected<AliasTable> try_make(std::span<const double> weights);

  /// One sample's working set: acceptance probability and alias target
  /// interleaved so u1's bucket pick and u2's coin resolve within a
  /// single 16-byte load.
  struct Bucket {
    double prob = 0.0;          ///< bucket acceptance probability
    std::uint32_t alias = 0;    ///< bucket alias target
    std::uint32_t pad = 0;      ///< keeps buckets 16-byte aligned
  };
  static_assert(sizeof(Bucket) == 16, "AliasTable::Bucket must stay one 16-byte slot");

  [[nodiscard]] std::size_t size() const noexcept { return buckets_.size(); }

  /// Index i with probability fractions()[i], from two independent
  /// uniforms in [0, 1): u1 picks the bucket, u2 the bucket-vs-alias
  /// coin. Deterministic in (u1, u2), so a seeded RNG stream pins the
  /// whole routing sequence.
  [[nodiscard]] std::size_t sample(double u1, double u2) const noexcept {
    const std::size_t n = buckets_.size();
    std::size_t i = static_cast<std::size_t>(u1 * static_cast<double>(n));
    if (i >= n) i = n - 1;  // guards u1 == 1.0 and rounding at the edge
    const Bucket& b = buckets_[i];
    return u2 < b.prob ? i : b.alias;
  }

  /// The normalized weights (sums to 1): the routing fractions this
  /// table realizes.
  [[nodiscard]] const std::vector<double>& fractions() const noexcept { return fractions_; }

  /// Bucket introspection for the layout regression tests (and any
  /// exporter that wants the raw alias structure).
  [[nodiscard]] double bucket_prob(std::size_t i) const { return buckets_.at(i).prob; }
  [[nodiscard]] std::uint32_t bucket_alias(std::size_t i) const { return buckets_.at(i).alias; }

 private:
  AliasTable() = default;  // used by try_make after validation
  void build(std::span<const double> weights);

  std::vector<Bucket> buckets_;  ///< fused prob/alias pairs, one per index
  std::vector<double> fractions_;
};

}  // namespace blade::util
