// Small string/formatting helpers shared across reports and benches.
#pragma once

#include <string>
#include <vector>

namespace blade::util {

/// Joins elements with a separator: join({"a","b"}, ", ") == "a, b".
[[nodiscard]] std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& s, char delim);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string trim(const std::string& s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix);

/// Renders a vector<double> like "[1.000, 2.000]" (for logs and errors).
[[nodiscard]] std::string to_string(const std::vector<double>& xs, int precision = 4);

}  // namespace blade::util
