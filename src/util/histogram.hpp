// Fixed-bin histogram with an overflow bin and interpolated quantiles.
// Used by the simulator to estimate response-time percentiles (the
// priority-discipline generic class has no closed-form distribution).
#pragma once

#include <cstdint>
#include <vector>

namespace blade::util {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); samples >= hi land in the overflow bin,
  /// samples < lo in the underflow bin.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t b) const { return counts_.at(b); }

  /// Quantile estimate with linear interpolation inside the bin.
  /// Underflow mass counts at `lo`, overflow clamps to `hi`.
  /// Requires count() > 0 and p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

  /// Fraction of samples strictly above x (bin-resolution estimate).
  [[nodiscard]] double ccdf(double x) const;

  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace blade::util
