// Fixed-bin histogram with an overflow bin and interpolated quantiles.
// Used by the simulator to estimate response-time percentiles (the
// priority-discipline generic class has no closed-form distribution).
//
// Also defines the process-wide log-bucket layout (one bucket per power
// of two) shared by LogHistogram and the obs metrics subsystem, so every
// histogram in an exported snapshot has identical, mergeable edges.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace blade::util {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); samples >= hi land in the overflow bin,
  /// samples < lo in the underflow bin.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t b) const { return counts_.at(b); }

  /// Quantile estimate with linear interpolation inside the bin.
  /// Underflow mass counts at `lo`, overflow clamps to `hi`.
  /// Requires count() > 0 and p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

  /// Fraction of samples strictly above x (bin-resolution estimate).
  [[nodiscard]] double ccdf(double x) const;

  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

// ---------------------------------------------------------------------------
// Shared log-bucket layout.
//
// Bucket b (1 <= b <= kLogBucketCount - 2) holds values in
// [2^(kLogBucketMinExp + b - 1), 2^(kLogBucketMinExp + b)). Bucket 0 is the
// underflow bucket (v < 2^kLogBucketMinExp, including 0 and negatives) and
// the last bucket is the overflow bucket. The span 2^-40 .. 2^40 covers
// sub-nanosecond timings up to ~10^12-count magnitudes with one layout, so
// any two histograms merge bucket-wise with no edge negotiation.

inline constexpr int kLogBucketMinExp = -40;
inline constexpr std::size_t kLogBucketCount = 82;  // underflow + 80 octaves + overflow

/// Bucket index for a sample (0 for v < 2^kLogBucketMinExp or non-finite
/// negatives; the last bucket for anything at or beyond the top edge).
[[nodiscard]] std::size_t log_bucket_index(double v) noexcept;

/// Lower edge of bucket b; bucket 0 reports 0 (its mass is "below range").
[[nodiscard]] double log_bucket_lower(std::size_t b) noexcept;

/// Upper edge of bucket b (exclusive); the overflow bucket reports +inf.
[[nodiscard]] double log_bucket_upper(std::size_t b) noexcept;

/// Fixed-layout log-bucket histogram: every instance shares the global
/// edges above, so merge is plain bucket-wise addition and thread-local
/// shards can be combined without coordination. Tracks count and sum so
/// means survive the bucketing exactly.
class LogHistogram {
 public:
  void add(double v) noexcept;
  /// Adds `n` samples already attributed to bucket `b` with total mass
  /// `sum` (the merge primitive used by the obs thread-local sinks).
  void add_bucket(std::size_t b, std::uint64_t n, double sum) noexcept;

  void merge(const LogHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const { return counts_.at(b); }

  /// Quantile estimate: geometric interpolation inside the containing
  /// bucket (edges are exponential, so the geometric midpoint is the
  /// unbiased choice). Requires count() > 0 and p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

 private:
  std::array<std::uint64_t, kLogBucketCount> counts_{};
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace blade::util
