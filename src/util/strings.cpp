#include "util/strings.hpp"

#include <cctype>
#include <sstream>

namespace blade::util {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string to_string(const std::vector<double>& xs, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ", ";
    os << xs[i];
  }
  os << ']';
  return os.str();
}

}  // namespace blade::util
