// Typed error taxonomy for the non-throwing solver and runtime paths.
// Every failure the stack can produce is one ErrorCode plus a context
// string; fallible operations return Expected<T> (value or Error) or
// Status (Error or nothing). The throwing APIs stay available as thin
// wrappers that map an Error back onto the exception hierarchy, so
// callers choose per call site: exceptions at the edges, typed statuses
// on the hot path where a failed solve must be contained, not unwound.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace blade {

/// Every failure class the solver/runtime stack distinguishes. Codes are
/// coarse on purpose: the context string carries the instance-specific
/// detail, the code is what containment logic branches on.
enum class ErrorCode : unsigned char {
  Ok = 0,
  InvalidArgument,  ///< caller-supplied value out of domain
  Infeasible,       ///< lambda' outside (0, lambda'_max) for the topology
  BracketNotFound,  ///< doubling expansion exhausted without a sign change
  NonConvergence,   ///< iteration cap reached with the bracket still wide
  NonFinite,        ///< NaN/Inf detected in an evaluation
  BudgetExceeded,   ///< evaluation or wall-time watchdog tripped
  ParseError,       ///< malformed textual input (traces, checkpoints)
  StaleState,       ///< restored/cached state no longer matches the world
  Internal,         ///< invariant violation; always a bug
};

/// Stable lowercase name for an ErrorCode ("non_convergence", ...).
[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

/// One failure: what class it is plus where/why it happened.
struct Error {
  ErrorCode code = ErrorCode::Internal;
  std::string context;

  /// "<code>: <context>" (just the code name when context is empty).
  [[nodiscard]] std::string to_string() const;
};

/// Either a T or an Error. Deliberately tiny — no monadic combinators,
/// just the checks containment code needs. value() on an error state
/// throws std::logic_error: reaching it means a caller skipped the
/// check, which is a bug, not a recoverable failure.
template <typename T>
class Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Expected(Error error) : v_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept { return v_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & { return std::get<0>(checked()); }
  [[nodiscard]] const T& value() const& { return std::get<0>(const_cast<Expected*>(this)->checked()); }
  [[nodiscard]] T&& value() && { return std::get<0>(std::move(checked())); }

  /// The held value, or `fallback` on error.
  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(v_) : std::move(fallback);
  }

  /// Only valid when !has_value().
  [[nodiscard]] const Error& error() const noexcept { return std::get<1>(v_); }

 private:
  std::variant<T, Error>& checked() {
    if (!has_value()) {
      throw std::logic_error("Expected::value() on error: " + std::get<1>(v_).to_string());
    }
    return v_;
  }

  std::variant<T, Error> v_;
};

/// Success, or an Error. Default-constructed Status is success.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// Only valid when !ok().
  [[nodiscard]] const Error& error() const noexcept { return *error_; }

  /// "ok" or the error's to_string().
  [[nodiscard]] std::string to_string() const;

 private:
  std::optional<Error> error_;
};

/// Shorthand for the common construction pattern.
[[nodiscard]] inline Error make_error(ErrorCode code, std::string context) {
  return Error{code, std::move(context)};
}

}  // namespace blade
