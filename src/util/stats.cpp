#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace blade::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double ConfidenceInterval::relative_width() const noexcept {
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return half_width / std::abs(mean);
}

namespace {

// Two-sided Student-t critical values t_{df, 1-(1-level)/2} for the levels
// the simulator actually uses. Rows: df 1..30, then selected large df.
struct TRow {
  double q90, q95, q99;
};

constexpr TRow kSmallDf[] = {
    {6.314, 12.706, 63.657}, {2.920, 4.303, 9.925}, {2.353, 3.182, 5.841},
    {2.132, 2.776, 4.604},   {2.015, 2.571, 4.032}, {1.943, 2.447, 3.707},
    {1.895, 2.365, 3.499},   {1.860, 2.306, 3.355}, {1.833, 2.262, 3.250},
    {1.812, 2.228, 3.169},   {1.796, 2.201, 3.106}, {1.782, 2.179, 3.055},
    {1.771, 2.160, 3.012},   {1.761, 2.145, 2.977}, {1.753, 2.131, 2.947},
    {1.746, 2.120, 2.921},   {1.740, 2.110, 2.898}, {1.734, 2.101, 2.878},
    {1.729, 2.093, 2.861},   {1.725, 2.086, 2.845}, {1.721, 2.080, 2.831},
    {1.717, 2.074, 2.819},   {1.714, 2.069, 2.807}, {1.711, 2.064, 2.797},
    {1.708, 2.060, 2.787},   {1.706, 2.056, 2.779}, {1.703, 2.052, 2.771},
    {1.701, 2.048, 2.763},   {1.699, 2.045, 2.756}, {1.697, 2.042, 2.750}};

constexpr TRow kDf40{1.684, 2.021, 2.704};
constexpr TRow kDf60{1.671, 2.000, 2.660};
constexpr TRow kDf120{1.658, 1.980, 2.617};
constexpr TRow kNormal{1.645, 1.960, 2.576};

double pick(const TRow& row, double level) {
  if (level <= 0.925) return row.q90;
  if (level <= 0.97) return row.q95;
  return row.q99;
}

}  // namespace

double t_quantile(std::uint64_t df, double level) {
  if (df == 0) throw std::invalid_argument("t_quantile: df must be >= 1");
  if (df <= 30) return pick(kSmallDf[df - 1], level);
  if (df <= 40) return pick(kDf40, level);
  if (df <= 60) return pick(kDf60, level);
  if (df <= 120) return pick(kDf120, level);
  return pick(kNormal, level);
}

ConfidenceInterval t_confidence_interval(std::span<const double> samples, double level) {
  if (samples.size() < 2) {
    throw std::invalid_argument("t_confidence_interval: need at least 2 samples");
  }
  RunningStats rs;
  for (double x : samples) rs.add(x);
  const double t = t_quantile(samples.size() - 1, level);
  return ConfidenceInterval{rs.mean(), t * rs.std_error(), level};
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.mean();
}

double stddev_of(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double coefficient_of_variation(std::span<const double> xs) noexcept {
  const double m = mean_of(xs);
  if (m == 0.0) return 0.0;
  return stddev_of(xs) / m;
}

double mean_abs_deviation(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x - m);
  acc /= static_cast<double>(xs.size());
  return m != 0.0 ? acc / std::abs(m) : acc;
}

}  // namespace blade::util
