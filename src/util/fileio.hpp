// Small file I/O helpers with typed errors.
//
// write_file_atomic is the crash-safe persistence primitive for
// checkpoints: the content lands in "<path>.tmp" first (written,
// flushed, closed), then moves into place with std::rename — atomic on
// POSIX within a filesystem — so a crash at any instant leaves either
// the previous complete file or the new complete file, never a torn
// prefix. Readers of `path` therefore always see a whole document.
#pragma once

#include <string>

#include "util/status.hpp"

namespace blade::util {

/// Atomically replaces `path` with `content` via a temp file + rename.
/// Returns ErrorCode::Internal (with errno context) when any step fails;
/// the temp file is removed on failure.
[[nodiscard]] blade::Status write_file_atomic(const std::string& path, const std::string& content);

/// Reads the whole file into a string. Returns ErrorCode::Internal when
/// the file cannot be opened or read.
[[nodiscard]] Expected<std::string> read_file(const std::string& path);

}  // namespace blade::util
