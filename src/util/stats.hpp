// Running statistics: Welford accumulators, confidence intervals, and
// summary helpers used by the simulator's metrics and the bench reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace blade::util {

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; supports merging partial
/// accumulators produced by parallel workers.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 if fewer than two samples.
  [[nodiscard]] double std_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< mean ± half_width
  double level = 0.95;      ///< confidence level used

  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept { return x >= lo() && x <= hi(); }
  /// half_width / |mean|; infinity when mean == 0.
  [[nodiscard]] double relative_width() const noexcept;
};

/// CI for the mean of i.i.d. replications using a Student-t quantile.
/// Supported levels: 0.90, 0.95, 0.99 (nearest is used). Requires n >= 2.
[[nodiscard]] ConfidenceInterval t_confidence_interval(std::span<const double> samples,
                                                       double level = 0.95);

/// Student-t upper quantile t_{df, (1+level)/2}. Exact for the tabulated
/// small df, asymptotic (normal quantile) beyond df = 120.
[[nodiscard]] double t_quantile(std::uint64_t df, double level);

/// Arithmetic mean of a span; 0 for empty input.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Sample standard deviation of a span; 0 for fewer than two samples.
[[nodiscard]] double stddev_of(std::span<const double> xs) noexcept;

/// Coefficient of variation of a span (stddev / mean); 0 when mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs) noexcept;

/// Population heterogeneity measure used in the paper-style studies:
/// normalized mean absolute deviation from the mean.
[[nodiscard]] double mean_abs_deviation(std::span<const double> xs) noexcept;

}  // namespace blade::util
