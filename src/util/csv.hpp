// Minimal CSV emission for figure series so bench output can be plotted
// directly (each bench prints a paper-figure data series).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace blade::util {

/// Column-oriented CSV document: a header row plus numeric columns.
///
/// All columns must end up the same length before rendering.
class Csv {
 public:
  /// Adds a column and returns its index.
  std::size_t add_column(std::string name);

  /// Appends a value to column `col`.
  void push(std::size_t col, double value);

  /// Appends one full row (one value per existing column, in order).
  void push_row(const std::vector<double>& row);

  [[nodiscard]] std::size_t columns() const noexcept { return names_.size(); }
  [[nodiscard]] std::size_t rows() const;

  /// Renders the document; throws if columns have unequal lengths.
  [[nodiscard]] std::string render(int precision = 7) const;

  /// Renders to a stream.
  void write(std::ostream& os, int precision = 7) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> cols_;
};

/// Escapes a string CSV-style (quotes if it contains comma/quote/newline).
[[nodiscard]] std::string csv_escape(const std::string& s);

}  // namespace blade::util
