#include "model/random_cluster.hpp"

#include <random>
#include <stdexcept>

namespace blade::model {

Cluster random_cluster(const RandomClusterSpec& spec) {
  if (spec.min_servers < 1 || spec.max_servers < spec.min_servers) {
    throw std::invalid_argument("random_cluster: bad server-count range");
  }
  if (spec.min_blades < 1 || spec.max_blades < spec.min_blades) {
    throw std::invalid_argument("random_cluster: bad blade range");
  }
  if (!(spec.min_speed > 0.0) || !(spec.max_speed >= spec.min_speed)) {
    throw std::invalid_argument("random_cluster: bad speed range");
  }
  if (!(spec.max_preload >= 0.0) || spec.max_preload >= 1.0) {
    throw std::invalid_argument("random_cluster: preload must be in [0, 1)");
  }

  std::mt19937_64 rng(spec.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  std::uniform_int_distribution<unsigned> n_dist(spec.min_servers, spec.max_servers);
  std::uniform_int_distribution<unsigned> m_dist(spec.min_blades, spec.max_blades);
  std::uniform_real_distribution<double> s_dist(spec.min_speed, spec.max_speed);
  std::uniform_real_distribution<double> y_dist(0.0, spec.max_preload);

  const unsigned n = n_dist(rng);
  const double rbar = 1.0;  // wlog: speeds absorb the task-size scale
  std::vector<BladeServer> servers;
  servers.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    const unsigned m = spec.single_blade_only ? 1 : m_dist(rng);
    const double s = s_dist(rng);
    const double y = y_dist(rng);
    const double special = y * m * s / rbar;  // preload as utilization fraction y
    servers.emplace_back(m, s, special);
  }
  return Cluster(std::move(servers), rbar);
}

double random_feasible_rate(const Cluster& cluster, std::uint64_t seed, double lo_fraction,
                            double hi_fraction) {
  if (!(lo_fraction > 0.0) || !(hi_fraction < 1.0) || !(hi_fraction >= lo_fraction)) {
    throw std::invalid_argument("random_feasible_rate: bad fraction range");
  }
  std::mt19937_64 rng(seed * 0xA24BAED4963EE407ULL + 5);
  std::uniform_real_distribution<double> f(lo_fraction, hi_fraction);
  return f(rng) * cluster.max_generic_rate();
}

}  // namespace blade::model
