// Factories for every concrete configuration the paper evaluates
// (Examples 1-2 and the server groups behind Figs. 4-15). Keeping them in
// the model library means tests, benches, and examples all draw the exact
// same instances.
#pragma once

#include <string>
#include <vector>

#include "model/cluster.hpp"

namespace blade::model {

/// A named cluster variant within a figure's family of five groups.
struct NamedCluster {
  std::string name;
  Cluster cluster;
};

/// Example 1/2 system: n = 7, m_i = 2i, s_i = 1.7 - 0.1 i, rbar = 1,
/// lambda''_i = 0.3 m_i / xbar_i. lambda'_max = 47.04.
[[nodiscard]] Cluster paper_example_cluster();

/// The generic-task rate used in Examples 1 and 2: 0.5 * lambda'_max = 23.52.
[[nodiscard]] double paper_example_lambda();

/// Figs. 4-5: five size groups (m-vectors below), s_i = 1.7 - 0.1 i,
/// rbar = 1, y = 0.3. Total blades 49, 53, 56, 59, 63.
[[nodiscard]] std::vector<NamedCluster> size_groups();

/// Figs. 6-7: speeds s_i = s - 0.1 i for s in {1.5, 1.6, 1.7, 1.8, 1.9},
/// sizes m_i = 2i, rbar = 1, y = 0.3.
[[nodiscard]] std::vector<NamedCluster> speed_groups();

/// Figs. 8-9: rbar in {0.8, 0.9, 1.0, 1.1, 1.2}, sizes m_i = 2i,
/// speeds s_i = 1.7 - 0.1 i, y = 0.3.
[[nodiscard]] std::vector<NamedCluster> requirement_groups();

/// Figs. 10-11: preload fraction y in {0.20, 0.25, 0.30, 0.35, 0.40},
/// sizes m_i = 2i, speeds s_i = 1.7 - 0.1 i, rbar = 1.
[[nodiscard]] std::vector<NamedCluster> special_rate_groups();

/// Figs. 12-13: five size-heterogeneity groups, all with 56 blades total,
/// uniform speed 1.3, rbar = 1, y = 0.3 (total special rate 21.84).
/// Group 1 is the most heterogeneous, Group 5 perfectly homogeneous.
[[nodiscard]] std::vector<NamedCluster> size_heterogeneity_groups();

/// Figs. 14-15: five speed-heterogeneity groups, m_i = 8 everywhere and
/// equal total speed 72.8, rbar = 1, y = 0.3.
[[nodiscard]] std::vector<NamedCluster> speed_heterogeneity_groups();

}  // namespace blade::model
