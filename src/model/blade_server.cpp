#include "model/blade_server.hpp"

#include <stdexcept>

namespace blade::model {

BladeServer::BladeServer(unsigned size, double speed, double special_rate)
    : size_(size), speed_(speed), special_rate_(special_rate) {
  if (size == 0) throw std::invalid_argument("BladeServer: size must be >= 1");
  if (!(speed > 0.0)) throw std::invalid_argument("BladeServer: speed must be > 0");
  if (!(special_rate >= 0.0)) {
    throw std::invalid_argument("BladeServer: special_rate must be >= 0");
  }
}

double BladeServer::mean_service_time(double rbar) const {
  if (!(rbar > 0.0)) throw std::invalid_argument("BladeServer: rbar must be > 0");
  return rbar / speed_;
}

double BladeServer::capacity(double rbar) const {
  return static_cast<double>(size_) * speed_ / rbar;
}

double BladeServer::special_utilization(double rbar) const {
  return special_rate_ * mean_service_time(rbar) / static_cast<double>(size_);
}

double BladeServer::max_generic_rate(double rbar) const {
  return capacity(rbar) - special_rate_;
}

queue::BladeQueue BladeServer::queue(double rbar, queue::Discipline d,
                                     double service_scv) const {
  return queue::BladeQueue(size_, mean_service_time(rbar), special_rate_, d, service_scv);
}

}  // namespace blade::model
