// Seeded random problem-instance generator for fuzz-style property
// testing: every generated cluster is valid by construction, spans a wide
// range of sizes, speeds, and preload skews, and is reproducible from its
// seed.
#pragma once

#include <cstdint>

#include "model/cluster.hpp"

namespace blade::model {

struct RandomClusterSpec {
  std::uint64_t seed = 1;
  unsigned min_servers = 2;
  unsigned max_servers = 10;
  unsigned min_blades = 1;
  unsigned max_blades = 24;
  double min_speed = 0.3;
  double max_speed = 3.0;
  double max_preload = 0.6;  ///< per-server preload utilization in [0, max]
  bool single_blade_only = false;  ///< force m_i = 1 (theorem regime)
};

/// Draws a random cluster. Deterministic in the spec (including seed).
[[nodiscard]] Cluster random_cluster(const RandomClusterSpec& spec);

/// Draws a feasible total generic rate for the cluster: a uniform
/// fraction of lambda'_max in [lo_fraction, hi_fraction].
[[nodiscard]] double random_feasible_rate(const Cluster& cluster, std::uint64_t seed,
                                          double lo_fraction = 0.05, double hi_fraction = 0.95);

}  // namespace blade::model
