#include "model/paper_configs.hpp"

namespace blade::model {

namespace {

constexpr double kPreload = 0.3;

std::vector<double> paper_speeds(double s0 = 1.7) {
  std::vector<double> s;
  for (int i = 1; i <= 7; ++i) s.push_back(s0 - 0.1 * i);
  return s;
}

std::vector<unsigned> paper_sizes() {
  std::vector<unsigned> m;
  for (unsigned i = 1; i <= 7; ++i) m.push_back(2 * i);
  return m;
}

}  // namespace

Cluster paper_example_cluster() {
  return make_cluster(paper_sizes(), paper_speeds(), /*rbar=*/1.0, kPreload);
}

double paper_example_lambda() { return 0.5 * paper_example_cluster().max_generic_rate(); }

std::vector<NamedCluster> size_groups() {
  const std::vector<std::vector<unsigned>> ms = {
      {1, 3, 5, 7, 9, 11, 13}, {1, 3, 5, 8, 10, 12, 14}, {2, 4, 6, 8, 10, 12, 14},
      {3, 5, 7, 8, 10, 12, 14}, {3, 5, 7, 9, 11, 13, 15}};
  std::vector<NamedCluster> out;
  for (std::size_t g = 0; g < ms.size(); ++g) {
    out.push_back({"group" + std::to_string(g + 1),
                   make_cluster(ms[g], paper_speeds(), 1.0, kPreload)});
  }
  return out;
}

std::vector<NamedCluster> speed_groups() {
  std::vector<NamedCluster> out;
  for (double s : {1.5, 1.6, 1.7, 1.8, 1.9}) {
    out.push_back({"s=" + std::to_string(s).substr(0, 3),
                   make_cluster(paper_sizes(), paper_speeds(s), 1.0, kPreload)});
  }
  return out;
}

std::vector<NamedCluster> requirement_groups() {
  std::vector<NamedCluster> out;
  for (double r : {0.8, 0.9, 1.0, 1.1, 1.2}) {
    out.push_back({"r=" + std::to_string(r).substr(0, 3),
                   make_cluster(paper_sizes(), paper_speeds(), r, kPreload)});
  }
  return out;
}

std::vector<NamedCluster> special_rate_groups() {
  std::vector<NamedCluster> out;
  for (double y : {0.20, 0.25, 0.30, 0.35, 0.40}) {
    out.push_back({"y=" + std::to_string(y).substr(0, 4),
                   make_cluster(paper_sizes(), paper_speeds(), 1.0, y)});
  }
  return out;
}

std::vector<NamedCluster> size_heterogeneity_groups() {
  const std::vector<std::vector<unsigned>> ms = {
      {1, 2, 2, 8, 14, 14, 15}, {2, 4, 6, 8, 10, 12, 14}, {4, 6, 6, 8, 10, 10, 12},
      {6, 6, 8, 8, 8, 10, 10},  {8, 8, 8, 8, 8, 8, 8}};
  const std::vector<double> speeds(7, 1.3);
  std::vector<NamedCluster> out;
  for (std::size_t g = 0; g < ms.size(); ++g) {
    out.push_back({"group" + std::to_string(g + 1), make_cluster(ms[g], speeds, 1.0, kPreload)});
  }
  return out;
}

std::vector<NamedCluster> speed_heterogeneity_groups() {
  const std::vector<std::vector<double>> ss = {
      {0.1, 0.5, 0.9, 1.3, 1.7, 2.1, 2.5}, {0.4, 0.7, 1.0, 1.3, 1.6, 1.9, 2.2},
      {0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9}, {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6},
      {1.3, 1.3, 1.3, 1.3, 1.3, 1.3, 1.3}};
  const std::vector<unsigned> sizes(7, 8);
  std::vector<NamedCluster> out;
  for (std::size_t g = 0; g < ss.size(); ++g) {
    out.push_back({"group" + std::to_string(g + 1), make_cluster(sizes, ss[g], 1.0, kPreload)});
  }
  return out;
}

}  // namespace blade::model
