#include "model/cluster.hpp"

#include <sstream>
#include <stdexcept>

namespace blade::model {

Cluster::Cluster(std::vector<BladeServer> servers, double rbar)
    : servers_(std::move(servers)), rbar_(rbar) {
  if (servers_.empty()) throw std::invalid_argument("Cluster: need at least one server");
  if (!(rbar > 0.0)) throw std::invalid_argument("Cluster: rbar must be > 0");
  for (const auto& s : servers_) {
    if (s.special_utilization(rbar_) >= 1.0) {
      throw std::invalid_argument("Cluster: a server is saturated by its special tasks alone");
    }
  }
}

unsigned Cluster::total_blades() const noexcept {
  unsigned total = 0;
  for (const auto& s : servers_) total += s.size();
  return total;
}

double Cluster::total_speed() const noexcept {
  double total = 0.0;
  for (const auto& s : servers_) total += static_cast<double>(s.size()) * s.speed();
  return total;
}

double Cluster::total_capacity() const noexcept { return total_speed() / rbar_; }

double Cluster::total_special_rate() const noexcept {
  double total = 0.0;
  for (const auto& s : servers_) total += s.special_rate();
  return total;
}

double Cluster::max_generic_rate() const noexcept {
  return total_capacity() - total_special_rate();
}

std::vector<double> Cluster::mean_service_times() const {
  std::vector<double> xs;
  xs.reserve(servers_.size());
  for (const auto& s : servers_) xs.push_back(s.mean_service_time(rbar_));
  return xs;
}

std::vector<queue::BladeQueue> Cluster::queues(queue::Discipline d, double service_scv) const {
  std::vector<queue::BladeQueue> qs;
  qs.reserve(servers_.size());
  for (const auto& s : servers_) qs.push_back(s.queue(rbar_, d, service_scv));
  return qs;
}

std::vector<queue::BladeQueue> Cluster::queues(const std::vector<queue::Discipline>& ds,
                                               double service_scv) const {
  if (ds.size() != servers_.size()) {
    throw std::invalid_argument("Cluster::queues: discipline vector size mismatch");
  }
  std::vector<queue::BladeQueue> qs;
  qs.reserve(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    qs.push_back(servers_[i].queue(rbar_, ds[i], service_scv));
  }
  return qs;
}

bool Cluster::all_single_blade() const noexcept {
  for (const auto& s : servers_) {
    if (s.size() != 1) return false;
  }
  return true;
}

std::string Cluster::describe() const {
  std::ostringstream os;
  os << "cluster{n=" << servers_.size() << ", m=[";
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (i) os << ',';
    os << servers_[i].size();
  }
  os << "], s=[";
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (i) os << ',';
    os << servers_[i].speed();
  }
  os << "], rbar=" << rbar_ << ", lambda''=" << total_special_rate()
     << ", lambda'_max=" << max_generic_rate() << "}";
  return os.str();
}

Cluster make_cluster(const std::vector<unsigned>& sizes, const std::vector<double>& speeds,
                     double rbar, double preload_fraction) {
  if (sizes.size() != speeds.size()) {
    throw std::invalid_argument("make_cluster: sizes/speeds length mismatch");
  }
  if (!(preload_fraction >= 0.0) || preload_fraction >= 1.0) {
    throw std::invalid_argument("make_cluster: preload fraction must be in [0, 1)");
  }
  std::vector<BladeServer> servers;
  servers.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    // lambda''_i = y * m_i / xbar_i = y * m_i * s_i / rbar.
    const double xbar = rbar / speeds[i];
    const double rate = preload_fraction * static_cast<double>(sizes[i]) / xbar;
    servers.emplace_back(sizes[i], speeds[i], rate);
  }
  return Cluster(std::move(servers), rbar);
}

}  // namespace blade::model
