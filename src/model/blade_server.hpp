// A heterogeneous blade server S_i as defined in Section 2: m_i identical
// blades of speed s_i, preloaded with a dedicated Poisson stream of
// special tasks at rate lambda''_i.
#pragma once

#include "queueing/blade_queue.hpp"

namespace blade::model {

class BladeServer {
 public:
  /// @param size          m_i, number of blades, >= 1
  /// @param speed         s_i, instructions per unit time per blade, > 0
  /// @param special_rate  lambda''_i, arrival rate of dedicated tasks, >= 0
  BladeServer(unsigned size, double speed, double special_rate);

  [[nodiscard]] unsigned size() const noexcept { return size_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] double special_rate() const noexcept { return special_rate_; }

  /// Mean service time of one task on one blade: xbar = rbar / s.
  [[nodiscard]] double mean_service_time(double rbar) const;

  /// Aggregate processing capacity in tasks/unit time: m s / rbar.
  [[nodiscard]] double capacity(double rbar) const;

  /// Utilization contributed by the special stream: lambda'' xbar / m.
  [[nodiscard]] double special_utilization(double rbar) const;

  /// Saturation point of the generic stream: m s / rbar - lambda''.
  [[nodiscard]] double max_generic_rate(double rbar) const;

  /// The queueing view of this server for a given task-size mean,
  /// discipline, and (optionally) task-size variability.
  [[nodiscard]] queue::BladeQueue queue(double rbar, queue::Discipline d,
                                        double service_scv = 1.0) const;

  friend bool operator==(const BladeServer&, const BladeServer&) = default;

 private:
  unsigned size_;
  double speed_;
  double special_rate_;
};

}  // namespace blade::model
