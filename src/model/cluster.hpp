// A group of n heterogeneous blade servers plus the workload-wide mean
// task execution requirement rbar — the full problem instance of the
// paper's optimization.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/blade_server.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::model {

class Cluster {
 public:
  /// @param servers  the heterogeneous servers S_1..S_n (n >= 1)
  /// @param rbar     mean task execution requirement (instructions), > 0
  Cluster(std::vector<BladeServer> servers, double rbar);

  [[nodiscard]] std::size_t size() const noexcept { return servers_.size(); }
  [[nodiscard]] const BladeServer& server(std::size_t i) const { return servers_.at(i); }
  [[nodiscard]] const std::vector<BladeServer>& servers() const noexcept { return servers_; }
  [[nodiscard]] double rbar() const noexcept { return rbar_; }

  /// Total number of blades m = sum m_i.
  [[nodiscard]] unsigned total_blades() const noexcept;

  /// Total speed sum m_i s_i (giga-instructions per unit time).
  [[nodiscard]] double total_speed() const noexcept;

  /// Total processing capacity sum m_i s_i / rbar (tasks per unit time).
  [[nodiscard]] double total_capacity() const noexcept;

  /// Total special-task arrival rate sum lambda''_i.
  [[nodiscard]] double total_special_rate() const noexcept;

  /// Saturation point of the total generic rate:
  /// lambda'_max = sum (m_i s_i / rbar - lambda''_i).
  [[nodiscard]] double max_generic_rate() const noexcept;

  /// Mean service times xbar_i = rbar / s_i for all servers.
  [[nodiscard]] std::vector<double> mean_service_times() const;

  /// Queueing views of all servers under a discipline (and optional
  /// task-size variability, see BladeQueue).
  [[nodiscard]] std::vector<queue::BladeQueue> queues(queue::Discipline d,
                                                      double service_scv = 1.0) const;

  /// Heterogeneous-discipline variant: ds[i] applies to server i.
  [[nodiscard]] std::vector<queue::BladeQueue> queues(const std::vector<queue::Discipline>& ds,
                                                      double service_scv = 1.0) const;

  /// True when every server has exactly one blade (theorem 1/3 regime).
  [[nodiscard]] bool all_single_blade() const noexcept;

  /// Human-readable one-line description for logs and benches.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<BladeServer> servers_;
  double rbar_;
};

/// Builds a cluster from parallel arrays (sizes m_i, speeds s_i) with
/// special-task rates set to a fixed fraction y of each server's capacity:
/// lambda''_i = y * m_i / xbar_i  (the paper's preload convention).
[[nodiscard]] Cluster make_cluster(const std::vector<unsigned>& sizes,
                                   const std::vector<double>& speeds, double rbar,
                                   double preload_fraction);

}  // namespace blade::model
