// Data-parallel helpers on top of ThreadPool: chunked parallel_for and a
// parallel map returning a vector of results. Exceptions thrown by any
// chunk are rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace blade::par {

/// Runs body(i) for i in [begin, end) across the pool with static chunking.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Maps f over [0, count) and collects the results in index order.
template <typename R>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t count,
                            const std::function<R(std::size_t)>& f) {
  std::vector<R> out(count);
  parallel_for(pool, 0, count, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

template <typename R>
std::vector<R> parallel_map(std::size_t count, const std::function<R(std::size_t)>& f) {
  return parallel_map<R>(global_pool(), count, f);
}

}  // namespace blade::par
