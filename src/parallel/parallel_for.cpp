#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <exception>

namespace blade::par {

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, 4 * pool.thread_count());
  const std::size_t chunk = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(global_pool(), begin, end, body);
}

}  // namespace blade::par
