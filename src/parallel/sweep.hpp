// Parameter-sweep runner: evaluates a function at each grid point in
// parallel and returns results in grid order. All the figure benches are
// sweeps of T'(lambda') over lambda' grids for several cluster variants.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace blade::par {

/// Uniform grid of `points` values on [lo, hi] inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t points);

/// Evaluates f at every grid point in parallel; results in grid order.
[[nodiscard]] std::vector<double> sweep(ThreadPool& pool, const std::vector<double>& grid,
                                        const std::function<double(double)>& f);

/// sweep on the global pool.
[[nodiscard]] std::vector<double> sweep(const std::vector<double>& grid,
                                        const std::function<double(double)>& f);

/// Runs body(lo, hi) over [0, n) split into fixed-size chunks of `chunk`
/// items (the last one ragged). Unlike parallel_for, the chunk
/// boundaries depend only on n and chunk -- never on the pool's thread
/// count -- so stateful per-chunk work (e.g. warm-started solver chains)
/// produces bitwise-identical results on any pool. Exceptions from any
/// chunk are rethrown on the calling thread (first one wins).
void for_each_chunk(ThreadPool& pool, std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& body);

/// for_each_chunk with per-item cost hints: chunk boundaries are cut so
/// each chunk carries roughly the cost of `chunk` AVERAGE items, rather
/// than exactly `chunk` items. With heterogeneous items (cells whose
/// class counts differ by orders of magnitude, batch entries of wildly
/// different instance sizes) fixed-count chunks straggle one pool thread
/// behind a single expensive chunk; cost-weighted cuts keep chunk work
/// balanced. cost[i] is item i's relative weight and must be finite and
/// >= 0; cost must be empty (plain for_each_chunk) or exactly n long.
/// All-zero hints carry no information and fall back to fixed-size
/// chunks. Every chunk holds at least one item, so one huge item gets a
/// chunk of its own instead of dragging neighbors with it. Boundaries
/// depend only on (n, chunk, cost) -- never on the pool's thread count --
/// so the determinism contract of for_each_chunk is preserved.
void for_each_weighted_chunk(ThreadPool& pool, std::size_t n, std::size_t chunk,
                             std::span<const double> cost,
                             const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace blade::par
