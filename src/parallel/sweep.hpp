// Parameter-sweep runner: evaluates a function at each grid point in
// parallel and returns results in grid order. All the figure benches are
// sweeps of T'(lambda') over lambda' grids for several cluster variants.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace blade::par {

/// Uniform grid of `points` values on [lo, hi] inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t points);

/// Evaluates f at every grid point in parallel; results in grid order.
[[nodiscard]] std::vector<double> sweep(ThreadPool& pool, const std::vector<double>& grid,
                                        const std::function<double(double)>& f);

/// sweep on the global pool.
[[nodiscard]] std::vector<double> sweep(const std::vector<double>& grid,
                                        const std::function<double(double)>& f);

}  // namespace blade::par
