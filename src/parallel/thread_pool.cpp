#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace blade::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  BLADE_OBS_GAUGE_SET("pool.threads", static_cast<double>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueueItem item;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
#if BLADE_OBS_ENABLED
    BLADE_OBS_OBSERVE("pool.task_wait_seconds",
                      1e-9 * static_cast<double>(obs::monotonic_ns() - item.enqueued_ns));
    {
      BLADE_OBS_TIMER("pool.task_run_seconds");
      item.fn();
    }
    BLADE_OBS_COUNT("pool.tasks_completed");
#else
    item.fn();
#endif
    // Publish this worker's thread-local deltas so a snapshot taken while
    // the pool is idle (or between tasks) sees all completed work. Direct
    // call rather than a macro: with BLADE_OBS off this is a no-op check
    // of an empty dirty list, and keeping it unconditional exercises the
    // registry under the tsan preset too.
    obs::registry().flush_this_thread();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace blade::par
