// Fixed-size thread pool with a shared task queue. Drives the parameter
// sweeps behind the figure benches and the simulator's independent
// replications.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace blade::par {

class ThreadPool {
 public:
  /// @param threads  worker count; 0 selects hardware_concurrency (min 1)
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      QueueItem item;
      item.fn = [task] { (*task)(); };
#if BLADE_OBS_ENABLED
      item.enqueued_ns = obs::monotonic_ns();
#endif
      queue_.push_back(std::move(item));
      BLADE_OBS_COUNT("pool.tasks_submitted");
      BLADE_OBS_OBSERVE("pool.queue_depth", queue_.size());
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

 private:
  // Timestamped only when BLADE_OBS is compiled in, so disabled builds
  // keep the exact seed-task layout and pay no clock read per submit.
  struct QueueItem {
    std::function<void()> fn;
#if BLADE_OBS_ENABLED
    std::uint64_t enqueued_ns = 0;
#endif
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueueItem> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// A process-wide pool for library helpers that do not want to own one.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace blade::par
