// Fixed-size thread pool with a shared task queue. Drives the parameter
// sweeps behind the figure benches and the simulator's independent
// replications.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace blade::par {

class ThreadPool {
 public:
  /// @param threads  worker count; 0 selects hardware_concurrency (min 1)
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// A process-wide pool for library helpers that do not want to own one.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace blade::par
