#include "parallel/sweep.hpp"

#include <cmath>
#include <stdexcept>

namespace blade::par {

std::vector<double> linspace(double lo, double hi, std::size_t points) {
  if (points == 0) return {};
  if (points == 1) return {lo};
  if (!(hi >= lo)) throw std::invalid_argument("linspace: need hi >= lo");
  std::vector<double> xs(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return xs;
}

std::vector<double> sweep(ThreadPool& pool, const std::vector<double>& grid,
                          const std::function<double(double)>& f) {
  std::vector<double> out(grid.size());
  parallel_for(pool, 0, grid.size(), [&](std::size_t i) { out[i] = f(grid[i]); });
  return out;
}

std::vector<double> sweep(const std::vector<double>& grid,
                          const std::function<double(double)>& f) {
  return sweep(global_pool(), grid, f);
}

void for_each_chunk(ThreadPool& pool, std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (chunk == 0) throw std::invalid_argument("for_each_chunk: chunk must be >= 1");
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &body] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void for_each_weighted_chunk(ThreadPool& pool, std::size_t n, std::size_t chunk,
                             std::span<const double> cost,
                             const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (chunk == 0) throw std::invalid_argument("for_each_weighted_chunk: chunk must be >= 1");
  if (cost.empty()) {
    for_each_chunk(pool, n, chunk, body);
    return;
  }
  if (cost.size() != n) {
    throw std::invalid_argument("for_each_weighted_chunk: cost hints must be empty or size n");
  }
  double total = 0.0;
  for (double c : cost) {
    if (!std::isfinite(c) || c < 0.0) {
      throw std::invalid_argument("for_each_weighted_chunk: cost hints must be finite and >= 0");
    }
    total += c;
  }
  if (!(total > 0.0)) {
    for_each_chunk(pool, n, chunk, body);
    return;
  }

  // Greedy cut: close a chunk once it has accumulated the cost of
  // `chunk` average items. The scan is sequential over (n, cost) only,
  // so boundaries are reproducible on any pool.
  const double target = total * static_cast<double>(chunk) / static_cast<double>(n);
  std::vector<std::future<void>> futures;
  std::size_t lo = 0;
  while (lo < n) {
    double acc = 0.0;
    std::size_t hi = lo;
    while (hi < n) {
      acc += cost[hi];
      ++hi;
      if (acc >= target) break;
    }
    futures.push_back(pool.submit([lo, hi, &body] { body(lo, hi); }));
    lo = hi;
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace blade::par
