#include "parallel/sweep.hpp"

#include <stdexcept>

namespace blade::par {

std::vector<double> linspace(double lo, double hi, std::size_t points) {
  if (points == 0) return {};
  if (points == 1) return {lo};
  if (!(hi >= lo)) throw std::invalid_argument("linspace: need hi >= lo");
  std::vector<double> xs(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return xs;
}

std::vector<double> sweep(ThreadPool& pool, const std::vector<double>& grid,
                          const std::function<double(double)>& f) {
  std::vector<double> out(grid.size());
  parallel_for(pool, 0, grid.size(), [&](std::size_t i) { out[i] = f(grid[i]); });
  return out;
}

std::vector<double> sweep(const std::vector<double>& grid,
                          const std::function<double(double)>& f) {
  return sweep(global_pool(), grid, f);
}

}  // namespace blade::par
