// Umbrella header: the full public API of bladecloud.
//
// Typical entry points:
//   model::Cluster / model::BladeServer      describe the data center
//   opt::LoadDistributionOptimizer           the paper's solver
//   opt::closed_form_distribution            Theorems 1/3 (single-blade)
//   sim::simulate_split / sim::replicate     discrete-event validation
//   cloud::figure / cloud::example_table     the paper's experiments
#pragma once

#include "cli/app.hpp"                         // IWYU pragma: export
#include "cli/spec.hpp"                        // IWYU pragma: export
#include "cloud/experiments.hpp"               // IWYU pragma: export
#include "cloud/report.hpp"                    // IWYU pragma: export
#include "cloud/series.hpp"                    // IWYU pragma: export
#include "cloud/trace.hpp"                     // IWYU pragma: export
#include "core/allocation.hpp"                 // IWYU pragma: export
#include "core/closed_form.hpp"                // IWYU pragma: export
#include "core/discrete_dp.hpp"                // IWYU pragma: export
#include "core/gradient_optimizer.hpp"         // IWYU pragma: export
#include "core/kkt.hpp"                        // IWYU pragma: export
#include "core/objective.hpp"                  // IWYU pragma: export
#include "core/optimizer.hpp"                  // IWYU pragma: export
#include "core/policies.hpp"                   // IWYU pragma: export
#include "core/sensitivity.hpp"                // IWYU pragma: export
#include "model/blade_server.hpp"              // IWYU pragma: export
#include "model/cluster.hpp"                   // IWYU pragma: export
#include "model/paper_configs.hpp"             // IWYU pragma: export
#include "model/random_cluster.hpp"            // IWYU pragma: export
#include "numerics/convexity.hpp"              // IWYU pragma: export
#include "numerics/differentiation.hpp"        // IWYU pragma: export
#include "numerics/erlang.hpp"                 // IWYU pragma: export
#include "numerics/roots.hpp"                  // IWYU pragma: export
#include "numerics/special.hpp"                // IWYU pragma: export
#include "parallel/parallel_for.hpp"           // IWYU pragma: export
#include "parallel/sweep.hpp"                  // IWYU pragma: export
#include "parallel/thread_pool.hpp"            // IWYU pragma: export
#include "queueing/birth_death.hpp"            // IWYU pragma: export
#include "queueing/blade_queue.hpp"            // IWYU pragma: export
#include "queueing/ctmc.hpp"                   // IWYU pragma: export
#include "queueing/mgm.hpp"                    // IWYU pragma: export
#include "queueing/mm1.hpp"                    // IWYU pragma: export
#include "queueing/mmm.hpp"                    // IWYU pragma: export
#include "queueing/mmmk.hpp"                   // IWYU pragma: export
#include "queueing/priority_ctmc.hpp"          // IWYU pragma: export
#include "queueing/waiting_distribution.hpp"   // IWYU pragma: export
#include "sim/batch_means.hpp"                 // IWYU pragma: export
#include "sim/dispatcher.hpp"                  // IWYU pragma: export
#include "sim/service.hpp"                     // IWYU pragma: export
#include "sim/simulation.hpp"                  // IWYU pragma: export
#include "util/histogram.hpp"                  // IWYU pragma: export
#include "util/stats.hpp"                      // IWYU pragma: export
#include "util/table.hpp"                      // IWYU pragma: export
