// Scoped-span tracer for nested phases. Each thread maintains a span
// path ("optimize/outer/extract"); entering a span pushes a segment and
// leaving it records the elapsed wall time into a Timer metric named
// "span.<path>". Aggregation therefore happens by full path, so the same
// leaf under two parents stays distinguishable, and exports ride the
// ordinary metric pipeline (JSON / Prometheus / CSV).
//
// Spans are meant for phase granularity (a solve, a simulation run, an
// export), not per-event use: entering a span costs one TLS path append
// plus, on first sight of a path, one interning. Use through
// BLADE_OBS_SPAN() so disabled builds compile to nothing.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"

namespace blade::obs {

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::size_t parent_len_;  ///< thread path length to restore on exit
  MetricId id_;
  std::uint32_t label_;  ///< recorder label id for the SpanEnd event
  std::uint64_t start_ns_;
};

/// The calling thread's current span path ("" outside any span). Exposed
/// for tests and for attaching context to diagnostics.
[[nodiscard]] std::string_view current_span_path();

}  // namespace blade::obs
