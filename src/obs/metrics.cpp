#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace blade::obs {

std::string_view to_string(Kind k) noexcept {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
    case Kind::Timer: return "timer";
  }
  return "unknown";
}

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

const MetricValue* Snapshot::find(std::string_view name) const noexcept {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const SeriesValue* Snapshot::find_series(std::string_view name) const noexcept {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

namespace {

/// Per-thread accumulation cell. Channels are merged by the descriptor's
/// kind at flush time, so the fast path never needs to consult the
/// (mutex-guarded) descriptor table.
struct Cell {
  std::uint64_t count = 0;
  double gauge = 0.0;
  bool gauge_set = false;
  std::unique_ptr<util::LogHistogram> hist;
};

struct ThreadSink {
  std::vector<Cell> cells;
  std::vector<MetricId> dirty;
  std::vector<char> is_dirty;

  ~ThreadSink();  // publishes leftover deltas (defined after Registry::Impl)

  Cell& cell(MetricId id) {
    if (id >= cells.size()) {
      cells.resize(id + 1);
      is_dirty.resize(id + 1, 0);
    }
    if (!is_dirty[id]) {
      is_dirty[id] = 1;
      dirty.push_back(id);
    }
    return cells[id];
  }
};

ThreadSink& sink() {
  thread_local ThreadSink t_sink;
  return t_sink;
}

struct SeriesState {
  std::string name;
  std::size_t cap = kSeriesCapDefault;
  std::vector<std::pair<double, double>> points;
  std::uint64_t dropped = 0;
};

struct MergedCell {
  std::uint64_t count = 0;
  double value = 0.0;
  util::LogHistogram hist;
};

}  // namespace

namespace {
// Set once when the (leaked) registry is created; lets the thread-local
// sink destructor publish without touching Registry's private members.
Registry::Impl* g_impl = nullptr;
}  // namespace

struct Registry::Impl {
  std::mutex mu;
  std::vector<std::pair<std::string, Kind>> descs;
  std::unordered_map<std::string, MetricId> index;
  std::vector<MergedCell> merged;
  std::vector<SeriesState> series;
  std::unordered_map<std::string, MetricId> series_index;
  std::uint64_t start_ns = monotonic_ns();

  // Merges and clears a sink; caller holds `mu`.
  void merge_locked(ThreadSink& s) {
    for (const MetricId id : s.dirty) {
      Cell& c = s.cells[id];
      MergedCell& m = merged[id];
      switch (descs[id].second) {
        case Kind::Counter: m.count += c.count; break;
        case Kind::Gauge:
          if (c.gauge_set) m.value = c.gauge;
          break;
        case Kind::Histogram:
        case Kind::Timer:
          if (c.hist) m.hist.merge(*c.hist);
          break;
      }
      c.count = 0;
      c.gauge_set = false;
      if (c.hist) *c.hist = util::LogHistogram{};
      s.is_dirty[id] = 0;
    }
    s.dirty.clear();
  }
};

namespace {

// The sink's owning thread is exiting: publish whatever it accumulated.
// The registry (and g_impl) are leaked, so this is safe at any shutdown
// stage; a non-empty dirty list implies the registry exists.
ThreadSink::~ThreadSink() {
  if (dirty.empty() || g_impl == nullptr) return;
  const std::lock_guard lock(g_impl->mu);
  g_impl->merge_locked(*this);
}

}  // namespace

Registry& Registry::instance() {
  static Registry* r = [] {
    auto* reg = new Registry();
    reg->impl_ = new Impl();
    g_impl = reg->impl_;
    return reg;
  }();
  return *r;
}

MetricId Registry::intern(std::string_view name, Kind kind) {
  Impl& im = impl();
  const std::lock_guard lock(im.mu);
  const auto it = im.index.find(std::string(name));
  if (it != im.index.end()) {
    if (im.descs[it->second].second != kind) {
      throw std::invalid_argument("obs::Registry::intern: kind mismatch for metric '" +
                                  std::string(name) + "'");
    }
    return it->second;
  }
  const MetricId id = im.descs.size();
  im.descs.emplace_back(std::string(name), kind);
  im.merged.emplace_back();
  im.index.emplace(std::string(name), id);
  return id;
}

MetricId Registry::series(std::string_view name, std::size_t cap) {
  Impl& im = impl();
  const std::lock_guard lock(im.mu);
  const auto it = im.series_index.find(std::string(name));
  if (it != im.series_index.end()) return it->second;
  const MetricId id = im.series.size();
  SeriesState s;
  s.name = std::string(name);
  s.cap = cap == 0 ? 1 : cap;
  im.series.push_back(std::move(s));
  im.series_index.emplace(std::string(name), id);
  return id;
}

void Registry::add(MetricId id, std::uint64_t n) noexcept { sink().cell(id).count += n; }

void Registry::set(MetricId id, double v) noexcept {
  Cell& c = sink().cell(id);
  c.gauge = v;
  c.gauge_set = true;
}

void Registry::observe(MetricId id, double v) noexcept {
  Cell& c = sink().cell(id);
  if (!c.hist) c.hist = std::make_unique<util::LogHistogram>();
  c.hist->add(v);
}

void Registry::append(MetricId id, double x, double y) {
  Impl& im = impl();
  const std::lock_guard lock(im.mu);
  if (id >= im.series.size()) return;
  SeriesState& s = im.series[id];
  if (s.points.size() < s.cap) {
    s.points.emplace_back(x, y);
  } else {
    ++s.dropped;
  }
}

void Registry::flush_this_thread() {
  ThreadSink& s = sink();
  if (s.dirty.empty()) return;
  Impl& im = impl();
  const std::lock_guard lock(im.mu);
  im.merge_locked(s);
}

Snapshot Registry::snapshot() {
  flush_this_thread();
  Impl& im = impl();
  const std::lock_guard lock(im.mu);
  Snapshot snap;
  snap.metrics.reserve(im.descs.size());
  for (MetricId id = 0; id < im.descs.size(); ++id) {
    MetricValue mv;
    mv.name = im.descs[id].first;
    mv.kind = im.descs[id].second;
    mv.count = im.merged[id].count;
    mv.value = im.merged[id].value;
    mv.hist = im.merged[id].hist;
    snap.metrics.push_back(std::move(mv));
  }
  snap.series.reserve(im.series.size());
  for (const SeriesState& s : im.series) {
    SeriesValue sv;
    sv.name = s.name;
    sv.points = s.points;
    sv.dropped = s.dropped;
    snap.series.push_back(std::move(sv));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  std::sort(snap.series.begin(), snap.series.end(),
            [](const SeriesValue& a, const SeriesValue& b) { return a.name < b.name; });
  snap.uptime_seconds = static_cast<double>(monotonic_ns() - im.start_ns) * 1e-9;
  return snap;
}

void Registry::reset() {
  // Discard the calling thread's unflushed deltas, then zero the merged
  // state. Other threads must already be flushed (quiescent).
  ThreadSink& s = sink();
  for (const MetricId id : s.dirty) {
    Cell& c = s.cells[id];
    c.count = 0;
    c.gauge_set = false;
    if (c.hist) *c.hist = util::LogHistogram{};
    s.is_dirty[id] = 0;
  }
  s.dirty.clear();
  Impl& im = impl();
  const std::lock_guard lock(im.mu);
  for (MergedCell& m : im.merged) m = MergedCell{};
  for (SeriesState& se : im.series) {
    se.points.clear();
    se.dropped = 0;
  }
}

ScopedTimer::ScopedTimer(MetricId id) noexcept : id_(id), start_ns_(monotonic_ns()) {}

ScopedTimer::~ScopedTimer() {
  registry().observe(id_, static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
}

}  // namespace blade::obs
