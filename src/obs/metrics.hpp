// Low-overhead metrics registry: counters, gauges, fixed log-bucket
// histograms, and wall-clock timers, plus bounded (x, y) series for
// convergence traces and occupancy timelines.
//
// Concurrency model — thread-local accumulation with explicit merge:
// every mutating fast-path operation (add/set/observe) writes plain
// (non-atomic) cells in a per-thread sink and takes no lock. A thread
// publishes its accumulated deltas by calling flush_this_thread(), which
// merges the sink into the registry's global state under one mutex and
// clears it; thread exit flushes automatically, and the ThreadPool
// flushes after every task so pooled work is visible once the pool
// drains. snapshot() flushes the calling thread, then returns the merged
// state — it never reads another thread's live sink, so the whole scheme
// is data-race-free by construction (TSan-verified by the stress suite).
//
// Hot paths reference metrics by MetricId (interned once per call site
// through the BLADE_OBS_* macros in obs/obs.hpp); interning is the only
// operation that ever takes the registry mutex on the fast path, and it
// happens once per process per call site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

namespace blade::obs {

enum class Kind { Counter, Gauge, Histogram, Timer };

[[nodiscard]] std::string_view to_string(Kind k) noexcept;

/// Stable dense index of an interned metric (or series) name.
using MetricId = std::size_t;

/// One merged metric in a snapshot. Counters use `count`; gauges use
/// `value`; histograms and timers use `hist` (count/sum/quantiles).
struct MetricValue {
  std::string name;
  Kind kind = Kind::Counter;
  std::uint64_t count = 0;
  double value = 0.0;
  util::LogHistogram hist;
};

/// A bounded (x, y) series: appended in program order, capped at the
/// registration capacity; `dropped` counts points lost to the cap.
struct SeriesValue {
  std::string name;
  std::vector<std::pair<double, double>> points;
  std::uint64_t dropped = 0;
};

/// A merged, point-in-time view of the registry. Metrics and series are
/// sorted by name so exports are deterministic.
struct Snapshot {
  std::vector<MetricValue> metrics;
  std::vector<SeriesValue> series;
  double uptime_seconds = 0.0;

  /// Lookup helper for tests and report tools; nullptr when absent.
  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;
  [[nodiscard]] const SeriesValue* find_series(std::string_view name) const noexcept;
};

/// Default cap on stored series points; appends past the cap only bump
/// the drop counter, so a runaway trace cannot exhaust memory.
inline constexpr std::size_t kSeriesCapDefault = 4096;

class Registry {
 public:
  /// The process-wide registry. Intentionally leaked (the singleton stays
  /// reachable from a static, so LeakSanitizer is silent) so that
  /// thread-local sinks flushing at thread exit can never outlive it.
  [[nodiscard]] static Registry& instance();

  /// Interns `name` with the given kind, returning its stable id. Re-interning
  /// the same name returns the same id; a kind mismatch throws
  /// std::invalid_argument (one name, one meaning).
  MetricId intern(std::string_view name, Kind kind);

  /// Registers a series (bounded trace); same idempotence as intern().
  MetricId series(std::string_view name, std::size_t cap = kSeriesCapDefault);

  // Fast-path mutators: thread-local, lock-free, plain arithmetic.
  void add(MetricId id, std::uint64_t n = 1) noexcept;  ///< counter += n
  void set(MetricId id, double v) noexcept;             ///< gauge = v (last flush wins)
  void observe(MetricId id, double v) noexcept;         ///< histogram/timer sample

  /// Appends one point to a series. Unlike the metric mutators this takes
  /// the registry mutex (traces are ordered, cross-thread streams), so
  /// keep it off per-event paths — per-iteration granularity is fine.
  void append(MetricId id, double x, double y);

  /// Merges the calling thread's sink into the global state and clears it.
  void flush_this_thread();

  /// Flushes the calling thread, then returns the merged view. Deltas
  /// accumulated by other threads since their last flush are not included;
  /// quiesce writers (e.g. ThreadPool::wait_idle) for an exact cut.
  [[nodiscard]] Snapshot snapshot();

  /// Resets every value and series to zero while keeping registrations.
  /// Writers must be quiescent (flushed) or their stale thread-local
  /// deltas will resurface at the next flush. Test helper.
  void reset();

  /// Opaque internal state (public so the thread-exit hook in metrics.cpp
  /// can name it; not part of the supported API).
  struct Impl;

 private:
  Registry() = default;

  [[nodiscard]] Impl& impl() noexcept { return *impl_; }

  Impl* impl_ = nullptr;  // owned; never freed (see instance())
};

/// Shorthand for Registry::instance().
[[nodiscard]] inline Registry& registry() { return Registry::instance(); }

/// Scoped wall-clock timer: observes elapsed seconds into a Timer metric
/// on destruction. Usable directly or through BLADE_OBS_TIMER().
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId id) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricId id_;
  std::uint64_t start_ns_;
};

/// Monotonic nanoseconds since an arbitrary epoch (steady clock).
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

}  // namespace blade::obs
