#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/build_info.hpp"
#include "util/json.hpp"

namespace blade::obs {

namespace {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

bool has_distribution(const MetricValue& m) {
  return (m.kind == Kind::Histogram || m.kind == Kind::Timer) && m.hist.count() > 0;
}

/// Prometheus metric names: [a-zA-Z0-9_] with a library prefix. Every
/// other character ('.', '/', '-') maps to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "blade_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// Sanitization is lossy ("a.b" and "a/b" both map to blade_a_b), so
/// family names are deduplicated in snapshot order: the first keeps the
/// base name, later collisions get a _2/_3/... suffix. Deterministic
/// because snapshots list metrics in a stable order.
std::vector<std::string> prom_family_names(const Snapshot& snap) {
  std::vector<std::string> out;
  out.reserve(snap.metrics.size());
  std::set<std::string> taken;
  for (const MetricValue& m : snap.metrics) {
    const std::string base = prom_name(m.name);
    std::string candidate = base;
    for (int k = 2; !taken.insert(candidate).second; ++k) {
      candidate = base + "_" + std::to_string(k);
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

void append_derived(util::JsonWriter& w, const Snapshot& snap) {
  // Derived readings from well-known metric names (the instrumentation
  // contract documented in docs/observability.md). Missing inputs simply
  // omit the entry, so disabled builds export an empty object.
  w.key("derived").begin_object();
  const MetricValue* busy = snap.find("pool.task_run_seconds");
  const MetricValue* threads = snap.find("pool.threads");
  if (busy && threads && threads->value > 0.0 && snap.uptime_seconds > 0.0) {
    w.key("pool.utilization")
        .value(busy->hist.sum() / (threads->value * snap.uptime_seconds));
  }
  const MetricValue* events = snap.find("sim.events");
  const MetricValue* run = snap.find("sim.run_seconds");
  if (events && run && run->hist.sum() > 0.0) {
    w.key("sim.events_per_second")
        .value(static_cast<double>(events->count) / run->hist.sum());
  }
  w.end_object();
}

}  // namespace

ExportFormat parse_export_format(std::string_view s) {
  if (s == "json") return ExportFormat::Json;
  if (s == "prom") return ExportFormat::Prometheus;
  if (s == "csv") return ExportFormat::Csv;
  throw std::invalid_argument("metrics format must be json, prom, or csv (got '" +
                              std::string(s) + "')");
}

std::string to_json(const Snapshot& snap) {
  const BuildInfo& b = build_info();
  util::JsonWriter w;
  w.begin_object();
  w.key("build").begin_object();
  w.key("git").value(b.git_hash);
  w.key("compiler").value(b.compiler);
  w.key("build_type").value(b.build_type);
  w.key("sanitize").value(b.sanitize);
  w.key("obs").value(b.obs_enabled);
  w.end_object();
  w.key("uptime_seconds").value(snap.uptime_seconds);
  w.key("metrics").begin_array();
  for (const MetricValue& m : snap.metrics) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("kind").value(std::string(to_string(m.kind)));
    switch (m.kind) {
      case Kind::Counter: w.key("count").value(static_cast<long long>(m.count)); break;
      case Kind::Gauge: w.key("value").value(m.value); break;
      case Kind::Histogram:
      case Kind::Timer: {
        w.key("count").value(static_cast<long long>(m.hist.count()));
        w.key("sum").value(m.hist.sum());
        if (m.hist.count() > 0) {
          w.key("mean").value(m.hist.mean());
          w.key("p50").value(m.hist.quantile(0.5));
          w.key("p90").value(m.hist.quantile(0.9));
          w.key("p99").value(m.hist.quantile(0.99));
        }
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.key("series").begin_array();
  for (const SeriesValue& s : snap.series) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("dropped").value(static_cast<long long>(s.dropped));
    w.key("points").begin_array();
    for (const auto& [x, y] : s.points) {
      w.begin_array().value(x).value(y).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  append_derived(w, snap);
  w.end_object();
  return w.str() + "\n";
}

std::string to_prometheus(const Snapshot& snap) {
  std::ostringstream os;
  const BuildInfo& b = build_info();
  os << "# bladecloud " << b.git_hash << " (" << b.build_type << ", BLADE_OBS "
     << (b.obs_enabled ? "ON" : "OFF") << ")\n";
  const std::vector<std::string> families = prom_family_names(snap);
  for (std::size_t mi = 0; mi < snap.metrics.size(); ++mi) {
    const MetricValue& m = snap.metrics[mi];
    const std::string& name = families[mi];
    switch (m.kind) {
      case Kind::Counter:
        os << "# HELP " << name << "_total " << m.name << " (counter)\n"
           << "# TYPE " << name << "_total counter\n"
           << name << "_total " << m.count << '\n';
        break;
      case Kind::Gauge:
        os << "# HELP " << name << ' ' << m.name << " (gauge)\n"
           << "# TYPE " << name << " gauge\n"
           << name << ' ' << format_double(m.value) << '\n';
        break;
      case Kind::Histogram:
      case Kind::Timer: {
        os << "# HELP " << name << ' ' << m.name << " ("
           << to_string(m.kind) << ")\n"
           << "# TYPE " << name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < util::kLogBucketCount; ++b) {
          const std::uint64_t n = m.hist.bucket_count(b);
          if (n == 0) continue;  // cumulative counts stay valid over the edge subset
          cum += n;
          os << name << "_bucket{le=\"" << format_double(util::log_bucket_upper(b)) << "\"} "
             << cum << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << m.hist.count() << '\n'
           << name << "_sum " << format_double(m.hist.sum()) << '\n'
           << name << "_count " << m.hist.count() << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string to_csv(const Snapshot& snap) {
  std::ostringstream os;
  os << "name,kind,count,value,sum,mean,p50,p90,p99\n";
  for (const MetricValue& m : snap.metrics) {
    os << m.name << ',' << to_string(m.kind) << ',';
    switch (m.kind) {
      case Kind::Counter: os << m.count << ",,,,,,"; break;
      case Kind::Gauge: os << ',' << format_double(m.value) << ",,,,,"; break;
      case Kind::Histogram:
      case Kind::Timer:
        os << m.hist.count() << ",," << format_double(m.hist.sum()) << ',';
        if (has_distribution(m)) {
          os << format_double(m.hist.mean()) << ',' << format_double(m.hist.quantile(0.5)) << ','
             << format_double(m.hist.quantile(0.9)) << ',' << format_double(m.hist.quantile(0.99));
        } else {
          os << ",,,";
        }
        break;
    }
    os << '\n';
  }
  return os.str();
}

std::string render(const Snapshot& snap, ExportFormat format) {
  switch (format) {
    case ExportFormat::Json: return to_json(snap);
    case ExportFormat::Prometheus: return to_prometheus(snap);
    case ExportFormat::Csv: return to_csv(snap);
  }
  throw std::logic_error("render: unknown export format");
}

void write_metrics_file(const std::string& path, ExportFormat format) {
  const std::string body = render(registry().snapshot(), format);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("metrics export: cannot open '" + path + "'");
  os << body;
  if (!os) throw std::runtime_error("metrics export: write failed for '" + path + "'");
}

std::string export_bench_json(const std::string& argv0) {
  std::string base = argv0;
  const std::size_t slash = base.find_last_of("/\\");
  if (slash != std::string::npos) base = base.substr(slash + 1);
  const std::string file = "BENCH_" + base + ".json";
  write_metrics_file(file, ExportFormat::Json);
  return file;
}

}  // namespace blade::obs
