#include "obs/recorder.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace blade::obs {

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::SolveStart: return "solve_start";
    case EventType::SolveEnd: return "solve_end";
    case EventType::ResolveTrigger: return "resolve_trigger";
    case EventType::ShedDecision: return "shed_decision";
    case EventType::ModeTransition: return "mode_transition";
    case EventType::AliasPublish: return "alias_publish";
    case EventType::BladeFail: return "blade_fail";
    case EventType::BladeRecover: return "blade_recover";
    case EventType::ChaosInject: return "chaos_inject";
    case EventType::WatchdogTrip: return "watchdog_trip";
    case EventType::SpanEnd: return "span";
    case EventType::Dispatch: return "dispatch";
    case EventType::EpochMark: return "epoch_mark";
    case EventType::HealthTransition: return "health_transition";
  }
  return "unknown";
}

const char* to_string(Cause c) noexcept {
  switch (c) {
    case Cause::None: return "none";
    case Cause::Drift: return "drift";
    case Cause::Warmup: return "warmup";
    case Cause::DegradedRetry: return "degraded_retry";
    case Cause::Failure: return "failure";
    case Cause::Recovery: return "recovery";
    case Cause::Forced: return "forced";
    case Cause::InjectedFault: return "injected_fault";
    case Cause::SolverError: return "solver_error";
    case Cause::Infeasible: return "infeasible";
    case Cause::NoLoad: return "no_load";
    case Cause::Unpublishable: return "unpublishable";
    case Cause::ChaosDrop: return "chaos_drop";
    case Cause::ChaosPhantom: return "chaos_phantom";
    case Cause::ChaosTimewarp: return "chaos_timewarp";
    case Cause::Restore: return "restore";
    case Cause::Quarantine: return "quarantine";
    case Cause::Probation: return "probation";
    case Cause::HealthRecovered: return "health_recovered";
  }
  return "unknown";
}

std::size_t Dump::total_events() const noexcept {
  std::size_t n = 0;
  for (const DumpRing& r : rings) n += r.events.size();
  return n;
}

std::uint64_t Dump::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const DumpRing& r : rings) n += r.dropped;
  return n;
}

std::vector<Event> Dump::merged() const {
  std::vector<Event> all;
  all.reserve(total_events());
  for (const DumpRing& r : rings) all.insert(all.end(), r.events.begin(), r.events.end());
  std::sort(all.begin(), all.end(), [](const Event& x, const Event& y) {
    if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
    if (x.tid != y.tid) return x.tid < y.tid;
    return x.seq < y.seq;
  });
  return all;
}

namespace {

constexpr std::size_t kSlotWords = 6;
constexpr std::size_t kDefaultCapacity = 4096;
constexpr std::size_t kMinCapacity = 64;

// Slot word layout: [0] seqlock version ((seq << 1) while complete,
// (seq << 1) | 1 while the writer is inside), [1] ts_ns,
// [2] (type << 32) | id, [3..5] a/b/c as bit-cast doubles.
struct Ring {
  Ring(std::uint16_t tid_in, std::size_t cap)
      : tid(tid_in), mask(cap - 1), slots(cap * kSlotWords) {}

  // Single-writer push; the owning thread is the only caller.
  void push(EventType type, std::uint32_t id, double a, double b, double c) noexcept {
    const std::uint64_t seq = head.load(std::memory_order_relaxed);
    std::atomic<std::uint64_t>* w = &slots[(seq & mask) * kSlotWords];
    w[0].store((seq << 1) | 1u, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    w[1].store(monotonic_ns(), std::memory_order_relaxed);
    w[2].store((static_cast<std::uint64_t>(type) << 32) | id, std::memory_order_relaxed);
    w[3].store(std::bit_cast<std::uint64_t>(a), std::memory_order_relaxed);
    w[4].store(std::bit_cast<std::uint64_t>(b), std::memory_order_relaxed);
    w[5].store(std::bit_cast<std::uint64_t>(c), std::memory_order_relaxed);
    w[0].store(seq << 1, std::memory_order_release);
    head.store(seq + 1, std::memory_order_release);
  }

  // Concurrent-safe snapshot: validates each slot's version word before
  // and after reading the payload (seqlock read protocol) and discards
  // slots the writer touched in between.
  [[nodiscard]] DumpRing drain() const {
    DumpRing out;
    out.tid = tid;
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t cap = mask + 1;
    const std::uint64_t first = h > cap ? h - cap : 0;
    out.recorded = h;
    out.events.reserve(static_cast<std::size_t>(h - first));
    for (std::uint64_t seq = first; seq < h; ++seq) {
      const std::atomic<std::uint64_t>* w = &slots[(seq & mask) * kSlotWords];
      if (w[0].load(std::memory_order_acquire) != seq << 1) continue;  // busy or overwritten
      Event e;
      e.ts_ns = w[1].load(std::memory_order_relaxed);
      const std::uint64_t ti = w[2].load(std::memory_order_relaxed);
      e.a = std::bit_cast<double>(w[3].load(std::memory_order_relaxed));
      e.b = std::bit_cast<double>(w[4].load(std::memory_order_relaxed));
      e.c = std::bit_cast<double>(w[5].load(std::memory_order_relaxed));
      std::atomic_thread_fence(std::memory_order_acquire);
      if (w[0].load(std::memory_order_relaxed) != seq << 1) continue;  // torn mid-read
      e.seq = seq;
      e.tid = tid;
      e.type = static_cast<EventType>(ti >> 32);
      e.id = static_cast<std::uint32_t>(ti);
      out.events.push_back(e);
    }
    out.dropped = out.recorded - out.events.size();
    return out;
  }

  std::uint16_t tid;
  std::size_t mask;
  std::atomic<std::uint64_t> head{0};
  std::vector<std::atomic<std::uint64_t>> slots;
};

std::size_t round_up_pow2(std::size_t v) {
  std::size_t cap = kMinCapacity;
  while (cap < v) cap <<= 1;
  return cap;
}

}  // namespace

struct Recorder::Impl {
  mutable std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;  // guarded by mu
  std::vector<std::string> labels;           // guarded by mu
  std::unordered_map<std::string, std::uint32_t> label_ids;  // guarded by mu
  DumpSink sink;                             // guarded by mu
  Dump last_auto;                            // guarded by mu
  std::atomic<std::size_t> capacity{kDefaultCapacity};
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint64_t> auto_dump_count{0};
};

namespace {

// Thread-local ring handle. The shared_ptr keeps the ring alive through
// a concurrent reset(); the epoch detects that reset and triggers
// re-registration, so a long-lived thread rejoins the new generation.
struct TlsRing {
  std::shared_ptr<Ring> ring;
  std::uint64_t epoch = ~std::uint64_t{0};
};

TlsRing& tls_ring() {
  thread_local TlsRing t_ring;
  return t_ring;
}

}  // namespace

Recorder::Recorder() : impl_(new Impl) {}

Recorder& Recorder::instance() {
  static Recorder* r = new Recorder;  // leaked: see header
  return *r;
}

void Recorder::record(EventType type, std::uint32_t id, double a, double b, double c) noexcept {
  TlsRing& t = tls_ring();
  const std::uint64_t ep = impl_->epoch.load(std::memory_order_acquire);
  if (t.epoch != ep || !t.ring) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const std::size_t tid = impl_->rings.size();
    t.ring = std::make_shared<Ring>(
        static_cast<std::uint16_t>(std::min<std::size_t>(tid, 0xffff)),
        impl_->capacity.load(std::memory_order_relaxed));
    impl_->rings.push_back(t.ring);
    // Read the epoch under the mutex: if a reset() raced in since the
    // check above, the next record re-registers against the new epoch.
    t.epoch = impl_->epoch.load(std::memory_order_relaxed);
  }
  t.ring->push(type, id, a, b, c);
}

std::uint32_t Recorder::intern_label(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->label_ids.find(std::string(name));
  if (it != impl_->label_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(impl_->labels.size());
  impl_->labels.emplace_back(name);
  impl_->label_ids.emplace(std::string(name), id);
  return id;
}

Dump Recorder::dump(std::string reason) {
  Dump d;
  d.taken_ns = monotonic_ns();
  d.reason = std::move(reason);
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    rings = impl_->rings;
    d.labels = impl_->labels;
  }
  d.rings.reserve(rings.size());
  for (const auto& r : rings) d.rings.push_back(r->drain());
  return d;
}

void Recorder::auto_dump(std::string reason) {
  Dump d = dump(std::move(reason));
  DumpSink sink_copy;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->last_auto = d;
    sink_copy = impl_->sink;
  }
  impl_->auto_dump_count.fetch_add(1, std::memory_order_relaxed);
  if (sink_copy) sink_copy(d);
}

void Recorder::set_dump_sink(DumpSink sink) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sink = std::move(sink);
}

std::uint64_t Recorder::auto_dumps() const noexcept {
  return impl_->auto_dump_count.load(std::memory_order_relaxed);
}

Dump Recorder::last_auto_dump() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->last_auto;
}

void Recorder::set_capacity(std::size_t capacity) {
  impl_->capacity.store(round_up_pow2(capacity), std::memory_order_relaxed);
}

std::size_t Recorder::capacity() const noexcept {
  return impl_->capacity.load(std::memory_order_relaxed);
}

void Recorder::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rings.clear();
  impl_->labels.clear();
  impl_->label_ids.clear();
  impl_->last_auto = Dump{};
  impl_->auto_dump_count.store(0, std::memory_order_relaxed);
  // Bump last so threads that re-register see the cleared state.
  impl_->epoch.fetch_add(1, std::memory_order_release);
}

namespace {

// Stable names of the runtime's HealthState enumerators (obs sits below
// runtime in the library graph, so the enum itself is out of reach here;
// the wire values are part of the dump schema).
const char* health_state_name(double v) {
  switch (static_cast<int>(v)) {
    case 0: return "healthy";
    case 1: return "suspect";
    case 2: return "quarantined";
    case 3: return "probation";
  }
  return "unknown";
}

void append_event_fields(util::JsonWriter& w, const Event& e, const std::vector<std::string>& labels) {
  w.key("tid").value(static_cast<long long>(e.tid));
  w.key("seq").value(static_cast<long long>(e.seq));
  w.key("ts_ns").value(static_cast<double>(e.ts_ns));
  w.key("type").value(std::string(to_string(e.type)));
  w.key("id").value(static_cast<long long>(e.id));
  // Name the id where it has a stable interpretation, so dumps read
  // without the enum tables at hand.
  switch (e.type) {
    case EventType::ResolveTrigger:
    case EventType::ModeTransition:
    case EventType::ChaosInject:
      w.key("cause").value(std::string(to_string(static_cast<Cause>(e.id))));
      break;
    case EventType::SpanEnd:
      if (e.id < labels.size()) w.key("label").value(labels[e.id]);
      break;
    case EventType::HealthTransition:
      w.key("from").value(std::string(health_state_name(e.a)));
      w.key("to").value(std::string(health_state_name(e.b)));
      break;
    default:
      break;
  }
  w.key("a").value(e.a);
  w.key("b").value(e.b);
  w.key("c").value(e.c);
}

}  // namespace

std::string to_jsonl(const Dump& dump) {
  std::string out;
  {
    util::JsonWriter w;
    w.begin_object();
    w.key("schema").value("blade.recorder.v1");
    w.key("reason").value(dump.reason);
    w.key("taken_ns").value(static_cast<double>(dump.taken_ns));
    w.key("labels").begin_array();
    for (const std::string& l : dump.labels) w.value(l);
    w.end_array();
    w.key("rings").begin_array();
    for (const DumpRing& r : dump.rings) {
      w.begin_object();
      w.key("tid").value(static_cast<long long>(r.tid));
      w.key("recorded").value(static_cast<long long>(r.recorded));
      w.key("dropped").value(static_cast<long long>(r.dropped));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out = w.str();
    out += '\n';
  }
  for (const Event& e : dump.merged()) {
    util::JsonWriter w;
    w.begin_object();
    append_event_fields(w, e, dump.labels);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

namespace {

/// One Chrome trace event; ts/dur are microseconds.
void chrome_event(util::JsonWriter& w, const char* name, const char* ph, std::uint16_t tid,
                  double ts_us) {
  w.begin_object();
  w.key("name").value(std::string(name));
  w.key("ph").value(ph);
  w.key("pid").value(1.0);
  w.key("tid").value(static_cast<long long>(tid));
  w.key("ts").value(ts_us);
}

void chrome_args(util::JsonWriter& w, const Event& e) {
  w.key("args").begin_object();
  w.key("id").value(static_cast<long long>(e.id));
  switch (e.type) {
    case EventType::ResolveTrigger:
    case EventType::ModeTransition:
    case EventType::ChaosInject:
      w.key("cause").value(std::string(to_string(static_cast<Cause>(e.id))));
      break;
    case EventType::HealthTransition:
      w.key("from").value(std::string(health_state_name(e.a)));
      w.key("to").value(std::string(health_state_name(e.b)));
      break;
    default:
      break;
  }
  w.key("a").value(e.a);
  w.key("b").value(e.b);
  w.key("c").value(e.c);
  w.end_object();
}

}  // namespace

std::string to_chrome_trace(const Dump& dump) {
  util::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  // Track metadata: one named track per recorded ring.
  {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(1.0);
    w.key("args").begin_object().key("name").value("bladecloud").end_object();
    w.end_object();
  }
  for (const DumpRing& r : dump.rings) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1.0);
    w.key("tid").value(static_cast<long long>(r.tid));
    w.key("args").begin_object().key("name").value("recorder-" + std::to_string(r.tid)).end_object();
    w.end_object();
  }
  // Solve spans are assembled by pairing each SolveEnd with the latest
  // unmatched SolveStart on the same thread; an unpaired end (its start
  // already overwritten in the ring) degrades to an instant event.
  std::vector<const Event*> open_solve(dump.rings.empty() ? 0 : dump.rings.size(), nullptr);
  const std::vector<Event> all = dump.merged();
  for (const Event& e : all) {
    if (e.tid >= open_solve.size()) open_solve.resize(e.tid + 1, nullptr);
    switch (e.type) {
      case EventType::SolveStart:
        open_solve[e.tid] = &e;
        break;
      case EventType::SolveEnd: {
        const Event* start = open_solve[e.tid];
        open_solve[e.tid] = nullptr;
        if (start != nullptr && start->ts_ns <= e.ts_ns) {
          chrome_event(w, e.id == 0 ? "solve" : "solve (failed)", "X", e.tid,
                       static_cast<double>(start->ts_ns) / 1000.0);
          w.key("dur").value(static_cast<double>(e.ts_ns - start->ts_ns) / 1000.0);
          chrome_args(w, e);
          w.end_object();
        } else {
          chrome_event(w, "solve_end", "i", e.tid, static_cast<double>(e.ts_ns) / 1000.0);
          w.key("s").value("t");
          chrome_args(w, e);
          w.end_object();
        }
        break;
      }
      case EventType::SpanEnd: {
        const double dur_us = e.a * 1e6;
        const std::string name =
            e.id < dump.labels.size() ? dump.labels[e.id] : std::string("span");
        chrome_event(w, name.c_str(), "X", e.tid,
                     static_cast<double>(e.ts_ns) / 1000.0 - dur_us);
        w.key("dur").value(dur_us);
        chrome_args(w, e);
        w.end_object();
        break;
      }
      default: {
        std::string name = to_string(e.type);
        if (e.type == EventType::ModeTransition || e.type == EventType::ResolveTrigger ||
            e.type == EventType::ChaosInject) {
          name += ':';
          name += to_string(static_cast<Cause>(e.id));
        }
        chrome_event(w, name.c_str(), "i", e.tid, static_cast<double>(e.ts_ns) / 1000.0);
        w.key("s").value("t");
        chrome_args(w, e);
        w.end_object();
        break;
      }
    }
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void write_dump_file(const Dump& dump, const std::string& path) {
  const bool chrome = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = chrome ? to_chrome_trace(dump) : to_jsonl(dump);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("recorder dump: cannot open '" + path + "'");
  os << body;
  if (!os) throw std::runtime_error("recorder dump: write failed for '" + path + "'");
}

}  // namespace blade::obs
