#include "obs/build_info.hpp"

#include <sstream>

// Configure-time values injected by src/CMakeLists.txt onto blade_obs.
#ifndef BLADE_BUILD_GIT_HASH
#define BLADE_BUILD_GIT_HASH "unknown"
#endif
#ifndef BLADE_BUILD_TYPE
#define BLADE_BUILD_TYPE "unknown"
#endif
#ifndef BLADE_BUILD_SANITIZE
#define BLADE_BUILD_SANITIZE "OFF"
#endif

namespace blade::obs {

namespace {

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("Clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("GNU ") + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
         "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{BLADE_BUILD_GIT_HASH, detect_compiler(), BLADE_BUILD_TYPE,
                              BLADE_BUILD_SANITIZE,
#if defined(BLADE_OBS) && BLADE_OBS
                              true
#else
                              false
#endif
  };
  return info;
}

std::string build_info_text() {
  const BuildInfo& b = build_info();
  std::ostringstream os;
  os << "bladecloud " << b.git_hash << '\n'
     << "  compiler:   " << b.compiler << '\n'
     << "  build type: " << b.build_type << '\n'
     << "  BLADE_OBS:  " << (b.obs_enabled ? "ON" : "OFF") << '\n'
     << "  sanitizer:  " << b.sanitize << '\n';
  return os.str();
}

}  // namespace blade::obs
