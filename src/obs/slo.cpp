#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace blade::obs {

void SloTargets::validate() const {
  const double t[] = {response_time, max_shed_fraction, resolve_latency, max_staleness};
  for (const double v : t) {
    if (!(v >= 0.0) || !std::isfinite(v)) {
      throw std::invalid_argument("SloTargets: targets must be finite and >= 0");
    }
  }
  if (!(objective > 0.0) || !(objective < 1.0)) {
    throw std::invalid_argument("SloTargets: objective must be in (0, 1)");
  }
  if (!(window >= 0.0) || !std::isfinite(window)) {
    throw std::invalid_argument("SloTargets: window must be finite and >= 0");
  }
}

bool SloTargets::any_enabled() const noexcept {
  return response_time > 0.0 || max_shed_fraction > 0.0 || resolve_latency > 0.0 ||
         max_staleness > 0.0;
}

BurnRateMonitor::BurnRateMonitor(std::string name, double objective, double window)
    : name_(std::move(name)), objective_(objective), window_(window) {
  if (!(objective > 0.0) || !(objective < 1.0)) {
    throw std::invalid_argument("BurnRateMonitor: objective must be in (0, 1)");
  }
  if (!(window > 0.0) || !std::isfinite(window)) {
    throw std::invalid_argument("BurnRateMonitor: window must be > 0");
  }
}

void BurnRateMonitor::observe(double t, bool good) {
  if (!(t >= last_t_)) t = last_t_;  // event time never runs backwards
  last_t_ = t;
  ++samples_;
  if (!good) ++breaches_;
  recent_.emplace_back(t, good);
  while (!recent_.empty() && recent_.front().first < t - window_) recent_.pop_front();
}

double BurnRateMonitor::burn_rate() const noexcept {
  if (recent_.empty()) return 0.0;
  std::size_t bad = 0;
  for (const auto& [t, good] : recent_) {
    if (!good) ++bad;
  }
  const double bad_fraction = static_cast<double>(bad) / static_cast<double>(recent_.size());
  return bad_fraction / (1.0 - objective_);
}

void BurnRateMonitor::export_metrics() const {
  Registry& reg = registry();
  reg.set(reg.intern("slo." + name_ + ".burn_rate", Kind::Gauge), burn_rate());
  reg.set(reg.intern("slo." + name_ + ".breaches", Kind::Gauge), static_cast<double>(breaches_));
  reg.set(reg.intern("slo." + name_ + ".samples", Kind::Gauge), static_cast<double>(samples_));
}

namespace {

// Monitor slots inside SloSet::monitors_ (always all four, so tests can
// index by name without searching).
enum Slot : std::size_t { kResponse = 0, kShed, kResolve, kStaleness, kSlotCount };

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

}  // namespace

SloSet::SloSet(const SloTargets& targets) : targets_(targets) {
  targets_.validate();
  if (!(targets_.window > 0.0)) {
    throw std::invalid_argument("SloSet: window must be > 0 (derive it before construction)");
  }
  monitors_.reserve(kSlotCount);
  monitors_.emplace_back("response_time", targets_.objective, targets_.window);
  monitors_.emplace_back("shed_fraction", targets_.objective, targets_.window);
  monitors_.emplace_back("resolve_latency", targets_.objective, targets_.window);
  monitors_.emplace_back("staleness", targets_.objective, targets_.window);
}

SloEpochStatus SloSet::observe(const SloEpoch& epoch) {
  SloEpochStatus st;
  st.epoch = epoch;

  struct Check {
    Slot slot;
    bool enabled;
    bool good;
  };
  const Check checks[] = {
      // An epoch with no completed generic tasks has no response-time
      // evidence either way; count it as good rather than inventing a
      // breach out of silence.
      {kResponse, targets_.response_time > 0.0,
       epoch.response_samples == 0 || epoch.mean_response <= targets_.response_time},
      {kShed, targets_.max_shed_fraction > 0.0,
       epoch.shed_fraction <= targets_.max_shed_fraction},
      {kResolve, targets_.resolve_latency > 0.0,
       epoch.resolves == 0 || epoch.resolve_seconds_mean <= targets_.resolve_latency},
      {kStaleness, targets_.max_staleness > 0.0, epoch.staleness <= targets_.max_staleness},
  };
  for (const Check& ck : checks) {
    if (!ck.enabled) continue;
    monitors_[ck.slot].observe(epoch.t1, ck.good);
    monitors_[ck.slot].export_metrics();
    st.ok = st.ok && ck.good;
    st.worst_burn = std::max(st.worst_burn, monitors_[ck.slot].burn_rate());
  }

  std::string line = "slo epoch " + std::to_string(epoch.index) + "/" +
                     std::to_string(epoch.total) + " [" + fmt(epoch.t0) + "," + fmt(epoch.t1) +
                     ")";
  if (targets_.response_time > 0.0) {
    line += " T' " + fmt(epoch.mean_response) + "/" + fmt(targets_.response_time);
  }
  if (targets_.max_shed_fraction > 0.0) {
    line += " shed " + fmt(epoch.shed_fraction) + "/" + fmt(targets_.max_shed_fraction);
  }
  if (targets_.resolve_latency > 0.0) {
    line += " resolve " + fmt(epoch.resolve_seconds_mean) + "s/" + fmt(targets_.resolve_latency) +
            "s";
  }
  if (targets_.max_staleness > 0.0) {
    line += " stale " + fmt(epoch.staleness) + "/" + fmt(targets_.max_staleness);
  }
  line += " burn " + fmt(st.worst_burn);
  line += st.ok ? " OK" : " BREACH";
  st.line = std::move(line);
  return st;
}

std::uint64_t SloSet::total_breaches() const noexcept {
  std::uint64_t total = 0;
  for (const BurnRateMonitor& m : monitors_) total += m.breaches();
  return total;
}

}  // namespace blade::obs
