// Umbrella header for hot-path instrumentation. Include this (and only
// this) from instrumented code and use the BLADE_OBS_* macros; with the
// build-time BLADE_OBS toggle OFF every macro expands to ((void)0) — no
// registry reference, no clock read, no allocation — so uninstrumented
// builds pay exactly nothing. With BLADE_OBS=ON each call site interns
// its metric once (function-local static) and then performs a plain
// thread-local update per hit.
//
//   BLADE_OBS_COUNT("optimizer.solves");             // counter += 1
//   BLADE_OBS_COUNT_N("sim.events", batch);          // counter += n
//   BLADE_OBS_GAUGE_SET("pool.threads", n);          // gauge = v
//   BLADE_OBS_OBSERVE("pool.queue_depth", depth);    // histogram sample
//   BLADE_OBS_TIMER("optimizer.solve_seconds");      // scoped wall timer
//   BLADE_OBS_SPAN("optimize");                      // scoped nested span
//   BLADE_OBS_SERIES_APPEND("optimizer.phi_bracket", x, y);  // trace point
//   BLADE_OBS_EVENT(ModeTransition, cause, from, to, 0);  // flight-recorder event
//   BLADE_OBS_DUMP("watchdog");                      // auto-dump every ring
//
// The registry API itself (obs/metrics.hpp) is always compiled and
// linkable regardless of the toggle — the macros are the only layer that
// vanishes — so exporters, tests, and tools work in every configuration.
#pragma once

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

#if defined(BLADE_OBS) && BLADE_OBS
#define BLADE_OBS_ENABLED 1
#else
#define BLADE_OBS_ENABLED 0
#endif

#define BLADE_OBS_CONCAT_IMPL(a, b) a##b
#define BLADE_OBS_CONCAT(a, b) BLADE_OBS_CONCAT_IMPL(a, b)

#if BLADE_OBS_ENABLED

#define BLADE_OBS_COUNT_N(name, n)                                                   \
  do {                                                                               \
    static const ::blade::obs::MetricId blade_obs_id_ =                              \
        ::blade::obs::registry().intern((name), ::blade::obs::Kind::Counter);        \
    ::blade::obs::registry().add(blade_obs_id_, static_cast<std::uint64_t>(n));      \
  } while (0)

#define BLADE_OBS_COUNT(name) BLADE_OBS_COUNT_N(name, 1)

#define BLADE_OBS_GAUGE_SET(name, v)                                                 \
  do {                                                                               \
    static const ::blade::obs::MetricId blade_obs_id_ =                              \
        ::blade::obs::registry().intern((name), ::blade::obs::Kind::Gauge);          \
    ::blade::obs::registry().set(blade_obs_id_, static_cast<double>(v));             \
  } while (0)

#define BLADE_OBS_OBSERVE(name, v)                                                   \
  do {                                                                               \
    static const ::blade::obs::MetricId blade_obs_id_ =                              \
        ::blade::obs::registry().intern((name), ::blade::obs::Kind::Histogram);      \
    ::blade::obs::registry().observe(blade_obs_id_, static_cast<double>(v));         \
  } while (0)

#define BLADE_OBS_TIMER(name)                                                        \
  static const ::blade::obs::MetricId BLADE_OBS_CONCAT(blade_obs_timer_id_,          \
                                                       __LINE__) =                   \
      ::blade::obs::registry().intern((name), ::blade::obs::Kind::Timer);            \
  const ::blade::obs::ScopedTimer BLADE_OBS_CONCAT(blade_obs_timer_, __LINE__)(      \
      BLADE_OBS_CONCAT(blade_obs_timer_id_, __LINE__))

#define BLADE_OBS_SPAN(name)                                                         \
  const ::blade::obs::ScopedSpan BLADE_OBS_CONCAT(blade_obs_span_, __LINE__)(name)

#define BLADE_OBS_SERIES_APPEND(name, x, y)                                          \
  do {                                                                               \
    static const ::blade::obs::MetricId blade_obs_id_ =                              \
        ::blade::obs::registry().series(name);                                       \
    ::blade::obs::registry().append(blade_obs_id_, static_cast<double>(x),           \
                                    static_cast<double>(y));                         \
  } while (0)

/// Records one typed flight-recorder event (obs/recorder.hpp): `type` is
/// a bare EventType enumerator name; id/a/b/c follow that type's payload
/// contract. Lock-free per-thread ring write, O(tens of ns).
#define BLADE_OBS_EVENT(type, id, a, b, c)                                           \
  ::blade::obs::recorder().record(::blade::obs::EventType::type,                     \
                                  static_cast<std::uint32_t>(id),                    \
                                  static_cast<double>(a), static_cast<double>(b),    \
                                  static_cast<double>(c))

/// Snapshots every recorder ring (degraded-mode transitions, watchdog
/// trips): remembers the dump and forwards it to the installed sink.
#define BLADE_OBS_DUMP(reason) ::blade::obs::recorder().auto_dump((reason))

/// Publishes the calling thread's accumulated deltas (cheap no-op when
/// the thread touched nothing since its last flush).
#define BLADE_OBS_FLUSH_THREAD() ::blade::obs::registry().flush_this_thread()

#else  // !BLADE_OBS_ENABLED

#define BLADE_OBS_COUNT_N(name, n) ((void)0)
#define BLADE_OBS_COUNT(name) ((void)0)
#define BLADE_OBS_GAUGE_SET(name, v) ((void)0)
#define BLADE_OBS_OBSERVE(name, v) ((void)0)
#define BLADE_OBS_TIMER(name) ((void)0)
#define BLADE_OBS_SPAN(name) ((void)0)
#define BLADE_OBS_SERIES_APPEND(name, x, y) ((void)0)
// sizeof's operand is never evaluated: zero code, but the argument
// expressions still count as used (no -Wunused on OFF-only locals).
#define BLADE_OBS_EVENT(type, id, a, b, c) \
  ((void)sizeof(((void)(id), (void)(a), (void)(b), (void)(c), 0)))
#define BLADE_OBS_DUMP(reason) ((void)0)
#define BLADE_OBS_FLUSH_THREAD() ((void)0)

#endif  // BLADE_OBS_ENABLED
