// Exporters for obs::Snapshot: JSON (the canonical machine-readable
// form, consumed by tools/obs_report and the BENCH_*.json trajectory),
// Prometheus text exposition, and CSV. All three render the same merged
// snapshot; JSON additionally carries build attribution, series, and a
// small set of derived readings (pool utilization, simulator event
// throughput) computed from well-known metric names.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace blade::obs {

enum class ExportFormat { Json, Prometheus, Csv };

/// Parses "json" / "prom" / "csv"; throws std::invalid_argument otherwise.
[[nodiscard]] ExportFormat parse_export_format(std::string_view s);

[[nodiscard]] std::string to_json(const Snapshot& snap);
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);
[[nodiscard]] std::string to_csv(const Snapshot& snap);
[[nodiscard]] std::string render(const Snapshot& snap, ExportFormat format);

/// Flushes the calling thread, snapshots the global registry, and writes
/// the rendering to `path` (throws std::runtime_error on I/O failure).
void write_metrics_file(const std::string& path, ExportFormat format);

/// Bench self-recording hook: writes BENCH_<basename(argv0)>.json in the
/// current directory from a fresh global snapshot, so every bench run
/// leaves a machine-readable perf record. Returns the file name written.
std::string export_bench_json(const std::string& argv0);

}  // namespace blade::obs
