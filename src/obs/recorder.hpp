// Flight recorder: a lock-free per-thread ring buffer of typed control-
// plane events (solves, re-solve triggers, shed decisions, degraded-mode
// transitions, publishes, blade failures, chaos injections), recorded
// through BLADE_OBS_EVENT() in obs/obs.hpp so disabled builds compile
// every record to ((void)0).
//
// Concurrency model — single-writer rings with seqlock slots: each
// thread owns one ring and is its only writer; push() costs one clock
// read plus a handful of relaxed atomic word stores (O(tens of ns),
// gated by bench_obs_recorder). dump() may run on any thread while
// writers keep recording: every slot carries a per-generation version
// word written odd-before / even-after the payload, so the reader
// validates each slot and discards the (rare) torn read instead of
// blocking the writer. Rings are held by shared_ptr so they survive
// their thread's exit and a concurrent reset().
//
// The dump path is the audit trail: Recorder::dump() snapshots every
// ring on demand, and auto_dump() — invoked by the controller on every
// degraded-mode transition and by the solver watchdog on a tripped
// budget — additionally remembers the dump and forwards it to an
// installed sink. Dumps serialize as JSONL (tools/obs_timeline) and as
// Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// Like the metrics registry, the recorder API is always compiled and
// linkable regardless of the BLADE_OBS toggle; only the macro layer
// vanishes, so tests and tools can drive it directly in any build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace blade::obs {

/// Every structured event the control plane records. The per-type
/// payload contract (what id/a/b/c mean) is documented per enumerator
/// and in docs/observability.md.
enum class EventType : std::uint16_t {
  SolveStart = 0,  ///< id = shard cells (0 = flat); a = lambda' target
  SolveEnd,        ///< id = ErrorCode (0 = ok); a = phi, b = outer iterations, c = inner evals
  ResolveTrigger,  ///< id = Cause; a = drift (when Cause::Drift), b = threshold
  ShedDecision,    ///< a = estimated lambda', b = admissible (ceiling * lambda'_max), c = shed prob
  ModeTransition,  ///< id = Cause; a = from Mode, b = to Mode
  AliasPublish,    ///< id = publication version; a = shed prob
  BladeFail,       ///< id = server; a = blades remaining, b = blades lost
  BladeRecover,    ///< id = server; a = blades remaining, b = blades restored
  ChaosInject,     ///< id = Cause (ChaosDrop/...); a = injection-specific value
  WatchdogTrip,    ///< id = ErrorCode; a = evaluations used
  SpanEnd,         ///< id = interned label; a = duration in seconds
  Dispatch,        ///< id = server routed to; a = sim time, b = dispatch ordinal
  EpochMark,       ///< id = epoch index; a = sim time, b = generic rate / lambda'
  HealthTransition,  ///< id = server; a = from HealthState, b = to HealthState, c = score
};

inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::HealthTransition) + 1;

[[nodiscard]] const char* to_string(EventType t) noexcept;

/// Why a decision fired; carried in Event::id for ResolveTrigger /
/// ModeTransition / ChaosInject events so the audit trail names its
/// trigger instead of leaving a bare counter bump.
enum class Cause : std::uint32_t {
  None = 0,
  Drift,          ///< hysteresis check saw drift past the threshold
  Warmup,         ///< first estimate-driven solve after estimator warmup
  DegradedRetry,  ///< degraded mode retries every check until a solve lands
  Failure,        ///< blade-failure event forced the re-solve
  Recovery,       ///< blade-recovery event forced the re-solve
  Forced,         ///< resolve_now() (epoch boundary, test hook)
  InjectedFault,  ///< armed solver fault consumed (chaos)
  SolverError,    ///< re-solve failed; containment engaged
  Infeasible,     ///< no surviving capacity; blackout published
  NoLoad,         ///< nothing measurable to place; fallback published
  Unpublishable,  ///< solver result rejected by alias-table validation
  ChaosDrop,      ///< observation dropped before the controller heard it
  ChaosPhantom,   ///< phantom arrivals reported to telemetry
  ChaosTimewarp,  ///< corrupted observation timestamp
  Restore,        ///< checkpoint restore republished a table
  Quarantine,     ///< health scoring quarantined a blade; weights redistributed
  Probation,      ///< quarantine dwell elapsed; degraded re-solve probes the blade
  HealthRecovered,  ///< probation cleared; nominal re-solve restored the blade
};

[[nodiscard]] const char* to_string(Cause c) noexcept;

/// One recorded event: 48 bytes, fixed layout, meaning of id/a/b/c per
/// EventType (see the enumerator comments).
struct Event {
  std::uint64_t ts_ns = 0;  ///< monotonic_ns() at record time
  std::uint64_t seq = 0;    ///< per-ring generation (dense, 0-based)
  EventType type = EventType::SolveStart;
  std::uint16_t tid = 0;  ///< dense ring index (registration order)
  std::uint32_t id = 0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// One ring's consistent snapshot inside a Dump.
struct DumpRing {
  std::uint16_t tid = 0;
  std::uint64_t recorded = 0;  ///< events ever pushed to this ring
  std::uint64_t dropped = 0;   ///< recorded - retained (wrap overwrites + torn reads)
  std::vector<Event> events;   ///< seq-ascending, each slot validated
};

/// A point-in-time snapshot of every ring plus the span-label table.
struct Dump {
  std::uint64_t taken_ns = 0;
  std::string reason;                ///< "on_demand", "mode:fallback", "watchdog", ...
  std::vector<DumpRing> rings;
  std::vector<std::string> labels;   ///< SpanEnd id -> span path

  [[nodiscard]] std::size_t total_events() const noexcept;
  /// Events lost across all rings (wrap overwrites + torn reads).
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;
  /// All rings' events merged into one (ts_ns, tid, seq)-ordered timeline.
  [[nodiscard]] std::vector<Event> merged() const;
};

class Recorder {
 public:
  /// Process-wide recorder; intentionally leaked like Registry so rings
  /// flushing at thread exit can never outlive it.
  [[nodiscard]] static Recorder& instance();

  /// Records one event into the calling thread's ring. Lock-free after
  /// the thread's first record (which registers its ring under a mutex).
  void record(EventType type, std::uint32_t id, double a = 0.0, double b = 0.0,
              double c = 0.0) noexcept;

  /// Interns a span label (SpanEnd events reference labels by id so the
  /// hot path never stores a string). Idempotent per name.
  [[nodiscard]] std::uint32_t intern_label(std::string_view name);

  /// Snapshots every ring. Safe to call from any thread while writers
  /// keep recording; torn slots are discarded and counted as dropped.
  [[nodiscard]] Dump dump(std::string reason = "on_demand");

  /// dump() + remember as last_auto_dump() + forward to the installed
  /// sink. Called on every degraded-mode transition and watchdog trip.
  void auto_dump(std::string reason);

  using DumpSink = std::function<void(const Dump&)>;
  /// Installs (or clears, with nullptr) the auto-dump sink. The sink runs
  /// on the triggering thread; keep it cheap.
  void set_dump_sink(DumpSink sink);
  [[nodiscard]] std::uint64_t auto_dumps() const noexcept;
  /// The most recent auto-dump (empty Dump with reason "" when none yet).
  [[nodiscard]] Dump last_auto_dump() const;

  /// Per-ring capacity for rings created after the call (rounded up to a
  /// power of two, minimum 64). Pair with reset() to apply everywhere.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Drops every ring, dump, and label; live threads re-register their
  /// ring (at the current capacity) on their next record. Test helper —
  /// events recorded concurrently with reset() may land in a detached
  /// ring and be lost, which is fine for a crash recorder.
  void reset();

  struct Impl;

 private:
  Recorder();

  Impl* impl_ = nullptr;  // owned; never freed (see instance())
};

/// Shorthand for Recorder::instance().
[[nodiscard]] inline Recorder& recorder() { return Recorder::instance(); }

/// JSONL serialization: a header line ({"schema":"blade.recorder.v1",...})
/// followed by one JSON object per event in merged timeline order.
/// tools/obs_timeline consumes this.
[[nodiscard]] std::string to_jsonl(const Dump& dump);

/// Chrome trace-event JSON (chrome://tracing / Perfetto "JSON" format):
/// SpanEnd and paired SolveStart/SolveEnd become duration ("X") events,
/// everything else instant ("i") events, on one track per recorded
/// thread.
[[nodiscard]] std::string to_chrome_trace(const Dump& dump);

/// Writes `dump` to `path`: a ".json" extension selects Chrome trace
/// format, anything else JSONL. Throws std::runtime_error on I/O failure.
void write_dump_file(const Dump& dump, const std::string& path);

}  // namespace blade::obs
