// Build attribution for exported metrics: git revision, compiler, build
// type, and the BLADE_OBS / sanitizer configuration. Every exporter
// embeds this block so a BENCH_*.json or --metrics-out file can always be
// traced back to the binary that produced it.
#pragma once

#include <string>

namespace blade::obs {

struct BuildInfo {
  std::string git_hash;    ///< short revision at configure time ("unknown" outside git)
  std::string compiler;    ///< e.g. "GNU 13.2.0" or "Clang 17.0.6"
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string sanitize;    ///< BLADE_SANITIZE value (OFF, address, thread)
  bool obs_enabled;        ///< true when compiled with BLADE_OBS=ON
};

[[nodiscard]] const BuildInfo& build_info() noexcept;

/// Human-readable multi-line rendering (the CLI's --version body).
[[nodiscard]] std::string build_info_text();

}  // namespace blade::obs
