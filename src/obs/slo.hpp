// SLO burn-rate monitors for the control plane. A BurnRateMonitor is a
// windowed evaluator over good/bad observations in *event time*: each
// epoch the caller reports whether the objective held, and the monitor
// answers "at what multiple of the error budget are we burning?" —
// burn rate 1.0 spends exactly the budget the objective allows
// (1 - objective bad epochs), >1 is on course to violate the SLO.
//
// SloSet bundles the four control-plane objectives (mean T' vs. target,
// shed fraction, re-solve latency, staleness of last-known-good), feeds
// them from per-epoch aggregates, exports slo.* gauges through the
// ordinary metrics registry (JSON / Prometheus / CSV), and formats the
// per-epoch report line `bladecli serve-replay --slo-target` prints.
//
// Everything here is explicit-feed and always compiled: no macros, no
// dependency on the BLADE_OBS toggle — replay computes the aggregates
// from controller stats and simulator collectors it owns anyway.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace blade::obs {

/// Objectives for one serve-replay (or any epoch-driven caller). A
/// target of 0 disables its monitor. Times are in model time units
/// (multiples of rbar), matching T' everywhere else in the stack.
struct SloTargets {
  double response_time = 0.0;      ///< epoch mean generic T' must stay <= this
  double max_shed_fraction = 0.0;  ///< epoch shed fraction must stay <= this
  double resolve_latency = 0.0;    ///< epoch mean re-solve wall seconds <= this
  double max_staleness = 0.0;      ///< age of the last good solve (event time) <= this
  double objective = 0.99;         ///< fraction of epochs that must be good, in (0, 1)
  double window = 0.0;             ///< burn-rate window (event time); 0 = caller derives

  /// Throws std::invalid_argument on an out-of-domain objective/window
  /// or a negative target.
  void validate() const;

  /// True when at least one monitor has a target.
  [[nodiscard]] bool any_enabled() const noexcept;
};

/// One objective's windowed burn-rate evaluator.
class BurnRateMonitor {
 public:
  /// @param objective fraction of observations that must be good, in (0, 1)
  /// @param window    trailing event-time span the burn rate is computed over
  BurnRateMonitor(std::string name, double objective, double window);

  /// Reports one observation at event time t. Out-of-order times are
  /// clamped forward (event time is non-decreasing by construction).
  void observe(double t, bool good);

  /// Bad fraction over the trailing window divided by the error budget
  /// (1 - objective); 0 when nothing observed yet.
  [[nodiscard]] double burn_rate() const noexcept;

  [[nodiscard]] std::uint64_t breaches() const noexcept { return breaches_; }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double objective() const noexcept { return objective_; }
  [[nodiscard]] double window() const noexcept { return window_; }

  /// Publishes slo.<name>.burn_rate / .breaches / .samples gauges into
  /// the global metrics registry (idempotent: gauges, not counters).
  void export_metrics() const;

 private:
  std::string name_;
  double objective_;
  double window_;
  double last_t_ = 0.0;
  std::deque<std::pair<double, bool>> recent_;  ///< (t, good) within window
  std::uint64_t breaches_ = 0;
  std::uint64_t samples_ = 0;
};

/// Per-epoch aggregates the caller computes (replay diffs controller
/// stats and the response collector across the epoch boundary).
struct SloEpoch {
  int index = 0;     ///< 1-based epoch number
  int total = 0;     ///< epochs in the run
  double t0 = 0.0;
  double t1 = 0.0;
  double mean_response = 0.0;          ///< generic T' over the epoch
  std::uint64_t response_samples = 0;
  double shed_fraction = 0.0;          ///< shed / offered over the epoch
  double resolve_seconds_mean = 0.0;   ///< wall seconds per re-solve
  std::uint64_t resolves = 0;
  double staleness = 0.0;              ///< t1 - time of last good solve
};

/// One epoch's evaluation: which objectives held plus the report line.
struct SloEpochStatus {
  SloEpoch epoch;
  bool ok = true;          ///< every enabled objective held this epoch
  double worst_burn = 0.0; ///< max burn rate across enabled monitors
  std::string line;        ///< "slo epoch k/N [...] ..." report line
};

class SloSet {
 public:
  /// Monitors are created for every objective; disabled ones (target 0)
  /// never observe. `targets.window` must be > 0 by the time the set is
  /// constructed (replay derives 4 epoch lengths when the user left 0).
  explicit SloSet(const SloTargets& targets);

  /// Feeds every enabled monitor, exports slo.* gauges, and formats the
  /// report line.
  SloEpochStatus observe(const SloEpoch& epoch);

  [[nodiscard]] const SloTargets& targets() const noexcept { return targets_; }
  [[nodiscard]] const std::vector<BurnRateMonitor>& monitors() const noexcept {
    return monitors_;
  }
  /// Total objective breaches across all monitors so far.
  [[nodiscard]] std::uint64_t total_breaches() const noexcept;

 private:
  SloTargets targets_;
  std::vector<BurnRateMonitor> monitors_;  ///< response, shed, resolve, staleness
};

}  // namespace blade::obs
