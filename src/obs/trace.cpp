#include "obs/trace.hpp"

#include <string>
#include <unordered_map>

#include "obs/recorder.hpp"

namespace blade::obs {

namespace {

std::string& thread_path() {
  thread_local std::string t_path;
  return t_path;
}

struct SpanIds {
  MetricId metric;
  std::uint32_t label;  ///< recorder label (SpanEnd events reference it)
};

// Path -> ids, cached per thread so steady-state span entry never
// touches the registry or recorder mutex.
SpanIds intern_span(const std::string& path) {
  thread_local std::unordered_map<std::string, SpanIds> t_cache;
  const auto it = t_cache.find(path);
  if (it != t_cache.end()) return it->second;
  const SpanIds ids{registry().intern("span." + path, Kind::Timer),
                    recorder().intern_label(path)};
  t_cache.emplace(path, ids);
  return ids;
}

}  // namespace

ScopedSpan::ScopedSpan(std::string_view name) {
  std::string& path = thread_path();
  parent_len_ = path.size();
  if (!path.empty()) path += '/';
  path += name;
  const SpanIds ids = intern_span(path);
  id_ = ids.metric;
  label_ = ids.label;
  start_ns_ = monotonic_ns();
}

ScopedSpan::~ScopedSpan() {
  const double elapsed = static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
  registry().observe(id_, elapsed);
  // Also drop a SpanEnd into the flight recorder so Chrome-trace dumps
  // show span instances, not just the aggregated timer.
  recorder().record(EventType::SpanEnd, label_, elapsed);
  thread_path().resize(parent_len_);
}

std::string_view current_span_path() { return thread_path(); }

}  // namespace blade::obs
