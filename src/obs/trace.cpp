#include "obs/trace.hpp"

#include <string>
#include <unordered_map>

namespace blade::obs {

namespace {

std::string& thread_path() {
  thread_local std::string t_path;
  return t_path;
}

// Path -> metric id, cached per thread so steady-state span entry never
// touches the registry mutex.
MetricId intern_span(const std::string& path) {
  thread_local std::unordered_map<std::string, MetricId> t_cache;
  const auto it = t_cache.find(path);
  if (it != t_cache.end()) return it->second;
  const MetricId id = registry().intern("span." + path, Kind::Timer);
  t_cache.emplace(path, id);
  return id;
}

}  // namespace

ScopedSpan::ScopedSpan(std::string_view name) {
  std::string& path = thread_path();
  parent_len_ = path.size();
  if (!path.empty()) path += '/';
  path += name;
  id_ = intern_span(path);
  start_ns_ = monotonic_ns();
}

ScopedSpan::~ScopedSpan() {
  registry().observe(id_, static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
  thread_path().resize(parent_len_);
}

std::string_view current_span_path() { return thread_path(); }

}  // namespace blade::obs
