// bladecli: the command-line front end to the library. See
// src/cli/app.hpp for the command set, or run with no arguments for
// usage. Example:
//
//   cat > cluster.spec <<EOF
//   rbar = 1.0
//   preload = 0.3
//   server 2 1.6
//   server 4 1.5
//   server 6 1.4
//   EOF
//   bladecli optimize cluster.spec 8.0
//   bladecli validate cluster.spec 8.0 --priority --reps 8
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/app.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    std::cout << blade::cli::run_cli(args);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bladecli: " << e.what() << '\n';
    return 1;
  }
}
