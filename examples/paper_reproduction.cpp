// One-shot reproduction summary: everything the paper's evaluation
// reports, in one run -- both tables digit-for-digit, one representative
// figure, and the simulation validation the paper lacks. For the full
// figure set run the binaries in build/bench/.
#include <iostream>

#include "cloud/experiments.hpp"
#include "cloud/report.hpp"
#include "cloud/series.hpp"

int main() {
  using namespace blade;

  std::cout << "################################################################\n"
            << "# Li, 'Optimal Load Distribution for Multiple Heterogeneous\n"
            << "# Blade Servers in a Cloud Computing Environment' (IPDPS-W 2011)\n"
            << "# -- reproduction summary\n"
            << "################################################################\n\n";

  std::cout << cloud::render_example_table(
                   cloud::example_table(queue::Discipline::Fcfs),
                   "Table 1 (Example 1, special tasks without priority)")
            << "paper: T' = 0.8964703\n\n";

  std::cout << cloud::render_example_table(
                   cloud::example_table(queue::Discipline::SpecialPriority),
                   "Table 2 (Example 2, special tasks with priority)")
            << "paper: T' = 0.9209392\n\n";

  std::cout << "Figure 4 (impact of server sizes, no priority), 5 size groups:\n";
  std::cout << cloud::ascii_plot(cloud::figure(4, 16)) << '\n';

  std::cout << "Simulation validation (the check the paper never ran):\n";
  std::cout << cloud::render_validation(cloud::validate_examples(4, 20000.0, 2000.0));
  std::cout << "\nAll twelve figures: bench_fig*; ablations/extensions: other bench_* binaries.\n";
  return 0;
}
