// Capacity planning: the paper's rule-of-thumb says the lever on T' is
// the saturation point lambda'_max = sum(m_i s_i / rbar - lambda''_i).
// This example answers a concrete what-if: given a response-time SLO for
// generic tasks and a forecast arrival rate, how many blades must be
// added to the largest server (or how much must every blade be sped up)?
//
//   ./capacity_planning [target_T] [lambda]
#include <cstdlib>
#include <iostream>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "util/table.hpp"

namespace {

using namespace blade;

double optimal_T(const model::Cluster& c, double lambda) {
  return opt::LoadDistributionOptimizer(c, queue::Discipline::Fcfs)
      .optimize(lambda)
      .response_time;
}

model::Cluster with_extra_blades(const model::Cluster& base, unsigned extra) {
  // Grow the largest (last) server; the preload rate stays as-is, so the
  // added blades are fully available to generic tasks.
  std::vector<model::BladeServer> servers = base.servers();
  const auto& last = servers.back();
  servers.back() = model::BladeServer(last.size() + extra, last.speed(), last.special_rate());
  return model::Cluster(std::move(servers), base.rbar());
}

model::Cluster with_speedup(const model::Cluster& base, double factor) {
  std::vector<model::BladeServer> servers;
  for (const auto& s : base.servers()) {
    servers.emplace_back(s.size(), s.speed() * factor, s.special_rate());
  }
  return model::Cluster(std::move(servers), base.rbar());
}

}  // namespace

int main(int argc, char** argv) {
  const auto base = model::paper_example_cluster();
  const double target = argc > 1 ? std::atof(argv[1]) : 0.95;
  const double lambda = argc > 2 ? std::atof(argv[2]) : 0.62 * base.max_generic_rate();

  if (lambda >= base.max_generic_rate()) {
    std::cerr << "forecast exceeds even the current saturation point\n";
    return 1;
  }
  const double current = optimal_T(base, lambda);
  std::cout << "forecast lambda' = " << lambda << " tasks/s, SLO T' <= " << target << " s\n"
            << "current cluster:  T' = " << util::fixed(current, 4) << " s ("
            << (current <= target ? "meets SLO" : "violates SLO") << ")\n\n";
  if (current <= target) return 0;

  // Option 1: add blades to the largest server until the SLO holds.
  std::cout << "option 1: grow the largest server\n";
  util::Table t1({"extra blades", "lambda'_max", "optimal T'", "meets SLO"});
  unsigned needed_blades = 0;
  for (unsigned extra = 0; extra <= 64; ++extra) {
    const auto grown = with_extra_blades(base, extra);
    const double t = optimal_T(grown, lambda);
    if (extra % 2 == 0 || t <= target) {
      t1.add_row({std::to_string(extra), util::fixed(grown.max_generic_rate(), 2),
                  util::fixed(t, 4), t <= target ? "yes" : "no"});
    }
    if (t <= target) {
      needed_blades = extra;
      break;
    }
  }
  std::cout << t1.render() << "=> add " << needed_blades << " blades\n\n";

  // Option 2: uniform speedup of every blade.
  std::cout << "option 2: speed up every blade\n";
  util::Table t2({"speedup", "optimal T'", "meets SLO"});
  for (double f : {1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.4, 1.5}) {
    const auto faster = with_speedup(base, f);
    const double t = optimal_T(faster, lambda);
    t2.add_row({util::fixed(f, 2), util::fixed(t, 4), t <= target ? "yes" : "no"});
    if (t <= target) break;
  }
  std::cout << t2.render();
  return 0;
}
