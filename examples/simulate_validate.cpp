// Simulation validation on a user-defined cluster: optimize, then drive
// the discrete-event blade-center model at the optimal rates and compare
// measured response times (with confidence intervals) against the
// analytic prediction.
//
//   ./simulate_validate [replications]
#include <cstdlib>
#include <iostream>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace blade;
  const int reps = argc > 1 ? std::atoi(argv[1]) : 6;

  // A deliberately awkward cluster: tiny fast server, huge slow one,
  // uneven preloads -- the regime where naive splits fail hardest.
  const model::Cluster cluster(
      {
          model::BladeServer(2, 3.0, 1.5),
          model::BladeServer(24, 0.7, 6.0),
          model::BladeServer(6, 1.2, 0.0),
      },
      /*rbar=*/1.0);
  const double lambda = 0.7 * cluster.max_generic_rate();

  std::cout << "cluster: " << cluster.describe() << '\n'
            << "lambda' = " << lambda << ", replications = " << reps << "\n\n";

  util::Table t({"discipline", "analytic T'", "simulated T'", "95% CI", "within CI"});
  for (auto d : {queue::Discipline::Fcfs, queue::Discipline::SpecialPriority}) {
    const auto sol = opt::LoadDistributionOptimizer(cluster, d).optimize(lambda);
    sim::SimConfig cfg;
    cfg.horizon = 40000.0;
    cfg.warmup = 4000.0;
    const auto mode = sim::to_mode(d);
    const auto rep = sim::replicate(
        [&](const sim::SimConfig& c) {
          return sim::simulate_split(cluster, sol.rates, mode, c);
        },
        cfg, reps);
    t.add_row({queue::to_string(d), util::fixed(sol.response_time, 4),
               util::fixed(rep.generic_response.mean, 4),
               "+/-" + util::fixed(rep.generic_response.half_width, 4),
               rep.generic_response.contains(sol.response_time) ? "yes" : "no"});
  }
  std::cout << t.render()
            << "\nA 95% CI misses the analytic value about 1 run in 20 by design;\n"
               "persistent misses would indicate a modeling error.\n";
  return 0;
}
