// Heterogeneity what-if: given a fixed blade budget and total speed,
// does it matter how the blades are packaged into servers? Recreates the
// paper's Figs. 12-15 finding on user-adjustable configurations and
// quantifies heterogeneity with the normalized mean absolute deviation.
#include <iostream>
#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;

  struct Variant {
    const char* name;
    std::vector<unsigned> sizes;
  };
  // 48 blades, speed 1.3 each, preload 30%, packaged five different ways.
  const std::vector<Variant> variants = {
      {"one-giant", {48}},
      {"few-large", {16, 16, 16}},
      {"balanced", {8, 8, 8, 8, 8, 8}},
      {"mixed", {2, 4, 6, 8, 12, 16}},
      {"many-small", std::vector<unsigned>(12, 4)},
  };

  util::Table t({"packaging", "servers", "size MAD", "T' @40%", "T' @70%", "T' @90%"});
  t.set_align(0, util::Align::Left);
  for (const auto& v : variants) {
    const std::vector<double> speeds(v.sizes.size(), 1.3);
    const auto cluster = model::make_cluster(v.sizes, speeds, 1.0, 0.3);
    std::vector<double> sizes_d(v.sizes.begin(), v.sizes.end());
    const double mad = util::mean_abs_deviation(sizes_d);
    const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
    std::vector<std::string> row{v.name, std::to_string(v.sizes.size()), util::fixed(mad, 3)};
    for (double frac : {0.4, 0.7, 0.9}) {
      row.push_back(util::fixed(solver.optimize(frac * cluster.max_generic_rate()).response_time, 4));
    }
    t.add_row(row);
  }
  std::cout << "48 blades at speed 1.3, 30% preload, optimally balanced generic load\n"
            << t.render()
            << "\nreading: one big pool always wins (economy of scale in M/M/m);\n"
               "among multi-server packagings the differences are small, echoing the\n"
               "paper's finding that size heterogeneity hardly moves T'.\n";
  return 0;
}
