// SLA planner: the paper minimizes the *mean* generic response time, but
// SLAs are usually tail percentiles. This example optimizes the split,
// reports each server's p50/p90/p99 response times from the exact M/M/m
// distribution, validates a percentile against simulation, and finds the
// largest lambda' the cluster can carry under a p99 SLA.
#include <iostream>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "numerics/roots.hpp"
#include "queueing/waiting_distribution.hpp"
#include "sim/simulation.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

namespace {

using namespace blade;

// Mixture p99 across servers at the optimal split: the overall CCDF is
// sum_i (lambda_i / lambda) * CCDF_i(t); invert numerically.
double mixture_quantile(const model::Cluster& cluster, const opt::LoadDistribution& sol,
                        double lambda, double p) {
  auto cdf = [&](double t) {
    double ccdf = 0.0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (sol.rates[i] <= 1e-12) continue;
      const auto& s = cluster.server(i);
      const queue::WaitingTimeDistribution d(s.size(), s.mean_service_time(cluster.rbar()),
                                             sol.rates[i] + s.special_rate());
      ccdf += sol.rates[i] / lambda * d.response_ccdf(t);
    }
    return 1.0 - ccdf;
  };
  const auto root = num::solve_increasing(cdf, p, 0.0, std::nullopt, 1.0);
  return root.x;
}

}  // namespace

int main() {
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  const auto sol =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);

  std::cout << "Example cluster at lambda' = " << lambda
            << " (mean-optimal split, T' = " << util::fixed(sol.response_time, 4) << ")\n\n";

  util::Table t({"i", "lambda'_i", "p50", "p90", "p99"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    const queue::WaitingTimeDistribution d(s.size(), s.mean_service_time(cluster.rbar()),
                                           sol.rates[i] + s.special_rate());
    t.add_row({std::to_string(i + 1), util::fixed(sol.rates[i], 4),
               util::fixed(d.response_quantile(0.5), 4), util::fixed(d.response_quantile(0.9), 4),
               util::fixed(d.response_quantile(0.99), 4)});
  }
  std::cout << "per-server generic response percentiles (analytic):\n" << t.render() << '\n';

  const double p99 = mixture_quantile(cluster, sol, lambda, 0.99);
  std::cout << "overall p99 of generic tasks (mixture): " << util::fixed(p99, 4) << " s\n";

  // Simulated check of the mixture p99.
  sim::SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.warmup = 3000.0;
  cfg.record_generic_trace = true;
  const auto res = sim::simulate_split(cluster, sol.rates, sim::SchedulingMode::Fcfs, cfg);
  util::Histogram h(0.0, 50.0, 5000);
  for (double x : res.generic_trace) h.add(x);
  std::cout << "simulated p99 (" << res.generic_trace.size()
            << " samples): " << util::fixed(h.quantile(0.99), 4) << " s\n\n";

  // Capacity under a p99 SLA: the largest feasible lambda' whose
  // mean-optimal split keeps the mixture p99 below the target.
  const double slo = 4.0;
  auto p99_at = [&](double lam) {
    const auto s = opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lam);
    return mixture_quantile(cluster, s, lam, 0.99);
  };
  const num::RootOptions opts{.tolerance = 1e-4, .max_iterations = 100, .max_expansions = 60};
  const auto cap = num::solve_increasing(p99_at, slo, 1.0, cluster.max_generic_rate(), 10.0, opts);
  std::cout << "largest lambda' meeting a p99 <= " << slo << " s SLA: " << util::fixed(cap.x, 2)
            << " tasks/s (" << util::fixed(100.0 * cap.x / cluster.max_generic_rate(), 1)
            << "% of saturation)\n";
  return 0;
}
