// Quickstart: describe a small heterogeneous blade center, ask the
// optimizer for the load distribution that minimizes the mean response
// time of generic tasks, and print the result.
//
//   ./quickstart [lambda]
//
// The optional argument is the total generic arrival rate (tasks per
// second); it defaults to 60% of the cluster's saturation point.
#include <cstdlib>
#include <iostream>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace blade;

  // Three blade servers: (blades, GIPS per blade, special-task rate).
  // Server A: small and fast; B: large and slow; C: mid-sized, lightly
  // preloaded. Mean task size 1.0 giga-instructions.
  const model::Cluster cluster(
      {
          model::BladeServer(4, 2.0, 2.0),   // A
          model::BladeServer(16, 0.9, 4.0),  // B
          model::BladeServer(8, 1.4, 1.0),   // C
      },
      /*rbar=*/1.0);

  double lambda = 0.6 * cluster.max_generic_rate();
  if (argc > 1) lambda = std::atof(argv[1]);
  if (!(lambda > 0.0) || lambda >= cluster.max_generic_rate()) {
    std::cerr << "lambda must be in (0, " << cluster.max_generic_rate() << ")\n";
    return 1;
  }

  std::cout << "cluster: " << cluster.describe() << '\n'
            << "distributing lambda' = " << lambda << " generic tasks/s\n\n";

  for (auto d : {queue::Discipline::Fcfs, queue::Discipline::SpecialPriority}) {
    const opt::LoadDistributionOptimizer solver(cluster, d);
    const auto sol = solver.optimize(lambda);

    util::Table t({"server", "blades", "speed", "lambda'_i", "rho_i", "T'_i"});
    const char* names[] = {"A", "B", "C"};
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      t.add_row({names[i], std::to_string(cluster.server(i).size()),
                 util::fixed(cluster.server(i).speed(), 1), util::fixed(sol.rates[i], 4),
                 util::fixed(sol.utilizations[i], 4), util::fixed(sol.response_times[i], 4)});
    }
    std::cout << "discipline: " << queue::to_string(d) << '\n'
              << t.render() << "minimized mean generic response time T' = "
              << util::fixed(sol.response_time, 4) << " s\n\n";
  }
  return 0;
}
