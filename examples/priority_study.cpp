// Priority study: what does giving special tasks head-of-line priority
// cost the generic workload, and what does it buy the special one? Sweeps
// the generic load on the paper's cluster and reports both classes'
// response times under both disciplines, plus the preemptive-resume
// extension measured in simulation.
#include <iostream>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;
  const auto cluster = model::paper_example_cluster();

  std::cout << "Analytic: generic T' under both disciplines\n";
  util::Table t({"load", "lambda'", "T' (fcfs)", "T' (priority)", "generic penalty"});
  for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const double lambda = frac * cluster.max_generic_rate();
    const double t_f = opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs)
                           .optimize(lambda)
                           .response_time;
    const double t_p =
        opt::LoadDistributionOptimizer(cluster, queue::Discipline::SpecialPriority)
            .optimize(lambda)
            .response_time;
    t.add_row({util::fixed(frac, 2), util::fixed(lambda, 2), util::fixed(t_f, 4),
               util::fixed(t_p, 4), util::fixed(100.0 * (t_p / t_f - 1.0), 2) + "%"});
  }
  std::cout << t.render() << '\n';

  // What the special tasks gain, measured in simulation (the analytic
  // model gives their mean via Theorem 2's intermediate W'').
  std::cout << "Simulated per-class response times at 60% load (one seed):\n";
  const double lambda = 0.6 * cluster.max_generic_rate();
  const auto sol_f =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);
  const auto sol_p = opt::LoadDistributionOptimizer(cluster, queue::Discipline::SpecialPriority)
                         .optimize(lambda);
  sim::SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.warmup = 3000.0;
  util::Table s({"mode", "generic T'", "special T''", "preemptions"});
  struct Case {
    const char* name;
    const std::vector<double>& rates;
    sim::SchedulingMode mode;
  };
  for (const Case& c : {Case{"fcfs", sol_f.rates, sim::SchedulingMode::Fcfs},
                        Case{"priority", sol_p.rates, sim::SchedulingMode::NonPreemptivePriority},
                        Case{"preemptive", sol_p.rates, sim::SchedulingMode::PreemptiveResume}}) {
    const auto res = sim::simulate_split(cluster, c.rates, c.mode, cfg);
    std::uint64_t preempt = 0;
    for (const auto& srv : res.servers) preempt += srv.preemptions;
    s.add_row({c.name, util::fixed(res.generic_mean_response, 4),
               util::fixed(res.special_mean_response, 4), std::to_string(preempt)});
  }
  std::cout << s.render()
            << "\nreading: priority trims special-task latency at a modest generic-task\n"
               "cost; preemption pushes the same trade further.\n";
  return 0;
}
