// Design advisor: combines the sensitivity report ("which knob helps most
// right now?") with the blade-allocation designer ("where should the next
// budget go?") for an operations-style answer on a concrete cluster.
#include <iostream>

#include "core/allocation.hpp"
#include "core/optimizer.hpp"
#include "core/sensitivity.hpp"
#include "model/cluster.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace blade;

  const model::Cluster cluster(
      {
          model::BladeServer(4, 1.8, 2.2),
          model::BladeServer(10, 1.1, 3.3),
          model::BladeServer(6, 1.4, 2.5),
      },
      /*rbar=*/1.0);
  const double lambda = 0.75 * cluster.max_generic_rate();

  std::cout << "cluster: " << cluster.describe() << '\n'
            << "operating at lambda' = " << util::fixed(lambda, 2) << " (75% of saturation)\n\n";

  const auto sol =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);
  std::cout << "current optimal T' = " << util::fixed(sol.response_time, 4) << " s\n\n";

  // 1. Which knob is most valuable right now?
  const auto sens = opt::analyze_sensitivity(cluster, queue::Discipline::Fcfs, lambda);
  util::Table t({"server", "+10% speed", "-10% special load", "+1 blade"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& s = cluster.server(i);
    t.add_row({std::to_string(i + 1),
               util::fixed(sens.dT_dspeed[i] * 0.1 * s.speed(), 5),
               util::fixed(-sens.dT_dspecial[i] * 0.1 * s.special_rate(), 5),
               util::fixed(sens.blade_value[i], 5)});
  }
  std::cout << "estimated change in T' per intervention (negative = better):\n"
            << t.render() << '\n';

  // 2. If we could repackage all 20 blades freely, what is the best layout?
  opt::AllocationProblem p;
  for (const auto& s : cluster.servers()) p.speeds.push_back(s.speed());
  p.blade_budget = cluster.total_blades();
  p.rbar = cluster.rbar();
  p.preload_fraction = 0.5;  // roughly this cluster's average preload
  p.lambda_total = lambda * 0.8;  // leave design headroom
  const auto design = opt::allocate_blades(p);
  std::vector<double> sizes_d(design.sizes.begin(), design.sizes.end());
  std::cout << "greenfield repackaging of " << p.blade_budget
            << " blades (design load " << util::fixed(p.lambda_total, 1)
            << "): " << util::to_string(sizes_d, 0)
            << " -> T' = " << util::fixed(design.response_time, 4) << " s\n";
  return 0;
}
