// Replication determinism: the differential harness and the validation
// studies lean on the simulator being a pure function of (instance,
// config, seed). Same seed must mean bitwise-identical metrics -- not
// "statistically close", identical -- and different seeds must produce
// genuinely different sample paths.
#include <gtest/gtest.h>

#include <cstddef>

#include "model/paper_configs.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace blade;

sim::SimConfig config(std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.horizon = 2500.0;
  cfg.warmup = 250.0;
  cfg.seed = seed;
  cfg.record_generic_trace = true;
  return cfg;
}

std::vector<double> even_split(const model::Cluster& c, double fraction) {
  std::vector<double> rates(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    rates[i] = fraction * c.server(i).max_generic_rate(c.rbar());
  }
  return rates;
}

void expect_bitwise_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.generic_mean_response, b.generic_mean_response);
  EXPECT_EQ(a.generic_samples, b.generic_samples);
  EXPECT_EQ(a.special_mean_response, b.special_mean_response);
  EXPECT_EQ(a.special_samples, b.special_samples);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].utilization, b.servers[i].utilization) << "server " << i;
    EXPECT_EQ(a.servers[i].time_avg_tasks, b.servers[i].time_avg_tasks) << "server " << i;
    EXPECT_EQ(a.servers[i].completions, b.servers[i].completions) << "server " << i;
    EXPECT_EQ(a.servers[i].preemptions, b.servers[i].preemptions) << "server " << i;
  }
  ASSERT_EQ(a.generic_trace.size(), b.generic_trace.size());
  for (std::size_t i = 0; i < a.generic_trace.size(); ++i) {
    ASSERT_EQ(a.generic_trace[i], b.generic_trace[i]) << "trace sample " << i;
  }
}

class SimDeterminism : public ::testing::TestWithParam<queue::Discipline> {};

TEST_P(SimDeterminism, SameSeedIsBitwiseIdentical) {
  const auto c = model::paper_example_cluster();
  const auto rates = even_split(c, 0.5);
  const auto mode = sim::to_mode(GetParam());
  const auto a = sim::simulate_split(c, rates, mode, config(42));
  const auto b = sim::simulate_split(c, rates, mode, config(42));
  ASSERT_GT(a.generic_samples, 100u);
  expect_bitwise_identical(a, b);
}

TEST_P(SimDeterminism, DifferentSeedsDivergeStatistically) {
  const auto c = model::paper_example_cluster();
  const auto rates = even_split(c, 0.5);
  const auto mode = sim::to_mode(GetParam());
  const auto a = sim::simulate_split(c, rates, mode, config(42));
  const auto b = sim::simulate_split(c, rates, mode, config(43));
  // Distinct Poisson sample paths: event counts and means both move.
  EXPECT_NE(a.events, b.events);
  EXPECT_NE(a.generic_mean_response, b.generic_mean_response);
  // But both estimate the same system: means within 25% of each other.
  EXPECT_NEAR(a.generic_mean_response, b.generic_mean_response,
              0.25 * a.generic_mean_response);
}

TEST_P(SimDeterminism, ReplicateIsDeterministicDespiteThreading) {
  const auto c = model::paper_example_cluster();
  const auto rates = even_split(c, 0.4);
  const auto mode = sim::to_mode(GetParam());
  auto one = [&](const sim::SimConfig& cfg) { return sim::simulate_split(c, rates, mode, cfg); };
  sim::SimConfig base = config(7);
  base.record_generic_trace = false;
  const auto r1 = sim::replicate(one, base, 4);
  const auto r2 = sim::replicate(one, base, 4);
  // Replications run on the pool in any order, but seeds are fixed and
  // aggregation is positional, so the CI must be bit-identical.
  EXPECT_EQ(r1.generic_response.mean, r2.generic_response.mean);
  EXPECT_EQ(r1.generic_response.half_width, r2.generic_response.half_width);
  ASSERT_EQ(r1.runs.size(), r2.runs.size());
  for (std::size_t k = 0; k < r1.runs.size(); ++k) {
    EXPECT_EQ(r1.runs[k].generic_mean_response, r2.runs[k].generic_mean_response) << "rep " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Disciplines, SimDeterminism,
                         ::testing::Values(queue::Discipline::Fcfs,
                                           queue::Discipline::SpecialPriority),
                         [](const auto& info) { return std::string(queue::to_string(info.param)); });

}  // namespace
