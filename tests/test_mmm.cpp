// M/M/m analytics: textbook identities, Little's law, consistency across
// the derived quantities, and the M/M/1 / M/M/inf limits.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mmm.hpp"

namespace {

using blade::queue::MMmQueue;
using blade::queue::UnstableQueueError;

TEST(MMmQueue, ConstructionValidation) {
  EXPECT_THROW(MMmQueue(0, 1.0), std::invalid_argument);
  EXPECT_THROW(MMmQueue(2, 0.0), std::invalid_argument);
  EXPECT_THROW(MMmQueue(2, -1.0), std::invalid_argument);
}

TEST(MMmQueue, BasicAccessors) {
  const MMmQueue q(4, 0.5);
  EXPECT_EQ(q.servers(), 4u);
  EXPECT_DOUBLE_EQ(q.mean_service_time(), 0.5);
  EXPECT_DOUBLE_EQ(q.service_rate(), 2.0);
  EXPECT_DOUBLE_EQ(q.max_arrival_rate(), 8.0);
  EXPECT_DOUBLE_EQ(q.next_completion_time(), 0.125);
}

TEST(MMmQueue, UtilizationAndStability) {
  const MMmQueue q(2, 1.0);
  EXPECT_DOUBLE_EQ(q.utilization(1.0), 0.5);
  EXPECT_THROW((void)q.utilization(2.0), UnstableQueueError);
  EXPECT_THROW((void)q.utilization(-0.5), std::invalid_argument);
}

TEST(MMmQueue, MM1ClosedForms) {
  // For m = 1: T = xbar/(1-rho), N = rho/(1-rho), Pq = rho, p0 = 1-rho.
  const MMmQueue q(1, 2.0);
  const double lambda = 0.3;  // rho = 0.6
  EXPECT_NEAR(q.utilization(lambda), 0.6, 1e-14);
  EXPECT_NEAR(q.p_empty(lambda), 0.4, 1e-12);
  EXPECT_NEAR(q.prob_queueing(lambda), 0.6, 1e-12);
  EXPECT_NEAR(q.mean_response_time(lambda), 2.0 / 0.4, 1e-12);
  EXPECT_NEAR(q.mean_tasks(lambda), 0.6 / 0.4, 1e-12);
  EXPECT_NEAR(q.mean_waiting_time(lambda), 2.0 / 0.4 - 2.0, 1e-12);
}

TEST(MMmQueue, MM2KnownValues) {
  // M/M/2 with rho = 0.5 (a = 1): p0 = 1/3, Pq = 1/3 * 1/2 / 0.5 = ...
  // Exact: p0 = [1 + a + a^2/2 * 1/(1-rho)]^{-1} = [1 + 1 + 1]^{-1} = 1/3.
  const MMmQueue q(2, 1.0);
  const double lambda = 1.0;  // rho = 0.5
  EXPECT_NEAR(q.p_empty(lambda), 1.0 / 3.0, 1e-12);
  // P_q = p_m / (1-rho) = (p0 a^2/2) / 0.5 = (1/6)/0.5 = 1/3.
  EXPECT_NEAR(q.prob_queueing(lambda), 1.0 / 3.0, 1e-12);
  // N = m rho + rho/(1-rho) Pq = 1 + 1/3.
  EXPECT_NEAR(q.mean_tasks(lambda), 4.0 / 3.0, 1e-12);
}

TEST(MMmQueue, LittlesLawHolds) {
  for (unsigned m : {1u, 3u, 8u, 14u}) {
    const MMmQueue q(m, 0.7);
    for (double frac : {0.2, 0.5, 0.8, 0.95}) {
      const double lambda = frac * q.max_arrival_rate();
      EXPECT_NEAR(q.mean_tasks(lambda), lambda * q.mean_response_time(lambda), 1e-9)
          << "m=" << m << " frac=" << frac;
      EXPECT_NEAR(q.mean_queue_length(lambda), lambda * q.mean_waiting_time(lambda), 1e-9);
    }
  }
}

TEST(MMmQueue, StateProbabilitiesSumToOne) {
  const MMmQueue q(5, 1.0);
  const double lambda = 3.5;
  double total = 0.0;
  for (unsigned k = 0; k <= 500; ++k) total += q.p_k(k, lambda);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MMmQueue, MeanTasksMatchesDirectSum) {
  const MMmQueue q(4, 1.0);
  const double lambda = 3.0;
  double n = 0.0;
  for (unsigned k = 1; k <= 800; ++k) n += k * q.p_k(k, lambda);
  EXPECT_NEAR(q.mean_tasks(lambda), n, 1e-8);
}

TEST(MMmQueue, WaitingDecomposition) {
  // W = W0 / (1 - rho) with W0 = Pq * xbar / m (paper, Section 3).
  const MMmQueue q(6, 0.9);
  const double lambda = 0.7 * q.max_arrival_rate();
  const double rho = q.utilization(lambda);
  const double w0 = q.server_available_time(lambda);
  EXPECT_NEAR(q.mean_waiting_time(lambda), w0 / (1.0 - rho), 1e-12);
}

TEST(MMmQueue, ResponseTimeIncreasesWithLoad) {
  const MMmQueue q(8, 1.0);
  double prev = q.mean_response_time(0.1);
  for (double frac = 0.1; frac < 0.99; frac += 0.05) {
    const double cur = q.mean_response_time(frac * q.max_arrival_rate());
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(MMmQueue, MoreServersNeverSlower) {
  // Same total capacity m*mu; more, slower servers give longer response
  // (classic M/M/m result) -- so at equal per-server utilization, adding
  // servers at fixed speed strictly helps.
  const double xbar = 1.0;
  const double lambda = 3.0;
  double prev = MMmQueue(4, xbar).mean_response_time(lambda);
  for (unsigned m : {5u, 6u, 8u, 12u}) {
    const double cur = MMmQueue(m, xbar).mean_response_time(lambda);
    EXPECT_LT(cur, prev) << "m=" << m;
    prev = cur;
  }
}

TEST(MMmQueue, ApproachesServiceTimeAtLightLoad) {
  const MMmQueue q(10, 0.8);
  EXPECT_NEAR(q.mean_response_time(1e-9), 0.8, 1e-6);
}

TEST(MMmQueue, DivergesNearSaturation) {
  const MMmQueue q(3, 1.0);
  EXPECT_GT(q.mean_response_time(0.9999 * q.max_arrival_rate()), 100.0);
}

}  // namespace
