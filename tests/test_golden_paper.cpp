// Golden paper regression: recomputes Table 1, Table 2, and the Figure
// 4-15 data series and diffs them token-by-token against the checked-in
// CSVs in tests/golden/ (written by tools/gen_golden through the same
// serialization code). Tolerance is 1e-6 relative -- far looser than the
// solver's 1e-12 bisection width and the goldens' 12-digit precision,
// so any failure here is a real numerical regression, not noise.
//
// To regenerate after an INTENTIONAL numerical change:
//   ./build/tools/gen_golden tests/golden
#include <gtest/gtest.h>

#include <string>

#include "cloud/experiments.hpp"
#include "support/golden.hpp"

namespace {

using namespace blade;
using namespace blade::testsupport;

constexpr double kRelTol = 1e-6;

std::string golden_path(const std::string& name) {
  return std::string(BLADE_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& name, const std::string& actual) {
  const std::string expected = read_file(golden_path(name));
  const auto diff = csv_numeric_diff(expected, actual, kRelTol);
  EXPECT_FALSE(diff.has_value()) << name << " drifted from golden:\n"
                                 << *diff
                                 << "(regenerate with tools/gen_golden only if the change "
                                    "is intentional)";
}

TEST(GoldenPaper, Table1Fcfs) {
  expect_matches_golden("table1.csv", table_csv(cloud::example_table(queue::Discipline::Fcfs)));
}

TEST(GoldenPaper, Table2Priority) {
  expect_matches_golden("table2.csv",
                        table_csv(cloud::example_table(queue::Discipline::SpecialPriority)));
}

class GoldenFigure : public ::testing::TestWithParam<int> {};

TEST_P(GoldenFigure, MatchesGolden) {
  const int number = GetParam();
  const auto fig = cloud::figure(number, kGoldenFigurePoints);
  expect_matches_golden(golden_figure_id(number) + ".csv", figure_csv(fig));
}

INSTANTIATE_TEST_SUITE_P(Figs, GoldenFigure,
                         ::testing::ValuesIn(golden_figure_numbers()),
                         [](const auto& info) { return golden_figure_id(info.param); });

// The goldens themselves must carry the paper's headline numbers: the
// published seven-decimal optima of Examples 1 and 2. This pins the
// golden files to the PAPER, not merely to the code that wrote them.
TEST(GoldenPaper, GoldenFilesCarryPaperOptima) {
  const std::string t1 = read_file(golden_path("table1.csv"));
  const std::string t2 = read_file(golden_path("table2.csv"));
  EXPECT_NE(t1.find("response_time,0.89647"), std::string::npos)
      << "table1.csv no longer contains the paper's T' = 0.8964703";
  EXPECT_NE(t2.find("response_time,0.92093"), std::string::npos)
      << "table2.csv no longer contains the paper's T' = 0.9209392";
}

}  // namespace
