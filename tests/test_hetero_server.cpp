// Heterogeneous-blade server: must collapse to M/M/m for equal speeds,
// respect capacity bounds, and quantify the bias of the homogeneous
// approximation the paper's model would impose.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/hetero_server.hpp"
#include "queueing/mmm.hpp"

namespace {

using blade::queue::MMmQueue;
using blade::queue::solve_hetero_server;

TEST(HeteroServer, EqualSpeedsRecoverMMm) {
  const std::vector<double> speeds{1.3, 1.3, 1.3};
  for (double lambda : {1.0, 2.5, 3.5}) {
    const auto res = solve_hetero_server(speeds, 1.0, lambda, 400);
    ASSERT_TRUE(res.converged);
    const MMmQueue q(3, 1.0 / 1.3);
    EXPECT_NEAR(res.mean_response, q.mean_response_time(lambda),
                2e-3 * q.mean_response_time(lambda))
        << "lambda=" << lambda;
    EXPECT_NEAR(res.utilization, q.utilization(lambda), 1e-3);
  }
}

TEST(HeteroServer, SingleBladeIsMM1) {
  const auto res = solve_hetero_server({2.0}, 1.0, 1.2, 600);
  const MMmQueue q(1, 0.5);
  EXPECT_NEAR(res.mean_response, q.mean_response_time(1.2), 1e-3 * q.mean_response_time(1.2));
}

TEST(HeteroServer, MixedSpeedsBetweenHomogeneousExtremes) {
  // A 2-blade mix (fast + slow) must respond slower than two fast blades
  // and faster than two slow ones. (lambda below the slow pair's
  // capacity of 1.2 so all three systems are stable.)
  const double lambda = 1.0;
  const auto mixed = solve_hetero_server({2.0, 0.6}, 1.0, lambda);
  const MMmQueue fast(2, 1.0 / 2.0);
  const MMmQueue slow(2, 1.0 / 0.6);
  EXPECT_GT(mixed.mean_response, fast.mean_response_time(lambda));
  EXPECT_LT(mixed.mean_response, slow.mean_response_time(lambda));
}

TEST(HeteroServer, ExtremeMixDefeatsHomogeneousApproximation) {
  // The paper-style work-around: replace mixed blades by m blades at the
  // average speed. For an *extreme* mix the slow blade drags the exact
  // system below the averaged model whenever it is used. (Moderate mixes
  // go the other way at light load -- see bench_hetero_blades.)
  const std::vector<double> speeds{2.4, 0.4};  // total 2.8, average 1.4
  const MMmQueue averaged(2, 1.0 / 1.4);
  for (double lambda : {0.8, 1.6, 2.2}) {
    const auto exact = solve_hetero_server(speeds, 1.0, lambda);
    EXPECT_GT(exact.mean_response, averaged.mean_response_time(lambda)) << "lambda=" << lambda;
  }
}

TEST(HeteroServer, UtilizationMatchesOfferedLoad) {
  // Speed-weighted utilization equals lambda rbar / total speed.
  const std::vector<double> speeds{1.8, 1.0, 0.6};
  const double lambda = 2.0;
  const auto res = solve_hetero_server(speeds, 1.0, lambda);
  EXPECT_NEAR(res.utilization, lambda * 1.0 / 3.4, 2e-3);
}

TEST(HeteroServer, ResponseIncreasesWithLoad) {
  const std::vector<double> speeds{1.5, 1.0, 0.5};
  double prev = 0.0;
  for (double lambda : {0.5, 1.2, 2.0, 2.7}) {
    const auto res = solve_hetero_server(speeds, 1.0, lambda);
    EXPECT_GT(res.mean_response, prev);
    prev = res.mean_response;
  }
}

TEST(HeteroServer, TruncationMassSmall) {
  const auto res = solve_hetero_server({1.0, 1.0}, 1.0, 1.7, 500);  // rho = 0.85
  EXPECT_LT(res.truncation_mass, 1e-8);
}

TEST(HeteroServer, Validation) {
  EXPECT_THROW((void)solve_hetero_server({}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)solve_hetero_server(std::vector<double>(11, 1.0), 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)solve_hetero_server({1.0}, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)solve_hetero_server({1.0, -1.0}, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)solve_hetero_server({1.0}, 1.0, 1.0), std::invalid_argument);  // rho >= 1
  EXPECT_THROW((void)solve_hetero_server({1.0}, 1.0, 0.5, 4), std::invalid_argument);
}

}  // namespace
