// Markov-chain substrate: birth-death solver against closed forms, the
// generic CTMC solver, transient analysis, and the exact priority CTMC
// against Theorem 2 -- an independent validation of the paper's key
// formula.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/birth_death.hpp"
#include "queueing/blade_queue.hpp"
#include "queueing/ctmc.hpp"
#include "queueing/mmm.hpp"
#include "queueing/mmmk.hpp"
#include "queueing/priority_ctmc.hpp"

namespace {

using namespace blade::queue;

BirthDeathChain mmm_chain(unsigned m, double xbar, double lambda, unsigned K) {
  const double mu = 1.0 / xbar;
  return BirthDeathChain([lambda](unsigned) { return lambda; },
                         [m, mu](unsigned k) { return std::min(k, m) * mu; }, K);
}

TEST(BirthDeath, MatchesMMmStateProbabilities) {
  const unsigned m = 4;
  const double xbar = 1.0;
  const double lambda = 2.8;  // rho = 0.7
  const auto chain = mmm_chain(m, xbar, lambda, 400);
  const MMmQueue q(m, xbar);
  for (unsigned k : {0u, 1u, 3u, 4u, 7u, 15u}) {
    EXPECT_NEAR(chain.stationary()[k], q.p_k(k, lambda), 1e-10) << "k=" << k;
  }
  EXPECT_NEAR(chain.mean_state(), q.mean_tasks(lambda), 1e-8);
  EXPECT_NEAR(chain.tail_probability(m), q.prob_queueing(lambda), 1e-8);
  EXPECT_LT(chain.boundary_mass(), 1e-12);
}

TEST(BirthDeath, MatchesMMmK) {
  const MMmKQueue q(3, 10, 0.8);
  const double lambda = 5.0;
  const double mu = 1.0 / 0.8;
  const BirthDeathChain chain([lambda](unsigned k) { return k < 10 ? lambda : 0.0; },
                              [mu](unsigned k) { return std::min(k, 3u) * mu; }, 10);
  for (unsigned k = 0; k <= 10; ++k) {
    EXPECT_NEAR(chain.stationary()[k], q.p_k(k, lambda), 1e-12) << "k=" << k;
  }
}

TEST(BirthDeath, HandlesHeavyLoadWithoutOverflow) {
  // Weights grow geometrically; the internal rescaling must cope.
  const auto chain = mmm_chain(2, 1.0, 1.99, 4000);  // rho = 0.995
  const auto& pi = chain.stationary();
  double total = 0.0;
  for (double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(chain.mean_state(), 100.0);
}

TEST(BirthDeath, Validation) {
  EXPECT_THROW(BirthDeathChain(nullptr, [](unsigned) { return 1.0; }, 5),
               std::invalid_argument);
  const BirthDeathChain dead([](unsigned) { return 1.0; }, [](unsigned) { return 0.0; }, 5);
  EXPECT_THROW((void)dead.stationary(), std::domain_error);
}

TEST(Ctmc, TwoStateClosedForm) {
  // 0 -> 1 at a, 1 -> 0 at b: pi = (b, a)/(a+b).
  Ctmc chain(2);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 0, 6.0);
  const auto sol = chain.stationary();
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.pi[0], 0.75, 1e-9);
  EXPECT_NEAR(sol.pi[1], 0.25, 1e-9);
}

TEST(Ctmc, MatchesBirthDeathOnMMm) {
  const unsigned m = 3;
  const double lambda = 1.8;
  const double mu = 1.0;
  const unsigned K = 60;
  Ctmc chain(K + 1);
  for (unsigned k = 0; k < K; ++k) chain.add_rate(k, k + 1, lambda);
  for (unsigned k = 1; k <= K; ++k) chain.add_rate(k, k - 1, std::min(k, m) * mu);
  const auto sol = chain.stationary();
  const MMmQueue q(m, 1.0);
  for (unsigned k : {0u, 2u, 5u, 10u}) {
    EXPECT_NEAR(sol.pi[k], q.p_k(k, lambda), 1e-7) << "k=" << k;
  }
}

TEST(Ctmc, Validation) {
  Ctmc chain(3);
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(chain.add_rate(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(chain.add_rate(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)chain.stationary(), std::domain_error);  // no transitions
  EXPECT_THROW(Ctmc(0), std::invalid_argument);
}

TEST(CtmcTransient, ConvergesToStationary) {
  Ctmc chain(2);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 3.0);
  const std::vector<double> start{1.0, 0.0};
  const auto late = chain.transient(start, 50.0);
  EXPECT_NEAR(late[0], 0.75, 1e-8);
  // Exact two-state transient: p1(t) = (a/(a+b))(1 - e^{-(a+b)t}).
  const auto mid = chain.transient(start, 0.5);
  const double exact = 0.25 * (1.0 - std::exp(-4.0 * 0.5));
  EXPECT_NEAR(mid[1], exact, 1e-8);
}

TEST(CtmcTransient, TimeZeroIsIdentity) {
  Ctmc chain(2);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  const std::vector<double> start{0.3, 0.7};
  const auto now = chain.transient(start, 0.0);
  EXPECT_DOUBLE_EQ(now[0], 0.3);
  EXPECT_DOUBLE_EQ(now[1], 0.7);
  EXPECT_THROW((void)chain.transient({1.0}, 1.0), std::invalid_argument);
}

TEST(CtmcTransient, MMmWarmupCurveIsMonotone) {
  // Mean number in system grows monotonically from empty toward steady
  // state -- the transient the simulator's warmup truncation discards.
  const unsigned K = 80;
  Ctmc chain(K + 1);
  for (unsigned k = 0; k < K; ++k) chain.add_rate(k, k + 1, 2.8);
  for (unsigned k = 1; k <= K; ++k) chain.add_rate(k, k - 1, std::min(k, 4u) * 1.0);
  std::vector<double> start(K + 1, 0.0);
  start[0] = 1.0;
  double prev = 0.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    const auto pi = chain.transient(start, t);
    double mean = 0.0;
    for (unsigned k = 0; k <= K; ++k) mean += k * pi[k];
    EXPECT_GT(mean, prev) << "t=" << t;
    prev = mean;
  }
  EXPECT_NEAR(prev, MMmQueue(4, 1.0).mean_tasks(2.8), 0.02);
}

// ------------------------------------------------ priority CTMC vs Theorem 2

TEST(PriorityCtmc, ValidatesTheorem2AcrossConfigurations) {
  struct Case {
    unsigned m;
    double lambda1;  // special
    double lambda2;  // generic
  };
  for (const Case& c : {Case{1, 0.3, 0.3}, Case{2, 0.5, 0.6}, Case{4, 1.2, 1.4}}) {
    const double xbar = 1.0;
    const auto exact = solve_priority_mmm(c.m, xbar, c.lambda1, c.lambda2, 220);
    ASSERT_TRUE(exact.converged);
    EXPECT_LT(exact.truncation_mass, 1e-6);

    const BladeQueue q(c.m, xbar, c.lambda1, Discipline::SpecialPriority);
    const double theory_generic = q.generic_response_time(c.lambda2);
    const double theory_special = q.special_response_time(c.lambda2);
    EXPECT_NEAR(exact.generic_response, theory_generic, 2e-3 * theory_generic)
        << "m=" << c.m;
    EXPECT_NEAR(exact.special_response, theory_special, 2e-3 * theory_special)
        << "m=" << c.m;
    const double rho = (c.lambda1 + c.lambda2) * xbar / c.m;
    EXPECT_NEAR(exact.utilization, rho, 1e-3);
  }
}

TEST(PriorityCtmc, OrderingAndValidation) {
  const auto res = solve_priority_mmm(2, 1.0, 0.6, 0.6, 120);
  EXPECT_LT(res.special_wait, res.generic_wait);
  EXPECT_THROW((void)solve_priority_mmm(0, 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)solve_priority_mmm(2, 1.0, 1.5, 0.6), std::invalid_argument);
  EXPECT_THROW((void)solve_priority_mmm(2, 1.0, 0.5, 0.5, 4), std::invalid_argument);
}

}  // namespace
